// Umbrella header: the whole public API of the gridsched library.
//
// Reproduction of Song, Kwok & Hwang, "Security-Driven Heuristics and A
// Fast Genetic Algorithm for Trusted Grid Job Scheduling", IPDPS 2005.
#pragma once

#include "core/ga_engine.hpp"       // IWYU pragma: export
#include "core/ga_problem.hpp"      // IWYU pragma: export
#include "core/ga_scheduler.hpp"    // IWYU pragma: export
#include "core/history.hpp"         // IWYU pragma: export
#include "core/operators.hpp"       // IWYU pragma: export
#include "exp/campaign/campaign_aggregator.hpp" // IWYU pragma: export
#include "exp/campaign/campaign_journal.hpp"    // IWYU pragma: export
#include "exp/campaign/campaign_runner.hpp"     // IWYU pragma: export
#include "exp/campaign/campaign_sinks.hpp"      // IWYU pragma: export
#include "exp/campaign/campaign_spec.hpp"       // IWYU pragma: export
#include "exp/fault_plan.hpp"       // IWYU pragma: export
#include "exp/roster.hpp"           // IWYU pragma: export
#include "exp/runner.hpp"           // IWYU pragma: export
#include "exp/scenario.hpp"         // IWYU pragma: export
#include "exp/scenario_registry.hpp" // IWYU pragma: export
#include "metrics/metrics.hpp"      // IWYU pragma: export
#include "obs/ga_profile_json.hpp"  // IWYU pragma: export
#include "obs/kernel_metrics.hpp"   // IWYU pragma: export
#include "obs/metric_registry.hpp"  // IWYU pragma: export
#include "obs/proc_stats.hpp"       // IWYU pragma: export
#include "obs/timeseries.hpp"       // IWYU pragma: export
#include "obs/trace_event.hpp"      // IWYU pragma: export
#include "sched/etc_matrix.hpp"     // IWYU pragma: export
#include "sched/heuristics.hpp"     // IWYU pragma: export
#include "sched/registry.hpp"       // IWYU pragma: export
#include "sched/risk_filter.hpp"    // IWYU pragma: export
#include "security/security.hpp"    // IWYU pragma: export
#include "security/trust_index.hpp" // IWYU pragma: export
#include "sim/engine.hpp"           // IWYU pragma: export
#include "sim/kernel.hpp"           // IWYU pragma: export
#include "sim/observer.hpp"         // IWYU pragma: export
#include "sim/process/arrival_process.hpp"          // IWYU pragma: export
#include "sim/process/batch_cycle_process.hpp"      // IWYU pragma: export
#include "sim/process/security_failure_process.hpp" // IWYU pragma: export
#include "sim/process/site_churn_process.hpp"       // IWYU pragma: export
#include "sim/scheduling.hpp"       // IWYU pragma: export
#include "util/cancel.hpp"          // IWYU pragma: export
#include "util/cli.hpp"             // IWYU pragma: export
#include "util/json.hpp"            // IWYU pragma: export
#include "util/log.hpp"             // IWYU pragma: export
#include "util/rng.hpp"             // IWYU pragma: export
#include "util/stats.hpp"           // IWYU pragma: export
#include "util/table.hpp"           // IWYU pragma: export
#include "workload/nas.hpp"         // IWYU pragma: export
#include "workload/psa.hpp"         // IWYU pragma: export
#include "workload/sites.hpp"       // IWYU pragma: export
#include "workload/synth/synth.hpp" // IWYU pragma: export
#include "workload/trace_io.hpp"    // IWYU pragma: export
