// Parameter-sweep application (PSA) workload (paper §4.2, Table 1).
//
// N independent sequential jobs (one node each), workloads drawn from 20
// discrete levels spanning (0, 300000] work-units, Poisson arrivals with
// rate 0.008 jobs/s, executed on 20 heterogeneous single-node sites.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/job.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace gridsched::workload {

struct PsaConfig {
  std::size_t n_jobs = 5000;      ///< paper Table 1 default
  double arrival_rate = 0.008;    ///< jobs per second (Poisson)
  std::size_t workload_levels = 20;
  double max_workload = 300000.0; ///< level k -> k * max/levels work-units
  std::size_t n_sites = 20;
};

std::vector<sim::Job> psa_jobs(const PsaConfig& config, std::uint64_t seed);

Workload psa_workload(const PsaConfig& config, std::uint64_t seed);

}  // namespace gridsched::workload
