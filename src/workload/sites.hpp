// Grid-site configuration builders for the paper's two testbeds.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/site.hpp"
#include "util/rng.hpp"

namespace gridsched::workload {

/// Paper Table 1, NAS row: the 128 iPSC/860 nodes mapped onto 12 sites —
/// four 16-node sites and eight 8-node sites, unit speed. Security levels
/// drawn U[0.4, 1.0].
std::vector<sim::SiteConfig> nas_sites(util::Rng& rng);

/// Paper Table 1, PSA row: `count` single-node sites with speed level
/// 1..10 (x10 work-units/s, DESIGN.md S6). Security levels U[0.4, 1.0].
std::vector<sim::SiteConfig> psa_sites(util::Rng& rng, std::size_t count = 20);

/// Guarantee the fail-stop rule can always be honoured: at least one site
/// that fits `max_nodes` has SL >= demand_hi. Bumps the highest-SL fitting
/// site if needed (DESIGN.md, secure-home guard).
void ensure_safe_home(std::vector<sim::SiteConfig>& sites, unsigned max_nodes,
                      double demand_hi, util::Rng& rng);

}  // namespace gridsched::workload
