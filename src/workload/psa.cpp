#include "workload/psa.hpp"

#include <stdexcept>

#include "security/security.hpp"
#include "workload/sites.hpp"

namespace gridsched::workload {

std::vector<sim::Job> psa_jobs(const PsaConfig& config, std::uint64_t seed) {
  if (config.n_jobs == 0) throw std::invalid_argument("psa_jobs: n_jobs == 0");
  if (config.workload_levels == 0 || config.max_workload <= 0.0) {
    throw std::invalid_argument("psa_jobs: bad workload levels");
  }
  if (config.arrival_rate <= 0.0) {
    throw std::invalid_argument("psa_jobs: arrival_rate must be > 0");
  }
  util::Rng rng(seed);
  const double level_size =
      config.max_workload / static_cast<double>(config.workload_levels);

  std::vector<sim::Job> jobs(config.n_jobs);
  double clock = 0.0;
  for (std::size_t i = 0; i < config.n_jobs; ++i) {
    clock += rng.exponential(config.arrival_rate);
    sim::Job& job = jobs[i];
    job.arrival = clock;
    job.nodes = 1;  // PSA jobs are sequential by definition
    const auto level = static_cast<double>(
        rng.uniform_int(1, static_cast<std::int64_t>(config.workload_levels)));
    job.work = level * level_size;
    job.demand = rng.uniform(security::kJobDemandLo, security::kJobDemandHi);
  }
  return jobs;
}

Workload psa_workload(const PsaConfig& config, std::uint64_t seed) {
  Workload workload;
  workload.name = "PSA";
  util::Rng site_rng = util::Rng::child(seed, 0x75A);
  workload.sites = psa_sites(site_rng, config.n_sites);
  workload.jobs = psa_jobs(config, seed);
  return workload;
}

}  // namespace gridsched::workload
