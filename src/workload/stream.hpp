// Streaming workload cursor: pull the next job arrival on demand instead
// of materialising the whole workload up front. SimKernel's stream
// constructor drives one of these through ArrivalProcess, holding O(active)
// job state however many jobs the stream will eventually yield; the
// MaterializedStream adapter wraps every existing generator's job vector so
// a streamed run of any registry scenario replays the exact same jobs (and
// therefore the exact same bytes) as a retained run.
//
// Contract: next() yields jobs in nondecreasing arrival order (every
// generator already sorts; the kernel enforces it at admission, because the
// lazy one-arrival-ahead event push is only order-preserving for sorted
// streams), and size() is the total count the stream will yield — the
// kernel pre-reserves that many event sequence numbers so streamed and
// materialised runs pop events in the identical (time, seq) order.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/job.hpp"

namespace gridsched::workload {

class JobStream {
 public:
  virtual ~JobStream() = default;

  /// Total number of jobs this stream will yield over its lifetime.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;

  /// Produce the next job (nondecreasing arrival times); returns false
  /// once exhausted. The kernel overwrites `job.id` with the dense
  /// admission index, so implementations need not set it.
  virtual bool next(sim::Job& job) = 0;
};

/// Adapter over a pre-built job vector (all existing generators): yields
/// the jobs in vector order without copying the vector again.
class MaterializedStream final : public JobStream {
 public:
  explicit MaterializedStream(std::vector<sim::Job> jobs)
      : jobs_(std::move(jobs)) {}

  [[nodiscard]] std::size_t size() const noexcept override {
    return jobs_.size();
  }

  bool next(sim::Job& job) override {
    if (cursor_ == jobs_.size()) return false;
    job = jobs_[cursor_++];
    return true;
  }

 private:
  std::vector<sim::Job> jobs_;
  std::size_t cursor_ = 0;
};

}  // namespace gridsched::workload
