// Synthetic NAS iPSC/860 trace generator (DESIGN.md S1).
//
// The paper replays 46 days (16 000 jobs) of the 1993 NASA Ames iPSC/860
// accounting trace. The trace itself is not redistributable here, so this
// generator reproduces its published characterisation (Feitelson &
// Nitzberg, 1994): power-of-two node requests dominated by small jobs, a
// large mass of short runtimes with a heavy lognormal tail, and bursty
// arrivals with strong daily and weekly cycles. Runtimes are rescaled so
// the offered load hits a configurable fraction of grid capacity, which is
// what the paper's "squeezed to 46 days" step achieves.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/job.hpp"
#include "sim/site.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace gridsched::workload {

struct NasTraceConfig {
  std::size_t n_jobs = 16000;      ///< paper Table 1
  double horizon = 46.0 * 86400.0; ///< 46 days, seconds
  /// Offered load: sum(work*nodes) / (capacity*horizon). 0 disables scaling.
  double target_load = 0.55;
  /// Node-request distribution over powers of two {1,2,4,8,16}; sizes are
  /// capped at the largest site (DESIGN.md S7).
  std::vector<double> size_weights = {0.25, 0.20, 0.20, 0.20, 0.15};
  /// Short-job mixture component (interactive/debug runs).
  double short_fraction = 0.3;
  double short_log_mean = 3.4;   ///< exp(3.4) ~ 30 s median
  double short_log_sigma = 1.0;
  double long_log_mean = 7.1;    ///< exp(7.1) ~ 1200 s median
  double long_log_sigma = 1.6;
  double max_runtime = 86400.0;  ///< cap, seconds
  double min_runtime = 1.0;
  /// Diurnal modulation amplitude in [0,1) and weekend damping factor.
  double diurnal_amplitude = 0.6;
  double weekend_factor = 0.7;
};

/// Generate jobs only (no sites); deterministic in (config, seed).
std::vector<sim::Job> nas_jobs(const NasTraceConfig& config,
                               const std::vector<sim::SiteConfig>& sites,
                               std::uint64_t seed);

/// Full workload: the 12-site NAS grid plus the synthetic trace.
Workload nas_workload(const NasTraceConfig& config, std::uint64_t seed);

/// Arrival-intensity profile (relative rate at time t); exposed for tests.
double nas_arrival_intensity(double t, const NasTraceConfig& config) noexcept;

}  // namespace gridsched::workload
