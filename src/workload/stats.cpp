#include "workload/stats.hpp"

#include <cstdio>

namespace gridsched::workload {

double WorkloadStats::offered_load(double node_speed_per_second) const {
  if (span <= 0.0 || node_speed_per_second <= 0.0) return 0.0;
  return total_node_seconds / (node_speed_per_second * span);
}

WorkloadStats characterize(const std::vector<sim::Job>& jobs) {
  WorkloadStats stats;
  stats.n_jobs = jobs.size();
  if (jobs.empty()) return stats;
  stats.span = jobs.back().arrival - jobs.front().arrival;
  double previous_arrival = jobs.front().arrival;
  for (const sim::Job& job : jobs) {
    stats.work.add(job.work);
    stats.demand.add(job.demand);
    stats.interarrival.add(job.arrival - previous_arrival);
    previous_arrival = job.arrival;
    ++stats.size_histogram[job.nodes];
    stats.total_node_seconds += job.work * static_cast<double>(job.nodes);
  }
  return stats;
}

std::string describe(const WorkloadStats& stats) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "jobs:           %zu\n", stats.n_jobs);
  out += line;
  std::snprintf(line, sizeof(line), "arrival span:   %.0f s (%.2f days)\n",
                stats.span, stats.span / 86400.0);
  out += line;
  std::snprintf(line, sizeof(line),
                "work:           mean %.1f, sd %.1f, min %.1f, max %.1f\n",
                stats.work.mean(), stats.work.stddev(), stats.work.min(),
                stats.work.max());
  out += line;
  std::snprintf(line, sizeof(line),
                "interarrival:   mean %.1f s, sd %.1f s\n",
                stats.interarrival.mean(), stats.interarrival.stddev());
  out += line;
  std::snprintf(line, sizeof(line),
                "security SD:    mean %.3f, range [%.3f, %.3f]\n",
                stats.demand.mean(), stats.demand.min(), stats.demand.max());
  out += line;
  out += "node requests:\n";
  for (const auto& [nodes, count] : stats.size_histogram) {
    std::snprintf(line, sizeof(line), "  %3u nodes: %zu (%.1f%%)\n", nodes,
                  count,
                  100.0 * static_cast<double>(count) /
                      static_cast<double>(stats.n_jobs));
    out += line;
  }
  std::snprintf(line, sizeof(line), "total demand:   %.3g node-seconds\n",
                stats.total_node_seconds);
  out += line;
  return out;
}

}  // namespace gridsched::workload
