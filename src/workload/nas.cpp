#include "workload/nas.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "security/security.hpp"
#include "workload/sites.hpp"

namespace gridsched::workload {

namespace {
constexpr double kDay = 86400.0;
constexpr double kWeek = 7.0 * kDay;

unsigned draw_size(util::Rng& rng, const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double ticket = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ticket -= weights[i];
    if (ticket <= 0.0) return 1u << i;
  }
  return 1u << (weights.size() - 1);
}
}  // namespace

double nas_arrival_intensity(double t, const NasTraceConfig& config) noexcept {
  // Peak in the working afternoon; trough at night. Phase picked so the
  // maximum lands near 15:00.
  const double day_phase = t / kDay;
  const double diurnal =
      1.0 + config.diurnal_amplitude *
                std::sin(2.0 * M_PI * (day_phase - 0.375));
  const double week_phase = std::fmod(t, kWeek) / kDay;  // 0..7
  const bool weekend = week_phase >= 5.0;
  return diurnal * (weekend ? config.weekend_factor : 1.0);
}

std::vector<sim::Job> nas_jobs(const NasTraceConfig& config,
                               const std::vector<sim::SiteConfig>& sites,
                               std::uint64_t seed) {
  if (config.n_jobs == 0) throw std::invalid_argument("nas_jobs: n_jobs == 0");
  if (config.size_weights.empty() || config.size_weights.size() > 8) {
    throw std::invalid_argument("nas_jobs: bad size_weights");
  }
  util::Rng rng(seed);

  const unsigned max_site_nodes =
      std::max_element(sites.begin(), sites.end(),
                       [](const auto& a,
                          const auto& b) { return a.nodes < b.nodes; })
          ->nodes;

  // Arrival times by rejection sampling against the intensity envelope.
  const double peak = (1.0 + config.diurnal_amplitude);
  std::vector<double> arrivals;
  arrivals.reserve(config.n_jobs);
  while (arrivals.size() < config.n_jobs) {
    const double t = rng.uniform(0.0, config.horizon);
    if (rng.uniform(0.0, peak) <= nas_arrival_intensity(t, config)) {
      arrivals.push_back(t);
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<sim::Job> jobs(config.n_jobs);
  for (std::size_t i = 0; i < config.n_jobs; ++i) {
    sim::Job& job = jobs[i];
    job.arrival = arrivals[i];
    unsigned nodes = draw_size(rng, config.size_weights);
    nodes = std::min(nodes, max_site_nodes);
    job.nodes = nodes;
    const bool is_short = rng.bernoulli(config.short_fraction);
    const double runtime =
        is_short ? rng.lognormal(config.short_log_mean, config.short_log_sigma)
                 : rng.lognormal(config.long_log_mean, config.long_log_sigma);
    job.work = std::clamp(runtime, config.min_runtime, config.max_runtime);
    job.demand =
        rng.uniform(security::kJobDemandLo, security::kJobDemandHi);
  }

  if (config.target_load > 0.0) {
    double capacity = 0.0;  // node-speed-seconds available over the horizon
    for (const auto& site : sites) {
      capacity += static_cast<double>(site.nodes) * site.speed * config.horizon;
    }
    double offered = 0.0;
    for (const auto& job : jobs) {
      offered += job.work * static_cast<double>(job.nodes);
    }
    const double scale = config.target_load * capacity / offered;
    for (auto& job : jobs) {
      job.work = std::clamp(job.work * scale, config.min_runtime,
                            config.max_runtime);
    }
  }
  return jobs;
}

Workload nas_workload(const NasTraceConfig& config, std::uint64_t seed) {
  Workload workload;
  workload.name = "NAS";
  util::Rng site_rng = util::Rng::child(seed, 0xA51);
  workload.sites = nas_sites(site_rng);
  workload.jobs = nas_jobs(config, workload.sites, seed);
  return workload;
}

}  // namespace gridsched::workload
