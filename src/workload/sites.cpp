#include "workload/sites.hpp"

#include <algorithm>
#include <stdexcept>

#include "security/security.hpp"

namespace gridsched::workload {

namespace {
double draw_security(util::Rng& rng) {
  return rng.uniform(security::kSiteSecurityLo, security::kSiteSecurityHi);
}
}  // namespace

std::vector<sim::SiteConfig> nas_sites(util::Rng& rng) {
  std::vector<sim::SiteConfig> sites;
  sites.reserve(12);
  for (int i = 0; i < 4; ++i) {
    sites.push_back({static_cast<sim::SiteId>(sites.size()), 16u, 1.0,
                     draw_security(rng)});
  }
  for (int i = 0; i < 8; ++i) {
    sites.push_back({static_cast<sim::SiteId>(sites.size()), 8u, 1.0,
                     draw_security(rng)});
  }
  ensure_safe_home(sites, 16, security::kJobDemandHi, rng);
  return sites;
}

std::vector<sim::SiteConfig> psa_sites(util::Rng& rng, std::size_t count) {
  if (count == 0) throw std::invalid_argument("psa_sites: count must be > 0");
  std::vector<sim::SiteConfig> sites;
  sites.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Speed level 1..10; x10 work-units/s calibration (DESIGN.md S6).
    const double speed = 10.0 * static_cast<double>(rng.uniform_int(1, 10));
    sites.push_back(
        {static_cast<sim::SiteId>(i), 1u, speed, draw_security(rng)});
  }
  ensure_safe_home(sites, 1, security::kJobDemandHi, rng);
  return sites;
}

void ensure_safe_home(std::vector<sim::SiteConfig>& sites, unsigned max_nodes,
                      double demand_hi, util::Rng& rng) {
  sim::SiteConfig* best = nullptr;
  for (sim::SiteConfig& site : sites) {
    if (site.nodes < max_nodes) continue;
    if (site.security >= demand_hi) return;  // already guaranteed
    if (!best || site.security > best->security) best = &site;
  }
  if (!best) {
    throw std::invalid_argument(
        "ensure_safe_home: no site fits the largest job");
  }
  best->security = rng.uniform(demand_hi, security::kSiteSecurityHi);
}

}  // namespace gridsched::workload
