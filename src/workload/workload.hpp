// A workload bundles the jobs to simulate with the grid they run on.
#pragma once

#include <string>
#include <vector>

#include "sim/exec_model.hpp"
#include "sim/job.hpp"
#include "sim/site.hpp"

namespace gridsched::workload {

struct Workload {
  std::string name;
  std::vector<sim::SiteConfig> sites;
  std::vector<sim::Job> jobs;
  /// Execution model to simulate under. Generators that produce a raw
  /// per-(job, site) ETC (the synth family) attach it here and it is
  /// authoritative; for the rank-1 testbeds (nas, psa) the default model
  /// derives exec = work / speed on demand.
  sim::ExecModel exec;
  /// Per-site churn-process parameters, parallel to `sites`. Empty (the
  /// default, and every non-churn generator) disables the churn process.
  std::vector<sim::SiteChurnParams> churn;
};

}  // namespace gridsched::workload
