// A workload bundles the jobs to simulate with the grid they run on.
#pragma once

#include <string>
#include <vector>

#include "sim/job.hpp"
#include "sim/site.hpp"

namespace gridsched::workload {

struct Workload {
  std::string name;
  std::vector<sim::SiteConfig> sites;
  std::vector<sim::Job> jobs;
};

}  // namespace gridsched::workload
