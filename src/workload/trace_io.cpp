#include "workload/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace gridsched::workload {

namespace {

std::ifstream open_input(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return in;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create trace file: " + path);
  return out;
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& line) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line_no) + ": " + line);
}

bool is_skippable(const std::string& line) {
  for (const char ch : line) {
    if (ch == ';') return true;
    if (!std::isspace(static_cast<unsigned char>(ch))) return false;
  }
  return true;  // all whitespace
}

}  // namespace

void write_jobs(std::ostream& out, const std::vector<sim::Job>& jobs) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "; gridsched job trace v1\n";
  out << "; id arrival work nodes demand\n";
  for (const sim::Job& job : jobs) {
    out << job.id << ' ' << job.arrival << ' ' << job.work << ' ' << job.nodes
        << ' ' << job.demand << '\n';
  }
}

void write_jobs_file(const std::string& path, const std::vector<sim::Job>& jobs) {
  auto out = open_output(path);
  write_jobs(out, jobs);
}

std::vector<sim::Job> read_jobs(std::istream& in) {
  std::vector<sim::Job> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_skippable(line)) continue;
    std::istringstream fields(line);
    sim::Job job;
    unsigned long id = 0;
    if (!(fields >> id >> job.arrival >> job.work >> job.nodes >> job.demand)) {
      parse_error(line_no, line);
    }
    job.id = static_cast<sim::JobId>(id);
    if (job.work <= 0.0 || job.nodes == 0 || job.arrival < 0.0) {
      parse_error(line_no, line);
    }
    jobs.push_back(job);
  }
  return jobs;
}

std::vector<sim::Job> read_jobs_file(const std::string& path) {
  auto in = open_input(path);
  return read_jobs(in);
}

void write_sites(std::ostream& out, const std::vector<sim::SiteConfig>& sites) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "; gridsched site list v1\n";
  out << "; id nodes speed security\n";
  for (const sim::SiteConfig& site : sites) {
    out << site.id << ' ' << site.nodes << ' ' << site.speed << ' '
        << site.security << '\n';
  }
}

void write_sites_file(const std::string& path,
                      const std::vector<sim::SiteConfig>& sites) {
  auto out = open_output(path);
  write_sites(out, sites);
}

std::vector<sim::SiteConfig> read_sites(std::istream& in) {
  std::vector<sim::SiteConfig> sites;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_skippable(line)) continue;
    std::istringstream fields(line);
    sim::SiteConfig site;
    unsigned long id = 0;
    if (!(fields >> id >> site.nodes >> site.speed >> site.security)) {
      parse_error(line_no, line);
    }
    site.id = static_cast<sim::SiteId>(id);
    if (site.nodes == 0 || site.speed <= 0.0) parse_error(line_no, line);
    sites.push_back(site);
  }
  return sites;
}

std::vector<sim::SiteConfig> read_sites_file(const std::string& path) {
  auto in = open_input(path);
  return read_sites(in);
}

}  // namespace gridsched::workload
