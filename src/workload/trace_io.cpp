#include "workload/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <span>
#include <sstream>
#include <stdexcept>

namespace gridsched::workload {

namespace {

std::ifstream open_input(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return in;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create trace file: " + path);
  return out;
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& line) {
  throw std::runtime_error("trace parse error at line " +
                           std::to_string(line_no) + ": " + line);
}

bool is_skippable(const std::string& line) {
  for (const char ch : line) {
    if (ch == ';') return true;
    if (!std::isspace(static_cast<unsigned char>(ch))) return false;
  }
  return true;  // all whitespace
}

}  // namespace

void write_jobs(std::ostream& out, const std::vector<sim::Job>& jobs,
                const sim::ExecModel& exec) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "; gridsched job trace v2\n";
  out << "; id arrival work nodes demand\n";
  for (const sim::Job& job : jobs) {
    out << job.id << ' ' << job.arrival << ' ' << job.work << ' ' << job.nodes
        << ' ' << job.demand << '\n';
  }
  if (!exec.has_matrix()) return;
  if (exec.matrix_jobs() != jobs.size()) {
    throw std::runtime_error("write_jobs: ETC matrix covers " +
                             std::to_string(exec.matrix_jobs()) +
                             " jobs but the trace has " +
                             std::to_string(jobs.size()));
  }
  const std::size_t n_sites = exec.matrix_sites();
  const std::span<const double> cells = exec.matrix_cells();
  out << ";etc v1 " << exec.matrix_jobs() << ' ' << n_sites << '\n';
  for (std::size_t j = 0; j < exec.matrix_jobs(); ++j) {
    out << ";etc-row " << j;
    for (std::size_t s = 0; s < n_sites; ++s) {
      out << ' ' << cells[j * n_sites + s];
    }
    out << '\n';
  }
}

void write_jobs_file(const std::string& path, const std::vector<sim::Job>& jobs,
                     const sim::ExecModel& exec) {
  auto out = open_output(path);
  write_jobs(out, jobs, exec);
}

JobsTrace read_jobs_trace(std::istream& in) {
  JobsTrace trace;
  std::string line;
  std::size_t line_no = 0;
  // ";etc" section state: dimensions from the header line, rows required
  // in job order (the row index makes truncation/reordering detectable).
  bool have_etc = false;
  std::size_t etc_jobs = 0;
  std::size_t etc_sites = 0;
  std::size_t etc_rows_read = 0;
  std::vector<double> etc_cells;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind(";etc-row", 0) == 0) {
      if (!have_etc || etc_rows_read == etc_jobs) parse_error(line_no, line);
      std::istringstream fields(line);
      std::string tag;
      std::size_t row = 0;
      if (!(fields >> tag >> row) || row != etc_rows_read) {
        parse_error(line_no, line);
      }
      for (std::size_t s = 0; s < etc_sites; ++s) {
        double cell = 0.0;
        if (!(fields >> cell)) parse_error(line_no, line);
        etc_cells.push_back(cell);
      }
      double extra = 0.0;
      if (fields >> extra) parse_error(line_no, line);
      ++etc_rows_read;
      continue;
    }
    if (line.rfind(";etc", 0) == 0) {
      std::istringstream fields(line);
      std::string tag;
      std::string version;
      if (have_etc ||
          !(fields >> tag >> version >> etc_jobs >> etc_sites) ||
          version != "v1" || etc_jobs == 0 || etc_sites == 0) {
        parse_error(line_no, line);
      }
      have_etc = true;
      etc_cells.reserve(etc_jobs * etc_sites);
      continue;
    }
    if (is_skippable(line)) continue;
    std::istringstream fields(line);
    sim::Job job;
    unsigned long id = 0;
    if (!(fields >> id >> job.arrival >> job.work >> job.nodes >> job.demand)) {
      parse_error(line_no, line);
    }
    job.id = static_cast<sim::JobId>(id);
    if (job.work <= 0.0 || job.nodes == 0 || job.arrival < 0.0) {
      parse_error(line_no, line);
    }
    trace.jobs.push_back(job);
  }
  if (have_etc) {
    if (etc_rows_read != etc_jobs || etc_jobs != trace.jobs.size()) {
      throw std::runtime_error(
          "trace ETC section covers " + std::to_string(etc_rows_read) + "/" +
          std::to_string(etc_jobs) + " rows for " +
          std::to_string(trace.jobs.size()) + " jobs");
    }
    // The ExecModel constructor enforces finite > 0 cells.
    trace.exec = sim::ExecModel(etc_jobs, etc_sites, std::move(etc_cells));
  }
  return trace;
}

JobsTrace read_jobs_trace_file(const std::string& path) {
  auto in = open_input(path);
  return read_jobs_trace(in);
}

std::vector<sim::Job> read_jobs(std::istream& in) {
  return read_jobs_trace(in).jobs;
}

std::vector<sim::Job> read_jobs_file(const std::string& path) {
  auto in = open_input(path);
  return read_jobs(in);
}

void write_sites(std::ostream& out, const std::vector<sim::SiteConfig>& sites) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "; gridsched site list v1\n";
  out << "; id nodes speed security\n";
  for (const sim::SiteConfig& site : sites) {
    out << site.id << ' ' << site.nodes << ' ' << site.speed << ' '
        << site.security << '\n';
  }
}

void write_sites_file(const std::string& path,
                      const std::vector<sim::SiteConfig>& sites) {
  auto out = open_output(path);
  write_sites(out, sites);
}

std::vector<sim::SiteConfig> read_sites(std::istream& in) {
  std::vector<sim::SiteConfig> sites;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (is_skippable(line)) continue;
    std::istringstream fields(line);
    sim::SiteConfig site;
    unsigned long id = 0;
    if (!(fields >> id >> site.nodes >> site.speed >> site.security)) {
      parse_error(line_no, line);
    }
    site.id = static_cast<sim::SiteId>(id);
    if (site.nodes == 0 || site.speed <= 0.0) parse_error(line_no, line);
    sites.push_back(site);
  }
  return sites;
}

std::vector<sim::SiteConfig> read_sites_file(const std::string& path) {
  auto in = open_input(path);
  return read_sites(in);
}

}  // namespace gridsched::workload
