// Workload characterisation: summary statistics and histograms for a job
// stream, used to validate synthetic traces against published trace
// characterisations and by the CLI's `describe` command.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/job.hpp"
#include "util/stats.hpp"

namespace gridsched::workload {

struct WorkloadStats {
  std::size_t n_jobs = 0;
  double span = 0.0;  ///< last arrival - first arrival
  util::RunningStats work;
  util::RunningStats interarrival;
  util::RunningStats demand;
  std::map<unsigned, std::size_t> size_histogram;  ///< nodes -> count
  double total_node_seconds = 0.0;

  /// Offered load against a capacity of `node_speed_per_second` work-units
  /// per second over the arrival span.
  [[nodiscard]] double offered_load(double node_speed_per_second) const;
};

/// Jobs must be sorted by arrival (generators guarantee this).
WorkloadStats characterize(const std::vector<sim::Job>& jobs);

/// Multi-line human-readable report.
std::string describe(const WorkloadStats& stats);

}  // namespace gridsched::workload
