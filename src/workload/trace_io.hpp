// Plain-text trace persistence, modelled on the Standard Workload Format
// (SWF): '; '-prefixed header comments, one whitespace-separated record per
// line. Lets users replay real traces (e.g. the actual NAS log) instead of
// the synthetic generator.
//
// Job record:  id  arrival  work  nodes  demand
// Site record: id  nodes    speed security
//
// Job trace v2 may carry the workload's raw per-(job, site) ETC matrix as
// a versioned ";etc" section after the job records:
//
//   ;etc v1 <n_jobs> <n_sites>
//   ;etc-row <job> <cell> <cell> ...     (one line per job, in job order)
//
// The section lines start with ';', so v1 readers (and other SWF-ish
// tooling) skip them as comments — reads are backward- AND
// forward-compatible. read_jobs_trace() recognises the section and
// attaches it as the trace's sim::ExecModel, making `generate` +
// `run --trace` replay raw-ETC scenarios exactly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/exec_model.hpp"
#include "sim/job.hpp"
#include "sim/site.hpp"

namespace gridsched::workload {

/// Writes job records; when `exec` carries a raw ETC matrix it is appended
/// as the versioned ";etc" section (shape-checked against `jobs`).
void write_jobs(std::ostream& out, const std::vector<sim::Job>& jobs,
                const sim::ExecModel& exec = {});
void write_jobs_file(const std::string& path, const std::vector<sim::Job>& jobs,
                     const sim::ExecModel& exec = {});

/// A parsed job trace: the records plus the execution model to replay
/// under — raw ETC when the file carries an ";etc" section, the rank-1
/// work/speed fallback otherwise.
struct JobsTrace {
  std::vector<sim::Job> jobs;
  sim::ExecModel exec;
};

/// Parses job records and any ";etc" section; throws std::runtime_error
/// with a line number on malformed input (including a malformed or
/// shape-inconsistent ETC section). Other comment ("; ...") and blank
/// lines are skipped.
JobsTrace read_jobs_trace(std::istream& in);
JobsTrace read_jobs_trace_file(const std::string& path);

/// Records-only convenience wrappers around read_jobs_trace.
std::vector<sim::Job> read_jobs(std::istream& in);
std::vector<sim::Job> read_jobs_file(const std::string& path);

void write_sites(std::ostream& out, const std::vector<sim::SiteConfig>& sites);
void write_sites_file(const std::string& path,
                      const std::vector<sim::SiteConfig>& sites);

std::vector<sim::SiteConfig> read_sites(std::istream& in);
std::vector<sim::SiteConfig> read_sites_file(const std::string& path);

}  // namespace gridsched::workload
