// Plain-text trace persistence, modelled on the Standard Workload Format
// (SWF): '; '-prefixed header comments, one whitespace-separated record per
// line. Lets users replay real traces (e.g. the actual NAS log) instead of
// the synthetic generator.
//
// Job record:  id  arrival  work  nodes  demand
// Site record: id  nodes    speed security
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/job.hpp"
#include "sim/site.hpp"

namespace gridsched::workload {

void write_jobs(std::ostream& out, const std::vector<sim::Job>& jobs);
void write_jobs_file(const std::string& path, const std::vector<sim::Job>& jobs);

/// Parses job records; throws std::runtime_error with a line number on
/// malformed input. Comment ("; ...") and blank lines are skipped.
std::vector<sim::Job> read_jobs(std::istream& in);
std::vector<sim::Job> read_jobs_file(const std::string& path);

void write_sites(std::ostream& out, const std::vector<sim::SiteConfig>& sites);
void write_sites_file(const std::string& path,
                      const std::vector<sim::SiteConfig>& sites);

std::vector<sim::SiteConfig> read_sites(std::istream& in);
std::vector<sim::SiteConfig> read_sites_file(const std::string& path);

}  // namespace gridsched::workload
