// Range-based ETC (Expected Time to Compute) matrix generation in the
// standard heterogeneous-computing benchmark classes (Braun et al., JPDC
// 2001): three consistency classes crossed with hi/lo task and machine
// heterogeneity.
//
// The raw generated matrix is executed directly by the simulator (it
// becomes the workload's sim::ExecModel), so every consistency class is
// exact. The log-domain least-squares rank-1 fit (`fit_work_speed`) is kept
// for two jobs: deriving the scalar work/speed fields a Workload still
// carries (trace I/O, fallback model, characterisation), and the
// log_rms_residual diagnostic quantifying how much cross-site structure a
// rank-1 projection would discard.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gridsched::workload::synth {

/// Braun et al. consistency classes.
enum class EtcConsistency {
  kConsistent,      ///< site faster for one task => faster for every task
  kSemiConsistent,  ///< consistent sub-matrix on the even-indexed sites
  kInconsistent,    ///< no ordering constraint
};

enum class Heterogeneity { kLo, kHi };

std::string to_string(EtcConsistency consistency);
std::string to_string(Heterogeneity heterogeneity);

/// Range-based generation parameters. Defaults follow the Braun et al.
/// ranges: task multiplier U[1, 3000] (hi) / U[1, 100] (lo), machine
/// multiplier U[1, 1000] (hi) / U[1, 10] (lo).
struct EtcConfig {
  EtcConsistency consistency = EtcConsistency::kConsistent;
  Heterogeneity task_heterogeneity = Heterogeneity::kHi;
  Heterogeneity machine_heterogeneity = Heterogeneity::kHi;
  double task_range_hi = 3000.0;
  double task_range_lo = 100.0;
  double machine_range_hi = 1000.0;
  double machine_range_lo = 10.0;

  [[nodiscard]] double task_range() const noexcept {
    return task_heterogeneity == Heterogeneity::kHi ? task_range_hi
                                                    : task_range_lo;
  }
  [[nodiscard]] double machine_range() const noexcept {
    return machine_heterogeneity == Heterogeneity::kHi ? machine_range_hi
                                                       : machine_range_lo;
  }
};

/// Row-major tasks x machines matrix of execution times (seconds).
struct EtcMatrixData {
  std::size_t tasks = 0;
  std::size_t machines = 0;
  std::vector<double> cells;

  [[nodiscard]] double at(std::size_t task, std::size_t machine) const {
    return cells.at(task * machines + machine);
  }
};

/// Range-based method: cell(t, m) = tau_t * U[1, R_machine] with
/// tau_t ~ U[1, R_task], then per-class row sorting. Deterministic in
/// (tasks, machines, config, rng state).
EtcMatrixData generate_etc(std::size_t tasks, std::size_t machines,
                           const EtcConfig& config, util::Rng& rng);

/// True iff the given machine columns are mutually consistent: some
/// permutation of them is faster-to-slower for *every* task row.
bool columns_consistent(const EtcMatrixData& etc,
                        const std::vector<std::size_t>& machine_columns);

/// Rank-1 projection exec(t, m) ~ work[t] / speed[m] (log-domain least
/// squares, gauge fixed so the geometric-mean speed is 1).
struct WorkSpeedFit {
  std::vector<double> work;   ///< per task, reference seconds
  std::vector<double> speed;  ///< per machine, relative
  double log_rms_residual = 0.0;
};

WorkSpeedFit fit_work_speed(const EtcMatrixData& etc);

}  // namespace gridsched::workload::synth
