#include "workload/synth/stream_gen.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace gridsched::workload::synth {

namespace {

// Child-stream indices, disjoint from synth.cpp's 0x51.. block so a
// streaming scenario and a materialised one with the same seed never
// correlate by accident.
enum StreamIndex : std::uint64_t {
  kSpeedStream = 0x57a0,
  kSecurityStream,
  kArrivalStream,
  kSizeStream,
  kDemandStream,
  kWorkStream,
  kChurnStream,
};

/// Same node-request draw as synth.cpp: pick a power of two by weight,
/// capped at the largest site.
unsigned draw_nodes(const std::vector<double>& size_weights, double total,
                    unsigned max_nodes, util::Rng& rng) {
  double pick = rng.uniform() * total;
  unsigned nodes = 1;
  for (const double weight : size_weights) {
    pick -= weight;
    if (pick < 0.0) break;
    nodes *= 2;
  }
  return std::min(nodes, max_nodes);
}

class SynthJobStream final : public JobStream {
 public:
  SynthJobStream(const SynthStreamConfig& config, unsigned max_site_nodes,
                 std::uint64_t seed)
      : n_jobs_(config.n_jobs),
        size_weights_(config.size_weights),
        weight_total_(std::accumulate(size_weights_.begin(),
                                      size_weights_.end(), 0.0)),
        max_site_nodes_(max_site_nodes),
        rate_(config.arrival.rate),
        mean_exec_(config.mean_exec_seconds),
        security_(config.security),
        arrival_rng_(util::Rng::child(seed, kArrivalStream)),
        size_rng_(util::Rng::child(seed, kSizeStream)),
        demand_rng_(util::Rng::child(seed, kDemandStream)),
        work_rng_(util::Rng::child(seed, kWorkStream)) {}

  [[nodiscard]] std::size_t size() const noexcept override { return n_jobs_; }

  bool next(sim::Job& job) override {
    if (emitted_ == n_jobs_) return false;
    clock_ += arrival_rng_.exponential(rate_);
    job = sim::Job{};
    job.arrival = clock_;
    job.work = mean_exec_ * work_rng_.uniform(0.5, 1.5);
    job.nodes =
        draw_nodes(size_weights_, weight_total_, max_site_nodes_, size_rng_);
    job.demand = draw_demand(security_, demand_rng_);
    ++emitted_;
    return true;
  }

 private:
  std::size_t n_jobs_;
  std::size_t emitted_ = 0;
  std::vector<double> size_weights_;
  double weight_total_;
  unsigned max_site_nodes_;
  double rate_;
  double mean_exec_;
  SecurityProfile security_;
  sim::Time clock_ = 0.0;  ///< incremental Poisson arrival clock
  util::Rng arrival_rng_;
  util::Rng size_rng_;
  util::Rng demand_rng_;
  util::Rng work_rng_;
};

}  // namespace

StreamWorkload stream_workload(const SynthStreamConfig& config,
                               std::uint64_t seed) {
  if (config.n_jobs == 0) {
    throw std::invalid_argument("stream_workload: n_jobs == 0");
  }
  if (config.n_sites == 0) {
    throw std::invalid_argument("stream_workload: n_sites == 0");
  }
  if (config.site_node_pattern.empty()) {
    throw std::invalid_argument("stream_workload: empty site_node_pattern");
  }
  if (config.size_weights.empty() ||
      std::accumulate(config.size_weights.begin(), config.size_weights.end(),
                      0.0) <= 0.0) {
    throw std::invalid_argument("stream_workload: bad size_weights");
  }
  if (config.arrival.process != ArrivalProcess::kPoisson) {
    throw std::invalid_argument(
        "stream_workload: streaming workloads require a Poisson arrival "
        "process (sorted times without buffering)");
  }
  if (config.arrival.rate <= 0.0) {
    throw std::invalid_argument("stream_workload: arrival rate must be > 0");
  }
  if (config.speed_lo <= 0.0 || config.speed_hi < config.speed_lo) {
    throw std::invalid_argument(
        "stream_workload: need 0 < speed_lo <= speed_hi");
  }
  if (config.mean_exec_seconds <= 0.0) {
    throw std::invalid_argument(
        "stream_workload: mean_exec_seconds must be > 0");
  }

  StreamWorkload workload;
  workload.name = config.name;

  util::Rng speed_rng = util::Rng::child(seed, kSpeedStream);
  workload.sites.resize(config.n_sites);
  for (std::size_t s = 0; s < config.n_sites; ++s) {
    sim::SiteConfig& site = workload.sites[s];
    site.id = static_cast<sim::SiteId>(s);
    site.nodes = config.site_node_pattern[s % config.site_node_pattern.size()];
    if (site.nodes == 0) {
      throw std::invalid_argument("stream_workload: zero-node site");
    }
    site.speed = speed_rng.uniform(config.speed_lo, config.speed_hi);
  }
  const unsigned max_site_nodes =
      std::max_element(workload.sites.begin(), workload.sites.end(),
                       [](const auto& a, const auto& b) {
                         return a.nodes < b.nodes;
                       })
          ->nodes;
  util::Rng security_rng = util::Rng::child(seed, kSecurityStream);
  assign_trust(workload.sites, config.security, max_site_nodes, security_rng);

  util::Rng churn_rng = util::Rng::child(seed, kChurnStream);
  workload.churn = churn_params(config.n_sites, config.churn, churn_rng);

  workload.jobs =
      std::make_unique<SynthJobStream>(config, max_site_nodes, seed);
  return workload;
}

Workload materialize_stream(StreamWorkload&& stream) {
  Workload workload;
  workload.name = std::move(stream.name);
  workload.sites = std::move(stream.sites);
  workload.exec = std::move(stream.exec);
  workload.churn = std::move(stream.churn);
  workload.jobs.reserve(stream.jobs->size());
  sim::Job job;
  while (stream.jobs->next(job)) {
    job.id = static_cast<sim::JobId>(workload.jobs.size());
    workload.jobs.push_back(job);
  }
  return workload;
}

}  // namespace gridsched::workload::synth
