#include "workload/synth/security_profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "workload/sites.hpp"

namespace gridsched::workload::synth {

std::string to_string(const SecurityProfile& profile) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "SD~U[%.2f,%.2f] SL~U[%.2f,%.2f]",
                profile.demand_lo, profile.demand_hi, profile.trust_lo,
                profile.trust_hi);
  return buffer;
}

double draw_demand(const SecurityProfile& profile, util::Rng& rng) {
  if (profile.demand_lo > profile.demand_hi) {
    throw std::invalid_argument("draw_demand: demand_lo > demand_hi");
  }
  return rng.uniform(profile.demand_lo, profile.demand_hi);
}

void assign_trust(std::vector<sim::SiteConfig>& sites,
                  const SecurityProfile& profile, unsigned max_nodes,
                  util::Rng& rng) {
  if (sites.empty()) throw std::invalid_argument("assign_trust: no sites");
  if (profile.trust_lo > profile.trust_hi ||
      profile.certified_fraction < 0.0 || profile.certified_fraction > 1.0) {
    throw std::invalid_argument("assign_trust: bad trust parameters");
  }
  // Round up so any positive fraction certifies at least one site, and
  // pick the certified subset at random: site index correlates with speed
  // and node count in synthetic grids (consistent ETC sorting), so
  // certifying by index would confound trust with capacity.
  const auto certified = std::min(
      sites.size(),
      static_cast<std::size_t>(std::ceil(
          profile.certified_fraction * static_cast<double>(sites.size()))));
  std::vector<std::size_t> order(sites.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const double certified_lo = std::max(profile.demand_hi, profile.trust_lo);
  const double certified_hi = std::max(certified_lo, profile.trust_hi);
  for (std::size_t i = 0; i < order.size(); ++i) {
    sites[order[i]].security =
        i < certified ? rng.uniform(certified_lo, certified_hi)
                      : rng.uniform(profile.trust_lo, profile.trust_hi);
  }
  ensure_safe_home(sites, max_nodes, profile.demand_hi, rng);
}

}  // namespace gridsched::workload::synth
