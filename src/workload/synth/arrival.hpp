// Pluggable arrival-process models for synthetic workloads: batch waves,
// homogeneous Poisson, and a bursty ON/OFF (interrupted Poisson) process.
// All generators return sorted arrival times and are deterministic in
// (n, config, rng state).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace gridsched::workload::synth {

enum class ArrivalProcess {
  kBatch,       ///< fixed waves at k * wave_interval, jobs split evenly
  kPoisson,     ///< homogeneous Poisson at `rate`
  kBurstyOnOff, ///< Poisson at `burst_rate` during exponential ON periods
};

std::string to_string(ArrivalProcess process);

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  /// kPoisson: arrival rate, jobs per second.
  double rate = 0.01;
  /// kBatch: number of waves and their spacing (seconds). Remainder jobs
  /// land in the earliest waves.
  std::size_t batch_waves = 1;
  double wave_interval = 2000.0;
  /// kBurstyOnOff: mean ON / OFF period lengths (seconds, exponential) and
  /// the Poisson rate while ON. The long-run mean rate is
  /// burst_rate * on_duration / (on_duration + off_duration).
  double on_duration = 1000.0;
  double off_duration = 4000.0;
  double burst_rate = 0.05;
};

/// Generate `n` sorted arrival times; throws std::invalid_argument on
/// non-positive rates/durations or zero waves.
std::vector<sim::Time> arrival_times(std::size_t n, const ArrivalConfig& config,
                                     util::Rng& rng);

}  // namespace gridsched::workload::synth
