// Streaming synthetic workload generator: the million-job counterpart of
// synth_workload. Instead of materialising a job vector (and an n_jobs x
// n_sites ETC matrix), it builds the grid eagerly — sites, trust levels,
// churn parameters are O(sites) — and hands the jobs to the kernel as a
// workload::JobStream cursor that draws one job per pull. Execution times
// resolve through the rank-1 work/speed fallback (no matrix), so total
// generator state is O(sites) + a handful of RNG streams no matter how
// many jobs the scenario asks for.
//
// Determinism: every component draws from its own util::Rng child stream
// of (seed), and jobs are drawn strictly in arrival order, so the stream
// is a pure function of (config, seed) — the same contract as the
// materialised generators. Arrivals are a homogeneous Poisson clock
// (incremental exponential gaps), the only arrival process whose times
// can be emitted sorted without buffering; other processes are rejected.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/stream.hpp"
#include "workload/synth/arrival.hpp"
#include "workload/synth/churn.hpp"
#include "workload/synth/security_profile.hpp"
#include "workload/workload.hpp"

namespace gridsched::workload::synth {

struct SynthStreamConfig {
  std::string name = "synth-stream";
  std::size_t n_jobs = 100000;
  std::size_t n_sites = 100;
  /// Node counts cycled over the sites (same convention as SynthConfig).
  std::vector<unsigned> site_node_pattern = {16, 4, 8, 4, 4};
  /// Job node-request distribution over powers of two {1, 2, 4, ...}.
  std::vector<double> size_weights = {0.4, 0.25, 0.2, 0.1, 0.05};
  /// Site speeds ~ U[speed_lo, speed_hi] (rank-1 execution model).
  double speed_lo = 0.8;
  double speed_hi = 1.25;
  /// Arrival process; must be kPoisson (see file comment).
  ArrivalConfig arrival;
  SecurityProfile security = SecurityProfile::paper();
  ChurnConfig churn;
  /// Mean job execution time on a speed-1 site; work ~ U[0.5, 1.5] x this.
  double mean_exec_seconds = 600.0;
};

/// A generated streaming workload: the grid is concrete, the jobs are a
/// cursor. Move-only (the stream is single-pass).
struct StreamWorkload {
  std::string name;
  std::vector<sim::SiteConfig> sites;
  std::unique_ptr<JobStream> jobs;
  sim::ExecModel exec;  ///< always the rank-1 fallback for streams
  std::vector<sim::SiteChurnParams> churn;
};

/// Build the grid and the job cursor. Throws std::invalid_argument on
/// degenerate configs or a non-Poisson arrival process.
StreamWorkload stream_workload(const SynthStreamConfig& config,
                               std::uint64_t seed);

/// Drain a streaming workload into a materialised Workload (CLI trace
/// export, training paths). Pulls every remaining job — O(n_jobs) memory,
/// intended for small/medium configs only.
Workload materialize_stream(StreamWorkload&& stream);

}  // namespace gridsched::workload::synth
