#include "workload/synth/etc_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gridsched::workload::synth {

std::string to_string(EtcConsistency consistency) {
  switch (consistency) {
    case EtcConsistency::kConsistent: return "consistent";
    case EtcConsistency::kSemiConsistent: return "semi-consistent";
    case EtcConsistency::kInconsistent: return "inconsistent";
  }
  return "?";
}

std::string to_string(Heterogeneity heterogeneity) {
  return heterogeneity == Heterogeneity::kHi ? "hi" : "lo";
}

EtcMatrixData generate_etc(std::size_t tasks, std::size_t machines,
                           const EtcConfig& config, util::Rng& rng) {
  if (tasks == 0 || machines == 0) {
    throw std::invalid_argument("generate_etc: empty matrix requested");
  }
  if (config.task_range() < 1.0 || config.machine_range() < 1.0) {
    throw std::invalid_argument("generate_etc: ranges must be >= 1");
  }
  EtcMatrixData etc;
  etc.tasks = tasks;
  etc.machines = machines;
  etc.cells.resize(tasks * machines);

  // A single machine ordering shared by every sorted row keeps the
  // consistent classes meaningful: "machine a beats machine b" must mean
  // the same machines across rows, so we sort rows in place (column index
  // order *is* the shared ordering, as in Braun et al.).
  for (std::size_t t = 0; t < tasks; ++t) {
    const double tau = rng.uniform(1.0, config.task_range());
    double* row = etc.cells.data() + t * machines;
    for (std::size_t m = 0; m < machines; ++m) {
      row[m] = tau * rng.uniform(1.0, config.machine_range());
    }
    switch (config.consistency) {
      case EtcConsistency::kConsistent:
        std::sort(row, row + machines);
        break;
      case EtcConsistency::kSemiConsistent: {
        // Sort the even-indexed cells among themselves; odd columns keep
        // their unordered draws.
        std::vector<double> even;
        even.reserve((machines + 1) / 2);
        for (std::size_t m = 0; m < machines; m += 2) even.push_back(row[m]);
        std::sort(even.begin(), even.end());
        for (std::size_t i = 0; i < even.size(); ++i) row[2 * i] = even[i];
        break;
      }
      case EtcConsistency::kInconsistent:
        break;
    }
  }
  return etc;
}

bool columns_consistent(const EtcMatrixData& etc,
                        const std::vector<std::size_t>& machine_columns) {
  if (machine_columns.size() < 2) return true;
  // Order the columns by their first row, then require every other row to
  // respect that order.
  std::vector<std::size_t> order = machine_columns;
  std::sort(order.begin(), order.end(),
            [&etc](std::size_t a, std::size_t b) {
              return etc.at(0, a) < etc.at(0, b);
            });
  for (std::size_t t = 1; t < etc.tasks; ++t) {
    for (std::size_t i = 1; i < order.size(); ++i) {
      if (etc.at(t, order[i - 1]) > etc.at(t, order[i])) return false;
    }
  }
  return true;
}

WorkSpeedFit fit_work_speed(const EtcMatrixData& etc) {
  if (etc.tasks == 0 || etc.machines == 0) {
    throw std::invalid_argument("fit_work_speed: empty matrix");
  }
  // Model log E(t, m) = log work[t] - log speed[m]. The least-squares
  // solution in the log domain is row mean / column mean centring; the
  // gauge (one free constant) is fixed so mean(log speed) = 0.
  const auto tasks = etc.tasks;
  const auto machines = etc.machines;
  std::vector<double> row_mean(tasks, 0.0);
  std::vector<double> col_mean(machines, 0.0);
  double grand = 0.0;
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t m = 0; m < machines; ++m) {
      const double cell = etc.at(t, m);
      if (!(cell > 0.0)) {
        throw std::invalid_argument("fit_work_speed: non-positive cell");
      }
      const double log_cell = std::log(cell);
      row_mean[t] += log_cell;
      col_mean[m] += log_cell;
      grand += log_cell;
    }
  }
  for (double& x : row_mean) x /= static_cast<double>(machines);
  for (double& x : col_mean) x /= static_cast<double>(tasks);
  grand /= static_cast<double>(tasks * machines);

  WorkSpeedFit fit;
  fit.work.resize(tasks);
  fit.speed.resize(machines);
  for (std::size_t t = 0; t < tasks; ++t) fit.work[t] = std::exp(row_mean[t]);
  for (std::size_t m = 0; m < machines; ++m) {
    fit.speed[m] = std::exp(grand - col_mean[m]);
  }

  double sq = 0.0;
  for (std::size_t t = 0; t < tasks; ++t) {
    for (std::size_t m = 0; m < machines; ++m) {
      const double predicted = row_mean[t] - (grand - col_mean[m]);
      const double residual = std::log(etc.at(t, m)) - predicted;
      sq += residual * residual;
    }
  }
  fit.log_rms_residual = std::sqrt(sq / static_cast<double>(tasks * machines));
  return fit;
}

}  // namespace gridsched::workload::synth
