// Synthetic workload generator: parameterised ETC heterogeneity classes x
// arrival processes x security regimes. The generated raw per-(job, site)
// ETC matrix is attached to the workload as its sim::ExecModel, so every
// consistency class — including semi-consistent and inconsistent — is
// simulated exactly; the rank-1 work/speed fit only supplies the job/site
// scalar fields and a residual diagnostic. Everything is deterministic in
// (config, seed) via independent util::Rng child streams, so scenarios are
// reproducible and shardable across the thread pool.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/synth/arrival.hpp"
#include "workload/synth/churn.hpp"
#include "workload/synth/etc_gen.hpp"
#include "workload/synth/security_profile.hpp"
#include "workload/workload.hpp"

namespace gridsched::workload::synth {

struct SynthConfig {
  std::string name = "synth";
  std::size_t n_jobs = 1000;
  std::size_t n_sites = 16;
  EtcConfig etc;
  ArrivalConfig arrival;
  SecurityProfile security = SecurityProfile::paper();
  /// Site up/down churn process (disabled by default). When enabled the
  /// generated workload carries per-site MTBF/MTTR parameters and the
  /// engine runs a SiteChurnProcess.
  ChurnConfig churn;
  /// Node counts cycled over the sites ({16, 8, 8} -> site 0 has 16 nodes,
  /// sites 1-2 have 8, site 3 has 16 again, ...). Must be non-empty.
  std::vector<unsigned> site_node_pattern = {1};
  /// Job node-request distribution over powers of two {1, 2, 4, ...};
  /// requests are capped at the largest site. {1.0} -> all sequential.
  std::vector<double> size_weights = {1.0};
  /// Rescale job work so mean exec on a mean-speed site hits this many
  /// seconds (0 disables rescaling and keeps the raw ETC magnitudes).
  double mean_exec_seconds = 600.0;
};

/// Generate the full workload (sites + jobs). Throws std::invalid_argument
/// on degenerate configs.
Workload synth_workload(const SynthConfig& config, std::uint64_t seed);

/// Generation byproducts for analysis/tests: the raw ETC matrix (the same
/// cells the workload's ExecModel executes) and the rank-1 fit that
/// produced the job work / site speed scalars.
struct SynthTrace {
  Workload workload;
  EtcMatrixData etc;
  WorkSpeedFit fit;
};

SynthTrace synth_trace(const SynthConfig& config, std::uint64_t seed);

}  // namespace gridsched::workload::synth
