// Synthetic site-churn parameter generation: per-site MTBF/MTTR pairs for
// the exponential up/down churn process (sim::SiteChurnProcess). Site
// reliability is heterogeneous in real grids, so each site's means are the
// configured grid-wide means scaled by an independent uniform factor.
// Deterministic in (config, rng state) like every other synth component.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/site.hpp"
#include "util/rng.hpp"

namespace gridsched::workload::synth {

struct ChurnConfig {
  /// Master switch; the other fields are ignored (and unvalidated) when
  /// false, so churn-free configs never have to reason about them.
  bool enabled = false;
  /// Grid-wide mean up-time between failures / mean outage length (s).
  double mtbf_mean = 0.0;
  double mttr_mean = 0.0;
  /// Per-site heterogeneity: each site's MTBF and MTTR are the means
  /// scaled by independent U[1 - spread, 1 + spread] draws. 0 = identical
  /// sites; must lie in [0, 1).
  double spread = 0.5;
};

/// One SiteChurnParams per site. Returns an empty vector (no churn process)
/// when the config is disabled; throws std::invalid_argument on
/// non-positive means or an out-of-range spread.
std::vector<sim::SiteChurnParams> churn_params(std::size_t n_sites,
                                               const ChurnConfig& config,
                                               util::Rng& rng);

}  // namespace gridsched::workload::synth
