#include "workload/synth/synth.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gridsched::workload::synth {

namespace {

// Independent child-stream indices, so adding draws to one component never
// perturbs the others (stability of the (config, seed) contract).
enum StreamIndex : std::uint64_t {
  kEtcStream = 0x51,
  kArrivalStream,
  kSecurityStream,
  kSizeStream,
  kDemandStream,
  kChurnStream,
};

std::vector<sim::SiteConfig> build_sites(const SynthConfig& config,
                                         const std::vector<double>& speeds) {
  std::vector<sim::SiteConfig> sites(config.n_sites);
  for (std::size_t s = 0; s < sites.size(); ++s) {
    sites[s].id = static_cast<sim::SiteId>(s);
    sites[s].nodes =
        config.site_node_pattern[s % config.site_node_pattern.size()];
    if (sites[s].nodes == 0) {
      throw std::invalid_argument("synth_workload: zero-node site");
    }
    sites[s].speed = speeds[s];
  }
  return sites;
}

unsigned draw_nodes(const SynthConfig& config, unsigned max_nodes,
                    util::Rng& rng) {
  const double total = std::accumulate(config.size_weights.begin(),
                                       config.size_weights.end(), 0.0);
  double pick = rng.uniform() * total;
  unsigned nodes = 1;
  for (const double weight : config.size_weights) {
    pick -= weight;
    if (pick < 0.0) break;
    nodes *= 2;
  }
  return std::min(nodes, max_nodes);
}

}  // namespace

Workload synth_workload(const SynthConfig& config, std::uint64_t seed) {
  return synth_trace(config, seed).workload;
}

SynthTrace synth_trace(const SynthConfig& config, std::uint64_t seed) {
  if (config.n_jobs == 0) {
    throw std::invalid_argument("synth_workload: n_jobs == 0");
  }
  if (config.n_sites == 0) {
    throw std::invalid_argument("synth_workload: n_sites == 0");
  }
  if (config.site_node_pattern.empty()) {
    throw std::invalid_argument("synth_workload: empty site_node_pattern");
  }
  if (config.size_weights.empty() ||
      std::accumulate(config.size_weights.begin(), config.size_weights.end(),
                      0.0) <= 0.0) {
    throw std::invalid_argument("synth_workload: bad size_weights");
  }

  SynthTrace trace;

  // 1. ETC matrix in the requested class. The raw matrix is what the
  // simulator executes (attached below as the workload's ExecModel); the
  // rank-1 work/speed fit is kept only to derive site speeds / job work
  // fields and as a diagnostic (log_rms_residual measures how much
  // cross-site structure a rank-1 projection *would* discard).
  util::Rng etc_rng = util::Rng::child(seed, kEtcStream);
  trace.etc = generate_etc(config.n_jobs, config.n_sites, config.etc, etc_rng);
  trace.fit = fit_work_speed(trace.etc);

  // Calibrate: mean exec on a geometric-mean-speed site (speed 1 by the
  // fit's gauge) becomes `mean_exec_seconds`. The ETC cells are scaled by
  // the same factor so the exposed trace stays self-consistent
  // (etc ~ work / speed with an unchanged log residual).
  if (config.mean_exec_seconds > 0.0) {
    const double mean_work =
        std::accumulate(trace.fit.work.begin(), trace.fit.work.end(), 0.0) /
        static_cast<double>(trace.fit.work.size());
    const double scale = config.mean_exec_seconds / mean_work;
    for (double& w : trace.fit.work) w *= scale;
    for (double& cell : trace.etc.cells) cell *= scale;
  }

  // 2. Sites: node pattern + fitted speeds + trust levels.
  Workload& workload = trace.workload;
  workload.name = config.name;
  workload.sites = build_sites(config, trace.fit.speed);
  const unsigned max_site_nodes =
      std::max_element(workload.sites.begin(), workload.sites.end(),
                       [](const auto& a, const auto& b) {
                         return a.nodes < b.nodes;
                       })
          ->nodes;
  util::Rng security_rng = util::Rng::child(seed, kSecurityStream);
  assign_trust(workload.sites, config.security, max_site_nodes, security_rng);

  // 3. Jobs: fitted work, arrival process, node requests, demands.
  util::Rng arrival_rng = util::Rng::child(seed, kArrivalStream);
  const std::vector<sim::Time> arrivals =
      arrival_times(config.n_jobs, config.arrival, arrival_rng);

  util::Rng size_rng = util::Rng::child(seed, kSizeStream);
  util::Rng demand_rng = util::Rng::child(seed, kDemandStream);
  workload.jobs.resize(config.n_jobs);
  for (std::size_t j = 0; j < config.n_jobs; ++j) {
    sim::Job& job = workload.jobs[j];
    job.id = static_cast<sim::JobId>(j);
    job.arrival = arrivals[j];
    job.work = trace.fit.work[j];
    job.nodes = draw_nodes(config, max_site_nodes, size_rng);
    job.demand = draw_demand(config.security, demand_rng);
  }

  // 4. Attach the raw ETC as the workload's execution model: inconsistent
  // and semi-consistent classes run exactly as generated instead of
  // through the rank-1 projection.
  workload.exec =
      sim::ExecModel(config.n_jobs, config.n_sites, trace.etc.cells);

  // 5. Optional site churn: per-site MTBF/MTTR parameters on their own
  // stream (enabling churn never perturbs the ETC/arrival/security draws).
  util::Rng churn_rng = util::Rng::child(seed, kChurnStream);
  workload.churn = churn_params(config.n_sites, config.churn, churn_rng);
  return trace;
}

}  // namespace gridsched::workload::synth
