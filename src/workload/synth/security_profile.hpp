// Security-demand and site trust-level distributions for synthetic
// workloads, spanning the paper's regimes: the Table 1 defaults
// (SD ~ U[0.6, 0.9] vs SL ~ U[0.4, 1.0]), a "secure" regime where trust
// dominates demand (risk never pays), and a "risky" regime where most
// sites under-secure most jobs (risk is the only way to finish fast).
#pragma once

#include <string>
#include <vector>

#include "sim/site.hpp"
#include "util/rng.hpp"

namespace gridsched::workload::synth {

struct SecurityProfile {
  /// Job security demand SD ~ U[demand_lo, demand_hi].
  double demand_lo = 0.6;
  double demand_hi = 0.9;
  /// Site trust level SL ~ U[trust_lo, trust_hi].
  double trust_lo = 0.4;
  double trust_hi = 1.0;
  /// Fraction of sites forced to SL >= demand_hi ("certified" sites),
  /// rounded up so any positive fraction certifies at least one; the
  /// generator always guarantees a safe home regardless, so fail-stop
  /// retries cannot starve.
  double certified_fraction = 0.0;

  /// Paper Table 1 distributions.
  static SecurityProfile paper() { return {}; }
  /// Trust dominates demand: almost every site is safe for every job.
  static SecurityProfile secure() { return {0.3, 0.6, 0.7, 1.0, 0.25}; }
  /// Demand dominates trust: secure placements are scarce.
  static SecurityProfile risky() { return {0.7, 0.95, 0.3, 0.8, 0.05}; }
};

std::string to_string(const SecurityProfile& profile);

/// Draw one job demand.
double draw_demand(const SecurityProfile& profile, util::Rng& rng);

/// Assign trust levels to every site in place: a random subset of
/// ceil(certified_fraction * n) sites gets SL >= demand_hi, the rest draw
/// U[trust_lo, trust_hi]; then guarantee a safe home for the largest job
/// (`max_nodes`).
void assign_trust(std::vector<sim::SiteConfig>& sites,
                  const SecurityProfile& profile, unsigned max_nodes,
                  util::Rng& rng);

}  // namespace gridsched::workload::synth
