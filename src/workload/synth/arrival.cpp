#include "workload/synth/arrival.hpp"

#include <stdexcept>

namespace gridsched::workload::synth {

std::string to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kBatch: return "batch";
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBurstyOnOff: return "bursty";
  }
  return "?";
}

namespace {

std::vector<sim::Time> batch_arrivals(std::size_t n,
                                      const ArrivalConfig& config) {
  if (config.batch_waves == 0) {
    throw std::invalid_argument("arrival_times: batch_waves == 0");
  }
  if (config.batch_waves > 1 && config.wave_interval <= 0.0) {
    throw std::invalid_argument("arrival_times: wave_interval must be > 0");
  }
  std::vector<sim::Time> times;
  times.reserve(n);
  const std::size_t waves = config.batch_waves;
  const std::size_t per_wave = n / waves;
  const std::size_t remainder = n % waves;
  for (std::size_t w = 0; w < waves && times.size() < n; ++w) {
    const std::size_t count = per_wave + (w < remainder ? 1 : 0);
    const sim::Time at = static_cast<double>(w) * config.wave_interval;
    for (std::size_t i = 0; i < count; ++i) times.push_back(at);
  }
  return times;
}

std::vector<sim::Time> poisson_arrivals(std::size_t n,
                                        const ArrivalConfig& config,
                                        util::Rng& rng) {
  if (config.rate <= 0.0) {
    throw std::invalid_argument("arrival_times: rate must be > 0");
  }
  std::vector<sim::Time> times;
  times.reserve(n);
  double clock = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    clock += rng.exponential(config.rate);
    times.push_back(clock);
  }
  return times;
}

std::vector<sim::Time> bursty_arrivals(std::size_t n,
                                       const ArrivalConfig& config,
                                       util::Rng& rng) {
  if (config.burst_rate <= 0.0 || config.on_duration <= 0.0 ||
      config.off_duration <= 0.0) {
    throw std::invalid_argument("arrival_times: bad bursty parameters");
  }
  std::vector<sim::Time> times;
  times.reserve(n);
  double clock = 0.0;
  while (times.size() < n) {
    // One ON period with Poisson arrivals, then a silent OFF period.
    const double on_end = clock + rng.exponential(1.0 / config.on_duration);
    while (times.size() < n) {
      const double step = rng.exponential(config.burst_rate);
      if (clock + step > on_end) break;
      clock += step;
      times.push_back(clock);
    }
    clock = on_end + rng.exponential(1.0 / config.off_duration);
  }
  return times;
}

}  // namespace

std::vector<sim::Time> arrival_times(std::size_t n, const ArrivalConfig& config,
                                     util::Rng& rng) {
  switch (config.process) {
    case ArrivalProcess::kBatch: return batch_arrivals(n, config);
    case ArrivalProcess::kPoisson: return poisson_arrivals(n, config, rng);
    case ArrivalProcess::kBurstyOnOff: return bursty_arrivals(n, config, rng);
  }
  throw std::invalid_argument("arrival_times: unknown process");
}

}  // namespace gridsched::workload::synth
