#include "workload/synth/churn.hpp"

#include <stdexcept>

namespace gridsched::workload::synth {

std::vector<sim::SiteChurnParams> churn_params(std::size_t n_sites,
                                               const ChurnConfig& config,
                                               util::Rng& rng) {
  if (!config.enabled) return {};
  if (config.mtbf_mean <= 0.0 || config.mttr_mean <= 0.0) {
    throw std::invalid_argument(
        "churn_params: mtbf_mean and mttr_mean must be > 0");
  }
  if (config.spread < 0.0 || config.spread >= 1.0) {
    throw std::invalid_argument("churn_params: spread must be in [0, 1)");
  }
  std::vector<sim::SiteChurnParams> params(n_sites);
  for (sim::SiteChurnParams& site : params) {
    site.mtbf =
        config.mtbf_mean * rng.uniform(1.0 - config.spread,
                                       1.0 + config.spread);
    site.mttr =
        config.mttr_mean * rng.uniform(1.0 - config.spread,
                                       1.0 + config.spread);
  }
  return params;
}

}  // namespace gridsched::workload::synth
