#include "security/security.hpp"

#include <cmath>

namespace gridsched::security {

double failure_probability(double sd, double sl, double lambda) noexcept {
  if (sd <= sl) return 0.0;
  return 1.0 - std::exp(-lambda * (sd - sl));
}

std::string to_string(RiskMode mode) {
  switch (mode) {
    case RiskMode::kSecure: return "secure";
    case RiskMode::kFRisky: return "f-risky";
    case RiskMode::kRisky: return "risky";
  }
  return "?";
}

bool RiskPolicy::admissible(double sd, double sl) const noexcept {
  switch (mode_) {
    case RiskMode::kSecure:
      return is_safe(sd, sl);
    case RiskMode::kRisky:
      return true;
    case RiskMode::kFRisky:
      return failure_probability(sd, sl, lambda_) <= f_;
  }
  return false;
}

}  // namespace gridsched::security
