// The paper's security/risk model (Section 2).
//
// Every site advertises a security level SL; every job carries a security
// demand SD. A job running where SD > SL fails with probability
//     P(fail) = 1 - exp(-lambda * (SD - SL))        (Eq. 1)
// and 0 otherwise (fail-stop; failed jobs restart on an absolutely safe
// site). Three scheduler risk modes bound the acceptable P(fail).
#pragma once

#include <string>

namespace gridsched::security {

/// Paper defaults (Table 1): SL ~ U[0.4, 1.0], SD ~ U[0.6, 0.9].
inline constexpr double kSiteSecurityLo = 0.4;
inline constexpr double kSiteSecurityHi = 1.0;
inline constexpr double kJobDemandLo = 0.6;
inline constexpr double kJobDemandHi = 0.9;

/// Exponential failure-probability coefficient. The paper leaves lambda
/// unspecified; 2.5 reproduces the reported N_fail magnitudes (~30% of NAS
/// jobs fail under risky scheduling) while keeping the f = 0.5 cutoff
/// meaningful (DESIGN.md S2).
inline constexpr double kDefaultLambda = 2.5;

/// Eq. 1: probability that a job with demand `sd` fails on a site with
/// level `sl`. Zero when sd <= sl; in [0, 1) otherwise, increasing in both
/// the deficit (sd - sl) and lambda.
double failure_probability(double sd, double sl,
                           double lambda = kDefaultLambda) noexcept;

/// True iff the site fully satisfies the demand (no risk at all).
inline bool is_safe(double sd, double sl) noexcept { return sd <= sl; }

/// Scheduler risk modes (Section 2 / Figure 3).
enum class RiskMode {
  kSecure,  ///< only sites with SD <= SL are candidates
  kFRisky,  ///< sites with P(fail) <= f are candidates
  kRisky,   ///< every site is a candidate
};

std::string to_string(RiskMode mode);

/// Admission policy bundling a mode with its parameters. `secure` is
/// equivalent to f-risky with f = 0 and `risky` to f-risky with f = 1
/// (verified by property tests).
class RiskPolicy {
 public:
  constexpr RiskPolicy(RiskMode mode, double f = 0.5,
                       double lambda = kDefaultLambda) noexcept
      : mode_(mode), f_(f), lambda_(lambda) {}

  static constexpr RiskPolicy secure(double lambda = kDefaultLambda) noexcept {
    return {RiskMode::kSecure, 0.0, lambda};
  }
  static constexpr RiskPolicy risky(double lambda = kDefaultLambda) noexcept {
    return {RiskMode::kRisky, 1.0, lambda};
  }
  static constexpr RiskPolicy f_risky(double f,
                                      double lambda = kDefaultLambda) noexcept {
    return {RiskMode::kFRisky, f, lambda};
  }

  [[nodiscard]] constexpr RiskMode mode() const noexcept { return mode_; }
  [[nodiscard]] constexpr double f() const noexcept { return f_; }
  [[nodiscard]] constexpr double lambda() const noexcept { return lambda_; }

  /// Would this policy let a job of demand `sd` run at level `sl`?
  [[nodiscard]] bool admissible(double sd, double sl) const noexcept;

 private:
  RiskMode mode_;
  double f_;
  double lambda_;
};

}  // namespace gridsched::security
