// Composite trust index (extension).
//
// The paper notes (Section 1) that SL and SD "could also be a weighted sum
// of several system security parameters (e.g., job execution history,
// security levels of defense tools employed, etc.)" and cites the authors'
// fuzzy-trust work. This module provides that composite form so users can
// derive the scalar SL consumed by the scheduler from observable site
// attributes, including an execution-history feedback loop (a lightweight
// IDS stand-in).
#pragma once

#include <cstddef>

namespace gridsched::security {

/// Observable security attributes of a site, each normalised to [0, 1].
struct SiteSecurityAttributes {
  double defense_capability = 0.5;   ///< firewalls / IDS strength
  double prior_success_rate = 0.5;   ///< fraction of jobs finished unharmed
  double authentication_strength = 0.5;
  double isolation_quality = 0.5;    ///< sandboxing / VM isolation
};

/// Weights for combining the attributes; need not be normalised.
struct TrustWeights {
  double defense = 0.35;
  double history = 0.35;
  double authentication = 0.15;
  double isolation = 0.15;
};

/// Weighted-sum trust index in [0, 1], usable directly as SL.
double trust_index(const SiteSecurityAttributes& attrs,
                   const TrustWeights& weights = {}) noexcept;

/// Exponentially-weighted success-history tracker: feeds
/// SiteSecurityAttributes::prior_success_rate. alpha in (0, 1] is the weight
/// of the newest observation.
class SuccessHistory {
 public:
  explicit SuccessHistory(double alpha = 0.1, double initial = 0.5) noexcept;

  void record(bool success) noexcept;

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] std::size_t observations() const noexcept { return count_; }

 private:
  double alpha_;
  double rate_;
  std::size_t count_ = 0;
};

}  // namespace gridsched::security
