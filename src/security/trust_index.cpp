#include "security/trust_index.hpp"

#include <algorithm>

namespace gridsched::security {

double trust_index(const SiteSecurityAttributes& attrs,
                   const TrustWeights& weights) noexcept {
  const double total = weights.defense + weights.history +
                       weights.authentication + weights.isolation;
  if (total <= 0.0) return 0.0;
  const double weighted =
      weights.defense * std::clamp(attrs.defense_capability, 0.0, 1.0) +
      weights.history * std::clamp(attrs.prior_success_rate, 0.0, 1.0) +
      weights.authentication * std::clamp(attrs.authentication_strength, 0.0,
                                          1.0) +
      weights.isolation * std::clamp(attrs.isolation_quality, 0.0, 1.0);
  return weighted / total;
}

SuccessHistory::SuccessHistory(double alpha, double initial) noexcept
    : alpha_(std::clamp(alpha, 1e-6, 1.0)), rate_(std::clamp(initial, 0.0,
                                                             1.0)) {}

void SuccessHistory::record(bool success) noexcept {
  rate_ = (1.0 - alpha_) * rate_ + alpha_ * (success ? 1.0 : 0.0);
  ++count_;
}

}  // namespace gridsched::security
