#include <algorithm>

#include "sched/etc_matrix.hpp"
#include "sched/heuristics.hpp"
#include "sched/risk_filter.hpp"

namespace gridsched::sched {

std::vector<sim::Assignment> MaxMinScheduler::schedule(
    const sim::SchedulerContext& context) {
  const EtcMatrix etc(context);
  std::vector<sim::NodeAvailability> avail = context.avail;

  std::vector<std::size_t> unassigned(context.jobs.size());
  for (std::size_t j = 0; j < unassigned.size(); ++j) unassigned[j] = j;

  std::vector<sim::Assignment> result;
  result.reserve(context.jobs.size());

  while (!unassigned.empty()) {
    // Each remaining job's best (minimum) completion time; commit the job
    // whose best completion is the *largest*.
    std::size_t pick_pos = unassigned.size();
    sim::SiteId pick_site = sim::kInvalidSite;
    double pick_completion = -1.0;
    for (std::size_t pos = 0; pos < unassigned.size(); ++pos) {
      const std::size_t j = unassigned[pos];
      const sim::BatchJob& job = context.jobs[j];
      sim::SiteId job_best_site = sim::kInvalidSite;
      double job_best = EtcMatrix::kInfeasible;
      for (std::size_t s = 0; s < context.sites.size(); ++s) {
        if (!admissible(context, job, s, policy_)) continue;
        const double completion =
            avail[s].preview(job.nodes, etc.exec(j, s), context.now).end;
        if (completion < job_best) {
          job_best = completion;
          job_best_site = static_cast<sim::SiteId>(s);
        }
      }
      if (job_best_site == sim::kInvalidSite) continue;
      if (job_best > pick_completion) {
        pick_completion = job_best;
        pick_pos = pos;
        pick_site = job_best_site;
      }
    }
    if (pick_pos == unassigned.size()) break;

    const std::size_t j = unassigned[pick_pos];
    const sim::BatchJob& job = context.jobs[j];
    avail[pick_site].reserve(job.nodes, etc.exec(j, pick_site), context.now);
    result.push_back({j, pick_site});
    unassigned.erase(unassigned.begin() +
                     static_cast<std::ptrdiff_t>(pick_pos));
  }
  return result;
}

}  // namespace gridsched::sched
