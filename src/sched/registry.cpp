#include "sched/registry.hpp"

#include <map>
#include <stdexcept>

#include "sched/heuristics.hpp"

namespace gridsched::sched {

namespace {

const std::map<std::string, SchedulerFactory>& registry() {
  static const std::map<std::string, SchedulerFactory> table = {
      {"min-min",
       [](security::RiskPolicy p) -> std::unique_ptr<sim::BatchScheduler> {
         return std::make_unique<MinMinScheduler>(p);
       }},
      {"max-min",
       [](security::RiskPolicy p) -> std::unique_ptr<sim::BatchScheduler> {
         return std::make_unique<MaxMinScheduler>(p);
       }},
      {"sufferage",
       [](security::RiskPolicy p) -> std::unique_ptr<sim::BatchScheduler> {
         return std::make_unique<SufferageScheduler>(p);
       }},
      {"mct",
       [](security::RiskPolicy p) -> std::unique_ptr<sim::BatchScheduler> {
         return std::make_unique<MctScheduler>(p);
       }},
      {"met",
       [](security::RiskPolicy p) -> std::unique_ptr<sim::BatchScheduler> {
         return std::make_unique<MetScheduler>(p);
       }},
      {"olb",
       [](security::RiskPolicy p) -> std::unique_ptr<sim::BatchScheduler> {
         return std::make_unique<OlbScheduler>(p);
       }},
  };
  return table;
}

}  // namespace

std::vector<std::string> heuristic_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

std::unique_ptr<sim::BatchScheduler> make_heuristic(
    const std::string& name, security::RiskPolicy policy) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    throw std::invalid_argument("unknown heuristic: " + name);
  }
  return it->second(policy);
}

}  // namespace gridsched::sched
