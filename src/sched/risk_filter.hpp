// Candidate-site filtering shared by every scheduling algorithm: combines
// the configured risk mode with structural feasibility (node count) and the
// fail-stop rule (secure_only retries go to safe sites in every mode).
#pragma once

#include <vector>

#include "security/security.hpp"
#include "sim/scheduling.hpp"

namespace gridsched::sched {

/// True iff `job` may be placed on `site` under `policy`.
bool admissible(const sim::BatchJob& job, const sim::SiteConfig& site,
                const security::RiskPolicy& policy) noexcept;

/// Indices (into `sites`) of every admissible site, in site order.
std::vector<sim::SiteId> admissible_sites(const sim::BatchJob& job,
                                          const std::vector<sim::SiteConfig>& sites,
                                          const security::RiskPolicy& policy);

}  // namespace gridsched::sched
