// Candidate-site filtering shared by every scheduling algorithm: combines
// the configured risk mode with structural feasibility (node count) and the
// fail-stop rule (secure_only retries go to safe sites in every mode).
#pragma once

#include <vector>

#include "security/security.hpp"
#include "sim/scheduling.hpp"

namespace gridsched::sched {

/// True iff `job` may be placed on `site` under `policy`. This overload
/// sees only the static site description — it cannot know about the
/// context's availability mask, so schedulers use the context overload
/// below.
bool admissible(const sim::BatchJob& job, const sim::SiteConfig& site,
                const security::RiskPolicy& policy) noexcept;

/// True iff `job` may be placed on the context's site `s` under `policy`:
/// the static filter above AND the site is not masked out (a churned-down
/// site is never admissible, whatever the risk mode). The one admissibility
/// predicate every scheduler must use.
bool admissible(const sim::SchedulerContext& context, const sim::BatchJob& job,
                std::size_t s, const security::RiskPolicy& policy) noexcept;

/// Indices (into `sites`) of every admissible site, in site order.
std::vector<sim::SiteId> admissible_sites(
    const sim::BatchJob& job, const std::vector<sim::SiteConfig>& sites,
    const security::RiskPolicy& policy);

/// Mask-aware admissible set over the context's sites, in site order.
std::vector<sim::SiteId> admissible_sites(const sim::SchedulerContext& context,
                                          const sim::BatchJob& job,
                                          const security::RiskPolicy& policy);

}  // namespace gridsched::sched
