// The security-driven heuristic scheduler family (paper Section 2).
//
// Min-Min and Sufferage are the paper's two heuristics; Max-Min, MCT, MET
// and OLB are classic companions from the same literature (Braun et al.,
// paper ref [7]) provided as additional baselines. Each is instantiated
// with a RiskPolicy, yielding e.g. "Min-Min secure" / "Min-Min f-risky" /
// "Min-Min risky".
#pragma once

#include <string>
#include <vector>

#include "security/security.hpp"
#include "sim/scheduling.hpp"

namespace gridsched::sched {

/// Common state for the iterative list heuristics.
class HeuristicScheduler : public sim::BatchScheduler {
 public:
  explicit HeuristicScheduler(security::RiskPolicy policy) : policy_(policy) {}

  [[nodiscard]] const security::RiskPolicy& policy() const noexcept {
    return policy_;
  }

  [[nodiscard]] std::string name() const override {
    return base_name() + " " + security::to_string(policy_.mode());
  }

 protected:
  [[nodiscard]] virtual std::string base_name() const = 0;

  security::RiskPolicy policy_;
};

/// Min-Min: repeatedly pick the (job, site) pair with the globally minimum
/// earliest completion time and commit it.
class MinMinScheduler final : public HeuristicScheduler {
 public:
  using HeuristicScheduler::HeuristicScheduler;
  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override;

 protected:
  [[nodiscard]] std::string base_name() const override { return "Min-Min"; }
};

/// Max-Min: like Min-Min but commits the job whose best completion time is
/// the *largest* (large jobs first).
class MaxMinScheduler final : public HeuristicScheduler {
 public:
  using HeuristicScheduler::HeuristicScheduler;
  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override;

 protected:
  [[nodiscard]] std::string base_name() const override { return "Max-Min"; }
};

/// Sufferage: commit the job that would suffer most (largest gap between
/// its second-best and best completion time) to its best site. A job with a
/// single admissible site has infinite sufferage.
class SufferageScheduler final : public HeuristicScheduler {
 public:
  using HeuristicScheduler::HeuristicScheduler;
  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override;

 protected:
  [[nodiscard]] std::string base_name() const override { return "Sufferage"; }
};

/// MCT: jobs in batch order, each to the admissible site with the minimum
/// completion time.
class MctScheduler final : public HeuristicScheduler {
 public:
  using HeuristicScheduler::HeuristicScheduler;
  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override;

 protected:
  [[nodiscard]] std::string base_name() const override { return "MCT"; }
};

/// MET: jobs in batch order, each to the admissible site with the minimum
/// raw execution time (ignores queueing; classic load-imbalance baseline).
class MetScheduler final : public HeuristicScheduler {
 public:
  using HeuristicScheduler::HeuristicScheduler;
  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override;

 protected:
  [[nodiscard]] std::string base_name() const override { return "MET"; }
};

/// OLB: jobs in batch order, each to the admissible site whose required
/// nodes become idle earliest (ignores execution time).
class OlbScheduler final : public HeuristicScheduler {
 public:
  using HeuristicScheduler::HeuristicScheduler;
  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override;

 protected:
  [[nodiscard]] std::string base_name() const override { return "OLB"; }
};

}  // namespace gridsched::sched
