#include "sched/etc_matrix.hpp"

namespace gridsched::sched {

EtcMatrix::EtcMatrix(const std::vector<sim::BatchJob>& jobs,
                     const std::vector<sim::SiteConfig>& sites)
    : n_jobs_(jobs.size()), n_sites_(sites.size()),
      cells_(n_jobs_ * n_sites_, kInfeasible) {
  for (std::size_t j = 0; j < n_jobs_; ++j) {
    for (std::size_t s = 0; s < n_sites_; ++s) {
      if (jobs[j].nodes <= sites[s].nodes) {
        cells_[j * n_sites_ + s] = jobs[j].work / sites[s].speed;
      }
    }
  }
}

}  // namespace gridsched::sched
