#include "sched/etc_matrix.hpp"

namespace gridsched::sched {

namespace {

/// The one feasibility-gated fill: cell = exec_of(j, s) where the job fits,
/// kInfeasible otherwise. Both constructors (and, through the context one,
/// core::build_problem) resolve cells here.
template <typename ExecFn>
std::vector<double> fill_cells(const std::vector<sim::BatchJob>& jobs,
                               const std::vector<sim::SiteConfig>& sites,
                               ExecFn&& exec_of) {
  std::vector<double> cells(jobs.size() * sites.size(),
                            EtcMatrix::kInfeasible);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (jobs[j].nodes <= sites[s].nodes) {
        cells[j * sites.size() + s] = exec_of(j, s);
      }
    }
  }
  return cells;
}

}  // namespace

EtcMatrix::EtcMatrix(const sim::SchedulerContext& context)
    : n_jobs_(context.jobs.size()), n_sites_(context.sites.size()),
      cells_(fill_cells(context.jobs, context.sites, [&](std::size_t j,
                                                         std::size_t s) {
        return context.exec_time(context.jobs[j], s);
      })) {}

EtcMatrix::EtcMatrix(const std::vector<sim::BatchJob>& jobs,
                     const std::vector<sim::SiteConfig>& sites)
    : n_jobs_(jobs.size()), n_sites_(sites.size()),
      cells_(fill_cells(jobs, sites, [&](std::size_t j, std::size_t s) {
        // The one sanctioned rank-1 projection — the context-free
        // fallback when no raw ETC matrix is attached.
        // NOLINTNEXTLINE(GS-R03): sanctioned work/speed fallback
        return jobs[j].work / sites[s].speed;
      })) {}

}  // namespace gridsched::sched
