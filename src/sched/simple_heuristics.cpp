// MCT, MET and OLB: single-pass heuristics that place jobs in batch order.
#include "sched/etc_matrix.hpp"
#include "sched/heuristics.hpp"
#include "sched/risk_filter.hpp"

namespace gridsched::sched {

namespace {

/// Shared single-pass skeleton: `score` returns the value to minimise for
/// an admissible (job, site) pair given the current availability.
template <typename ScoreFn>
std::vector<sim::Assignment> single_pass(const sim::SchedulerContext& context,
                                         const security::RiskPolicy& policy,
                                         ScoreFn&& score) {
  const EtcMatrix etc(context);
  std::vector<sim::NodeAvailability> avail = context.avail;
  std::vector<sim::Assignment> result;
  result.reserve(context.jobs.size());

  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    const sim::BatchJob& job = context.jobs[j];
    sim::SiteId best_site = sim::kInvalidSite;
    double best_score = EtcMatrix::kInfeasible;
    for (std::size_t s = 0; s < context.sites.size(); ++s) {
      if (!admissible(context, job, s, policy)) continue;
      const double value = score(j, s, job, avail[s], etc);
      if (value < best_score) {
        best_score = value;
        best_site = static_cast<sim::SiteId>(s);
      }
    }
    if (best_site == sim::kInvalidSite) continue;  // stays pending
    avail[best_site].reserve(job.nodes, etc.exec(j, best_site), context.now);
    result.push_back({j, best_site});
  }
  return result;
}

}  // namespace

std::vector<sim::Assignment> MctScheduler::schedule(
    const sim::SchedulerContext& context) {
  return single_pass(context, policy_,
                     [&](std::size_t j, std::size_t s, const sim::BatchJob& job,
                         const sim::NodeAvailability& avail,
                         const EtcMatrix& etc) {
                       return avail.preview(job.nodes, etc.exec(j, s),
                                            context.now).end;
                     });
}

std::vector<sim::Assignment> MetScheduler::schedule(
    const sim::SchedulerContext& context) {
  return single_pass(context, policy_,
                     [&](std::size_t j, std::size_t s, const sim::BatchJob&,
                         const sim::NodeAvailability&, const EtcMatrix& etc) {
                       return etc.exec(j, s);
                     });
}

std::vector<sim::Assignment> OlbScheduler::schedule(
    const sim::SchedulerContext& context) {
  return single_pass(context, policy_,
                     [&](std::size_t, std::size_t, const sim::BatchJob& job,
                         const sim::NodeAvailability& avail, const EtcMatrix&) {
                       return avail.earliest_start(job.nodes, context.now);
                     });
}

}  // namespace gridsched::sched
