// Expected-Time-to-Compute matrix (Braun et al. terminology): exec(j, s) is
// the execution time of batch job j on site s, infinity when the job does
// not fit. Completion times (exec + queueing) are computed against
// NodeAvailability profiles by the individual heuristics.
#pragma once

#include <limits>
#include <vector>

#include "sim/scheduling.hpp"

namespace gridsched::sched {

class EtcMatrix {
 public:
  static constexpr double kInfeasible = std::numeric_limits<double>::infinity();

  /// Batch view of the context's execution model: the raw per-(job, site)
  /// ETC when the workload carries one, the rank-1 work/speed law
  /// otherwise. This is the constructor schedulers use — building from
  /// (jobs, sites) alone would silently re-project raw-ETC scenarios.
  explicit EtcMatrix(const sim::SchedulerContext& context);

  /// Rank-1 work/speed matrix, for callers without a context (tests,
  /// hand-assembled experiments).
  EtcMatrix(const std::vector<sim::BatchJob>& jobs,
            const std::vector<sim::SiteConfig>& sites);

  [[nodiscard]] std::size_t jobs() const noexcept { return n_jobs_; }
  [[nodiscard]] std::size_t sites() const noexcept { return n_sites_; }

  /// Execution time of job j on site s (kInfeasible if it does not fit).
  [[nodiscard]] double exec(std::size_t j, std::size_t s) const {
    return cells_.at(j * n_sites_ + s);
  }

  [[nodiscard]] const std::vector<double>& flattened() const noexcept {
    return cells_;
  }

 private:
  std::size_t n_jobs_;
  std::size_t n_sites_;
  std::vector<double> cells_;
};

}  // namespace gridsched::sched
