#include "sched/risk_filter.hpp"

namespace gridsched::sched {

bool admissible(const sim::BatchJob& job, const sim::SiteConfig& site,
                const security::RiskPolicy& policy) noexcept {
  if (job.nodes > site.nodes) return false;
  if (job.secure_only) {
    // Fail-stop rule: a previously failed job may only run where it is
    // absolutely safe, regardless of the scheduler's mode.
    return security::is_safe(job.demand, site.security);
  }
  return policy.admissible(job.demand, site.security);
}

bool admissible(const sim::SchedulerContext& context, const sim::BatchJob& job,
                std::size_t s, const security::RiskPolicy& policy) noexcept {
  return context.site_usable(s) && admissible(job, context.sites[s], policy);
}

std::vector<sim::SiteId> admissible_sites(
    const sim::BatchJob& job, const std::vector<sim::SiteConfig>& sites,
    const security::RiskPolicy& policy) {
  std::vector<sim::SiteId> result;
  result.reserve(sites.size());
  for (std::size_t s = 0; s < sites.size(); ++s) {
    if (admissible(job, sites[s], policy)) {
      result.push_back(static_cast<sim::SiteId>(s));
    }
  }
  return result;
}

std::vector<sim::SiteId> admissible_sites(const sim::SchedulerContext& context,
                                          const sim::BatchJob& job,
                                          const security::RiskPolicy& policy) {
  std::vector<sim::SiteId> result;
  result.reserve(context.sites.size());
  for (std::size_t s = 0; s < context.sites.size(); ++s) {
    if (admissible(context, job, s, policy)) {
      result.push_back(static_cast<sim::SiteId>(s));
    }
  }
  return result;
}

}  // namespace gridsched::sched
