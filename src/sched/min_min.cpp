#include <algorithm>

#include "sched/etc_matrix.hpp"
#include "sched/heuristics.hpp"
#include "sched/risk_filter.hpp"

namespace gridsched::sched {

std::vector<sim::Assignment> MinMinScheduler::schedule(
    const sim::SchedulerContext& context) {
  const EtcMatrix etc(context);
  std::vector<sim::NodeAvailability> avail = context.avail;

  std::vector<std::size_t> unassigned(context.jobs.size());
  for (std::size_t j = 0; j < unassigned.size(); ++j) unassigned[j] = j;

  std::vector<sim::Assignment> result;
  result.reserve(context.jobs.size());

  while (!unassigned.empty()) {
    // For every remaining job find its minimum-completion-time site, then
    // commit the job whose minimum is globally smallest.
    std::size_t best_pos = unassigned.size();
    sim::SiteId best_site = sim::kInvalidSite;
    double best_completion = EtcMatrix::kInfeasible;
    for (std::size_t pos = 0; pos < unassigned.size(); ++pos) {
      const std::size_t j = unassigned[pos];
      const sim::BatchJob& job = context.jobs[j];
      for (std::size_t s = 0; s < context.sites.size(); ++s) {
        if (!admissible(context, job, s, policy_)) continue;
        const double completion =
            avail[s].preview(job.nodes, etc.exec(j, s), context.now).end;
        if (completion < best_completion) {
          best_completion = completion;
          best_pos = pos;
          best_site = static_cast<sim::SiteId>(s);
        }
      }
    }
    if (best_pos == unassigned.size()) break;  // nothing admissible remains

    const std::size_t j = unassigned[best_pos];
    const sim::BatchJob& job = context.jobs[j];
    avail[best_site].reserve(job.nodes, etc.exec(j, best_site), context.now);
    result.push_back({j, best_site});
    unassigned.erase(unassigned.begin() +
                     static_cast<std::ptrdiff_t>(best_pos));
  }
  return result;
}

}  // namespace gridsched::sched
