// Name -> scheduler factory, so examples and benches can select heuristics
// from the command line ("min-min", "sufferage", "mct", ...).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "security/security.hpp"
#include "sim/scheduling.hpp"

namespace gridsched::sched {

using SchedulerFactory =
    std::function<std::unique_ptr<sim::BatchScheduler>(security::RiskPolicy)>;

/// Registered heuristic names (sorted).
std::vector<std::string> heuristic_names();

/// Instantiate by name; throws std::invalid_argument for unknown names.
std::unique_ptr<sim::BatchScheduler> make_heuristic(
    const std::string& name, security::RiskPolicy policy);

}  // namespace gridsched::sched
