#include <algorithm>
#include <limits>

#include "sched/etc_matrix.hpp"
#include "sched/heuristics.hpp"
#include "sched/risk_filter.hpp"

namespace gridsched::sched {

std::vector<sim::Assignment> SufferageScheduler::schedule(
    const sim::SchedulerContext& context) {
  const EtcMatrix etc(context);
  std::vector<sim::NodeAvailability> avail = context.avail;

  std::vector<std::size_t> unassigned(context.jobs.size());
  for (std::size_t j = 0; j < unassigned.size(); ++j) unassigned[j] = j;

  std::vector<sim::Assignment> result;
  result.reserve(context.jobs.size());

  while (!unassigned.empty()) {
    // Sufferage = second-best completion - best completion. A job with a
    // single admissible site suffers infinitely if it is not served.
    std::size_t pick_pos = unassigned.size();
    sim::SiteId pick_site = sim::kInvalidSite;
    double pick_sufferage = -1.0;
    double pick_best_completion = EtcMatrix::kInfeasible;
    for (std::size_t pos = 0; pos < unassigned.size(); ++pos) {
      const std::size_t j = unassigned[pos];
      const sim::BatchJob& job = context.jobs[j];
      sim::SiteId best_site = sim::kInvalidSite;
      double best = EtcMatrix::kInfeasible;
      double second = EtcMatrix::kInfeasible;
      for (std::size_t s = 0; s < context.sites.size(); ++s) {
        if (!admissible(context, job, s, policy_)) continue;
        const double completion =
            avail[s].preview(job.nodes, etc.exec(j, s), context.now).end;
        if (completion < best) {
          second = best;
          best = completion;
          best_site = static_cast<sim::SiteId>(s);
        } else if (completion < second) {
          second = completion;
        }
      }
      if (best_site == sim::kInvalidSite) continue;
      const double sufferage =
          second == EtcMatrix::kInfeasible
              ? std::numeric_limits<double>::infinity()
              : second - best;
      // Ties broken toward the earlier-completing job for determinism.
      if (sufferage > pick_sufferage ||
          (sufferage == pick_sufferage && best < pick_best_completion)) {
        pick_sufferage = sufferage;
        pick_pos = pos;
        pick_site = best_site;
        pick_best_completion = best;
      }
    }
    if (pick_pos == unassigned.size()) break;

    const std::size_t j = unassigned[pick_pos];
    const sim::BatchJob& job = context.jobs[j];
    avail[pick_site].reserve(job.nodes, etc.exec(j, pick_site), context.now);
    result.push_back({j, pick_site});
    unassigned.erase(unassigned.begin() +
                     static_cast<std::ptrdiff_t>(pick_pos));
  }
  return result;
}

}  // namespace gridsched::sched
