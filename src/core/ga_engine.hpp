// Generational GA loop with elitism and optional parallel fitness
// evaluation. Shared by the classic GA baseline and the STGA (which differ
// only in how the initial population is built).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ga_problem.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gridsched::core {

struct GaParams {
  std::size_t population = 200;   ///< paper Table 1
  std::size_t generations = 100;  ///< paper Table 1
  double crossover_prob = 0.8;    ///< paper Table 1
  double mutation_prob = 0.01;    ///< paper Table 1 (per gene)
  std::size_t elite_count = 2;    ///< elitism (paper Section 3)
  /// Objective shaping (expected completion + flowtime; see decode_fitness).
  FitnessParams fitness;
  /// Evaluate fitness on the thread pool when the number of chromosomes
  /// actually needing a decode (after elite carry-over and duplicate
  /// memoization) times the batch size exceeds this (parallelism never
  /// changes results: evaluation is pure).
  std::size_t parallel_threshold = 1 << 14;
  /// Cooperative cancellation (non-owning; may be null). evolve() polls
  /// once per generation and aborts with util::CancelledError — the
  /// per-cell wall-clock watchdog's hook into the GA hot loop. A
  /// completed evolve() is unaffected by the token's presence.
  const util::CancelToken* cancel = nullptr;
};

struct GaResult {
  Chromosome best;
  double best_fitness = 0.0;
  /// Best fitness seen up to and including each generation (length =
  /// generations + 1, entry 0 = initial population). Drives Fig. 7(b).
  std::vector<double> best_per_generation;
  /// Chromosomes actually decoded. Without memoization this would be
  /// population * (generations + 1); elites carry their fitness across
  /// generations and duplicate children reuse an identical chromosome's
  /// score, so evaluations + memo_hits <= population * (generations + 1).
  std::uint64_t evaluations = 0;
  /// Fitness lookups served without a decode (elite carry-over is not
  /// counted here: carried elites are simply never re-enqueued).
  std::uint64_t memo_hits = 0;
};

/// Per-generation instrumentation row of one evolve() run.
struct GaGenerationProfile {
  double wall_ms = 0.0;          ///< host wall time (non-deterministic)
  std::uint64_t evaluations = 0; ///< decodes performed this generation
  std::uint64_t memo_hits = 0;   ///< memo lookups served this generation
  double best = 0.0;             ///< best fitness so far (== best series)
  double mean = 0.0;             ///< mean population fitness
};

/// Optional convergence profile: one entry per fitness evaluation round
/// (generations + 1; entry 0 covers the initial population). Sums of the
/// per-generation evaluations/memo_hits equal the GaResult totals.
/// Collecting a profile must not change the GaResult — the profile only
/// reads state the engine already computes (plus one mean reduction).
struct GaProfile {
  std::vector<GaGenerationProfile> generations;
  double total_wall_ms = 0.0;  ///< wall time of the whole evolve() call
};

/// Run the GA. `initial` chromosomes seed the population (truncated or
/// topped up with random feasible chromosomes to `params.population`).
/// `profile`, when non-null, receives the per-generation convergence
/// profile (appending nothing to the result itself).
GaResult evolve(const GaProblem& problem, std::vector<Chromosome> initial,
                const GaParams& params, util::Rng& rng,
                util::ThreadPool* pool = nullptr,
                GaProfile* profile = nullptr);

}  // namespace gridsched::core
