// The paper's schedulers built on the GA engine:
//   * StgaScheduler  — Space-Time GA: history-seeded initial populations,
//     heuristic seeds, LRU lookup table (Section 3).
//   * classic GA     — same engine, cold random start each round (the
//     "traditional GA" the paper argues is too slow online).
// Plus RecordingScheduler, which wraps any heuristic and feeds its
// solutions into an STGA history table (the paper's 500-training-job
// bootstrap, DESIGN.md S8).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/ga_engine.hpp"
#include "core/history.hpp"
#include "security/security.hpp"
#include "sim/scheduling.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gridsched::core {

struct StgaConfig {
  GaParams ga;                         ///< population 200 / 100 generations...
  std::size_t table_capacity = 150;    ///< paper Table 1
  double similarity_threshold = 0.8;   ///< paper Table 1
  /// Fraction of the initial population filled from history matches (the
  /// rest is heuristic seeds + random diversity, Section 3).
  double history_seed_fraction = 0.5;
  std::size_t max_history_matches = 8;
  /// Seed the population with Min-Min and Sufferage solutions.
  bool heuristic_seeds = true;
  /// false = classic cold-start GA (no table, no heuristic seeds).
  bool use_history = true;
  /// Eq. 1 coefficient used for the expected-rework fitness term.
  double lambda = security::kDefaultLambda;
  std::uint64_t seed = 7;
};

class GaScheduler : public sim::BatchScheduler {
 public:
  explicit GaScheduler(StgaConfig config, util::ThreadPool* pool = nullptr);

  [[nodiscard]] std::string name() const override {
    return config_.use_history ? "STGA" : "GA";
  }

  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override;

  /// Store an externally produced schedule in the history table (training).
  void record_external(const sim::SchedulerContext& context,
                       const std::vector<sim::Assignment>& assignments);

  [[nodiscard]] const HistoryTable& history() const noexcept { return table_; }
  [[nodiscard]] const StgaConfig& config() const noexcept { return config_; }

  /// Collect one GaProfile per schedule() call into `sink` (nullptr
  /// disables, the default). The sink must outlive scheduling; profiling
  /// never changes the schedules produced.
  void set_profile_sink(std::vector<GaProfile>* sink) noexcept {
    profile_sink_ = sink;
  }

  /// Attach a cooperative cancel token (nullptr detaches; must outlive
  /// scheduling). Every evolve() this scheduler runs polls it once per
  /// generation — see GaParams::cancel.
  void set_cancel_token(const util::CancelToken* token) noexcept {
    cancel_ = token;
  }

 private:
  std::vector<Chromosome> build_initial_population(
      const GaProblem& problem, const BatchSignature& signature);

  StgaConfig config_;
  util::ThreadPool* pool_;
  HistoryTable table_;
  util::Rng rng_;
  std::vector<GaProfile>* profile_sink_ = nullptr;
  const util::CancelToken* cancel_ = nullptr;
  /// Reused across batches for history-match rescoring and the dispatch
  /// decode order (bound to each batch's problem in schedule()).
  DecodeScratch scratch_;
};

/// Convenience factories for the paper's two GA flavours.
std::unique_ptr<GaScheduler> make_stga(StgaConfig config = {},
                                       util::ThreadPool* pool = nullptr);
std::unique_ptr<GaScheduler> make_classic_ga(StgaConfig config = {},
                                             util::ThreadPool* pool = nullptr);

/// Pass-through scheduler that records the inner scheduler's solutions into
/// a GaScheduler's history table.
class RecordingScheduler final : public sim::BatchScheduler {
 public:
  RecordingScheduler(sim::BatchScheduler& inner, GaScheduler& target)
      : inner_(inner), target_(target) {}

  [[nodiscard]] std::string name() const override {
    return inner_.name() + " (recording)";
  }

  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override {
    auto assignments = inner_.schedule(context);
    target_.record_external(context, assignments);
    return assignments;
  }

 private:
  sim::BatchScheduler& inner_;
  GaScheduler& target_;
};

}  // namespace gridsched::core
