// Genetic operators (paper Section 3): value-based roulette-wheel
// selection, single-point crossover, per-gene domain mutation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/ga_problem.hpp"
#include "util/rng.hpp"

namespace gridsched::core {

/// Uniformly random feasible chromosome.
Chromosome random_chromosome(const GaProblem& problem, util::Rng& rng);

/// Roulette wheel for a minimisation objective, built once per generation:
/// each candidate's share is (worst - fitness) plus a 10% floor so the
/// worst candidate keeps a small non-zero probability. rebuild() computes
/// the prefix sums in O(n); select() is then an O(log n) binary search
/// instead of the old per-call O(n) scan that recomputed worst/total for
/// every draw. The wheel shares are identical to roulette_select's.
class RouletteWheel {
 public:
  /// Recompute the wheel from a generation's fitness values. Throws
  /// std::invalid_argument when `fitness` is empty. Allocation-free once
  /// the prefix buffer has grown to the population size.
  void rebuild(std::span<const double> fitness);

  /// Draw one index (one rng.uniform() call, as before).
  [[nodiscard]] std::size_t select(util::Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::vector<double> prefix_;  ///< cumulative wheel shares
  std::size_t n_ = 0;
  bool uniform_ = false;        ///< all fitness equal: uniform selection
};

/// One-shot roulette selection (rebuild + select). The GA engine keeps a
/// RouletteWheel per generation instead; this remains for tests and
/// call sites that select once.
std::size_t roulette_select(std::span<const double> fitness, util::Rng& rng);

/// Single-point crossover: swap the tails of a and b after a random cut in
/// [1, len-1]. No-op for chromosomes shorter than 2 genes. Genes keep their
/// positions, so feasibility is preserved.
void crossover_one_point(Chromosome& a, Chromosome& b, util::Rng& rng);

/// Mutate each gene with probability `per_gene` to a random (possibly
/// different) site from the job's domain.
void mutate(Chromosome& chromosome, const GaProblem& problem, double per_gene,
            util::Rng& rng);

/// Clamp every gene into its job's domain, replacing foreign genes with a
/// random domain member. Used to adapt historical chromosomes.
void repair(Chromosome& chromosome, const GaProblem& problem, util::Rng& rng);

/// Nearest-neighbour resampling of a gene array to a new length (used when
/// a historical batch had a different size; DESIGN.md S9).
Chromosome resample_genes(const Chromosome& source, std::size_t target_size);

}  // namespace gridsched::core
