// Genetic operators (paper Section 3): value-based roulette-wheel
// selection, single-point crossover, per-gene domain mutation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/ga_problem.hpp"
#include "util/rng.hpp"

namespace gridsched::core {

/// Uniformly random feasible chromosome.
Chromosome random_chromosome(const GaProblem& problem, util::Rng& rng);

/// Roulette-wheel selection for a minimisation objective: each candidate's
/// wheel share is (worst - fitness) plus a floor so the worst candidate
/// keeps a small non-zero probability. Returns the selected index.
std::size_t roulette_select(std::span<const double> fitness, util::Rng& rng);

/// Single-point crossover: swap the tails of a and b after a random cut in
/// [1, len-1]. No-op for chromosomes shorter than 2 genes. Genes keep their
/// positions, so feasibility is preserved.
void crossover_one_point(Chromosome& a, Chromosome& b, util::Rng& rng);

/// Mutate each gene with probability `per_gene` to a random (possibly
/// different) site from the job's domain.
void mutate(Chromosome& chromosome, const GaProblem& problem, double per_gene,
            util::Rng& rng);

/// Clamp every gene into its job's domain, replacing foreign genes with a
/// random domain member. Used to adapt historical chromosomes.
void repair(Chromosome& chromosome, const GaProblem& problem, util::Rng& rng);

/// Nearest-neighbour resampling of a gene array to a new length (used when
/// a historical batch had a different size; DESIGN.md S9).
Chromosome resample_genes(const Chromosome& source, std::size_t target_size);

}  // namespace gridsched::core
