// Retained pre-fast-path decode (PR 2): fresh decode-order vector,
// comparator-driven stable_sort, deep-copied availability profiles, and
// NodeAvailability::reserve per placement. Kept as the golden baseline the
// DecodeScratch fast path must match bit for bit (tests/
// core_decode_fastpath_test.cpp) and as the speedup reference for
// bench/bench_decode.cpp. Not used on any hot path.
#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/ga_problem.hpp"

namespace gridsched::core {

std::vector<std::size_t> decode_order_reference(const GaProblem& problem,
                                                const Chromosome& chromosome) {
  std::vector<std::size_t> order(chromosome.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.exec_at(a, chromosome[a]) <
                            problem.exec_at(b, chromosome[b]);
                   });
  return order;
}

namespace {

template <typename Consume>
void decode_reference(const GaProblem& problem, const Chromosome& chromosome,
                      double risk_penalty, Consume&& consume) {
  if (chromosome.size() != problem.n_jobs()) {
    throw std::invalid_argument("decode: chromosome length mismatch");
  }
  std::vector<sim::NodeAvailability> avail = problem.avail;
  for (const std::size_t j : decode_order_reference(problem, chromosome)) {
    const sim::SiteId s = chromosome[j];
    const double exec = problem.exec_at(j, s);
    const auto window =
        avail[s].reserve(problem.jobs[j].nodes, exec, problem.now);
    consume(j, window.end + risk_penalty * problem.pfail_at(j, s) * exec);
  }
}

}  // namespace

double decode_fitness_reference(const GaProblem& problem,
                                const Chromosome& chromosome,
                                const FitnessParams& params) {
  double worst = problem.now;
  double sum = 0.0;
  decode_reference(problem, chromosome, params.risk_penalty_weight,
                   [&](std::size_t, double expected) {
                     worst = std::max(worst, expected);
                     sum += expected - problem.now;
                   });
  const double mean =
      chromosome.empty() ? 0.0 : sum / static_cast<double>(chromosome.size());
  return worst + params.flowtime_weight * mean;
}

double batch_makespan_reference(const GaProblem& problem,
                                const Chromosome& chromosome) {
  double makespan = problem.now;
  decode_reference(problem, chromosome, 0.0,
                   [&](std::size_t, double completion) {
                     makespan = std::max(makespan, completion);
                   });
  return makespan;
}

}  // namespace gridsched::core
