#include "core/history.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridsched::core {

namespace {

double max_abs_entry(std::span<const double> v) {
  double peak = 0.0;
  for (const double x : v) peak = std::max(peak, std::abs(x));
  return peak;
}

/// Nearest-neighbour resample of `v` to length n (n > 0, v non-empty).
std::vector<double> resample(std::span<const double> v, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = v[i * v.size() / n];
  return out;
}

}  // namespace

double similarity_raw(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("similarity_raw: need equal non-zero lengths");
  }
  double distance = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) distance += std::abs(a[i] - b[i]);
  const double denom = std::max(max_abs_entry(a), max_abs_entry(b));
  if (denom == 0.0) return 1.0;  // both all-zero: identical
  return 1.0 - distance / denom;
}

double vector_similarity(std::span<const double> a, std::span<const double> b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::vector<double> a_resampled;
  std::vector<double> b_resampled;
  if (a.size() != b.size()) {
    const std::size_t n = std::max(a.size(), b.size());
    a_resampled = resample(a, n);
    b_resampled = resample(b, n);
    a = a_resampled;
    b = b_resampled;
  }
  double distance = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) distance += std::abs(a[i] - b[i]);
  const double denom = std::max(max_abs_entry(a), max_abs_entry(b));
  if (denom == 0.0) return 1.0;
  const double mean_distance = distance / static_cast<double>(a.size());
  return 1.0 - mean_distance / denom;
}

BatchSignature make_signature(const GaProblem& problem) {
  BatchSignature signature;
  signature.avail.reserve(problem.n_sites());
  for (const auto& profile : problem.avail) {
    double sum = 0.0;
    for (const double t : profile.free_times()) {
      sum += std::max(0.0, t - problem.now);  // backlog relative to now
    }
    signature.avail.push_back(sum / static_cast<double>(profile.nodes()));
  }
  signature.etc.reserve(problem.exec.size());
  for (const double x : problem.exec) {
    signature.etc.push_back(std::isfinite(x) ? x : 0.0);
  }
  signature.demands.reserve(problem.n_jobs());
  for (const auto& job : problem.jobs) signature.demands.push_back(job.demand);
  return signature;
}

double signature_similarity(const BatchSignature& a, const BatchSignature& b) {
  return (vector_similarity(a.avail, b.avail) +
          vector_similarity(a.etc, b.etc) +
          vector_similarity(a.demands, b.demands)) /
         3.0;
}

HistoryTable::HistoryTable(std::size_t capacity, double threshold)
    : capacity_(capacity), threshold_(threshold) {
  if (capacity_ == 0) throw std::invalid_argument("HistoryTable: capacity 0");
  entries_.reserve(capacity_);
}

std::vector<HistoryTable::Match> HistoryTable::lookup(
    const BatchSignature& signature, std::size_t max_matches) {
  struct Scored {
    std::size_t index;
    double similarity;
  };
  std::vector<Scored> scored;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double sim = signature_similarity(signature, entries_[i].signature);
    if (sim >= threshold_) scored.push_back({i, sim});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& x, const Scored& y) {
    return x.similarity > y.similarity;
  });
  if (scored.size() > max_matches) scored.resize(max_matches);

  std::vector<Match> matches;
  matches.reserve(scored.size());
  for (const Scored& s : scored) {
    entries_[s.index].stamp = ++clock_;  // LRU touch
    matches.push_back({&entries_[s.index].best, s.similarity});
  }
  if (matches.empty()) {
    ++misses_;
  } else {
    ++hits_;
  }
  return matches;
}

void HistoryTable::insert(BatchSignature signature, Chromosome best) {
  // Near-duplicate: refresh in place instead of storing a twin.
  for (Entry& entry : entries_) {
    if (signature_similarity(signature, entry.signature) >= 0.999) {
      entry.signature = std::move(signature);
      entry.best = std::move(best);
      entry.stamp = ++clock_;
      return;
    }
  }
  if (entries_.size() >= capacity_) {
    const auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    *victim = {std::move(signature), std::move(best), ++clock_};
    ++evictions_;
    return;
  }
  entries_.push_back({std::move(signature), std::move(best), ++clock_});
}

}  // namespace gridsched::core
