#include "core/ga_scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "core/operators.hpp"
#include "sched/heuristics.hpp"

namespace gridsched::core {

GaScheduler::GaScheduler(StgaConfig config, util::ThreadPool* pool)
    : config_(config), pool_(pool),
      table_(config.table_capacity, config.similarity_threshold),
      rng_(config.seed) {}

std::vector<Chromosome> GaScheduler::build_initial_population(
    const GaProblem& problem, const BatchSignature& signature) {
  std::vector<Chromosome> initial;

  if (config_.use_history) {
    const auto matches = table_.lookup(signature, config_.max_history_matches);
    if (!matches.empty()) {
      const auto target = static_cast<std::size_t>(
          config_.history_seed_fraction *
          static_cast<double>(config_.ga.population));
      // Each match contributes its adapted chromosome plus mutated copies;
      // cycle over matches until the history share is filled.
      std::vector<Chromosome> adapted;
      adapted.reserve(matches.size());
      for (const auto& match : matches) {
        Chromosome chromosome = match.chromosome->size() == problem.n_jobs()
                                    ? *match.chromosome
                                    : resample_genes(*match.chromosome,
                                                     problem.n_jobs());
        repair(chromosome, problem, rng_);
        adapted.push_back(std::move(chromosome));
      }
      // Rescore the adapted matches on *this* batch's problem (lookup
      // ranked them by signature similarity, not by how well the schedule
      // transfers) so the strongest seed fills the history share first and
      // receives the extra mutated copies.
      std::vector<std::size_t> rank(adapted.size());
      std::iota(rank.begin(), rank.end(), std::size_t{0});
      std::vector<double> score(adapted.size());
      for (std::size_t i = 0; i < adapted.size(); ++i) {
        score[i] = decode_fitness(problem, adapted[i], config_.ga.fitness,
                                  scratch_);
      }
      std::stable_sort(rank.begin(), rank.end(),
                       [&](std::size_t a, std::size_t b) {
                         return score[a] < score[b];
                       });
      std::vector<Chromosome> ranked;
      ranked.reserve(adapted.size());
      for (const std::size_t i : rank) ranked.push_back(std::move(adapted[i]));
      adapted.swap(ranked);
      for (std::size_t i = 0; initial.size() < target; ++i) {
        Chromosome copy = adapted[i % adapted.size()];
        if (i >= adapted.size()) {
          // Diversify later copies around the historical solution.
          mutate(copy, problem,
                 1.0 / static_cast<double>(std::max<std::size_t>(
                           problem.n_jobs(), 1)),
                 rng_);
        }
        initial.push_back(std::move(copy));
      }
    }
  }

  if (config_.heuristic_seeds) {
    // Min-Min and Sufferage solutions of this very batch, as strong seeds.
    sim::SchedulerContext sub_context;
    sub_context.now = problem.now;
    sub_context.sites = problem.sites;
    sub_context.avail = problem.avail;
    sub_context.site_up = problem.site_up;  // down sites stay invisible
    sub_context.jobs = problem.jobs;
    sub_context.exec = problem.exec_model;  // same exec resolution as the GA
    for (const bool use_sufferage : {false, true}) {
      std::unique_ptr<sched::HeuristicScheduler> heuristic;
      if (use_sufferage) {
        heuristic = std::make_unique<sched::SufferageScheduler>(
            security::RiskPolicy::risky());
      } else {
        heuristic = std::make_unique<sched::MinMinScheduler>(
            security::RiskPolicy::risky());
      }
      const auto assignments = heuristic->schedule(sub_context);
      if (assignments.size() != problem.n_jobs()) continue;  // partial: skip
      Chromosome chromosome(problem.n_jobs());
      for (const auto& assignment : assignments) {
        chromosome[assignment.job_index] = assignment.site;
      }
      repair(chromosome, problem, rng_);  // defensive; normally a no-op
      initial.push_back(std::move(chromosome));
    }
  }
  return initial;  // evolve() tops up with random chromosomes
}

std::vector<sim::Assignment> GaScheduler::schedule(
    const sim::SchedulerContext& context) {
  // STGA places jobs anywhere (the paper's STGA takes the most risk); the
  // fail-stop rule for secure_only retries is enforced by build_problem.
  GaProblem problem =
      build_problem(context, security::RiskPolicy::risky(config_.lambda));
  if (problem.n_jobs() == 0) return {};
  scratch_.bind(problem);  // history rescoring + dispatch decode below

  const BatchSignature signature = make_signature(problem);
  std::vector<Chromosome> initial =
      build_initial_population(problem, signature);

  GaProfile profile;
  GaParams params = config_.ga;
  params.cancel = cancel_;  // per-run token; config stays token-free
  const GaResult result =
      evolve(problem, std::move(initial), params, rng_, pool_,
             profile_sink_ != nullptr ? &profile : nullptr);
  if (profile_sink_ != nullptr) {
    profile_sink_->push_back(std::move(profile));
  }

  if (config_.use_history) {
    table_.insert(signature, result.best);
  }

  // Dispatch shortest-execution-first: the order decode_fitness scored, so
  // the engine realises exactly the reservations the GA optimised.
  std::vector<sim::Assignment> assignments;
  assignments.reserve(problem.n_jobs());
  for (const std::size_t j : decode_order_into(scratch_, problem,
                                               result.best)) {
    assignments.push_back({problem.batch_index[j], result.best[j]});
  }
  return assignments;
}

void GaScheduler::record_external(
    const sim::SchedulerContext& context,
    const std::vector<sim::Assignment>& assignments) {
  GaProblem problem =
      build_problem(context, security::RiskPolicy::risky(config_.lambda));
  if (problem.n_jobs() == 0 || assignments.empty()) return;

  // Map original batch indices to problem gene positions.
  std::unordered_map<std::size_t, std::size_t> gene_of;
  gene_of.reserve(problem.batch_index.size());
  for (std::size_t j = 0; j < problem.batch_index.size(); ++j) {
    gene_of.emplace(problem.batch_index[j], j);
  }
  Chromosome chromosome(problem.n_jobs(), sim::kInvalidSite);
  for (const auto& assignment : assignments) {
    const auto it = gene_of.find(assignment.job_index);
    if (it != gene_of.end()) chromosome[it->second] = assignment.site;
  }
  // Jobs the inner scheduler left pending get a random feasible gene.
  repair(chromosome, problem, rng_);
  table_.insert(make_signature(problem), std::move(chromosome));
}

std::unique_ptr<GaScheduler> make_stga(StgaConfig config,
                                       util::ThreadPool* pool) {
  config.use_history = true;
  return std::make_unique<GaScheduler>(config, pool);
}

std::unique_ptr<GaScheduler> make_classic_ga(StgaConfig config,
                                             util::ThreadPool* pool) {
  config.use_history = false;
  config.heuristic_seeds = false;
  return std::make_unique<GaScheduler>(config, pool);
}

}  // namespace gridsched::core
