// The GA's view of one scheduling round: the schedulable subset of the
// batch, per-job site domains (risk-filtered), execution times, and the
// committed availability profiles. The chromosome encoding is the paper's
// Fig. 4: an array with one site gene per batch job.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "security/security.hpp"
#include "sim/scheduling.hpp"

namespace gridsched::core {

using Chromosome = std::vector<sim::SiteId>;

struct GaProblem {
  sim::Time now = 0.0;
  std::vector<sim::BatchJob> jobs;          ///< GA-schedulable jobs
  std::vector<std::size_t> batch_index;     ///< original indices in the context
  std::vector<sim::SiteConfig> sites;
  std::vector<sim::NodeAvailability> avail; ///< committed profiles, per site
  /// The context's site-availability mask (empty = all usable). Domains
  /// already exclude masked-out sites; the mask is retained so
  /// sub-schedulers run on this problem (heuristic population seeds) see
  /// the same availability the GA did.
  std::vector<std::uint8_t> site_up;
  /// Admissible sites per job (never empty for jobs kept in `jobs`).
  std::vector<std::vector<sim::SiteId>> domains;
  /// The context's execution model, retained so sub-schedulers built from
  /// this problem (heuristic population seeds) resolve exec times the same
  /// way the `exec` matrix below was filled.
  sim::ExecModel exec_model;
  /// Flattened jobs x sites execution times (infinity when infeasible),
  /// resolved through `exec_model`: raw ETC cells when the workload
  /// carries a matrix, work/speed otherwise.
  std::vector<double> exec;
  /// Flattened jobs x sites Eq. 1 failure probabilities.
  std::vector<double> pfail;
  /// Identity stamp: build_problem assigns a process-unique non-zero value,
  /// letting DecodeScratch::bind skip rebinding when called again with the
  /// same problem. Built problems must be treated as immutable for the
  /// stamp to stay truthful; hand-assembled problems keep 0 (= always
  /// rebind fully). Copies drop the stamp — a copy is a distinct object the
  /// caller may mutate, so it must never alias a cached binding.
  std::uint64_t epoch = 0;

  GaProblem() = default;
  GaProblem(GaProblem&&) = default;
  GaProblem& operator=(GaProblem&&) = default;
  GaProblem(const GaProblem& other) { *this = other; }
  GaProblem& operator=(const GaProblem& other) {
    if (this != &other) {
      now = other.now;
      jobs = other.jobs;
      batch_index = other.batch_index;
      sites = other.sites;
      avail = other.avail;
      site_up = other.site_up;
      domains = other.domains;
      exec_model = other.exec_model;
      exec = other.exec;
      pfail = other.pfail;
      epoch = 0;  // unstamped: see above
    }
    return *this;
  }

  [[nodiscard]] std::size_t n_jobs() const noexcept { return jobs.size(); }
  [[nodiscard]] std::size_t n_sites() const noexcept { return sites.size(); }
  [[nodiscard]] double exec_at(std::size_t j, std::size_t s) const noexcept {
    return exec[j * n_sites() + s];
  }
  [[nodiscard]] double pfail_at(std::size_t j, std::size_t s) const noexcept {
    return pfail[j * n_sites() + s];
  }
};

/// Reusable decode workspace: per-gene sort keys, a gather of the exec/
/// pfail/node-count columns the decode loop touches (dense per-job arrays,
/// so the loop never random-accesses the jobs x sites matrices), and a flat
/// copy-on-decode availability arena (all sites' free times in one
/// contiguous buffer with a pristine snapshot, so resetting to the
/// committed profiles is an O(total nodes) copy instead of a
/// vector-of-vectors deep copy).
///
/// Sorting exploits that the exec matrix is fixed per problem: bind() ranks
/// the distinct exec values once (order-isomorphic dense integers, ties
/// mapped to equal ranks), so each decode sorts small packed
/// (rank << 32 | gene index) integers — a two-pass LSD radix for typical
/// rank widths, std::sort below a size threshold. Both are stable in the
/// gene index and therefore reproduce stable_sort's order exactly. After
/// bind() the steady-state decode path performs zero heap allocations; the
/// GA engine keeps one scratch per thread-pool chunk, so ~20k evaluations
/// per batch reuse the same buffers.
class DecodeScratch {
 public:
  /// Packed sort element: exec rank in the high 32 bits, gene index below.
  using SortedGene = std::uint64_t;

  [[nodiscard]] static constexpr std::uint32_t gene_index(
      SortedGene packed) noexcept {
    return static_cast<std::uint32_t>(packed);
  }

  /// Capture `problem`'s committed availability profiles, rank its exec
  /// matrix, and size every buffer for its job/site counts. Binding again
  /// with the same built problem (matching GaProblem::epoch) is a no-op.
  void bind(const GaProblem& problem);

  /// Share `other`'s problem binding (the immutable rank/cell/profile
  /// tables) instead of rebuilding them — the engine binds one scratch per
  /// evolve and fans the binding out to its per-chunk siblings.
  void bind_from(const DecodeScratch& other);

  /// Reset the arena to the bound profiles, gather the chromosome's exec/
  /// pfail columns, and compute the shortest-execution-first decode order
  /// (stable for ties, bit-identical to decode_order). The span is valid
  /// until the next prepare()/bind(). Preconditions (enforced by evolve's
  /// seed validation, not re-checked here): bind(problem) was called and
  /// chromosome.size() == problem.n_jobs().
  std::span<const SortedGene> prepare(const GaProblem& problem,
                                      const Chromosome& chromosome) noexcept;

  /// Gathered columns for gene j, valid after prepare().
  [[nodiscard]] double exec_of(std::uint32_t j) const noexcept {
    return exec_gather_[j];
  }
  [[nodiscard]] double pfail_of(std::uint32_t j) const noexcept {
    return pfail_gather_[j];
  }
  [[nodiscard]] unsigned nodes_of(std::uint32_t j) const noexcept {
    return binding_->nodes[j];
  }

  /// Arena equivalent of NodeAvailability::reserve on site `s`: occupy the
  /// k earliest-free nodes for `exec` seconds starting no earlier than
  /// `now`, keeping the profile sorted. Requires 1 <= k <= nodes(s).
  sim::NodeAvailability::Window reserve(sim::SiteId s, unsigned k, double exec,
                                        sim::Time now) noexcept;

 private:
  /// One jobs x sites entry with everything the gather pass reads,
  /// interleaved so each gene costs one cache line instead of three.
  struct Cell {
    double exec = 0.0;
    double pfail = 0.0;
    std::uint32_t rank = 0;
  };

  /// Everything derived from the (immutable) problem, shared between the
  /// engine's per-chunk scratches so the rank table is built once per
  /// evolve, not once per thread.
  struct ProblemBinding {
    std::vector<Cell> cells;            ///< exec/pfail/rank, jobs x sites
    std::vector<unsigned> nodes;        ///< jobs[j].nodes
    std::vector<sim::Time> pristine;    ///< flattened committed free times
    std::vector<std::size_t> offset;    ///< per-site start, n_sites + 1
    std::size_t n_jobs = 0;
    std::uint64_t epoch = 0;            ///< GaProblem::epoch (0 = unstamped)
    unsigned rank_bytes = 1;            ///< radix passes the ranks need
  };

  std::span<const SortedGene> sort_genes(std::size_t n) noexcept;

  std::shared_ptr<const ProblemBinding> binding_;
  std::vector<SortedGene> sort_a_;        ///< sort input / radix ping
  std::vector<SortedGene> sort_b_;        ///< radix pong
  std::vector<std::size_t> order_;        ///< decode_order_into output
  std::vector<double> exec_gather_;       ///< exec_at(j, chromosome[j])
  std::vector<double> pfail_gather_;      ///< pfail_at(j, chromosome[j])
  std::vector<sim::Time> working_;        ///< decode-mutable profile copy
  std::uint32_t hist_[4][256];            ///< radix digit histograms

  friend std::span<const std::size_t> decode_order_into(
      DecodeScratch& scratch, const GaProblem& problem,
      const Chromosome& chromosome) noexcept;
};

/// Decode `chromosome` with zero steady-state allocations: reserve
/// shortest-first in the scratch arena and feed each job's expected
/// completion to `consume(job_index, expected_completion)`. This is the hot
/// primitive under decode_fitness/batch_makespan; the chromosome must be
/// feasible (validated once by evolve, not per call).
// GS-FASTPATH-BEGIN: the inlined per-evaluation loop (GS-R01 no-alloc).
template <typename Consume>
void decode_into(DecodeScratch& scratch, const GaProblem& problem,
                 const Chromosome& chromosome, double risk_penalty,
                 Consume&& consume) {
  for (const DecodeScratch::SortedGene packed :
       scratch.prepare(problem, chromosome)) {
    const std::uint32_t j = DecodeScratch::gene_index(packed);
    const double exec = scratch.exec_of(j);
    const auto window = scratch.reserve(chromosome[j], scratch.nodes_of(j),
                                        exec, problem.now);
    consume(j, window.end + risk_penalty * scratch.pfail_of(j) * exec);
  }
}
// GS-FASTPATH-END

/// Build the GA subproblem from a scheduler context. Jobs whose admissible
/// set under `policy` is empty are dropped (they stay pending in the
/// engine). The fail-stop rule for secure_only jobs is enforced by the
/// admissibility filter regardless of `policy`. `policy.lambda()` feeds the
/// failure-probability matrix.
GaProblem build_problem(const sim::SchedulerContext& context,
                        const security::RiskPolicy& policy);

/// Fitness shaping knobs (see decode_fitness).
struct FitnessParams {
  /// Weight of the mean expected completion (flow time) relative to the
  /// batch makespan. 0 = pure makespan, the paper's stated objective; a
  /// small positive weight also serves average response time.
  double flowtime_weight = 0.6;
  /// Weight of the expected rework term p_fail * exec added to each job's
  /// completion. A fail-stop restart costs roughly the wasted half run plus
  /// a re-queue and a full re-execution on a safe site, i.e. ~2x exec.
  double risk_penalty_weight = 2.0;
};

/// Decode a chromosome into a schedule and score it (lower is better).
/// Jobs are reserved shortest-execution-first (the dispatch order the
/// GaScheduler realises). Each job's expected completion is
///   c_j + risk_penalty_weight * pfail_j * exec_j
/// and the fitness is max_j(expected) + flowtime_weight * mean_j(expected
/// - now). Genes must lie in the job's domain. Validates the chromosome and
/// throws std::invalid_argument on length/site mismatches; the scratch
/// overload below is the validated hot path.
double decode_fitness(const GaProblem& problem, const Chromosome& chromosome,
                      const FitnessParams& params);

/// Allocation-free fast path: identical value to the validating overload,
/// bit for bit. `scratch` must be bound to `problem` and the chromosome
/// must be feasible (evolve validates seeds once; operators preserve
/// feasibility, so per-evaluation checks are unnecessary).
double decode_fitness(const GaProblem& problem, const Chromosome& chromosome,
                      const FitnessParams& params,
                      DecodeScratch& scratch) noexcept;

/// Pure realized batch makespan (absolute latest completion; no risk or
/// flowtime shaping), with the same shortest-first decode order.
double batch_makespan(const GaProblem& problem, const Chromosome& chromosome);

/// Allocation-free fast path for batch_makespan (same contract as the
/// decode_fitness scratch overload).
double batch_makespan(const GaProblem& problem, const Chromosome& chromosome,
                      DecodeScratch& scratch) noexcept;

/// The shortest-execution-first order in which a chromosome's assignments
/// are reserved/dispatched (stable for ties).
std::vector<std::size_t> decode_order(const GaProblem& problem,
                                      const Chromosome& chromosome);

/// Allocation-free decode_order: the returned span aliases the scratch and
/// is valid until its next prepare()/bind(). Also resets the scratch arena.
std::span<const std::size_t> decode_order_into(
    DecodeScratch& scratch, const GaProblem& problem,
    const Chromosome& chromosome) noexcept;

/// Retained pre-fast-path implementations (fresh decode-order vector,
/// comparator-driven stable_sort, deep-copied availability profiles).
/// Golden references for tests and the bench_decode speedup baseline — the
/// fast path must stay bit-identical to these.
double decode_fitness_reference(const GaProblem& problem,
                                const Chromosome& chromosome,
                                const FitnessParams& params);
double batch_makespan_reference(const GaProblem& problem,
                                const Chromosome& chromosome);
std::vector<std::size_t> decode_order_reference(const GaProblem& problem,
                                                const Chromosome& chromosome);

/// True iff every gene is a member of the corresponding job's domain.
bool is_feasible(const GaProblem& problem, const Chromosome& chromosome);

}  // namespace gridsched::core
