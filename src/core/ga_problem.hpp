// The GA's view of one scheduling round: the schedulable subset of the
// batch, per-job site domains (risk-filtered), execution times, and the
// committed availability profiles. The chromosome encoding is the paper's
// Fig. 4: an array with one site gene per batch job.
#pragma once

#include <cstddef>
#include <vector>

#include "security/security.hpp"
#include "sim/scheduling.hpp"

namespace gridsched::core {

using Chromosome = std::vector<sim::SiteId>;

struct GaProblem {
  sim::Time now = 0.0;
  std::vector<sim::BatchJob> jobs;          ///< GA-schedulable jobs
  std::vector<std::size_t> batch_index;     ///< original indices in the context
  std::vector<sim::SiteConfig> sites;
  std::vector<sim::NodeAvailability> avail; ///< committed profiles, per site
  /// Admissible sites per job (never empty for jobs kept in `jobs`).
  std::vector<std::vector<sim::SiteId>> domains;
  /// Flattened jobs x sites execution times (infinity when infeasible).
  std::vector<double> exec;
  /// Flattened jobs x sites Eq. 1 failure probabilities.
  std::vector<double> pfail;

  [[nodiscard]] std::size_t n_jobs() const noexcept { return jobs.size(); }
  [[nodiscard]] std::size_t n_sites() const noexcept { return sites.size(); }
  [[nodiscard]] double exec_at(std::size_t j, std::size_t s) const {
    return exec[j * n_sites() + s];
  }
  [[nodiscard]] double pfail_at(std::size_t j, std::size_t s) const {
    return pfail[j * n_sites() + s];
  }
};

/// Build the GA subproblem from a scheduler context. Jobs whose admissible
/// set under `policy` is empty are dropped (they stay pending in the
/// engine). The fail-stop rule for secure_only jobs is enforced by the
/// admissibility filter regardless of `policy`. `policy.lambda()` feeds the
/// failure-probability matrix.
GaProblem build_problem(const sim::SchedulerContext& context,
                        const security::RiskPolicy& policy);

/// Fitness shaping knobs (see decode_fitness).
struct FitnessParams {
  /// Weight of the mean expected completion (flow time) relative to the
  /// batch makespan. 0 = pure makespan, the paper's stated objective; a
  /// small positive weight also serves average response time.
  double flowtime_weight = 0.6;
  /// Weight of the expected rework term p_fail * exec added to each job's
  /// completion. A fail-stop restart costs roughly the wasted half run plus
  /// a re-queue and a full re-execution on a safe site, i.e. ~2x exec.
  double risk_penalty_weight = 2.0;
};

/// Decode a chromosome into a schedule and score it (lower is better).
/// Jobs are reserved shortest-execution-first (the dispatch order the
/// GaScheduler realises). Each job's expected completion is
///   c_j + risk_penalty_weight * pfail_j * exec_j
/// and the fitness is max_j(expected) + flowtime_weight * mean_j(expected
/// - now). Genes must lie in the job's domain.
double decode_fitness(const GaProblem& problem, const Chromosome& chromosome,
                      const FitnessParams& params);

/// Pure realized batch makespan (absolute latest completion; no risk or
/// flowtime shaping), with the same shortest-first decode order.
double batch_makespan(const GaProblem& problem, const Chromosome& chromosome);

/// The shortest-execution-first order in which a chromosome's assignments
/// are reserved/dispatched (stable for ties).
std::vector<std::size_t> decode_order(const GaProblem& problem,
                                      const Chromosome& chromosome);

/// True iff every gene is a member of the corresponding job's domain.
bool is_feasible(const GaProblem& problem, const Chromosome& chromosome);

}  // namespace gridsched::core
