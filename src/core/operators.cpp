#include "core/operators.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridsched::core {

Chromosome random_chromosome(const GaProblem& problem, util::Rng& rng) {
  Chromosome chromosome(problem.n_jobs());
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    const auto& domain = problem.domains[j];
    chromosome[j] = domain[rng.index(domain.size())];
  }
  return chromosome;
}

std::size_t roulette_select(std::span<const double> fitness, util::Rng& rng) {
  if (fitness.empty()) throw std::invalid_argument("roulette_select: empty");
  const auto [min_it, max_it] = std::minmax_element(fitness.begin(), fitness.end());
  const double worst = *max_it;
  const double range = worst - *min_it;
  if (range <= 0.0) return rng.index(fitness.size());  // all equal: uniform
  // Floor of 10% of the range keeps the worst individual selectable.
  const double floor = 0.1 * range;
  double total = 0.0;
  for (const double f : fitness) total += (worst - f) + floor;
  double ticket = rng.uniform() * total;
  for (std::size_t i = 0; i < fitness.size(); ++i) {
    ticket -= (worst - fitness[i]) + floor;
    if (ticket <= 0.0) return i;
  }
  return fitness.size() - 1;  // numeric edge
}

void crossover_one_point(Chromosome& a, Chromosome& b, util::Rng& rng) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("crossover: length mismatch");
  }
  if (a.size() < 2) return;
  const auto cut = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(a.size()) - 1));
  for (std::size_t i = cut; i < a.size(); ++i) std::swap(a[i], b[i]);
}

void mutate(Chromosome& chromosome, const GaProblem& problem, double per_gene,
            util::Rng& rng) {
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    if (!rng.bernoulli(per_gene)) continue;
    const auto& domain = problem.domains[j];
    chromosome[j] = domain[rng.index(domain.size())];
  }
}

void repair(Chromosome& chromosome, const GaProblem& problem, util::Rng& rng) {
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    const auto& domain = problem.domains[j];
    if (std::find(domain.begin(), domain.end(), chromosome[j]) == domain.end()) {
      chromosome[j] = domain[rng.index(domain.size())];
    }
  }
}

Chromosome resample_genes(const Chromosome& source, std::size_t target_size) {
  if (source.empty()) throw std::invalid_argument("resample_genes: empty source");
  Chromosome out(target_size);
  for (std::size_t i = 0; i < target_size; ++i) {
    out[i] = source[i * source.size() / std::max<std::size_t>(target_size, 1)];
  }
  return out;
}

}  // namespace gridsched::core
