#include "core/operators.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridsched::core {

Chromosome random_chromosome(const GaProblem& problem, util::Rng& rng) {
  Chromosome chromosome(problem.n_jobs());
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    const auto& domain = problem.domains[j];
    chromosome[j] = domain[rng.index(domain.size())];
  }
  return chromosome;
}

void RouletteWheel::rebuild(std::span<const double> fitness) {
  if (fitness.empty()) throw std::invalid_argument("roulette_select: empty");
  n_ = fitness.size();
  const auto [min_it, max_it] = std::minmax_element(fitness.begin(),
                                                    fitness.end());
  const double worst = *max_it;
  const double range = worst - *min_it;
  uniform_ = range <= 0.0;  // all equal: uniform selection
  if (uniform_) return;
  // Floor of 10% of the range keeps the worst individual selectable.
  const double floor = 0.1 * range;
  prefix_.resize(n_);
  double total = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    total += (worst - fitness[i]) + floor;
    prefix_[i] = total;
  }
}

std::size_t RouletteWheel::select(util::Rng& rng) const noexcept {
  if (uniform_) return rng.index(n_);
  const double ticket = rng.uniform() * prefix_[n_ - 1];
  const auto it = std::lower_bound(prefix_.begin(), prefix_.begin() +
                                       static_cast<std::ptrdiff_t>(n_),
                                   ticket);
  const auto index = static_cast<std::size_t>(it - prefix_.begin());
  return std::min(index, n_ - 1);  // numeric edge
}

std::size_t roulette_select(std::span<const double> fitness, util::Rng& rng) {
  RouletteWheel wheel;
  wheel.rebuild(fitness);
  return wheel.select(rng);
}

void crossover_one_point(Chromosome& a, Chromosome& b, util::Rng& rng) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("crossover: length mismatch");
  }
  if (a.size() < 2) return;
  const auto cut = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(a.size()) - 1));
  for (std::size_t i = cut; i < a.size(); ++i) std::swap(a[i], b[i]);
}

void mutate(Chromosome& chromosome, const GaProblem& problem, double per_gene,
            util::Rng& rng) {
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    if (!rng.bernoulli(per_gene)) continue;
    const auto& domain = problem.domains[j];
    chromosome[j] = domain[rng.index(domain.size())];
  }
}

void repair(Chromosome& chromosome, const GaProblem& problem, util::Rng& rng) {
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    const auto& domain = problem.domains[j];
    if (std::find(domain.begin(), domain.end(),
                  chromosome[j]) == domain.end()) {
      chromosome[j] = domain[rng.index(domain.size())];
    }
  }
}

Chromosome resample_genes(const Chromosome& source, std::size_t target_size) {
  if (source.empty())
    throw std::invalid_argument("resample_genes: empty source");
  Chromosome out(target_size);
  for (std::size_t i = 0; i < target_size; ++i) {
    out[i] = source[i * source.size() / std::max<std::size_t>(target_size, 1)];
  }
  return out;
}

}  // namespace gridsched::core
