#include "core/ga_engine.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/operators.hpp"

namespace gridsched::core {

namespace {

void evaluate_all(const GaProblem& problem,
                  const std::vector<Chromosome>& population,
                  std::vector<double>& fitness, const GaParams& params,
                  util::ThreadPool* pool) {
  fitness.resize(population.size());
  const std::size_t volume = population.size() * problem.n_jobs();
  if (pool != nullptr && volume >= params.parallel_threshold) {
    pool->parallel_for(population.size(), [&](std::size_t i) {
      fitness[i] = decode_fitness(problem, population[i], params.fitness);
    });
  } else {
    for (std::size_t i = 0; i < population.size(); ++i) {
      fitness[i] = decode_fitness(problem, population[i], params.fitness);
    }
  }
}

}  // namespace

GaResult evolve(const GaProblem& problem, std::vector<Chromosome> initial,
                const GaParams& params, util::Rng& rng,
                util::ThreadPool* pool) {
  if (problem.n_jobs() == 0) {
    throw std::invalid_argument("evolve: empty problem");
  }
  if (params.population == 0) {
    throw std::invalid_argument("evolve: population must be > 0");
  }

  std::vector<Chromosome> population = std::move(initial);
  for (Chromosome& chromosome : population) {
    if (chromosome.size() != problem.n_jobs() ||
        !is_feasible(problem, chromosome)) {
      throw std::invalid_argument("evolve: infeasible seed chromosome");
    }
  }
  if (population.size() > params.population) {
    population.resize(params.population);
  }
  while (population.size() < params.population) {
    population.push_back(random_chromosome(problem, rng));
  }

  std::vector<double> fitness;
  evaluate_all(problem, population, fitness, params, pool);

  GaResult result;
  result.best_per_generation.reserve(params.generations + 1);
  auto record_best = [&] {
    const std::size_t arg = static_cast<std::size_t>(
        std::min_element(fitness.begin(), fitness.end()) - fitness.begin());
    if (result.best.empty() || fitness[arg] < result.best_fitness) {
      result.best = population[arg];
      result.best_fitness = fitness[arg];
    }
    result.best_per_generation.push_back(result.best_fitness);
  };
  record_best();

  std::vector<Chromosome> next;
  next.reserve(params.population);
  for (std::size_t gen = 0; gen < params.generations; ++gen) {
    next.clear();

    // Elitism: carry the best individuals over unchanged.
    const std::size_t elites = std::min(params.elite_count, population.size());
    if (elites > 0) {
      std::vector<std::size_t> order(population.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(elites),
                        order.end(), [&](std::size_t a, std::size_t b) {
                          return fitness[a] < fitness[b];
                        });
      for (std::size_t e = 0; e < elites; ++e) next.push_back(population[order[e]]);
    }

    while (next.size() < params.population) {
      Chromosome child_a = population[roulette_select(fitness, rng)];
      Chromosome child_b = population[roulette_select(fitness, rng)];
      if (rng.bernoulli(params.crossover_prob)) {
        crossover_one_point(child_a, child_b, rng);
      }
      mutate(child_a, problem, params.mutation_prob, rng);
      mutate(child_b, problem, params.mutation_prob, rng);
      next.push_back(std::move(child_a));
      if (next.size() < params.population) next.push_back(std::move(child_b));
    }

    population.swap(next);
    evaluate_all(problem, population, fitness, params, pool);
    record_best();
  }
  return result;
}

}  // namespace gridsched::core
