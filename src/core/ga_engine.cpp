#include "core/ga_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "core/operators.hpp"

namespace gridsched::core {

namespace {

constexpr double kUnknownFitness = std::numeric_limits<double>::quiet_NaN();
constexpr std::size_t kNoAlias = std::numeric_limits<std::size_t>::max();

/// FNV-1a over the chromosome's genes (one 64-bit round per gene, not per
/// byte: a quarter of the multiplies at identical dispersion for our
/// small-integer site ids); keys the duplicate memo. Collisions are
/// harmless — the memo verifies gene-by-gene equality before reusing.
std::uint64_t chromosome_hash(const Chromosome& chromosome) noexcept {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const sim::SiteId gene : chromosome) {
    hash ^= gene;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Memoized fitness evaluation for one evolve() run. Owns one DecodeScratch
/// per thread-pool chunk so the ~population x generations decodes reuse the
/// same buffers (zero steady-state allocations in the decode itself), and a
/// hash table that lets duplicate chromosomes — elitism copies, crossover
/// of converged parents — reuse an identical individual's score instead of
/// decoding again. Fitness is a pure function of the chromosome, so
/// memoization and parallel evaluation are both result-invariant.
class FitnessEvaluator {
 public:
  FitnessEvaluator(const GaProblem& problem, const GaParams& params,
                   util::ThreadPool* pool)
      : problem_(problem), params_(params), pool_(pool),
        scratches_(pool != nullptr ? pool->size() : 1) {
    // Rank/cell tables are built once and shared; per-chunk scratches only
    // size their own mutable buffers.
    scratches_.front().bind(problem);
    for (std::size_t i = 1; i < scratches_.size(); ++i) {
      scratches_[i].bind_from(scratches_.front());
    }
  }

  /// Fill every NaN entry of `fitness` (parallel to `population`). Known
  /// entries — elites whose fitness was carried across the generation —
  /// are kept as-is and serve as memo sources for their duplicates.
  void evaluate(const std::vector<Chromosome>& population,
                std::vector<double>& fitness, GaResult& stats) {
    const std::size_t n = population.size();
    alias_.assign(n, kNoAlias);
    to_eval_.clear();
    buckets_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      auto& bucket = buckets_[chromosome_hash(population[i])];
      std::size_t representative = kNoAlias;
      for (const std::size_t j : bucket) {
        if (population[j] == population[i]) {
          representative = j;
          break;
        }
      }
      if (!std::isnan(fitness[i])) {  // carried elite: already scored
        if (representative == kNoAlias) bucket.push_back(i);
        continue;
      }
      if (representative != kNoAlias) {
        alias_[i] = representative;
        ++stats.memo_hits;
      } else {
        to_eval_.push_back(i);
        bucket.push_back(i);
      }
    }
    stats.evaluations += to_eval_.size();

    const std::size_t volume = to_eval_.size() * problem_.n_jobs();
    if (pool_ != nullptr && volume >= params_.parallel_threshold) {
      pool_->parallel_for_chunks(
          to_eval_.size(),
          [&](std::size_t begin, std::size_t end, std::size_t chunk) {
            DecodeScratch& scratch = scratches_[chunk];
            for (std::size_t k = begin; k < end; ++k) {
              const std::size_t i = to_eval_[k];
              fitness[i] =
                  decode_fitness(problem_, population[i], params_.fitness,
                                 scratch);
            }
          },
          scratches_.size());
    } else {
      for (const std::size_t i : to_eval_) {
        fitness[i] =
            decode_fitness(problem_, population[i], params_.fitness,
                           scratches_[0]);
      }
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (alias_[i] != kNoAlias) fitness[i] = fitness[alias_[i]];
    }
  }

 private:
  const GaProblem& problem_;
  const GaParams& params_;
  util::ThreadPool* pool_;
  std::vector<DecodeScratch> scratches_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets_;
  std::vector<std::size_t> alias_;   ///< duplicate -> representative index
  std::vector<std::size_t> to_eval_; ///< unique chromosomes needing a decode
};

}  // namespace

GaResult evolve(const GaProblem& problem, std::vector<Chromosome> initial,
                const GaParams& params, util::Rng& rng,
                util::ThreadPool* pool, GaProfile* profile) {
  if (problem.n_jobs() == 0) {
    throw std::invalid_argument("evolve: empty problem");
  }
  if (params.population == 0) {
    throw std::invalid_argument("evolve: population must be > 0");
  }

  std::vector<Chromosome> population = std::move(initial);
  // The only feasibility gate: operators preserve domain membership and
  // length, so the decode fast path below runs unvalidated and noexcept.
  for (Chromosome& chromosome : population) {
    if (chromosome.size() != problem.n_jobs() ||
        !is_feasible(problem, chromosome)) {
      throw std::invalid_argument("evolve: infeasible seed chromosome");
    }
  }
  if (population.size() > params.population) {
    population.resize(params.population);
  }
  while (population.size() < params.population) {
    population.push_back(random_chromosome(problem, rng));
  }

  // Profiling reads state the loop computes anyway (plus a mean reduction)
  // so a profiled run returns a bit-identical GaResult. Clocks only tick
  // when a profile was requested.
  using ProfileClock = std::chrono::steady_clock;
  const ProfileClock::time_point evolve_start =
      // NOLINTNEXTLINE(GS-R05): GaProfile wall ms is diagnostics-only
      profile != nullptr ? ProfileClock::now() : ProfileClock::time_point{};
  ProfileClock::time_point gen_start = evolve_start;
  std::uint64_t seen_evaluations = 0;
  std::uint64_t seen_memo_hits = 0;
  if (profile != nullptr) {
    profile->generations.clear();
    profile->generations.reserve(params.generations + 1);
    profile->total_wall_ms = 0.0;
  }

  GaResult result;
  FitnessEvaluator evaluator(problem, params, pool);
  std::vector<double> fitness(population.size(), kUnknownFitness);
  evaluator.evaluate(population, fitness, result);

  result.best_per_generation.reserve(params.generations + 1);
  auto record_best = [&] {
    const std::size_t arg = static_cast<std::size_t>(
        std::min_element(fitness.begin(), fitness.end()) - fitness.begin());
    if (result.best.empty() || fitness[arg] < result.best_fitness) {
      result.best = population[arg];
      result.best_fitness = fitness[arg];
    }
    result.best_per_generation.push_back(result.best_fitness);
  };
  auto record_profile = [&] {
    if (profile == nullptr) return;
    // NOLINTNEXTLINE(GS-R05): GaProfile wall ms is diagnostics-only
    const ProfileClock::time_point now = ProfileClock::now();
    GaGenerationProfile row;
    row.wall_ms =
        std::chrono::duration<double, std::milli>(now - gen_start).count();
    gen_start = now;
    row.evaluations = result.evaluations - seen_evaluations;
    row.memo_hits = result.memo_hits - seen_memo_hits;
    seen_evaluations = result.evaluations;
    seen_memo_hits = result.memo_hits;
    row.best = result.best_fitness;
    double sum = 0.0;
    for (const double f : fitness) sum += f;
    row.mean = sum / static_cast<double>(fitness.size());
    profile->generations.push_back(row);
  };
  record_best();
  record_profile();

  // Generation buffers ping-pong with the population and chromosomes are
  // copy-assigned in place, so steady-state generations reuse every gene
  // buffer instead of allocating ~population vectors per generation. The
  // RNG draw order matches the push_back formulation exactly (both parents
  // are always drawn and both children mutated, even when the second child
  // is discarded on an odd population boundary).
  RouletteWheel wheel;
  std::vector<Chromosome> next(params.population);
  std::vector<double> next_fitness(params.population);
  std::vector<std::size_t> elite_order(population.size());
  Chromosome spare;
  for (std::size_t gen = 0; gen < params.generations; ++gen) {
    // Watchdog checkpoint: one poll per generation bounds how long an
    // over-budget cell can keep evolving before it surfaces as timed out.
    if (params.cancel != nullptr) params.cancel->check("GA generation");
    std::size_t filled = 0;

    // Elitism: carry the best individuals over unchanged, fitness included,
    // so they are never re-decoded.
    const std::size_t elites = std::min(params.elite_count, population.size());
    if (elites > 0) {
      std::iota(elite_order.begin(), elite_order.end(), std::size_t{0});
      std::partial_sort(elite_order.begin(),
                        elite_order.begin() +
                            static_cast<std::ptrdiff_t>(elites),
                        elite_order.end(), [&](std::size_t a, std::size_t b) {
                          return fitness[a] < fitness[b];
                        });
      for (std::size_t e = 0; e < elites; ++e) {
        next[filled] = population[elite_order[e]];
        next_fitness[filled] = fitness[elite_order[e]];
        ++filled;
      }
    }

    wheel.rebuild(fitness);
    while (filled < params.population) {
      Chromosome& child_a = next[filled];
      Chromosome& child_b =
          filled + 1 < params.population ? next[filled + 1] : spare;
      child_a = population[wheel.select(rng)];
      child_b = population[wheel.select(rng)];
      if (rng.bernoulli(params.crossover_prob)) {
        crossover_one_point(child_a, child_b, rng);
      }
      mutate(child_a, problem, params.mutation_prob, rng);
      mutate(child_b, problem, params.mutation_prob, rng);
      next_fitness[filled] = kUnknownFitness;
      ++filled;
      if (filled < params.population) {
        next_fitness[filled] = kUnknownFitness;
        ++filled;
      }
    }

    population.swap(next);
    fitness.swap(next_fitness);
    evaluator.evaluate(population, fitness, result);
    record_best();
    record_profile();
  }
  if (profile != nullptr) {
    profile->total_wall_ms = std::chrono::duration<double, std::milli>(
                                 // NOLINTNEXTLINE(GS-R05): profile-only
                                 ProfileClock::now() - evolve_start)
                                 .count();
  }
  return result;
}

}  // namespace gridsched::core
