#include "core/ga_problem.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sched/risk_filter.hpp"

namespace gridsched::core {

GaProblem build_problem(const sim::SchedulerContext& context,
                        const security::RiskPolicy& policy) {
  GaProblem problem;
  problem.now = context.now;
  problem.sites = context.sites;
  problem.avail = context.avail;

  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    std::vector<sim::SiteId> domain =
        sched::admissible_sites(context.jobs[j], context.sites, policy);
    if (domain.empty()) continue;  // stays pending this round
    problem.jobs.push_back(context.jobs[j]);
    problem.batch_index.push_back(j);
    problem.domains.push_back(std::move(domain));
  }

  const std::size_t n_sites = problem.sites.size();
  problem.exec.assign(problem.jobs.size() * n_sites,
                      std::numeric_limits<double>::infinity());
  problem.pfail.assign(problem.jobs.size() * n_sites, 0.0);
  for (std::size_t j = 0; j < problem.jobs.size(); ++j) {
    for (std::size_t s = 0; s < n_sites; ++s) {
      if (problem.jobs[j].nodes <= problem.sites[s].nodes) {
        problem.exec[j * n_sites + s] =
            problem.jobs[j].work / problem.sites[s].speed;
      }
      problem.pfail[j * n_sites + s] = security::failure_probability(
          problem.jobs[j].demand, problem.sites[s].security, policy.lambda());
    }
  }
  return problem;
}

std::vector<std::size_t> decode_order(const GaProblem& problem,
                                      const Chromosome& chromosome) {
  std::vector<std::size_t> order(chromosome.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.exec_at(a, chromosome[a]) <
                            problem.exec_at(b, chromosome[b]);
                   });
  return order;
}

namespace {

/// Shared decode: reserve shortest-first, feed each job's expected
/// completion to `consume(job_index, expected_completion)`.
template <typename Consume>
void decode(const GaProblem& problem, const Chromosome& chromosome,
            double risk_penalty, Consume&& consume) {
  if (chromosome.size() != problem.n_jobs()) {
    throw std::invalid_argument("decode: chromosome length mismatch");
  }
  std::vector<sim::NodeAvailability> avail = problem.avail;
  for (const std::size_t j : decode_order(problem, chromosome)) {
    const sim::SiteId s = chromosome[j];
    const double exec = problem.exec_at(j, s);
    const auto window =
        avail[s].reserve(problem.jobs[j].nodes, exec, problem.now);
    consume(j, window.end + risk_penalty * problem.pfail_at(j, s) * exec);
  }
}

}  // namespace

double decode_fitness(const GaProblem& problem, const Chromosome& chromosome,
                      const FitnessParams& params) {
  double worst = problem.now;
  double sum = 0.0;
  decode(problem, chromosome, params.risk_penalty_weight,
         [&](std::size_t, double expected) {
           worst = std::max(worst, expected);
           sum += expected - problem.now;
         });
  const double mean =
      chromosome.empty() ? 0.0 : sum / static_cast<double>(chromosome.size());
  return worst + params.flowtime_weight * mean;
}

double batch_makespan(const GaProblem& problem, const Chromosome& chromosome) {
  double makespan = problem.now;
  decode(problem, chromosome, 0.0, [&](std::size_t, double completion) {
    makespan = std::max(makespan, completion);
  });
  return makespan;
}

bool is_feasible(const GaProblem& problem, const Chromosome& chromosome) {
  if (chromosome.size() != problem.n_jobs()) return false;
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    const auto& domain = problem.domains[j];
    if (std::find(domain.begin(), domain.end(), chromosome[j]) == domain.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace gridsched::core
