#include "core/ga_problem.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "sched/etc_matrix.hpp"
#include "sched/risk_filter.hpp"

namespace gridsched::core {

GaProblem build_problem(const sim::SchedulerContext& context,
                        const security::RiskPolicy& policy) {
  static std::atomic<std::uint64_t> next_epoch{1};
  GaProblem problem;
  problem.epoch = next_epoch.fetch_add(1, std::memory_order_relaxed);
  problem.now = context.now;
  problem.sites = context.sites;
  problem.avail = context.avail;
  problem.site_up = context.site_up;
  problem.exec_model = context.exec;

  for (std::size_t j = 0; j < context.jobs.size(); ++j) {
    if (context.jobs[j].nodes == 0) {
      // A 0-node reservation has always been rejected (previously deep in
      // NodeAvailability::earliest_start); fail fast before the unvalidated
      // decode hot path can see it.
      throw std::invalid_argument("build_problem: job needs >= 1 node");
    }
    // Mask-aware: a churned-down site never enters a domain, so no
    // chromosome — including repaired history matches — can place on it.
    std::vector<sim::SiteId> domain =
        sched::admissible_sites(context, context.jobs[j], policy);
    if (domain.empty()) continue;  // stays pending this round
    problem.jobs.push_back(context.jobs[j]);
    problem.batch_index.push_back(j);
    problem.domains.push_back(std::move(domain));
  }

  // One shared feasibility-gated resolution (sched::EtcMatrix) over the
  // full batch; the kept jobs' rows are gathered through batch_index.
  const std::size_t n_sites = problem.sites.size();
  const sched::EtcMatrix etc(context);
  problem.exec.resize(problem.jobs.size() * n_sites);
  problem.pfail.resize(problem.jobs.size() * n_sites);
  for (std::size_t j = 0; j < problem.jobs.size(); ++j) {
    for (std::size_t s = 0; s < n_sites; ++s) {
      problem.exec[j * n_sites + s] = etc.exec(problem.batch_index[j], s);
      problem.pfail[j * n_sites + s] = security::failure_probability(
          problem.jobs[j].demand, problem.sites[s].security, policy.lambda());
    }
  }
  return problem;
}

void DecodeScratch::bind(const GaProblem& problem) {
  if (binding_ != nullptr && problem.epoch != 0 &&
      problem.epoch == binding_->epoch) {
    return;  // already bound to this exact (immutable) problem
  }
  auto binding = std::make_shared<ProblemBinding>();
  binding->epoch = problem.epoch;
  binding->n_jobs = problem.n_jobs();
  binding->nodes.resize(binding->n_jobs);
  for (std::size_t j = 0; j < binding->n_jobs; ++j) {
    binding->nodes[j] = problem.jobs[j].nodes;
  }

  // Rank the exec matrix once per problem: dense integers whose unsigned
  // order is exactly the doubles' order (equal execs share a rank, and
  // there is no NaN: exec is work/speed or infinity). Each decode then
  // sorts narrow integer keys instead of 64-bit double mappings.
  std::vector<double> distinct = problem.exec;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  binding->cells.resize(problem.exec.size());
  for (std::size_t i = 0; i < problem.exec.size(); ++i) {
    binding->cells[i] = {problem.exec[i], problem.pfail[i],
                         static_cast<std::uint32_t>(
                             std::lower_bound(distinct.begin(),
                                              distinct.end(),
                                              problem.exec[i]) -
                             distinct.begin())};
  }
  const std::size_t max_rank = distinct.empty() ? 0 : distinct.size() - 1;
  binding->rank_bytes = 1;
  while (binding->rank_bytes < 4 &&
         (max_rank >> (8 * binding->rank_bytes)) != 0) {
    ++binding->rank_bytes;
  }

  binding->offset.resize(problem.n_sites() + 1);
  binding->offset[0] = 0;
  for (std::size_t s = 0; s < problem.n_sites(); ++s) {
    binding->offset[s + 1] =
        binding->offset[s] + problem.avail[s].free_times().size();
  }
  binding->pristine.resize(binding->offset.back());
  std::size_t cursor = 0;
  for (const auto& profile : problem.avail) {
    for (const sim::Time t : profile.free_times()) {
      binding->pristine[cursor++] = t;
    }
  }
  binding_ = std::move(binding);
  working_.resize(binding_->pristine.size());
  sort_a_.reserve(binding_->n_jobs);
  sort_b_.reserve(binding_->n_jobs);
  order_.reserve(binding_->n_jobs);
  exec_gather_.reserve(binding_->n_jobs);
  pfail_gather_.reserve(binding_->n_jobs);
}

void DecodeScratch::bind_from(const DecodeScratch& other) {
  assert(other.binding_ != nullptr && "bind_from: source scratch not bound");
  if (binding_ == other.binding_) return;
  binding_ = other.binding_;
  working_.resize(binding_->pristine.size());
  sort_a_.reserve(binding_->n_jobs);
  sort_b_.reserve(binding_->n_jobs);
  order_.reserve(binding_->n_jobs);
  exec_gather_.reserve(binding_->n_jobs);
  pfail_gather_.reserve(binding_->n_jobs);
}

// GS-FASTPATH-BEGIN: per-decode hot path — zero steady-state
// allocations (ROADMAP "Decode fast-path invariants"; gridsched_lint
// GS-R01 rejects stable_sort/inplace_merge/vector/new in this region).
std::span<const DecodeScratch::SortedGene> DecodeScratch::prepare(
    const GaProblem& problem, const Chromosome& chromosome) noexcept {
  assert(binding_ != nullptr && chromosome.size() == binding_->n_jobs &&
         "DecodeScratch::prepare: bind() the problem first");
  std::copy(binding_->pristine.begin(), binding_->pristine.end(),
            working_.begin());
  const std::size_t n = chromosome.size();
  sort_a_.resize(n);
  exec_gather_.resize(n);
  pfail_gather_.resize(n);
  // Single sequential pass: the per-row cell reads prefetch well here, and
  // the decode loop below then only touches these dense gathers.
  const std::size_t n_sites = problem.n_sites();
  const Cell* cells = binding_->cells.data();
  for (std::size_t j = 0; j < n; ++j) {
    const Cell& cell = cells[j * n_sites + chromosome[j]];
    exec_gather_[j] = cell.exec;
    pfail_gather_[j] = cell.pfail;
    sort_a_[j] = (static_cast<std::uint64_t>(cell.rank) << 32) |
                 static_cast<std::uint64_t>(j);
  }
  return sort_genes(n);
}

std::span<const DecodeScratch::SortedGene> DecodeScratch::sort_genes(
    std::size_t n) noexcept {
  // Packed (rank << 32 | index) integers order genes by exec with ties on
  // the original position — exactly stable_sort's order. Below the
  // threshold a plain u64 sort wins.
  constexpr std::size_t kRadixThreshold = 64;
  if (n < kRadixThreshold) {
    std::sort(sort_a_.begin(), sort_a_.end());
    return sort_a_;
  }
  // Stable LSD radix over the rank bytes only (bytes 4..4+rank_bytes of
  // the packed key; the index bytes need no passes — stability plus the
  // ascending initial order already gives the tie order). Trivial digits
  // (all keys share the byte) are skipped.
  const unsigned rank_bytes = binding_->rank_bytes;
  sort_b_.resize(n);
  std::memset(hist_, 0, rank_bytes * sizeof(hist_[0]));
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = sort_a_[i];
    for (unsigned d = 0; d < rank_bytes; ++d) {
      ++hist_[d][(key >> (32 + 8 * d)) & 0xffU];
    }
  }
  SortedGene* cur = sort_a_.data();
  SortedGene* nxt = sort_b_.data();
  for (unsigned d = 0; d < rank_bytes; ++d) {
    std::uint32_t* counts = hist_[d];
    bool trivial = false;
    for (unsigned b = 0; b < 256; ++b) {
      if (counts[b] == n) {
        trivial = true;
        break;
      }
      if (counts[b] != 0) break;  // first non-empty bucket decides
    }
    if (trivial) continue;
    std::uint32_t running = 0;
    for (unsigned b = 0; b < 256; ++b) {
      const std::uint32_t count = counts[b];
      counts[b] = running;
      running += count;
    }
    const unsigned shift = 32 + 8 * d;
    for (std::size_t i = 0; i < n; ++i) {
      const SortedGene gene = cur[i];
      nxt[counts[(gene >> shift) & 0xffU]++] = gene;
    }
    std::swap(cur, nxt);
  }
  return {cur, n};
}

sim::NodeAvailability::Window DecodeScratch::reserve(sim::SiteId s, unsigned k,
                                                     double exec,
                                                     sim::Time now) noexcept {
  sim::Time* free_times = working_.data() + binding_->offset[s];
  const std::size_t n = binding_->offset[s + 1] - binding_->offset[s];
  assert(k >= 1 && k <= n && "DecodeScratch::reserve: bad node count");
  const sim::Time start = std::max(now, free_times[k - 1]);
  const sim::Time end = start + exec;
  // The k earliest-free nodes become free at `end`. Restore sorted order
  // without inplace_merge (which heap-allocates a temporary buffer on
  // every call): entries in [k, p) are < end and slide down; the k
  // reserved nodes — all equal to `end` — land just before p. The linear
  // scan beats a binary search on these <= O(site nodes) profiles.
  std::size_t p = k;
  while (p < n && free_times[p] < end) ++p;
  std::memmove(free_times, free_times + k, (p - k) * sizeof(sim::Time));
  for (std::size_t i = p - k; i < p; ++i) free_times[i] = end;
  return {start, end};
}
// GS-FASTPATH-END

namespace {

/// One scratch per thread for the validating public entry points, so they
/// ride the same allocation-free path as the engine. Deliberate trade-off:
/// each thread that decodes retains the last problem's binding (a few
/// hundred KB at 512 jobs x 16 sites) until it decodes another problem or
/// exits — the price of making repeated one-off calls rebind-free.
DecodeScratch& thread_scratch() {
  thread_local DecodeScratch scratch;
  return scratch;
}

/// Validation for the public (non-scratch) decode entry points. The GA
/// engine validates seeds once in evolve and skips this per evaluation.
/// Node fit is checked against the availability profiles because those are
/// what the arena decode actually indexes (hand-built problems may disagree
/// with sites[s].nodes).
void validate_decode_args(const GaProblem& problem,
                          const Chromosome& chromosome) {
  if (chromosome.size() != problem.n_jobs()) {
    throw std::invalid_argument("decode: chromosome length mismatch");
  }
  if (problem.avail.size() != problem.n_sites()) {
    throw std::invalid_argument("decode: avail/sites size mismatch");
  }
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    const sim::SiteId s = chromosome[j];
    if (s >= problem.n_sites() || problem.jobs[j].nodes == 0 ||
        problem.jobs[j].nodes > problem.avail[s].free_times().size()) {
      throw std::invalid_argument("decode: gene assigns an unusable site");
    }
  }
}

}  // namespace

// GS-FASTPATH-BEGIN: the noexcept scratch-backed entry points the GA
// engine calls per evaluation (the validating overloads between them only
// bind a thread-local scratch — no per-decode heap traffic either).
double decode_fitness(const GaProblem& problem, const Chromosome& chromosome,
                      const FitnessParams& params,
                      DecodeScratch& scratch) noexcept {
  double worst = problem.now;
  double sum = 0.0;
  decode_into(scratch, problem, chromosome, params.risk_penalty_weight,
              [&](std::size_t, double expected) {
                worst = std::max(worst, expected);
                sum += expected - problem.now;
              });
  const double mean =
      chromosome.empty() ? 0.0 : sum / static_cast<double>(chromosome.size());
  return worst + params.flowtime_weight * mean;
}

double decode_fitness(const GaProblem& problem, const Chromosome& chromosome,
                      const FitnessParams& params) {
  validate_decode_args(problem, chromosome);
  DecodeScratch& scratch = thread_scratch();
  scratch.bind(problem);
  return decode_fitness(problem, chromosome, params, scratch);
}

double batch_makespan(const GaProblem& problem, const Chromosome& chromosome,
                      DecodeScratch& scratch) noexcept {
  double makespan = problem.now;
  decode_into(scratch, problem, chromosome, 0.0,
              [&](std::size_t, double completion) {
                makespan = std::max(makespan, completion);
              });
  return makespan;
}

double batch_makespan(const GaProblem& problem, const Chromosome& chromosome) {
  validate_decode_args(problem, chromosome);
  DecodeScratch& scratch = thread_scratch();
  scratch.bind(problem);
  return batch_makespan(problem, chromosome, scratch);
}

std::span<const std::size_t> decode_order_into(
    DecodeScratch& scratch, const GaProblem& problem,
    const Chromosome& chromosome) noexcept {
  const auto sorted = scratch.prepare(problem, chromosome);
  scratch.order_.resize(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    scratch.order_[i] = DecodeScratch::gene_index(sorted[i]);
  }
  return scratch.order_;
}
// GS-FASTPATH-END

std::vector<std::size_t> decode_order(const GaProblem& problem,
                                      const Chromosome& chromosome) {
  // One definition of the golden order: the retained reference (which the
  // scratch path is tested against bit for bit).
  return decode_order_reference(problem, chromosome);
}

bool is_feasible(const GaProblem& problem, const Chromosome& chromosome) {
  if (chromosome.size() != problem.n_jobs()) return false;
  for (std::size_t j = 0; j < chromosome.size(); ++j) {
    const auto& domain = problem.domains[j];
    if (std::find(domain.begin(), domain.end(),
                  chromosome[j]) == domain.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace gridsched::core
