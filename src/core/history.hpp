// The "time" dimension of the STGA (paper Section 3): an LRU lookup table
// mapping batch signatures — (site availability, ETC matrix, security
// demands), each flattened to a vector — to the best schedule previously
// found for a similar batch. Similarity follows Eq. 2, normalised per
// DESIGN.md S3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/ga_problem.hpp"

namespace gridsched::core {

/// Eq. 2 exactly as printed: 1 - sum|a_i-b_i| / max{max a, max b}. Included
/// for reference/tests; unnormalised, so it is negative for long distant
/// vectors. Vectors must have equal, non-zero length.
double similarity_raw(std::span<const double> a, std::span<const double> b);

/// Normalised Eq. 2 (default): 1 - mean|a_i-b_i| / max{max a, max b}, with
/// nearest-neighbour resampling when lengths differ. 1 for identical
/// vectors, scale-invariant, >= 0 when entries are non-negative. Two empty
/// vectors are identical (1); empty vs non-empty is 0.
double vector_similarity(std::span<const double> a, std::span<const double> b);

/// The three lookup-key parameters of paper Section 3.
struct BatchSignature {
  std::vector<double> avail;    ///< per site: mean node free time - now
  std::vector<double> etc;      ///< flattened exec matrix (0 where infeasible)
  std::vector<double> demands;  ///< per job SD
};

BatchSignature make_signature(const GaProblem& problem);

/// Average of the three per-parameter similarities (paper Section 3).
double signature_similarity(const BatchSignature& a, const BatchSignature& b);

class HistoryTable {
 public:
  explicit HistoryTable(std::size_t capacity = 150, double threshold = 0.8);

  struct Match {
    const Chromosome* chromosome = nullptr;
    double similarity = 0.0;
  };

  /// Entries with similarity >= threshold, best first, at most
  /// `max_matches`. Matched entries are marked recently-used.
  std::vector<Match> lookup(const BatchSignature& signature,
                            std::size_t max_matches = 8);

  /// Insert a solved batch. A near-duplicate entry (similarity >= 0.999) is
  /// overwritten in place; otherwise the least recently used entry is
  /// evicted once the table is full.
  void insert(BatchSignature signature, Chromosome best);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double threshold() const noexcept { return threshold_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    BatchSignature signature;
    Chromosome best;
    std::uint64_t stamp = 0;
  };

  std::size_t capacity_;
  double threshold_;
  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace gridsched::core
