#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridsched::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) {
    // A silent 0.0 here once masked empty-sample reporting bugs; the
    // quantile of nothing has no value to return.
    throw std::invalid_argument("percentile: empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> sample) {
  RunningStats stats;
  for (const double x : sample) stats.add(x);
  return stats.mean();
}

double stddev_of(std::span<const double> sample) {
  RunningStats stats;
  for (const double x : sample) stats.add(x);
  return stats.stddev();
}

}  // namespace gridsched::util
