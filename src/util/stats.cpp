#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <stdexcept>

namespace gridsched::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth_t() const noexcept {
  if (n_ < 2) return 0.0;
  return t_critical_95(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) {
    // A silent 0.0 here once masked empty-sample reporting bugs; the
    // quantile of nothing has no value to return.
    throw std::invalid_argument("percentile: empty sample");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> sample) {
  RunningStats stats;
  for (const double x : sample) stats.add(x);
  return stats.mean();
}

double stddev_of(std::span<const double> sample) {
  RunningStats stats;
  for (const double x : sample) stats.add(x);
  return stats.stddev();
}

double t_critical_95(std::size_t dof) {
  if (dof == 0) {
    throw std::invalid_argument("t_critical_95: dof must be >= 1");
  }
  // 0.975 quantiles of Student's t (standard tables), exact for dof <= 30.
  static constexpr double kTable[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof <= 30) return kTable[dof - 1];
  // Piecewise-linear through the classic anchor rows down to z.
  struct Anchor {
    double dof;
    double t;
  };
  static constexpr Anchor kAnchors[] = {
      {30.0, 2.042}, {40.0, 2.021}, {60.0, 2.000}, {120.0, 1.980}};
  const auto d = static_cast<double>(dof);
  for (std::size_t i = 0; i + 1 < std::size(kAnchors); ++i) {
    if (d <= kAnchors[i + 1].dof) {
      const double frac =
          (d - kAnchors[i].dof) / (kAnchors[i + 1].dof - kAnchors[i].dof);
      return kAnchors[i].t + frac * (kAnchors[i + 1].t - kAnchors[i].t);
    }
  }
  return 1.96;
}

Summary summarize(std::span<const double> sample) {
  if (sample.empty()) {
    throw std::invalid_argument("summarize: empty sample");
  }
  RunningStats stats;
  for (const double x : sample) stats.add(x);
  return summarize(stats);
}

Summary summarize(const RunningStats& stats) noexcept {
  Summary summary;
  summary.count = stats.count();
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.ci95 = stats.ci95_halfwidth_t();
  return summary;
}

}  // namespace gridsched::util
