// Streaming and batch statistics used by the metrics and experiment layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace gridsched::util {

/// Welford online mean/variance accumulator; numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept {
    return mean_ * static_cast<double>(n_);
  }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of an approximate 95% confidence interval (normal z=1.96).
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  /// Half-width of a small-n-aware 95% confidence interval using the
  /// Student's t critical value for n-1 degrees of freedom. This is what
  /// replication counts of 3-10 actually need — the z interval is ~2x too
  /// narrow at n=3. 0 for n < 2.
  [[nodiscard]] double ci95_halfwidth_t() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation percentile of an unsorted sample (copies + sorts).
/// q is clamped to [0, 1]. Throws std::invalid_argument on an empty sample
/// — callers must guard (metrics/bench reporting checks count() first)
/// rather than silently reporting a 0.0 quantile.
double percentile(std::span<const double> sample, double q);

/// Mean of a sample (0 for empty).
double mean_of(std::span<const double> sample);

/// Sample standard deviation (n-1; 0 for n < 2).
double stddev_of(std::span<const double> sample);

/// Two-sided 95% critical value of Student's t with `dof` degrees of
/// freedom (the 0.975 quantile): exact to 3 decimals for dof <= 30,
/// piecewise-interpolated to the normal limit 1.96 beyond. Requires
/// dof >= 1 (throws std::invalid_argument otherwise).
double t_critical_95(std::size_t dof);

/// Batch summary of a sample: count, mean, sample stddev and the t-aware
/// 95% CI half-width. The aggregation surface the campaign layer reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< n-1 denominator; 0 for count < 2
  double ci95 = 0.0;     ///< t-distribution half-width; 0 for count < 2
};

/// Summarize a sample / accumulator. The span overload throws
/// std::invalid_argument on an empty sample (same policy as percentile —
/// empty summaries masked reporting bugs); the RunningStats overload
/// returns a zero Summary for an empty accumulator since callers already
/// hold the count.
Summary summarize(std::span<const double> sample);
Summary summarize(const RunningStats& stats) noexcept;

}  // namespace gridsched::util
