#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace gridsched::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need >= 1 column");
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (cells_.empty()) row();
  if (cells_.back().size() >= headers_.size()) {
    throw std::out_of_range("Table: row has too many cells");
  }
  cells_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  char buffer[64];
  if (std::abs(value) >= 1e6 || (value != 0.0 && std::abs(value) < 1e-3)) {
    std::snprintf(buffer, sizeof(buffer), "%.*e", precision, value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  }
  return cell(std::string(buffer));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t r, std::size_t c) const {
  return cells_.at(r).at(c);
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] =
      headers_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string{};
      out += text;
      out.append(widths[c] - text.size() + (c + 1 < headers_.size() ? 2 : 0),
                 ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  std::string out;
  emit_row(headers_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : cells_) emit_row(row, out);
  return out;
}

std::string Table::csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) out += ',';
      if (c < row.size()) out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

std::string format_si(double value, const std::string& unit) {
  static constexpr const char* kSuffix[] = {"", "k", "M", "G", "T"};
  int tier = 0;
  double scaled = value;
  while (std::abs(scaled) >= 1000.0 && tier < 4) {
    scaled /= 1000.0;
    ++tier;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g%s%s%s", scaled, kSuffix[tier],
                unit.empty() ? "" : " ", unit.c_str());
  return std::string(buffer);
}

}  // namespace gridsched::util
