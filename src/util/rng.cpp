#include "util/rng.hpp"

#include <cmath>

namespace gridsched::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng SeedMix::rng() const noexcept { return Rng(seed()); }

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
  SplitMix64 mix(seed);
  for (auto& word : s_) word = mix.next();
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
      0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  // Lemire's nearly-divisionless bounded draw with rejection for exactness.
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(gen_());
  }
  std::uint64_t x = gen_();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t threshold = (0ULL - range) % range;
    while (l < threshold) {
      x = gen_();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double rate) noexcept {
  // Inversion; guard against log(0).
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

}  // namespace gridsched::util
