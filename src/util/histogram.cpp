#include "util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace gridsched::util {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (buckets == 0)
    throw std::invalid_argument("Histogram: buckets must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: need hi > lo");
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto bucket = static_cast<std::size_t>((x - lo_) / bucket_width_);
    bucket = std::min(bucket, counts_.size() - 1);  // FP edge at hi boundary
    ++counts_[bucket];
  }
}

double Histogram::bucket_lo(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range("Histogram::bucket_lo");
  return lo_ + bucket_width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + bucket_width_;
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = counts_.empty()
      ? 0
      : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar = peak ? counts_[b] * width / peak : 0;
    std::snprintf(line, sizeof(line), "[%12.4g, %12.4g) %8zu ",
                  bucket_lo(b), bucket_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace gridsched::util
