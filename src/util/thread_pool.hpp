// A small fixed-size thread pool with a blocking work queue and a
// parallel_for helper used for GA fitness evaluation and experiment
// replication fan-out.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gridsched::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task and get a future for its result. Exceptions thrown by
  /// the task are captured in the future.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit on stopped pool");
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool, blocking until all complete.
  /// Work is split into contiguous chunks (one per worker by default).
  /// The first exception thrown by any invocation is rethrown on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t chunks = 0);

  /// Chunk-aware parallel_for: fn(begin, end, chunk) runs once per
  /// contiguous chunk, with chunk indices in [0, chunks). Lets callers pool
  /// per-chunk workspaces (e.g. one core::DecodeScratch per chunk for GA
  /// fitness evaluation) instead of allocating per item. `chunks` is capped
  /// at n; 0 picks size() * 4 for load balancing.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
      std::size_t chunks = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide default pool (lazily constructed, hardware_concurrency).
ThreadPool& global_pool();

}  // namespace gridsched::util
