// A small fixed-size thread pool with a blocking work queue and a
// parallel_for helper used for GA fitness evaluation and experiment
// replication fan-out.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace gridsched::util {

/// Several workers of one parallel_for failed. Every worker's what() is
/// preserved (messages(), and all of them joined into what()) so a
/// campaign abort can name every failed cell instead of only the first.
/// A single worker failure rethrows the original exception unchanged —
/// this type only appears for genuinely concurrent failures.
class AggregateError : public std::runtime_error {
 public:
  explicit AggregateError(std::vector<std::string> messages)
      : std::runtime_error(join(messages)), messages_(std::move(messages)) {}

  [[nodiscard]] const std::vector<std::string>& messages() const noexcept {
    return messages_;
  }

 private:
  static std::string join(const std::vector<std::string>& messages) {
    std::string what =
        std::to_string(messages.size()) + " parallel tasks failed:";
    for (const std::string& message : messages) {
      what += "\n  - " + message;
    }
    return what;
  }

  std::vector<std::string> messages_;
};

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task and get a future for its result. Exceptions thrown by
  /// the task are captured in the future.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit on stopped pool");
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool, blocking until all complete.
  /// Work is split into contiguous chunks (one per worker by default).
  /// A single failing chunk rethrows its exception unchanged; when several
  /// chunks fail concurrently an AggregateError carrying every what() is
  /// thrown instead (no failure is ever silently dropped).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t chunks = 0);

  /// Chunk-aware parallel_for: fn(begin, end, chunk) runs once per
  /// contiguous chunk, with chunk indices in [0, chunks). Lets callers pool
  /// per-chunk workspaces (e.g. one core::DecodeScratch per chunk for GA
  /// fitness evaluation) instead of allocating per item. `chunks` is capped
  /// at n; 0 picks size() * 4 for load balancing.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
      std::size_t chunks = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide default pool (lazily constructed, hardware_concurrency).
ThreadPool& global_pool();

}  // namespace gridsched::util
