#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace gridsched::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t chunks) {
  parallel_for_chunks(
      n,
      [&fn](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      },
      chunks);
}

void ThreadPool::parallel_for_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t chunks) {
  if (n == 0) return;
  if (chunks == 0) chunks = std::min(n, size() * 4);
  chunks = std::min(chunks, n);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < rem ? 1 : 0);
    const std::size_t end = begin + len;
    futures.push_back(submit([&fn, begin, end, c] {
      fn(begin, end, c);
    }));
    begin = end;
  }
  // Drain every future before reporting: a rethrow mid-drain would leave
  // later chunks running against destroyed caller state. One failure
  // rethrows the original exception (type intact — CancelledError vs
  // plain faults stay distinguishable); several failures aggregate into
  // one AggregateError that preserves every what().
  std::vector<std::exception_ptr> errors;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      errors.push_back(std::current_exception());
    }
  }
  if (errors.size() == 1) std::rethrow_exception(errors.front());
  if (errors.size() > 1) {
    std::vector<std::string> messages;
    messages.reserve(errors.size());
    for (const std::exception_ptr& error : errors) {
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        messages.emplace_back(e.what());
      } catch (...) {
        messages.emplace_back("unknown non-std exception");
      }
    }
    throw AggregateError(std::move(messages));
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gridsched::util
