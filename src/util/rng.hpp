// Deterministic random number generation for the simulator.
//
// Every stochastic component of the library draws from an explicitly seeded
// Rng instance. Replication streams are derived from a master seed with
// SplitMix64 so that runs are bit-reproducible regardless of thread count.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <vector>

namespace gridsched::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state and to derive
/// independent child-stream seeds. Passes BigCrush when used as a generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Rng;

/// Deterministic 64-bit seed derivation from a master seed and an ordered
/// sequence of mixed-in coordinates (integers and/or strings). Each mix is
/// a full SplitMix64-style avalanche, so adjacent coordinates land far
/// apart and order matters: mix(1).mix(2) != mix(2).mix(1). This is the
/// canonical replacement for ad-hoc `seed + i` stream derivation in sweep
/// and bench loops — and the campaign layer's per-cell seeding
/// (seed = SeedMix(spec_seed).mix(scenario).mix(policy).mix(rep)), which
/// makes cell results independent of shard order and thread count.
class SeedMix {
 public:
  explicit constexpr SeedMix(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr SeedMix& mix(std::uint64_t value) noexcept {
    state_ = avalanche(state_ ^ (value + 0x9e3779b97f4a7c15ULL));
    return *this;
  }

  /// Strings hash as FNV-1a(bytes) then length, so "ab","c" and "a","bc"
  /// derive different seeds.
  constexpr SeedMix& mix(std::string_view text) noexcept {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char ch : text) {
      hash ^= static_cast<unsigned char>(ch);
      hash *= 0x100000001b3ULL;
    }
    mix(hash);
    return mix(text.size());
  }

  /// Finalized seed (state through one more avalanche, so a bare
  /// SeedMix(s).seed() already decorrelates adjacent master seeds).
  [[nodiscard]] constexpr std::uint64_t seed() const noexcept {
    return avalanche(state_);
  }

  /// Generator seeded with seed().
  [[nodiscard]] Rng rng() const noexcept;

 private:
  /// SplitMix64 finalizer: bijective, full avalanche.
  static constexpr std::uint64_t avalanche(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed =
                              0x9a1b3c5d7e9f0123ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls to operator(); used to create non-overlapping
  /// subsequences.
  void long_jump() noexcept;

  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return s_;
  }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Convenience façade bundling a generator with the distributions the
/// simulator needs. All draws are inline-able and allocation-free.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) noexcept : gen_(seed) {}

  /// Derive an independent child stream; deterministic in (seed, index).
  [[nodiscard]] static Rng child(std::uint64_t master_seed,
                                 std::uint64_t index) noexcept {
    SplitMix64 mix(master_seed ^ (0xc2b2ae3d27d4eb4fULL * (index + 1)));
    return Rng(mix.next());
  }

  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_int(0,
                                                static_cast<std::int64_t>(n) -
                                                    1));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Pick an element uniformly from a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  Xoshiro256StarStar gen_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gridsched::util
