// Deterministic random number generation for the simulator.
//
// Every stochastic component of the library draws from an explicitly seeded
// Rng instance. Replication streams are derived from a master seed with
// SplitMix64 so that runs are bit-reproducible regardless of thread count.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace gridsched::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state and to derive
/// independent child-stream seeds. Passes BigCrush when used as a generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9a1b3c5d7e9f0123ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls to operator(); used to create non-overlapping
  /// subsequences.
  void long_jump() noexcept;

  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept { return s_; }

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Convenience façade bundling a generator with the distributions the
/// simulator needs. All draws are inline-able and allocation-free.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) noexcept : gen_(seed) {}

  /// Derive an independent child stream; deterministic in (seed, index).
  [[nodiscard]] static Rng child(std::uint64_t master_seed, std::uint64_t index) noexcept {
    SplitMix64 mix(master_seed ^ (0xc2b2ae3d27d4eb4fULL * (index + 1)));
    return Rng(mix.next());
  }

  std::uint64_t next_u64() noexcept { return gen_(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

  /// Pick an element uniformly from a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  Xoshiro256StarStar gen_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gridsched::util
