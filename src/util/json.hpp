// Dependency-free JSON reading and writing for experiment specs and
// result artifacts. The reader is a strict recursive-descent parser
// (RFC 8259 subset: no comments, no trailing commas, duplicate object
// keys rejected) that reports line:column positions on malformed input.
// The writer produces *stable* output — object keys in the order the
// caller emits them, doubles via shortest-exact %.17g — so artifacts are
// byte-identical across runs and thread counts.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace gridsched::util::json {

class Value;

using Array = std::vector<Value>;
/// Object members in document order (specs read naturally, artifacts
/// render deterministically).
using Members = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() noexcept : kind_(Kind::kNull) {}
  explicit Value(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) noexcept : kind_(Kind::kNumber), number_(n) {}
  /// Parser-internal: a number plus its source token, so as_int/as_uint
  /// can recover integers beyond double's 2^53 exact range (uint64 seeds).
  Value(double n, std::string token)
      : kind_(Kind::kNumber), number_(n), string_(std::move(token)) {}
  explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit Value(Array items);
  explicit Value(Members members);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw std::runtime_error naming the actual kind on
  /// mismatch so spec errors read well ("expected number, got string").
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// as_number() narrowed; throws when the value is not integral or out
  /// of range for int64.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Members& members() const;

  /// Object lookup: find() returns nullptr when absent, at() throws.
  [[nodiscard]] const Value* find(std::string_view key) const;
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Human-readable kind name ("object", "number", ...).
  [[nodiscard]] static std::string_view kind_name(Kind kind) noexcept;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  /// Indirect so Value stays declarable before Array/Members are complete.
  std::shared_ptr<const Array> array_;
  std::shared_ptr<const Members> members_;
};

/// Strict-parsing helper: throws std::invalid_argument naming the first
/// member of `object` whose key is not in `allowed` ("unknown key \"k\"
/// in <what>"), so spec typos fail loudly instead of silently running
/// defaults. Every parser that reads a JSON object by key calls this on
/// the object (enforced by gridsched_lint GS-R07).
void check_keys(const Value& object,
                std::initializer_list<std::string_view> allowed,
                std::string_view what);

/// Parse a complete JSON document; throws std::runtime_error with a
/// "json parse error at line L, column C: ..." message on malformed input
/// (including trailing content after the top-level value).
Value parse(std::string_view text);

/// Parse a JSON file; errors are prefixed with the path.
Value parse_file(const std::string& path);

/// Stable serialization helpers for hand-built artifacts.

/// JSON string literal with quotes, escaping per RFC 8259.
std::string quote(std::string_view text);

/// Shortest exact double representation (round-trips bit-exactly, stable
/// byte output for a given bit pattern). Non-finite values throw —
/// JSON has no encoding for them and artifacts must not silently rewrite
/// them to null.
std::string number(double value);

}  // namespace gridsched::util::json
