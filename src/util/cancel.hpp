// Cooperative cancellation for long-running simulation work.
//
// A CancelToken is shared between a controller (which may cancel() it or
// arm a wall-clock deadline) and workers that poll it at natural
// checkpoint boundaries — the simulation kernel checks at every batch
// cycle, the GA engine once per generation — and bail out by throwing
// CancelledError from check(). Cancellation is therefore prompt (bounded
// by one batch cycle / one GA generation of work) without any
// asynchronous thread interruption, and a cancelled run produces NO
// partial artifacts: the exception unwinds before any sink runs.
//
// Determinism note: the *decision points* are deterministic (cycle and
// generation boundaries), but whether a deadline has expired at a given
// decision point depends on host wall-clock speed. Timed-out cells are
// therefore excluded from byte-stable aggregates the same way failed
// cells are (see exp::campaign) — a deadline must never gate anything
// that feeds a committed artifact of a successful run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace gridsched::util {

/// Thrown by CancelToken::check() when the token was cancelled or its
/// deadline expired. A distinct type so callers can classify "gave up on
/// purpose" (timed out / cancelled) separately from real faults.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never expires on its own; only cancel() stops it.
  CancelToken() = default;

  /// A token whose deadline is `seconds` of wall time from now.
  /// seconds <= 0 arms an already-expired deadline (useful in tests).
  /// (Prvalue return: atomics make the token non-movable, so the factory
  /// constructs directly into the caller's object.)
  static CancelToken with_deadline(double seconds) {
    return CancelToken(seconds);
  }

  /// Request cancellation (thread-safe; idempotent).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool expired() const noexcept {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// True when a cooperative worker should stop at its next checkpoint.
  [[nodiscard]] bool stop_requested() const noexcept {
    return cancelled() || expired();
  }

  /// Checkpoint: record the poll, then throw CancelledError naming
  /// `where` if the token was cancelled or the deadline has passed.
  void check(const char* where) const {
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (cancelled()) {
      throw CancelledError(std::string("cancelled at ") + where);
    }
    if (expired()) {
      throw CancelledError(std::string("wall-clock budget exhausted at ") +
                           where);
    }
  }

  /// Number of check() polls so far — observability for tests asserting
  /// that a run actually honoured its token.
  [[nodiscard]] std::uint64_t checks() const noexcept {
    return checks_.load(std::memory_order_relaxed);
  }

 private:
  explicit CancelToken(double deadline_seconds)
      : has_deadline_(true),
        deadline_(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(deadline_seconds))) {}

  std::atomic<bool> cancelled_{false};
  /// Poll counter (mutable: check() is conceptually const for workers).
  mutable std::atomic<std::uint64_t> checks_{0};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace gridsched::util
