#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace gridsched::util::json {

Value::Value(Array items)
    : kind_(Kind::kArray),
      array_(std::make_shared<const Array>(std::move(items))) {}

Value::Value(Members members)
    : kind_(Kind::kObject),
      members_(std::make_shared<const Members>(std::move(members))) {}

std::string_view Value::kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return "bool";
    case Kind::kNumber: return "number";
    case Kind::kString: return "string";
    case Kind::kArray: return "array";
    case Kind::kObject: return "object";
  }
  return "?";
}

namespace {

[[noreturn]] void type_error(Value::Kind wanted, Value::Kind got) {
  throw std::runtime_error(std::string("json: expected ") +
                           std::string(Value::kind_name(wanted)) + ", got " +
                           std::string(Value::kind_name(got)));
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) type_error(Kind::kBool, kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  return number_;
}

namespace {

/// True when a parsed number's source token is plain decimal (no
/// fraction/exponent) — recoverable exactly even past double's 2^53 range.
bool is_plain_integer_token(const std::string& token) {
  return !token.empty() &&
         token.find_first_of(".eE") == std::string::npos;
}

}  // namespace

std::int64_t Value::as_int() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  if (is_plain_integer_token(string_)) {
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(string_.c_str(), &end, 10);
    if (errno == ERANGE || *end != '\0') {
      throw std::runtime_error("json: integer out of int64 range: " + string_);
    }
    return parsed;
  }
  // Programmatic or fraction/exponent-form numbers go through the double.
  const double n = number_;
  if (n != std::floor(n) || n < -9.007199254740992e15 ||
      n > 9.007199254740992e15) {  // beyond 2^53 a double can't prove exactness
    throw std::runtime_error("json: expected integer, got " + number(n));
  }
  return static_cast<std::int64_t>(n);
}

std::uint64_t Value::as_uint() const {
  if (kind_ != Kind::kNumber) type_error(Kind::kNumber, kind_);
  if (is_plain_integer_token(string_)) {
    if (string_.front() == '-') {
      throw std::runtime_error("json: expected non-negative integer, got " +
                               string_);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(string_.c_str(), &end, 10);
    if (errno == ERANGE || *end != '\0') {
      throw std::runtime_error("json: integer out of uint64 range: " + string_);
    }
    return parsed;
  }
  const std::int64_t n = as_int();
  if (n < 0) {
    throw std::runtime_error("json: expected non-negative integer, got " +
                             std::to_string(n));
  }
  return static_cast<std::uint64_t>(n);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) type_error(Kind::kString, kind_);
  return string_;
}

const Array& Value::items() const {
  if (kind_ != Kind::kArray) type_error(Kind::kArray, kind_);
  return *array_;
}

const Members& Value::members() const {
  if (kind_ != Kind::kObject) type_error(Kind::kObject, kind_);
  return *members_;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* value = find(key);
  if (value == nullptr) {
    throw std::runtime_error("json: missing key \"" + std::string(key) + "\"");
  }
  return *value;
}

namespace {

/// Strict recursive-descent parser over a string_view, tracking line and
/// column for error messages. Depth-limited to keep adversarial inputs
/// from overflowing the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw std::runtime_error("json parse error at line " +
                             std::to_string(line) + ", column " +
                             std::to_string(column) + ": " + what);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_whitespace() noexcept {
    while (!at_end()) {
      const char ch = peek();
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  void expect(char ch) {
    if (at_end() || peek() != ch) {
      fail(std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  bool consume(char ch) noexcept {
    if (!at_end() && peek() == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal (expected " + std::string(literal) + ")");
    }
    pos_ += literal.size();
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't': expect_literal("true"); return Value(true);
      case 'f': expect_literal("false"); return Value(false);
      case 'n': expect_literal("null"); return Value();
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Members members;
    skip_whitespace();
    if (consume('}')) return Value(std::move(members));
    while (true) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [existing, value] : members) {
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      if (consume(',')) continue;
      expect('}');
      return Value(std::move(members));
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Array items;
    skip_whitespace();
    if (consume(']')) return Value(std::move(items));
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (consume(',')) continue;
      expect(']');
      return Value(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (static_cast<unsigned char>(ch) < 0x20) {
        fail("unescaped control character in string");
      }
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("truncated \\u escape");
      const char ch = text_[pos_++];
      code <<= 4;
      if (ch >= '0' && ch <= '9') {
        code |= static_cast<std::uint32_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        code |= static_cast<std::uint32_t>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        code |= static_cast<std::uint32_t>(ch - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (!consume('\\') || !consume('u')) fail("unpaired surrogate");
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    consume('-');
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;  // leading zero admits no further integer digits
    } else {
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (consume('.')) {
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (!at_end() &&
             std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    // The grammar above admits exactly what strtod parses; null-terminate
    // via a local copy since string_view is not guaranteed terminated.
    std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) fail("number out of range");
    // Keep the token: integers beyond 2^53 survive as_int/as_uint exactly.
    return Value(value, std::move(token));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

void check_keys(const Value& object,
                std::initializer_list<std::string_view> allowed,
                std::string_view what) {
  for (const auto& [key, value] : object.members()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::invalid_argument("unknown key \"" + key + "\" in " +
                                  std::string(what));
    }
  }
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse(buffer.str());
  } catch (const std::exception& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("json::number: non-finite value");
  }
  // Shortest representation that round-trips: try increasing precision.
  char buffer[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

}  // namespace gridsched::util::json
