#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <stdexcept>

namespace gridsched::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level '" + name +
                              "' (choices: " + log_level_names() + ")");
}

const char* log_level_names() noexcept {
  return "debug, info, warn, error, off";
}

namespace detail {
std::string format_log(const char* fmt, ...) {
  char buffer[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return std::string(buffer);
}
}  // namespace detail

}  // namespace gridsched::util
