// Fixed-range linear histogram, used for workload validation and reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gridsched::util {

class Histogram {
 public:
  /// Buckets span [lo, hi); values outside are counted in under/overflow.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t count(std::size_t bucket) const {
    return counts_.at(bucket);
  }
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

  /// ASCII bar rendering, one bucket per line.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace gridsched::util
