// ASCII table and CSV rendering for benchmark/experiment reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gridsched::util {

/// Column-aligned plain-text table with a header row. Cells are strings;
/// numeric helpers format with sensible defaults.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(std::string value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(long long value);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] const std::string& at(std::size_t r, std::size_t c) const;

  /// Render with column alignment and a separator under the header.
  [[nodiscard]] std::string str() const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format seconds in engineering style, e.g. "1.53e6 s" -> "1.53M s".
std::string format_si(double value, const std::string& unit = "");

}  // namespace gridsched::util
