// Leveled stderr logging. Quiet by default so bench output stays clean.
#pragma once

#include <cstdio>
#include <string>

namespace gridsched::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& message);

/// Parse a CLI level name ("debug", "info", "warn", "error", "off");
/// throws std::invalid_argument listing the choices otherwise.
LogLevel parse_log_level(const std::string& name);

/// The names parse_log_level accepts, in severity order (CLI help text).
[[nodiscard]] const char* log_level_names() noexcept;

namespace detail {
std::string format_log(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define GS_LOG_DEBUG(...)                                         \
  do {                                                            \
    if (::gridsched::util::log_level() <=                         \
        ::gridsched::util::LogLevel::kDebug)                      \
      ::gridsched::util::log_message(                             \
          ::gridsched::util::LogLevel::kDebug,                    \
          ::gridsched::util::detail::format_log(__VA_ARGS__));    \
  } while (0)

#define GS_LOG_INFO(...)                                          \
  do {                                                            \
    if (::gridsched::util::log_level() <=                         \
        ::gridsched::util::LogLevel::kInfo)                       \
      ::gridsched::util::log_message(                             \
          ::gridsched::util::LogLevel::kInfo,                     \
          ::gridsched::util::detail::format_log(__VA_ARGS__));    \
  } while (0)

#define GS_LOG_WARN(...)                                          \
  do {                                                            \
    if (::gridsched::util::log_level() <=                         \
        ::gridsched::util::LogLevel::kWarn)                       \
      ::gridsched::util::log_message(                             \
          ::gridsched::util::LogLevel::kWarn,                     \
          ::gridsched::util::detail::format_log(__VA_ARGS__));    \
  } while (0)

#define GS_LOG_ERROR(...)                                         \
  do {                                                            \
    if (::gridsched::util::log_level() <=                         \
        ::gridsched::util::LogLevel::kError)                      \
      ::gridsched::util::log_message(                             \
          ::gridsched::util::LogLevel::kError,                    \
          ::gridsched::util::detail::format_log(__VA_ARGS__));    \
  } while (0)

}  // namespace gridsched::util
