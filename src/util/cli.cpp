#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace gridsched::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::optional<std::string> Cli::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& name, std::string fallback) const {
  const auto value = get(name);
  return value ? *value : std::move(fallback);
}

double Cli::get_or(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (end == value->c_str()) {
    throw std::invalid_argument("Cli: flag --" + name + " is not a number: " +
                                *value);
  }
  return parsed;
}

std::int64_t Cli::get_or(const std::string& name, std::int64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  if (end == value->c_str()) {
    throw std::invalid_argument("Cli: flag --" + name + " is not an integer: " +
                                *value);
  }
  return parsed;
}

bool Cli::get_or(const std::string& name, bool fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return *value == "true" || *value == "1" || *value == "yes" || *value == "on";
}

std::string Cli::get_choice(const std::string& name, std::string fallback,
                            std::span<const std::string> choices) const {
  const std::string value = get_or(name, std::move(fallback));
  for (const std::string& choice : choices) {
    if (value == choice) return value;
  }
  std::string message = "Cli: flag --" + name + "=" + value + " (valid:";
  for (const std::string& choice : choices) message += " " + choice;
  throw std::invalid_argument(message + ")");
}

}  // namespace gridsched::util
