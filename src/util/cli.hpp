// Minimal command-line flag parser for the examples and bench binaries.
// Supports --name=value, --name value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gridsched::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   std::string fallback) const;
  [[nodiscard]] double get_or(const std::string& name, double fallback) const;
  [[nodiscard]] std::int64_t get_or(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] bool get_or(const std::string& name, bool fallback) const;

  /// Enumerated flag: returns the value (or `fallback` when absent) after
  /// validating it against `choices`; throws std::invalid_argument listing
  /// the valid choices otherwise. Used for registry-backed flags such as
  /// --scenario and --algo.
  [[nodiscard]] std::string get_choice(
      const std::string& name, std::string fallback,
      std::span<const std::string> choices) const;

  /// Non-flag arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace gridsched::util
