#include "metrics/metrics.hpp"

#include <stdexcept>

namespace gridsched::metrics {

RunMetrics compute_metrics(const sim::Engine& engine) {
  RunMetrics metrics;
  const sim::SimKernel& kernel = engine.kernel();
  metrics.n_jobs = kernel.total_jobs();

  // Per-job sums come from the kernel's retirement accumulator, which
  // folded every job in as it completed — in id order, with the exact
  // floating-point operation sequence the former job loop here used, so
  // every derived field is bit-identical. This is what lets the streaming
  // kernel discard job records instead of holding all of them for a
  // post-run pass.
  const RetirementAccumulator& retired = kernel.retirement();
  if (retired.jobs() != kernel.total_jobs()) {
    throw std::invalid_argument(
        "compute_metrics: " + kernel.describe_unfinished(engine.makespan()));
  }
  metrics.n_risk = retired.n_risk();
  metrics.n_fail = retired.n_fail();
  metrics.n_interrupted = retired.n_interrupted();
  metrics.total_attempts = retired.total_attempts();
  const double response_sum = retired.response_sum();
  const double exec_sum = retired.exec_sum();
  const double job_slowdown_sum = retired.job_slowdown_sum();

  metrics.makespan = engine.makespan();
  if (metrics.n_jobs > 0) {
    const auto n = static_cast<double>(metrics.n_jobs);
    metrics.avg_response = response_sum / n;
    metrics.avg_final_exec = exec_sum / n;
    metrics.slowdown_ratio =
        exec_sum > 0.0 ? response_sum / exec_sum : 0.0;  // Eq. 3
    metrics.mean_job_slowdown = job_slowdown_sum / n;
  }

  const sim::EngineCounters& counters = engine.counters();
  metrics.batch_invocations = counters.batch_invocations;
  metrics.scheduler_seconds = counters.scheduler_seconds;
  metrics.failure_events = counters.failure_events;
  metrics.risky_attempts = counters.risky_attempts;
  metrics.released_nodes = counters.released_nodes;
  metrics.unreleased_nodes = counters.unreleased_nodes;
  metrics.site_down_events = counters.site_down_events;
  metrics.site_up_events = counters.site_up_events;
  metrics.interruptions = counters.interrupted_attempts;
  metrics.churn_released_nodes = counters.churn_released_nodes;
  metrics.churn_unreleased_nodes = counters.churn_unreleased_nodes;

  metrics.site_utilization.reserve(engine.sites().size());
  double util_sum = 0.0;
  for (const sim::GridSite& site : engine.sites()) {
    const double util = site.utilization(engine.makespan());
    metrics.site_utilization.push_back(util);
    util_sum += util;
    if (util < 0.01) ++metrics.idle_sites;
  }
  if (!engine.sites().empty()) {
    metrics.avg_utilization =
        util_sum / static_cast<double>(engine.sites().size());
  }
  return metrics;
}

void MetricsAggregate::add(const RunMetrics& run) {
  ++runs_;
  makespan_.add(run.makespan);
  response_.add(run.avg_response);
  slowdown_.add(run.slowdown_ratio);
  n_risk_.add(static_cast<double>(run.n_risk));
  n_fail_.add(static_cast<double>(run.n_fail));
  avg_util_.add(run.avg_utilization);
  sched_seconds_.add(run.scheduler_seconds);
  if (site_util_.size() < run.site_utilization.size()) {
    site_util_.resize(run.site_utilization.size());
  }
  for (std::size_t s = 0; s < run.site_utilization.size(); ++s) {
    site_util_[s].add(run.site_utilization[s]);
  }
}

}  // namespace gridsched::metrics
