// The paper's performance metrics (Section 4.1): makespan, average
// response time, slowdown ratio (Eq. 3), risk-taking/failed job counts and
// per-site utilization, plus scheduler-cost accounting.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace gridsched::metrics {

struct RunMetrics {
  std::size_t n_jobs = 0;
  /// Jobs that ever ran on a site with SL < SD (paper's N_risk).
  std::size_t n_risk = 0;
  /// Jobs that failed and were rescheduled (paper's N_fail; <= n_risk).
  std::size_t n_fail = 0;
  std::size_t total_attempts = 0;

  // --- engine counters surfaced per run (EngineCounters) ---
  std::size_t failure_events = 0;    ///< failure detections (attempts)
  std::size_t risky_attempts = 0;    ///< dispatches with P(fail) > 0
  std::size_t released_nodes = 0;    ///< failure-release reclaimed tails
  std::size_t unreleased_nodes = 0;  ///< failure-release shortfalls
  // --- site churn ---
  std::size_t site_down_events = 0;
  std::size_t site_up_events = 0;
  /// Attempts revoked by site-down events (sum of Job::interruptions).
  std::size_t interruptions = 0;
  /// Jobs interrupted at least once.
  std::size_t n_interrupted = 0;
  std::size_t churn_released_nodes = 0;
  std::size_t churn_unreleased_nodes = 0;

  double makespan = 0.0;           ///< max_i finish_i
  double avg_response = 0.0;       ///< mean(finish - arrival)
  double avg_final_exec = 0.0;     ///< mean(finish - last_start)
  /// Eq. 3: avg response / avg final execution (ratio of averages).
  double slowdown_ratio = 0.0;
  /// Companion statistic: mean over jobs of per-job slowdown.
  double mean_job_slowdown = 0.0;

  std::size_t batch_invocations = 0;
  double scheduler_seconds = 0.0;  ///< wall time inside schedule()

  std::vector<double> site_utilization;  ///< fraction in [0,1], per site
  double avg_utilization = 0.0;
  std::size_t idle_sites = 0;            ///< sites with utilization < 1%
};

/// Derive all metrics from a finished engine run.
RunMetrics compute_metrics(const sim::Engine& engine);

/// Streaming aggregation over replications (different seeds).
class MetricsAggregate {
 public:
  void add(const RunMetrics& run);

  [[nodiscard]] std::size_t runs() const noexcept { return runs_; }
  [[nodiscard]] const util::RunningStats& makespan() const noexcept {
    return makespan_;
  }
  [[nodiscard]] const util::RunningStats& avg_response() const noexcept {
    return response_;
  }
  [[nodiscard]] const util::RunningStats& slowdown() const noexcept {
    return slowdown_;
  }
  [[nodiscard]] const util::RunningStats& n_risk() const noexcept {
    return n_risk_;
  }
  [[nodiscard]] const util::RunningStats& n_fail() const noexcept {
    return n_fail_;
  }
  [[nodiscard]] const util::RunningStats& avg_utilization() const noexcept {
    return avg_util_;
  }
  [[nodiscard]] const util::RunningStats& scheduler_seconds() const noexcept {
    return sched_seconds_;
  }
  /// Per-site utilization stats; sized on the first add().
  [[nodiscard]] const std::vector<util::RunningStats>& site_utilization()
      const noexcept {
    return site_util_;
  }

 private:
  std::size_t runs_ = 0;
  util::RunningStats makespan_;
  util::RunningStats response_;
  util::RunningStats slowdown_;
  util::RunningStats n_risk_;
  util::RunningStats n_fail_;
  util::RunningStats avg_util_;
  util::RunningStats sched_seconds_;
  std::vector<util::RunningStats> site_util_;
};

}  // namespace gridsched::metrics
