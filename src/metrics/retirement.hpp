// Streaming retirement accumulator: the kernel folds each job into this
// the moment it retires (in job-id order), so RunMetrics no longer needs
// the full job vector — the streaming kernel frees a job's slot right
// after retiring it and metrics::compute_metrics reads the sums instead.
//
// Bit-identity contract: add() performs the exact floating-point operation
// sequence the old compute_metrics job loop performed, and the kernel
// retires jobs strictly in id order (a completed job waits in its slot
// until every lower id has retired), so the accumulated sums — and every
// RunMetrics field derived from them — are bit-identical to the retained
// loop for any workload. This accumulator feeds byte-stable artifacts
// (campaign aggregates); it must never read wall clocks (lint GS-R02).
#pragma once

#include <cstddef>

#include "sim/job.hpp"

namespace gridsched::metrics {

class RetirementAccumulator {
 public:
  /// Fold one completed job in. Must be called in increasing job-id order
  /// (the kernel's retirement frontier guarantees it).
  void add(const sim::Job& job) noexcept {
    ++jobs_;
    if (job.took_risk) ++n_risk_;
    if (job.failures > 0) ++n_fail_;
    if (job.interruptions > 0) ++n_interrupted_;
    total_attempts_ += job.attempts;
    const double response = job.finish - job.arrival;
    const double final_exec = job.finish - job.last_start;
    response_sum_ += response;
    exec_sum_ += final_exec;
    if (final_exec > 0.0) job_slowdown_sum_ += response / final_exec;
  }

  [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::size_t n_risk() const noexcept { return n_risk_; }
  [[nodiscard]] std::size_t n_fail() const noexcept { return n_fail_; }
  [[nodiscard]] std::size_t n_interrupted() const noexcept {
    return n_interrupted_;
  }
  [[nodiscard]] std::size_t total_attempts() const noexcept {
    return total_attempts_;
  }
  [[nodiscard]] double response_sum() const noexcept { return response_sum_; }
  [[nodiscard]] double exec_sum() const noexcept { return exec_sum_; }
  [[nodiscard]] double job_slowdown_sum() const noexcept {
    return job_slowdown_sum_;
  }

 private:
  std::size_t jobs_ = 0;
  std::size_t n_risk_ = 0;
  std::size_t n_fail_ = 0;
  std::size_t n_interrupted_ = 0;
  std::size_t total_attempts_ = 0;
  double response_sum_ = 0.0;
  double exec_sum_ = 0.0;
  double job_slowdown_sum_ = 0.0;
};

}  // namespace gridsched::metrics
