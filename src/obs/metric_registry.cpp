#include "obs/metric_registry.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/json.hpp"

namespace gridsched::obs {

namespace {

using util::json::number;
using util::json::quote;

}  // namespace

void MetricRegistry::check_unclaimed(const std::string& name,
                                     const char* wanted) const {
  const bool taken_by_counter =
      counters_.count(name) != 0 && std::string(wanted) != "counter";
  const bool taken_by_gauge =
      gauges_.count(name) != 0 && std::string(wanted) != "gauge";
  const bool taken_by_histogram =
      histograms_.count(name) != 0 && std::string(wanted) != "histogram";
  if (taken_by_counter || taken_by_gauge || taken_by_histogram) {
    throw std::logic_error("MetricRegistry: name '" + name +
                           "' already registered as a different metric kind");
  }
}

Counter& MetricRegistry::counter(const std::string& name) {
  check_unclaimed(name, "counter");
  return counters_[name];
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  check_unclaimed(name, "gauge");
  return gauges_[name];
}

HistogramMetric& MetricRegistry::histogram(const std::string& name, double lo,
                                           double hi, std::size_t buckets) {
  check_unclaimed(name, "histogram");
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    const HistogramMetric& existing = it->second;
    if (existing.lo() != lo || existing.hi() != hi ||
        existing.histogram().bucket_count() != buckets) {
      throw std::logic_error("MetricRegistry: histogram '" + name +
                             "' re-registered with different bounds");
    }
    return it->second;
  }
  return histograms_.try_emplace(name, lo, hi, buckets).first->second;
}

std::string MetricRegistry::snapshot_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + quote(name) + ": " + std::to_string(counter.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + quote(name) + ": " + number(gauge.value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, metric] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    const util::Histogram& h = metric.histogram();
    const util::RunningStats& s = metric.stats();
    out += "    " + quote(name) + ": {";
    out += "\"lo\": " + number(metric.lo());
    out += ", \"hi\": " + number(metric.hi());
    out += ", \"count\": " + std::to_string(h.total());
    out += ", \"underflow\": " + std::to_string(h.underflow());
    out += ", \"overflow\": " + std::to_string(h.overflow());
    if (s.count() > 0) {
      out += ", \"mean\": " + number(s.mean());
      out += ", \"min\": " + number(s.min());
      out += ", \"max\": " + number(s.max());
      out += ", \"stddev\": " + number(s.stddev());
    }
    out += ", \"buckets\": [";
    for (std::size_t b = 0; b < h.bucket_count(); ++b) {
      if (b != 0) out += ", ";
      out += std::to_string(h.count(b));
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

void MetricRegistry::write_snapshot(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("MetricRegistry: cannot write " + path);
  }
  const std::string body = snapshot_json() + "\n";
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  if (written != body.size()) {
    throw std::runtime_error("MetricRegistry: short write to " + path);
  }
}

}  // namespace gridsched::obs
