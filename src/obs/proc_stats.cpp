#include "obs/proc_stats.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif
#if defined(__linux__)
#include <cinttypes>
#include <cstdio>
#endif

namespace gridsched::obs {

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

std::uint64_t current_rss_bytes() noexcept {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  std::uint64_t total_pages = 0;
  std::uint64_t resident_pages = 0;
  const int fields = std::fscanf(statm, "%" SCNu64 " %" SCNu64, &total_pages,
                                 &resident_pages);
  std::fclose(statm);
  if (fields != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return resident_pages * static_cast<std::uint64_t>(page);
#else
  return 0;
#endif
}

}  // namespace gridsched::obs
