// Named-metric registry: counters, gauges and histograms registered by
// stable string names, snapshotted to deterministic JSON. The registry is
// the sink side of the observability layer — kernel observers, the GA
// engine and the campaign runner write into it; `snapshot_json()` is the
// single export surface. Metric handles returned by the registry are
// stable for the registry's lifetime (node-based storage), so hot paths
// resolve a name once and then touch only the handle.
//
// Determinism contract: a snapshot's bytes depend only on the sequence of
// metric operations (names iterate in sorted order, numbers render via
// util::json::number's shortest-exact form). Wall-clock values may be
// *stored* in gauges, but any consumer that promises byte-stable output
// must not record them — see ROADMAP "Observability" invariants.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace gridsched::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-range distribution: bucketed counts (util::Histogram) plus exact
/// streaming moments (util::RunningStats) so the snapshot reports both
/// shape and mean/min/max/stddev without retaining samples.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets)
      : histogram_(lo, hi, buckets), lo_(lo), hi_(hi) {}

  void observe(double x) noexcept {
    histogram_.add(x);
    stats_.add(x);
  }

  [[nodiscard]] const util::Histogram& histogram() const noexcept {
    return histogram_;
  }
  [[nodiscard]] const util::RunningStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

 private:
  util::Histogram histogram_;
  util::RunningStats stats_;
  double lo_;
  double hi_;
};

/// Registry of named metrics. Names are free-form but the convention is
/// dotted paths ("kernel.dispatches", "ga.generation_wall_ms"). A name
/// identifies exactly one metric kind: re-registering it as a different
/// kind (or a histogram with different bounds) throws std::logic_error —
/// silent aliasing would corrupt the snapshot.
class MetricRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Deterministic JSON snapshot: one object with "counters", "gauges"
  /// and "histograms" members, metric names in lexicographic order,
  /// numbers in util::json::number form. Byte-identical for identical
  /// operation sequences.
  [[nodiscard]] std::string snapshot_json() const;

  /// snapshot_json() + trailing newline written to `path`; throws
  /// std::runtime_error if the file cannot be written.
  void write_snapshot(const std::string& path) const;

 private:
  void check_unclaimed(const std::string& name, const char* wanted) const;

  // std::map: sorted iteration gives the snapshot its stable order, and
  // node-based storage keeps handed-out references valid.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, HistogramMetric> histograms_;
};

}  // namespace gridsched::obs
