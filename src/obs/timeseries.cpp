#include "obs/timeseries.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/kernel.hpp"
#include "util/json.hpp"

namespace gridsched::obs {

namespace {

using util::json::number;

void append_cell(std::string& out, const std::string& cell) {
  out += ',';
  out += cell;
}

std::string scalar_cells(const TimeSeriesSample& sample) {
  std::string out = number(sample.t);
  append_cell(out, std::to_string(sample.ready));
  append_cell(out, std::to_string(sample.in_flight));
  append_cell(out, std::to_string(sample.sites_up));
  append_cell(out, std::to_string(sample.completed));
  append_cell(out, std::to_string(sample.failures));
  append_cell(out, std::to_string(sample.interruptions));
  return out;
}

}  // namespace

std::vector<std::string> timeseries_columns(std::size_t n_sites) {
  std::vector<std::string> columns = {"t",         "ready",
                                      "in_flight", "sites_up",
                                      "completed", "failures",
                                      "interruptions"};
  for (std::size_t s = 0; s < n_sites; ++s) {
    columns.push_back("busy_" + std::to_string(s));
  }
  return columns;
}

TimeSeriesProbe::TimeSeriesProbe(sim::Time interval) : interval_(interval) {
  if (!std::isfinite(interval) || interval <= 0.0) {
    throw std::invalid_argument(
        "TimeSeriesProbe: sample interval must be finite and > 0");
  }
}

void TimeSeriesProbe::on_run_start(const sim::SimKernel& kernel) {
  series_ = TimeSeries{};
  series_.interval = interval_;
  series_.n_sites = kernel.sites().size();
  next_index_ = 0;
}

void TimeSeriesProbe::sample_at(const sim::SimKernel& kernel, sim::Time t) {
  TimeSeriesSample sample;
  sample.t = t;
  sample.ready = kernel.pending().size();
  sample.completed = kernel.counters().completed_jobs;
  sample.failures = kernel.counters().failure_events;
  sample.interruptions = kernel.counters().interrupted_attempts;
  for (std::size_t s = 0; s < kernel.sites().size(); ++s) {
    if (kernel.site_usable(s)) ++sample.sites_up;
  }
  // Busy fraction from the attempt table: an active attempt claims its
  // job's nodes on its site once the reservation window has started
  // (reservations are disjoint per node, so the sum never exceeds the
  // site's capacity). The attempt and job tables are slot-parallel in
  // both kernel storage modes, and recycled slots are inactive, so the
  // slot sweep sees exactly the live attempts. busy_nodes_ is persistent
  // scratch — sampling allocates nothing once the run's buffers exist.
  busy_nodes_.assign(kernel.sites().size(), 0.0);
  const std::vector<sim::Attempt>& attempts = kernel.attempts();
  for (std::size_t j = 0; j < attempts.size(); ++j) {
    const sim::Attempt& attempt = attempts[j];
    if (!attempt.active) continue;
    ++sample.in_flight;
    if (attempt.window.start > t) continue;  // reserved, not yet started
    busy_nodes_[attempt.site] +=
        static_cast<double>(kernel.jobs()[j].nodes);
  }
  sample.busy.resize(kernel.sites().size(), 0.0);
  for (std::size_t s = 0; s < kernel.sites().size(); ++s) {
    const unsigned nodes = kernel.sites()[s].config().nodes;
    if (nodes > 0) sample.busy[s] = busy_nodes_[s] / nodes;
  }
  series_.samples.push_back(std::move(sample));
}

void TimeSeriesProbe::on_event(const sim::SimKernel& kernel,
                               const sim::Event& event) {
  // on_event fires after the clock advanced to event.time but before the
  // event is routed, so every boundary at or before event.time sees the
  // state with all strictly-earlier events applied.
  while (static_cast<double>(next_index_) * interval_ <= event.time) {
    sample_at(kernel, static_cast<double>(next_index_) * interval_);
    ++next_index_;
  }
}

void TimeSeriesProbe::on_run_end(const sim::SimKernel& kernel) {
  // Terminal sample: the final state at the makespan (all boundaries up
  // to the last event were already flushed from on_event).
  sample_at(kernel, kernel.makespan());
}

std::string render_timeseries_json(const TimeSeries& series) {
  std::string out = "{\"schema\": \"gridsched-timeseries-v1\"";
  out += ", \"interval\": " + number(series.interval);
  out += ", \"sites\": " + std::to_string(series.n_sites);
  out += ", \"columns\": [";
  const std::vector<std::string> columns =
      timeseries_columns(series.n_sites);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ", ";
    out += util::json::quote(columns[c]);
  }
  out += "], \"samples\": [";
  for (std::size_t i = 0; i < series.samples.size(); ++i) {
    const TimeSeriesSample& sample = series.samples[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  [" + scalar_cells(sample);
    for (const double fraction : sample.busy) {
      append_cell(out, number(fraction));
    }
    out += "]";
  }
  out += series.samples.empty() ? "]}\n" : "\n]}\n";
  return out;
}

std::string render_timeseries_csv(const TimeSeries& series) {
  std::string out;
  const std::vector<std::string> columns =
      timeseries_columns(series.n_sites);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += ",";
    out += columns[c];
  }
  out += "\n";
  for (const TimeSeriesSample& sample : series.samples) {
    out += scalar_cells(sample);
    for (const double fraction : sample.busy) {
      append_cell(out, number(fraction));
    }
    out += "\n";
  }
  return out;
}

void write_timeseries_file(const std::string& path,
                           const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("timeseries: cannot write " + path);
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  if (written != content.size()) {
    throw std::runtime_error("timeseries: short write to " + path);
  }
}

}  // namespace gridsched::obs
