#include "obs/ga_profile_json.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace gridsched::obs {

std::string render_ga_profiles(const std::vector<core::GaProfile>& profiles) {
  using util::json::number;

  std::ostringstream out;
  out << "{\n";
  out << "  \"invocations\": [\n";
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const core::GaProfile& profile = profiles[i];
    out << "    {\"total_wall_ms\": " << number(profile.total_wall_ms)
        << ", \"generations\": [\n";
    for (std::size_t g = 0; g < profile.generations.size(); ++g) {
      const core::GaGenerationProfile& gen = profile.generations[g];
      out << "      {\"wall_ms\": " << number(gen.wall_ms)
          << ", \"evaluations\": " << gen.evaluations
          << ", \"memo_hits\": " << gen.memo_hits
          << ", \"best\": " << number(gen.best)
          << ", \"mean\": " << number(gen.mean) << "}"
          << (g + 1 < profile.generations.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (i + 1 < profiles.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

void write_ga_profiles(const std::string& path,
                       const std::vector<core::GaProfile>& profiles) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create file: " + path);
  out << render_ga_profiles(profiles);
  if (!out.good()) throw std::runtime_error("failed writing file: " + path);
}

}  // namespace gridsched::obs
