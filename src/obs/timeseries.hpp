// Deterministic sim-time telemetry series. TimeSeriesProbe is a passive
// sim::KernelObserver that samples the kernel's load state at a fixed
// simulated-time cadence: ready-queue depth, in-flight attempts, up-site
// count, per-site busy fraction and the cumulative outcome counters
// (completions / failure detections / churn interruptions). Because the
// sample clock is *simulated* time and the probe reads only kernel state
// the event loop already exposes, the series is a pure function of
// (scenario, policy, seed) — byte-identical across runs, machines and
// thread counts — and attaching the probe leaves the run bit-identical
// (PR 6 observer contract).
//
// Sampling semantics: sample k lands at t_k = k * interval (an integer
// multiple, never an accumulated float) and captures the state after all
// events with time < t_k were processed; events at exactly t_k are *not*
// yet reflected (half-open [t_{k-1}, t_k) windows, matching the kernel's
// deterministic FIFO tie-break). One terminal sample at the makespan
// closes the series with the final state.
//
// Exporters: compact column-oriented JSON, CSV, and Chrome trace "C"
// counter events (SimTraceRecorder::merge_counters) so Perfetto renders
// load curves under the existing span tracks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace gridsched::obs {

/// One sample row. Counts are instantaneous except the cumulative
/// outcome counters (completed / failures / interruptions).
struct TimeSeriesSample {
  sim::Time t = 0.0;
  std::size_t ready = 0;      ///< jobs in the kernel's pending queue
  std::size_t in_flight = 0;  ///< active attempts (committed reservations)
  std::size_t sites_up = 0;   ///< usable sites (churn mask)
  std::size_t completed = 0;  ///< cumulative completions
  std::size_t failures = 0;   ///< cumulative failure detections
  std::size_t interruptions = 0;  ///< cumulative churn interruptions
  /// Per-site busy fraction at t: nodes claimed by active attempts whose
  /// reservation window has started, over the site's node count.
  std::vector<double> busy;
};

struct TimeSeries {
  sim::Time interval = 0.0;  ///< sample cadence (simulated seconds)
  std::size_t n_sites = 0;   ///< width of each sample's busy vector
  std::vector<TimeSeriesSample> samples;
};

/// Scalar column names in artifact order ("t", "ready", ...); the busy
/// columns follow as busy_0..busy_{n_sites-1}. Shared by the JSON/CSV
/// exporters, the campaign reduction and the README table.
std::vector<std::string> timeseries_columns(std::size_t n_sites);

/// Samples one SimKernel run (re-attaching resets on on_run_start).
class TimeSeriesProbe final : public sim::KernelObserver {
 public:
  /// `interval` is the sample cadence in simulated seconds; throws
  /// std::invalid_argument unless it is finite and > 0.
  explicit TimeSeriesProbe(sim::Time interval);

  void on_run_start(const sim::SimKernel& kernel) override;
  void on_event(const sim::SimKernel& kernel,
                const sim::Event& event) override;
  void on_run_end(const sim::SimKernel& kernel) override;

  [[nodiscard]] const TimeSeries& series() const noexcept { return series_; }

 private:
  void sample_at(const sim::SimKernel& kernel, sim::Time t);

  sim::Time interval_;
  /// Next sample boundary index; boundary time is index * interval so a
  /// long event gap flushes every boundary it skipped (no float drift).
  std::uint64_t next_index_ = 0;
  TimeSeries series_;
  std::vector<double> busy_nodes_;  ///< per-site scratch, reused per sample
};

/// Compact column-oriented JSON: {"schema": ..., "interval", "sites",
/// "columns", "samples": [[row], ...]} with doubles in shortest-exact
/// form (trailing newline). Byte-stable for a given series.
std::string render_timeseries_json(const TimeSeries& series);

/// CSV with a header row matching timeseries_columns(). Byte-stable.
std::string render_timeseries_csv(const TimeSeries& series);

/// Write `content` rendered by one of the exporters above; throws
/// std::runtime_error on I/O failure.
void write_timeseries_file(const std::string& path,
                           const std::string& content);

}  // namespace gridsched::obs
