// Process-level resource probes for benchmarks: peak RSS via getrusage.
// Kept out of any byte-stable artifact — these numbers vary run to run.
#pragma once

#include <cstdint>

namespace gridsched::obs {

/// Peak resident set size of this process in bytes; 0 when the platform
/// offers no getrusage (the caller reports "unavailable" rather than a
/// fake zero-byte peak — check before dividing).
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

/// Current resident set size in bytes (/proc/self/statm on Linux); 0 when
/// unavailable. Unlike the peak, this can shrink, so per-phase deltas
/// (e.g. bench rows reporting bytes attributable to one scenario) stay
/// meaningful even after an earlier phase drove the peak higher.
[[nodiscard]] std::uint64_t current_rss_bytes() noexcept;

}  // namespace gridsched::obs
