#include "obs/trace_event.hpp"

#include <cstdio>
#include <stdexcept>

#include "obs/timeseries.hpp"
#include "sim/kernel.hpp"
#include "util/json.hpp"

namespace gridsched::obs {

namespace {

using util::json::number;
using util::json::quote;

constexpr int kSitesPid = 1;
constexpr int kSchedulerPid = 2;

/// Simulated seconds -> trace microseconds, rendered shortest-exact.
std::string ts(sim::Time seconds) { return number(seconds * 1e6); }

std::string metadata(const char* name, int pid, int tid,
                     const std::string& value) {
  std::string out = "{\"ph\": \"M\", \"name\": \"";
  out += name;
  out += "\", \"pid\": " + std::to_string(pid);
  if (tid >= 0) out += ", \"tid\": " + std::to_string(tid);
  out += ", \"args\": {\"name\": " + quote(value) + "}}";
  return out;
}

}  // namespace

void SimTraceRecorder::on_run_start(const sim::SimKernel& kernel) {
  events_.clear();
  // Pre-size for the retained case; a streaming kernel's id space is not
  // known yet, so open_slot() grows this on demand as jobs dispatch.
  open_.assign(kernel.jobs().size(), OpenAttempt{});
  down_since_.assign(kernel.sites().size(), -1.0);

  events_.push_back(metadata("process_name", kSitesPid, -1, "grid sites"));
  events_.push_back(
      metadata("process_name", kSchedulerPid, -1, "scheduler"));
  events_.push_back(metadata("thread_name", kSchedulerPid, 1, "batch cycles"));
  for (std::size_t s = 0; s < kernel.sites().size(); ++s) {
    const sim::SiteConfig& config = kernel.sites()[s].config();
    std::string label = "site " + std::to_string(s) + " (" +
                        std::to_string(config.nodes) + " nodes)";
    events_.push_back(metadata("thread_name", kSitesPid,
                               static_cast<int>(s) + 1, label));
  }
}

void SimTraceRecorder::emit_span(const char* name, const char* category,
                                 sim::SiteId site, sim::Time start,
                                 sim::Time end, sim::JobId job,
                                 unsigned serial) {
  std::string out = "{\"ph\": \"X\", \"name\": " + quote(name);
  out += ", \"cat\": \"";
  out += category;
  out += "\", \"pid\": " + std::to_string(kSitesPid);
  out += ", \"tid\": " + std::to_string(static_cast<int>(site) + 1);
  out += ", \"ts\": " + ts(start);
  out += ", \"dur\": " + ts(end - start);
  if (job != sim::kInvalidJob) {
    out += ", \"args\": {\"job\": " + std::to_string(job) +
           ", \"attempt\": " + std::to_string(serial) + "}";
  }
  out += "}";
  events_.push_back(std::move(out));
}

void SimTraceRecorder::emit_instant(const std::string& name,
                                    const char* category, int pid, int tid,
                                    sim::Time time, const std::string& args) {
  std::string out = "{\"ph\": \"i\", \"s\": \"t\", \"name\": " + quote(name);
  out += ", \"cat\": \"";
  out += category;
  out += "\", \"pid\": " + std::to_string(pid);
  out += ", \"tid\": " + std::to_string(tid);
  out += ", \"ts\": " + ts(time);
  if (!args.empty()) out += ", \"args\": " + args;
  out += "}";
  events_.push_back(std::move(out));
}

void SimTraceRecorder::on_event(const sim::SimKernel& kernel,
                                const sim::Event& event) {
  (void)kernel;
  // Only churn transitions are recorded from the raw stream; everything
  // else surfaces through the structured callbacks below.
  if (event.kind == sim::EventKind::kSiteDown) {
    const auto site = static_cast<std::size_t>(event.site);
    if (site < down_since_.size() && down_since_[site] < 0.0) {
      down_since_[site] = event.time;
    }
    emit_instant("site down", "churn", kSitesPid,
                 static_cast<int>(event.site) + 1, event.time, "");
  } else if (event.kind == sim::EventKind::kSiteUp) {
    const auto site = static_cast<std::size_t>(event.site);
    if (site < down_since_.size() && down_since_[site] >= 0.0) {
      emit_span("outage", "outage", event.site, down_since_[site], event.time,
                sim::kInvalidJob, 0);
      down_since_[site] = -1.0;
    }
    emit_instant("site up", "churn", kSitesPid,
                 static_cast<int>(event.site) + 1, event.time, "");
  }
}

void SimTraceRecorder::on_dispatch(const sim::SimKernel& kernel,
                                   sim::JobId job, sim::SiteId site,
                                   const sim::NodeAvailability::Window& window,
                                   double exec, unsigned serial) {
  (void)kernel;
  (void)exec;
  open_slot(job) = {window.start, site, serial, true};
}

void SimTraceRecorder::on_job_complete(const sim::SimKernel& kernel,
                                       sim::JobId job, sim::SiteId site,
                                       sim::Time time) {
  (void)kernel;
  OpenAttempt& attempt = open_slot(job);
  if (!attempt.open) return;
  const std::string name = "job " + std::to_string(job);
  emit_span(name.c_str(), "attempt", site, attempt.start, time, job,
            attempt.serial);
  attempt.open = false;
}

void SimTraceRecorder::on_attempt_failure(const sim::SimKernel& kernel,
                                          sim::JobId job, sim::SiteId site,
                                          sim::Time time) {
  (void)kernel;
  OpenAttempt& attempt = open_slot(job);
  if (!attempt.open) return;
  const std::string name = "job " + std::to_string(job) + " (failed)";
  emit_span(name.c_str(), "attempt-failed", site, attempt.start, time, job,
            attempt.serial);
  emit_instant("security failure", "failure", kSitesPid,
               static_cast<int>(site) + 1, time,
               "{\"job\": " + std::to_string(job) + "}");
  attempt.open = false;  // the revocation that follows is already drawn
}

void SimTraceRecorder::on_revoke(const sim::SimKernel& kernel, sim::JobId job,
                                 sim::SiteId site, sim::Time time) {
  (void)kernel;
  OpenAttempt& attempt = open_slot(job);
  // Failure revocations arrive pre-closed by on_attempt_failure; an
  // attempt still open here was interrupted by a site outage.
  if (!attempt.open) return;
  const std::string name = "job " + std::to_string(job) + " (interrupted)";
  emit_span(name.c_str(), "attempt-interrupted", site, attempt.start, time,
            job, attempt.serial);
  attempt.open = false;
}

void SimTraceRecorder::on_cycle(const sim::SimKernel& kernel, sim::Time now,
                                std::size_t batch_jobs, std::size_t assigned,
                                double scheduler_wall_seconds) {
  (void)kernel;
  // Wall time is intentionally NOT recorded: the trace must be
  // byte-identical across runs and thread counts.
  (void)scheduler_wall_seconds;
  emit_instant("batch cycle", "scheduler", kSchedulerPid, 1, now,
               "{\"batch\": " + std::to_string(batch_jobs) +
                   ", \"assigned\": " + std::to_string(assigned) + "}");
}

void SimTraceRecorder::on_run_end(const sim::SimKernel& kernel) {
  // Close outages still open at the end of the run so they render as
  // spans instead of disappearing.
  for (std::size_t s = 0; s < down_since_.size(); ++s) {
    if (down_since_[s] >= 0.0 && kernel.makespan() > down_since_[s]) {
      emit_span("outage", "outage", static_cast<sim::SiteId>(s),
                down_since_[s], kernel.makespan(), sim::kInvalidJob, 0);
      down_since_[s] = -1.0;
    }
  }
}

void SimTraceRecorder::merge_counters(const TimeSeries& series) {
  // Trace-event consumers do not require ts order, so counters are
  // appended after the spans; the emission order (and therefore the
  // rendered bytes) depends only on the series.
  const auto counter = [&](const char* name, const sim::Time time,
                           const std::string& args) {
    std::string out = "{\"ph\": \"C\", \"name\": " + quote(name);
    out += ", \"pid\": " + std::to_string(kSchedulerPid);
    out += ", \"ts\": " + ts(time);
    out += ", \"args\": {" + args + "}}";
    events_.push_back(std::move(out));
  };
  for (const TimeSeriesSample& sample : series.samples) {
    counter("kernel load", sample.t,
            "\"ready\": " + std::to_string(sample.ready) +
                ", \"in_flight\": " + std::to_string(sample.in_flight));
    counter("sites up", sample.t,
            "\"up\": " + std::to_string(sample.sites_up));
    counter("outcomes", sample.t,
            "\"completed\": " + std::to_string(sample.completed) +
                ", \"failures\": " + std::to_string(sample.failures) +
                ", \"interruptions\": " +
                std::to_string(sample.interruptions));
  }
}

std::string SimTraceRecorder::render() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "  " + events_[i];
  }
  out += events_.empty() ? "]}" : "\n]}";
  return out;
}

void SimTraceRecorder::write_file(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("SimTraceRecorder: cannot write " + path);
  }
  const std::string body = render() + "\n";
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  if (written != body.size()) {
    throw std::runtime_error("SimTraceRecorder: short write to " + path);
  }
}

}  // namespace gridsched::obs
