// KernelObserver that feeds a MetricRegistry: per-event-kind counters,
// dispatch/completion/failure/revocation counts, batch-size and latency
// histograms, end-of-run gauges. Metric names are part of the public
// observability surface — see the README "Observability" table before
// renaming any.
#pragma once

#include "obs/metric_registry.hpp"
#include "sim/observer.hpp"

namespace gridsched::obs {

/// Collects kernel metrics into a caller-owned registry. All handles are
/// resolved once at construction, so the per-event cost is an increment.
/// Every recorded value except the `kernel.scheduler_seconds` gauge is a
/// pure function of the simulation — snapshots of deterministic runs are
/// byte-stable apart from that one gauge.
class KernelMetricsObserver final : public sim::KernelObserver {
 public:
  explicit KernelMetricsObserver(MetricRegistry& registry);

  void on_event(const sim::SimKernel& kernel,
                const sim::Event& event) override;
  void on_dispatch(const sim::SimKernel& kernel, sim::JobId job,
                   sim::SiteId site,
                   const sim::NodeAvailability::Window& window, double exec,
                   unsigned serial) override;
  void on_job_complete(const sim::SimKernel& kernel, sim::JobId job,
                       sim::SiteId site, sim::Time time) override;
  void on_attempt_failure(const sim::SimKernel& kernel, sim::JobId job,
                          sim::SiteId site, sim::Time time) override;
  void on_revoke(const sim::SimKernel& kernel, sim::JobId job,
                 sim::SiteId site, sim::Time time) override;
  void on_cycle(const sim::SimKernel& kernel, sim::Time now,
                std::size_t batch_jobs, std::size_t assigned,
                double scheduler_wall_seconds) override;
  void on_run_end(const sim::SimKernel& kernel) override;

 private:
  Counter& events_arrival_;
  Counter& events_batch_cycle_;
  Counter& events_job_end_;
  Counter& events_site_down_;
  Counter& events_site_up_;
  Counter& dispatches_;
  Counter& completions_;
  Counter& failures_;
  Counter& revocations_;
  Counter& cycles_;
  HistogramMetric& batch_jobs_;
  HistogramMetric& batch_assigned_;
  HistogramMetric& attempt_exec_seconds_;
  HistogramMetric& job_response_seconds_;
  Gauge& makespan_;
  Gauge& scheduler_seconds_;
};

}  // namespace gridsched::obs
