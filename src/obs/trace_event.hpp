// Chrome trace_event recorder: a sim::KernelObserver that turns one
// kernel run into a `chrome://tracing` / Perfetto-loadable JSON timeline.
// Track layout: pid 1 ("grid sites") carries one thread per site; every
// attempt is a complete span ("X") on its site's track — successful,
// failed (with a failure instant at the detection time) or interrupted
// (closed by a churn revocation). Site outages render as spans on the
// same track, batch cycles as instants on pid 2 ("scheduler").
//
// Determinism contract: the trace records *simulated* time only
// (microsecond ts = sim seconds x 1e6, rendered via util::json::number),
// never host wall clock — a fixed (scenario, policy, seed) must produce
// a byte-identical trace across runs and thread counts. Scheduler wall
// time is deliberately dropped on the floor here; it belongs in the
// campaign profile sidecar.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/observer.hpp"

namespace gridsched::obs {

struct TimeSeries;  // obs/timeseries.hpp

/// Records one SimKernel run (re-attaching resets on on_run_start).
class SimTraceRecorder final : public sim::KernelObserver {
 public:
  void on_run_start(const sim::SimKernel& kernel) override;
  void on_event(const sim::SimKernel& kernel,
                const sim::Event& event) override;
  void on_dispatch(const sim::SimKernel& kernel, sim::JobId job,
                   sim::SiteId site,
                   const sim::NodeAvailability::Window& window, double exec,
                   unsigned serial) override;
  void on_job_complete(const sim::SimKernel& kernel, sim::JobId job,
                       sim::SiteId site, sim::Time time) override;
  void on_attempt_failure(const sim::SimKernel& kernel, sim::JobId job,
                          sim::SiteId site, sim::Time time) override;
  void on_revoke(const sim::SimKernel& kernel, sim::JobId job,
                 sim::SiteId site, sim::Time time) override;
  void on_cycle(const sim::SimKernel& kernel, sim::Time now,
                std::size_t batch_jobs, std::size_t assigned,
                double scheduler_wall_seconds) override;
  void on_run_end(const sim::SimKernel& kernel) override;

  /// Number of trace events recorded so far.
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Append Chrome "C" counter events from a TimeSeriesProbe's series so
  /// Perfetto draws load curves ("kernel load", "sites up", "outcomes")
  /// under the span tracks. The series carries simulated time only, so
  /// the merged trace stays byte-deterministic. Call once, after the run
  /// and before render()/write_file().
  void merge_counters(const TimeSeries& series);

  /// The complete trace document:
  /// {"displayTimeUnit": "ms", "traceEvents": [...]}.
  [[nodiscard]] std::string render() const;

  /// render() + trailing newline to `path`; throws std::runtime_error on
  /// I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct OpenAttempt {
    sim::Time start = 0.0;
    sim::SiteId site = sim::kInvalidSite;
    unsigned serial = 0;
    bool open = false;
  };

  void emit_span(const char* name, const char* category, sim::SiteId site,
                 sim::Time start, sim::Time end, sim::JobId job,
                 unsigned serial);
  void emit_instant(const std::string& name, const char* category, int pid,
                    int tid, sim::Time time, const std::string& args);
  /// Per-job entry, growing on demand: a streaming kernel admits jobs
  /// lazily, so the job-id space is not known at on_run_start.
  OpenAttempt& open_slot(sim::JobId job) {
    if (job >= open_.size()) open_.resize(static_cast<std::size_t>(job) + 1);
    return open_[job];
  }

  std::vector<std::string> events_;  ///< rendered JSON objects, in order
  std::vector<OpenAttempt> open_;    ///< per job, current open attempt
  std::vector<sim::Time> down_since_;  ///< per site, <0 = up
};

}  // namespace gridsched::obs
