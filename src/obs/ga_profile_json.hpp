// JSON rendering for GA convergence profiles (core::GaProfile). One
// document per run: an array of scheduler invocations, each with its
// per-generation series {wall_ms, evaluations, memo_hits, best, mean}.
// Wall-clock fields are non-deterministic by nature — this artifact is a
// profile sidecar, never a byte-stable aggregate (same contract as the
// campaign profile JSON).
#pragma once

#include <string>
#include <vector>

#include "core/ga_engine.hpp"

namespace gridsched::obs {

/// {"invocations": [{"total_wall_ms": ..., "generations": [...]}, ...]}
/// with a trailing newline.
std::string render_ga_profiles(const std::vector<core::GaProfile>& profiles);

/// render_ga_profiles() written to `path`; throws std::runtime_error on
/// I/O failure.
void write_ga_profiles(const std::string& path,
                       const std::vector<core::GaProfile>& profiles);

}  // namespace gridsched::obs
