#include "obs/kernel_metrics.hpp"

#include "sim/kernel.hpp"

namespace gridsched::obs {

KernelMetricsObserver::KernelMetricsObserver(MetricRegistry& registry)
    : events_arrival_(registry.counter("kernel.events.arrival")),
      events_batch_cycle_(registry.counter("kernel.events.batch_cycle")),
      events_job_end_(registry.counter("kernel.events.job_end")),
      events_site_down_(registry.counter("kernel.events.site_down")),
      events_site_up_(registry.counter("kernel.events.site_up")),
      dispatches_(registry.counter("kernel.dispatches")),
      completions_(registry.counter("kernel.completions")),
      failures_(registry.counter("kernel.failures")),
      revocations_(registry.counter("kernel.revocations")),
      cycles_(registry.counter("kernel.cycles")),
      batch_jobs_(registry.histogram("kernel.batch_jobs", 0.0, 256.0, 32)),
      batch_assigned_(
          registry.histogram("kernel.batch_assigned", 0.0, 256.0, 32)),
      attempt_exec_seconds_(
          registry.histogram("kernel.attempt_exec_seconds", 0.0, 50000.0, 50)),
      job_response_seconds_(registry.histogram("kernel.job_response_seconds",
                                               0.0, 100000.0, 50)),
      makespan_(registry.gauge("kernel.makespan")),
      scheduler_seconds_(registry.gauge("kernel.scheduler_seconds")) {}

void KernelMetricsObserver::on_event(const sim::SimKernel& kernel,
                                     const sim::Event& event) {
  (void)kernel;
  switch (event.kind) {
    case sim::EventKind::kJobArrival:
      events_arrival_.inc();
      break;
    case sim::EventKind::kBatchCycle:
      events_batch_cycle_.inc();
      break;
    case sim::EventKind::kJobEnd:
      events_job_end_.inc();
      break;
    case sim::EventKind::kSiteDown:
      events_site_down_.inc();
      break;
    case sim::EventKind::kSiteUp:
      events_site_up_.inc();
      break;
    default:
      break;
  }
}

void KernelMetricsObserver::on_dispatch(
    const sim::SimKernel& kernel, sim::JobId job, sim::SiteId site,
    const sim::NodeAvailability::Window& window, double exec,
    unsigned serial) {
  (void)kernel;
  (void)job;
  (void)site;
  (void)window;
  (void)serial;
  dispatches_.inc();
  attempt_exec_seconds_.observe(exec);
}

void KernelMetricsObserver::on_job_complete(const sim::SimKernel& kernel,
                                            sim::JobId job, sim::SiteId site,
                                            sim::Time time) {
  (void)site;
  completions_.inc();
  job_response_seconds_.observe(time - kernel.job(job).arrival);
}

void KernelMetricsObserver::on_attempt_failure(const sim::SimKernel& kernel,
                                               sim::JobId job,
                                               sim::SiteId site,
                                               sim::Time time) {
  (void)kernel;
  (void)job;
  (void)site;
  (void)time;
  failures_.inc();
}

void KernelMetricsObserver::on_revoke(const sim::SimKernel& kernel,
                                      sim::JobId job, sim::SiteId site,
                                      sim::Time time) {
  (void)kernel;
  (void)job;
  (void)site;
  (void)time;
  revocations_.inc();
}

void KernelMetricsObserver::on_cycle(const sim::SimKernel& kernel,
                                     sim::Time now, std::size_t batch_jobs,
                                     std::size_t assigned,
                                     double scheduler_wall_seconds) {
  (void)kernel;
  (void)now;
  (void)scheduler_wall_seconds;  // wall time goes to the end-of-run gauge
  cycles_.inc();
  batch_jobs_.observe(static_cast<double>(batch_jobs));
  batch_assigned_.observe(static_cast<double>(assigned));
}

void KernelMetricsObserver::on_run_end(const sim::SimKernel& kernel) {
  makespan_.set(kernel.makespan());
  // The one wall-clock (non-deterministic) value in the registry; see the
  // README determinism note.
  scheduler_seconds_.set(kernel.counters().scheduler_seconds);
}

}  // namespace gridsched::obs
