#include "sim/event_queue.hpp"

namespace gridsched::sim {

void EventQueue::push(Event event) {
  event.seq = next_seq_++;
  heap_.push(event);
}

Event EventQueue::pop() {
  Event event = heap_.top();
  heap_.pop();
  return event;
}

}  // namespace gridsched::sim
