#include "sim/event_queue.hpp"

namespace gridsched::sim {

void EventQueue::sift_in(const Event& event) {
  heap_.push_back(event);
  std::size_t child = heap_.size() - 1;
  while (child > 0) {
    const std::size_t parent = (child - 1) / 2;
    if (!later(heap_[parent], heap_[child])) break;
    const Event tmp = heap_[parent];
    heap_[parent] = heap_[child];
    heap_[child] = tmp;
    child = parent;
  }
}

Event EventQueue::pop() {
  const Event event = heap_.front();
  const Event last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    // Sift the displaced tail element down from the root (hole-based: the
    // smaller child moves up until `last` fits).
    std::size_t hole = 0;
    while (true) {
      const std::size_t left = 2 * hole + 1;
      if (left >= n) break;
      std::size_t child = left;
      const std::size_t right = left + 1;
      if (right < n && later(heap_[left], heap_[right])) child = right;
      if (!later(last, heap_[child])) break;
      heap_[hole] = heap_[child];
      hole = child;
    }
    heap_[hole] = last;
  }
  return event;
}

}  // namespace gridsched::sim
