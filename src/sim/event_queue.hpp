// Stable discrete-event queue: events pop in time order; ties break by
// insertion sequence so simulations are deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/types.hpp"

namespace gridsched::sim {

enum class EventKind : std::uint8_t {
  kJobArrival,   ///< payload = job id
  kBatchCycle,   ///< periodic scheduler invocation
  kJobEnd,       ///< payload = job id; success or failure detection
  kSiteDown,     ///< payload = site id; churn outage begins
  kSiteUp,       ///< payload = site id; churn outage ends
  kKindCount_,   ///< sentinel — keep last (sizes the kernel routing table)
};

/// Number of EventKind values (sizes the kernel's routing table).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kKindCount_);

struct Event {
  Time time = 0.0;
  EventKind kind = EventKind::kBatchCycle;
  JobId job = kInvalidJob;
  SiteId site = kInvalidSite;
  /// True when this JobEnd is a security failure detection.
  bool is_failure = false;
  /// For kJobEnd: the attempt serial this end belongs to (the job's
  /// `attempts` count at dispatch). A site-down revocation leaves the old
  /// end event queued; the serial lets the consumer drop it as stale.
  unsigned attempt = 0;
  std::uint64_t seq = 0;  ///< assigned by the queue; breaks time ties FIFO
};

class EventQueue {
 public:
  void push(Event event);
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }
  Event pop();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gridsched::sim
