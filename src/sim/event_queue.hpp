// Stable discrete-event queue: events pop in time order; ties break by
// insertion sequence so simulations are deterministic.
//
// The heap is hand-rolled over a flat vector (no std::priority_queue
// comparator indirection — the (time, seq) compare inlines into the sift
// loops) and takes a capacity hint via reserve(), so in steady state a
// push never allocates: the hot event loop's queue traffic is heap-free
// once the backing vector has grown to the run's high-water mark.
//
// Sequence numbers: push() assigns the next counter value, matching the
// old queue exactly. A streamed run cannot push all arrivals up front, so
// the kernel reserves the arrival block instead — reserve_seqs(n) starts
// the counter at n and push_reserved(event, seq) pushes with an explicit
// seq from the reserved [0, n) block. Eager and lazy arrival injection
// therefore produce the identical (time, seq) total order.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace gridsched::sim {

enum class EventKind : std::uint8_t {
  kJobArrival,   ///< payload = job id
  kBatchCycle,   ///< periodic scheduler invocation
  kJobEnd,       ///< payload = job id; success or failure detection
  kSiteDown,     ///< payload = site id; churn outage begins
  kSiteUp,       ///< payload = site id; churn outage ends
  kKindCount_,   ///< sentinel — keep last (sizes the kernel routing table)
};

/// Number of EventKind values (sizes the kernel's routing table).
inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kKindCount_);

struct Event {
  Time time = 0.0;
  EventKind kind = EventKind::kBatchCycle;
  JobId job = kInvalidJob;
  SiteId site = kInvalidSite;
  /// True when this JobEnd is a security failure detection.
  bool is_failure = false;
  /// For kJobEnd: the attempt serial this end belongs to (the job's
  /// `attempts` count at dispatch). A site-down revocation leaves the old
  /// end event queued; the serial lets the consumer drop it as stale.
  unsigned attempt = 0;
  std::uint64_t seq = 0;  ///< assigned by the queue; breaks time ties FIFO
};

class EventQueue {
 public:
  /// Capacity hint: grow the backing vector once, up front, so steady-state
  /// pushes below the hint never allocate.
  void reserve(std::size_t capacity) { heap_.reserve(capacity); }

  /// Push with the next auto-assigned sequence number.
  void push(Event event) {
    event.seq = next_seq_++;
    sift_in(event);
  }

  /// Push with an explicit sequence number from a block previously set
  /// aside by reserve_seqs(). Does not advance the auto counter.
  void push_reserved(Event event, std::uint64_t seq) {
    event.seq = seq;
    sift_in(event);
  }

  /// Start auto-assigned sequence numbers at `first` (never moves the
  /// counter backwards), leaving [0, first) for push_reserved callers.
  void reserve_seqs(std::uint64_t first) noexcept {
    if (next_seq_ < first) next_seq_ = first;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.front(); }
  Event pop();

 private:
  /// Strict weak order: does `a` pop after `b`?
  static bool later(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  void sift_in(const Event& event);

  std::vector<Event> heap_;  ///< binary min-heap on (time, seq)
  std::uint64_t next_seq_ = 0;
};

}  // namespace gridsched::sim
