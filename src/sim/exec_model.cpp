#include "sim/exec_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace gridsched::sim {

ExecModel::ExecModel(std::size_t n_jobs, std::size_t n_sites,
                     std::vector<double> cells) {
  if (n_jobs == 0 || n_sites == 0) {
    throw std::invalid_argument("ExecModel: empty matrix dimensions");
  }
  if (cells.size() != n_jobs * n_sites) {
    throw std::invalid_argument(
        "ExecModel: cell count " + std::to_string(cells.size()) +
        " does not match " + std::to_string(n_jobs) + " jobs x " +
        std::to_string(n_sites) + " sites");
  }
  for (const double cell : cells) {
    if (!std::isfinite(cell) || cell <= 0.0) {
      throw std::invalid_argument(
          "ExecModel: ETC cells must be finite and > 0");
    }
  }
  auto matrix = std::make_shared<Matrix>();
  matrix->n_jobs = n_jobs;
  matrix->n_sites = n_sites;
  matrix->cells = std::move(cells);
  matrix_ = std::move(matrix);
}

void ExecModel::check_shape(std::size_t n_jobs, std::size_t n_sites) const {
  if (matrix_ == nullptr) return;
  // Exact match only: rows are keyed by dense JobId, so even a larger
  // matrix means the job list was subset/reordered relative to the
  // workload the matrix was generated for — every lookup would silently
  // read some other job's row.
  if (matrix_->n_jobs != n_jobs || matrix_->n_sites != n_sites) {
    throw std::invalid_argument(
        "ExecModel: matrix shape " + std::to_string(matrix_->n_jobs) + "x" +
        std::to_string(matrix_->n_sites) + " does not cover " +
        std::to_string(n_jobs) + " jobs x " + std::to_string(n_sites) +
        " sites");
  }
}

}  // namespace gridsched::sim
