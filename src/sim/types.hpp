// Fundamental identifiers and time type shared across the simulator.
#pragma once

#include <cstdint>
#include <limits>

namespace gridsched::sim {

/// Simulated time in seconds.
using Time = double;

using JobId = std::uint32_t;
using SiteId = std::uint32_t;

inline constexpr SiteId kInvalidSite = std::numeric_limits<SiteId>::max();
inline constexpr JobId kInvalidJob = std::numeric_limits<JobId>::max();

}  // namespace gridsched::sim
