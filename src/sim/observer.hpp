// Read-only observation hooks on the simulation kernel. A KernelObserver
// receives callbacks at the kernel's decision points — event routing,
// dispatches, completions, failure detections, revocations, batch cycles
// — and must never mutate simulation state: with no observer attached
// (the default) every notification compiles down to a single null check,
// and an attached observer must leave the run bit-identical to an
// unobserved one. Concrete observers live in src/obs/ (trace recording,
// metric collection); the interface lives here so the kernel depends on
// nothing outside sim/.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/site.hpp"
#include "sim/types.hpp"

namespace gridsched::sim {

class SimKernel;

/// Passive hook on SimKernel. All callbacks default to no-ops so
/// observers override only what they need. Callbacks receive the kernel
/// by const reference — observation must never steer the simulation.
class KernelObserver {
 public:
  virtual ~KernelObserver() = default;

  /// Before the first event is popped (processes already started).
  virtual void on_run_start(const SimKernel& kernel) { (void)kernel; }

  /// Every event popped from the queue, before it is routed. Stale
  /// kJobEnd events (revoked attempts) are reported here too — the
  /// observer sees the raw event stream, exactly as the kernel does.
  virtual void on_event(const SimKernel& kernel, const Event& event) {
    (void)kernel;
    (void)event;
  }

  /// A job was placed on a site: reservation committed, end event queued.
  /// `serial` is the attempt serial (Job::attempts at dispatch).
  virtual void on_dispatch(const SimKernel& kernel, JobId job, SiteId site,
                           const NodeAvailability::Window& window, double exec,
                           unsigned serial) {
    (void)kernel;
    (void)job;
    (void)site;
    (void)window;
    (void)exec;
    (void)serial;
  }

  /// A job finished successfully at `time` on `site`.
  virtual void on_job_complete(const SimKernel& kernel, JobId job, SiteId site,
                               Time time) {
    (void)kernel;
    (void)job;
    (void)site;
    (void)time;
  }

  /// A security failure was detected at `time`; the attempt on `site` is
  /// about to be revoked (on_revoke follows from the same event).
  virtual void on_attempt_failure(const SimKernel& kernel, JobId job,
                                  SiteId site, Time time) {
    (void)kernel;
    (void)job;
    (void)site;
    (void)time;
  }

  /// `job`'s active attempt on `site` was revoked at `time` and the job
  /// returned to the pending queue. Fired for both failure releases and
  /// site-down interruptions (after on_attempt_failure for the former).
  virtual void on_revoke(const SimKernel& kernel, JobId job, SiteId site,
                         Time time) {
    (void)kernel;
    (void)job;
    (void)site;
    (void)time;
  }

  /// A non-empty batch cycle ran at `now`: `batch_jobs` pending jobs were
  /// offered, `assigned` placed. `scheduler_wall_seconds` is host wall
  /// time inside schedule() — non-deterministic by nature; trace/metric
  /// consumers that promise byte-stable output must not record it.
  virtual void on_cycle(const SimKernel& kernel, Time now,
                        std::size_t batch_jobs, std::size_t assigned,
                        double scheduler_wall_seconds) {
    (void)kernel;
    (void)now;
    (void)batch_jobs;
    (void)assigned;
    (void)scheduler_wall_seconds;
  }

  /// After the event loop ends (all jobs completed), before run() returns.
  virtual void on_run_end(const SimKernel& kernel) { (void)kernel; }
};

/// Fans every callback out to several observers, in add() order. Lets a
/// run attach a trace recorder and a metric collector at once through the
/// kernel's single observer slot. Pointers are non-owning; null adds are
/// ignored so callers can pass optional observers unconditionally.
class KernelObserverTee final : public KernelObserver {
 public:
  void add(KernelObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }
  [[nodiscard]] bool empty() const noexcept { return observers_.empty(); }

  void on_run_start(const SimKernel& kernel) override {
    for (KernelObserver* o : observers_) o->on_run_start(kernel);
  }
  void on_event(const SimKernel& kernel, const Event& event) override {
    for (KernelObserver* o : observers_) o->on_event(kernel, event);
  }
  void on_dispatch(const SimKernel& kernel, JobId job, SiteId site,
                   const NodeAvailability::Window& window, double exec,
                   unsigned serial) override {
    for (KernelObserver* o : observers_) {
      o->on_dispatch(kernel, job, site, window, exec, serial);
    }
  }
  void on_job_complete(const SimKernel& kernel, JobId job, SiteId site,
                       Time time) override {
    for (KernelObserver* o : observers_) {
      o->on_job_complete(kernel, job, site, time);
    }
  }
  void on_attempt_failure(const SimKernel& kernel, JobId job, SiteId site,
                          Time time) override {
    for (KernelObserver* o : observers_) {
      o->on_attempt_failure(kernel, job, site, time);
    }
  }
  void on_revoke(const SimKernel& kernel, JobId job, SiteId site,
                 Time time) override {
    for (KernelObserver* o : observers_) o->on_revoke(kernel, job, site, time);
  }
  void on_cycle(const SimKernel& kernel, Time now, std::size_t batch_jobs,
                std::size_t assigned, double scheduler_wall_seconds) override {
    for (KernelObserver* o : observers_) {
      o->on_cycle(kernel, now, batch_jobs, assigned, scheduler_wall_seconds);
    }
  }
  void on_run_end(const SimKernel& kernel) override {
    for (KernelObserver* o : observers_) o->on_run_end(kernel);
  }

 private:
  std::vector<KernelObserver*> observers_;
};

}  // namespace gridsched::sim
