// Event-driven simulation kernel. SimKernel owns only the generic
// machinery — event queue, clock, deterministic FIFO tie-breaking, shared
// run state (job slots, sites, attempts, pending queue, counters) and the
// site-availability mask — while every dynamic process of the simulated
// grid (job arrivals, periodic batch scheduling, security failures, site
// churn) is a pluggable SimProcess that registers for the event kinds it
// owns. sim::Engine (engine.hpp) is the compatibility facade that wires
// the paper's standard process set onto a kernel.
//
// Job storage comes in two modes, selected by the constructor:
//
//  - retained (vector ctor): every job is materialised up front and slot
//    index == job id, exactly like the pre-streaming kernel — all existing
//    callers (and their artifacts) are bit-identical.
//  - streaming (JobStream ctor): jobs are admitted lazily, one arrival
//    ahead of the clock, into a recycled slot table. A completed job
//    retires into the RetirementAccumulator as soon as every lower id has
//    retired (in-order retirement frontier), freeing its slot — resident
//    job state is O(active jobs), not O(total), which is what opens
//    million-job workloads (ROADMAP "Streaming-kernel invariants").
//
// In both modes jobs retire in id order through the same accumulator, so
// metrics::compute_metrics produces bit-identical sums, and arrival events
// carry reserved sequence numbers (seq == job id) so eager and lazy
// injection pop in the identical (time, seq) order.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/retirement.hpp"
#include "security/security.hpp"
#include "sim/event_queue.hpp"
#include "sim/exec_model.hpp"
#include "sim/job.hpp"
#include "sim/observer.hpp"
#include "sim/site.hpp"
#include "util/cancel.hpp"
#include "workload/stream.hpp"

namespace gridsched::sim {

class SimKernel;

/// Diagnostic text for runs that end with incomplete jobs: names the
/// unfinished count, the first few job ids (with their states) and the
/// simulation time. Shared by the kernel's terminal error and
/// metrics::compute_metrics so both failure surfaces stay equally
/// actionable.
std::string describe_unfinished(const std::vector<Job>& jobs, Time sim_time);

/// When a doomed risky run is detected as failed (DESIGN.md S4).
enum class FailureDetection {
  kAtEnd,            ///< after the full execution window
  kUniformFraction,  ///< after U(0,1) of the execution window
  kImmediate,        ///< at launch (IDS flags the job as it starts)
};

struct EngineConfig {
  /// Scheduling-cycle period (seconds). Jobs accumulate between cycles.
  Time batch_interval = 2000.0;
  /// Eq. 1 coefficient used for the *actual* failure draws.
  double lambda = security::kDefaultLambda;
  FailureDetection detection = FailureDetection::kUniformFraction;
  /// Seed for failure draws, detection fractions and churn timelines.
  std::uint64_t seed = 1;
  /// Reject workloads containing a job no site could ever run safely
  /// (such a job could starve forever after a failure).
  bool validate_feasibility = true;
  /// Abort if this many consecutive non-empty batches make no progress.
  std::size_t max_idle_cycles = 10000;
  /// Cooperative cancellation (non-owning; may be null). The kernel polls
  /// the token at every batch-cycle boundary and aborts the run with
  /// util::CancelledError when it was cancelled or its wall-clock
  /// deadline expired — the campaign layer's per-cell watchdog. A null
  /// token costs a single branch per cycle.
  const util::CancelToken* cancel = nullptr;
};

/// Aggregate outcome counters kept by the kernel while it runs; per-job
/// details live in the Job records themselves.
struct EngineCounters {
  std::size_t completed_jobs = 0;
  std::size_t failure_events = 0;     ///< failure detections (attempts)
  std::size_t risky_attempts = 0;     ///< dispatches with P(fail) > 0
  std::size_t batch_invocations =
      0;  ///< scheduler calls with a non-empty batch
  double scheduler_seconds = 0.0;     ///< wall time inside schedule()
  /// Node reservation tails reclaimed by failure releases.
  std::size_t released_nodes = 0;
  /// Reserved tails a failure release could NOT reclaim because a later
  /// reservation had already been stacked onto the node (its free time
  /// moved past the stored window end). Not stranded capacity — the tail
  /// is committed to the next job — but surfaced so a zero-node release
  /// is visible instead of silently ignored.
  std::size_t unreleased_nodes = 0;
  // --- site-churn process ---
  std::size_t site_down_events = 0;   ///< kSiteDown occurrences
  std::size_t site_up_events = 0;     ///< kSiteUp occurrences
  /// Attempts revoked because their site went down (per-job counts live in
  /// Job::interruptions).
  std::size_t interrupted_attempts = 0;
  /// Reservation tails reclaimed / not reclaimable by site-down
  /// revocations (same release-by-stored-window accounting as the failure
  /// counters above; an unreleased tail here is a reservation stacked
  /// behind the revoked one on the same node).
  std::size_t churn_released_nodes = 0;
  std::size_t churn_unreleased_nodes = 0;
};

/// The current attempt of a job: the reservation committed at dispatch.
/// `window.end` is the exact stored free time the site must be released
/// against after a failure or revocation (recomputing start + exec would
/// rely on bitwise float equality).
struct Attempt {
  NodeAvailability::Window window;
  double exec = 0.0;
  SiteId site = kInvalidSite;
  /// Serial of this attempt (== Job::attempts at dispatch); kJobEnd events
  /// carry it so ends of revoked attempts are dropped as stale.
  unsigned serial = 0;
  bool active = false;
};

/// One dynamic process of the simulation. A process registers the event
/// kinds it owns (routing is exclusive: exactly one process per kind may
/// be registered), seeds its initial events in start(), and mutates the
/// shared kernel state in handle().
class SimProcess {
 public:
  virtual ~SimProcess() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Event kinds routed to this process. Must stay constant.
  [[nodiscard]] virtual std::span<const EventKind> owned_kinds()
      const noexcept = 0;

  /// Called once, in registration order, before the event loop.
  virtual void start(SimKernel& kernel) { (void)kernel; }

  /// Handle one event whose kind this process owns.
  virtual void handle(SimKernel& kernel, const Event& event) = 0;
};

/// How a validated (job, site) placement turns into a reservation and an
/// end event. Implemented by SecurityFailureProcess (which owns the
/// failure draws); BatchCycleProcess calls it for each assignment.
class DispatchModel {
 public:
  virtual ~DispatchModel() = default;
  virtual void dispatch(SimKernel& kernel, JobId job, SiteId site,
                        Time now) = 0;
};

/// The kernel: event queue + clock + shared state + routing. Construction
/// validates the workload exactly like the former monolithic Engine; the
/// caller registers processes (non-owning) and calls run().
class SimKernel {
 public:
  /// Retained mode: materialise `jobs` up front (slot == id). Identical
  /// behaviour and artifacts to the pre-streaming kernel.
  SimKernel(std::vector<SiteConfig> sites, std::vector<Job> jobs,
            EngineConfig config = {}, ExecModel exec_model = {});

  /// Streaming mode: pull jobs from `stream` on demand and recycle slots
  /// as jobs retire; resident job state is O(active). Feasibility is
  /// validated per admission (O(1) via a precomputed best-security-per-
  /// node-count table) and arrivals must be nondecreasing.
  SimKernel(std::vector<SiteConfig> sites,
            std::unique_ptr<workload::JobStream> stream,
            EngineConfig config = {}, ExecModel exec_model = {});

  /// Register a process and route its owned kinds to it. Throws
  /// std::logic_error if a kind is already routed or run() has started.
  void add_process(SimProcess& process);

  /// Run the event loop to completion (all jobs finished). Throws on
  /// scheduler protocol violations and if the queue drains with unfinished
  /// jobs. May be called once.
  void run();

  // --- shared state, mutable for processes ---
  /// The job slot table. Retained mode: all jobs, slot == id. Streaming
  /// mode: live slots only (recycled slots hold stale retired data until
  /// reused) — processes address jobs by id via job()/attempt(); only
  /// slot-parallel scans (timeseries busy profile, churn victim sweep)
  /// index this directly, always gated on Attempt::active.
  [[nodiscard]] std::vector<Job>& jobs() noexcept { return jobs_; }
  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::vector<GridSite>& sites() noexcept { return sites_; }
  [[nodiscard]] const std::vector<GridSite>& sites() const noexcept {
    return sites_;
  }
  [[nodiscard]] std::vector<Attempt>& attempts() noexcept { return attempts_; }
  [[nodiscard]] const std::vector<Attempt>& attempts() const noexcept {
    return attempts_;
  }
  [[nodiscard]] std::vector<JobId>& pending() noexcept { return pending_; }
  [[nodiscard]] const std::vector<JobId>& pending() const noexcept {
    return pending_;
  }
  [[nodiscard]] EngineCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const EngineCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ExecModel& exec_model() const noexcept {
    return exec_model_;
  }

  // --- job identity (id -> slot) ---
  /// Total jobs this run will simulate (stream size in streaming mode).
  [[nodiscard]] std::size_t total_jobs() const noexcept { return total_jobs_; }
  /// Job / attempt by id. Valid for live ids only: admitted and not yet
  /// retired (retained mode never retires slots, so any id works there).
  [[nodiscard]] Job& job(JobId id) noexcept {
    return jobs_[slot_of_[id & slot_mask_]];
  }
  [[nodiscard]] const Job& job(JobId id) const noexcept {
    return jobs_[slot_of_[id & slot_mask_]];
  }
  [[nodiscard]] Attempt& attempt(JobId id) noexcept {
    return attempts_[slot_of_[id & slot_mask_]];
  }
  [[nodiscard]] const Attempt& attempt(JobId id) const noexcept {
    return attempts_[slot_of_[id & slot_mask_]];
  }
  /// True once `id` has been folded into the retirement accumulator (its
  /// slot may already belong to another job). Guards stale end events.
  [[nodiscard]] bool is_retired(JobId id) const noexcept {
    return id < retire_frontier_;
  }
  /// Ids retired so far == the in-order retirement frontier.
  [[nodiscard]] std::size_t retired_jobs() const noexcept {
    return retire_frontier_;
  }
  /// Streaming metric sums over retired jobs (all jobs, post-run).
  [[nodiscard]] const metrics::RetirementAccumulator& retirement()
      const noexcept {
    return retired_;
  }
  /// High-water slot count (== total jobs in retained mode; O(active) in
  /// streaming mode — the streaming scale tests pin this).
  [[nodiscard]] std::size_t peak_slots() const noexcept { return jobs_.size(); }

  /// Streaming mode: admit the next job from the cursor into a slot and
  /// fill `arrival` with its kJobArrival event; false when exhausted (or
  /// in retained mode). Called by ArrivalProcess, one arrival ahead.
  bool admit_next(Event& arrival);

  /// Advance the retirement frontier over completed jobs (in id order),
  /// folding each into the accumulator and (streaming mode) freeing its
  /// slot. Called after every completion.
  void retire_completed();

  /// Kernel-level variant of sim::describe_unfinished that works in both
  /// storage modes (byte-identical to the free function in retained mode).
  [[nodiscard]] std::string describe_unfinished(Time sim_time) const;

  /// max over jobs of finish time (0 before run / for empty workloads).
  [[nodiscard]] Time makespan() const noexcept { return makespan_; }
  void observe_finish(Time time) noexcept {
    makespan_ = makespan_ < time ? time : makespan_;
  }

  // --- event machinery ---
  void push_event(Event event) { events_.push(event); }
  /// Push with a reserved sequence number (arrival events use seq == job
  /// id; see EventQueue::reserve_seqs).
  void push_event_reserved(Event event, std::uint64_t seq) {
    events_.push_reserved(event, seq);
  }

  /// Schedule the next batch cycle strictly after `now` if none is queued.
  /// Cycle times derive from an integer cycle index (index *
  /// batch_interval), never from accumulated floats, so a cycle can never
  /// land at or before the current time.
  void request_cycle(Time now);
  /// BatchCycleProcess acknowledges a fired cycle (clears the queued flag).
  void cycle_fired() noexcept { cycle_scheduled_ = false; }

  // --- run-state bookkeeping ---
  [[nodiscard]] bool work_remains() const noexcept {
    return !pending_.empty() || arrivals_remaining_ > 0 || running_ > 0;
  }
  void note_arrival() noexcept { --arrivals_remaining_; }
  void job_started() noexcept { ++running_; }
  void job_stopped() noexcept { --running_; }

  /// Deactivate `job`'s current attempt at `now` and return it to the
  /// pending queue: account the node-seconds actually burned (none for a
  /// reservation whose window had not started), release the reservation
  /// tail against the *stored* window end, and mark the job pending. The
  /// one revocation primitive shared by failure releases and site-down
  /// revocations — their release accounting must never diverge. Returns
  /// the reclaimed node count (the caller bumps its own
  /// released/unreleased counters and requests a cycle).
  unsigned revoke_attempt(JobId job, Time now);

  // --- site availability mask (owned by the churn process) ---
  [[nodiscard]] bool site_usable(std::size_t site) const noexcept {
    return site_up_[site] != 0;
  }
  void set_site_up(std::size_t site, bool up) noexcept {
    site_up_[site] = up ? 1 : 0;
  }
  /// The mask as handed to SchedulerContext (1 = usable).
  [[nodiscard]] const std::vector<std::uint8_t>& site_mask() const noexcept {
    return site_up_;
  }

  // --- observation (null observer = zero-cost fast path) ---
  /// Attach a passive observer (nullptr detaches). Observers are
  /// non-owning and must outlive run(). With none attached every notify
  /// point is a single branch on a null pointer, and observed runs must
  /// stay bit-identical to unobserved ones (observers are read-only).
  void set_observer(KernelObserver* observer) noexcept {
    observer_ = observer;
  }
  [[nodiscard]] KernelObserver* observer() const noexcept { return observer_; }

  /// Notification helpers for processes (null-checked, inline).
  void notify_dispatch(JobId job, SiteId site,
                       const NodeAvailability::Window& window, double exec,
                       unsigned serial) const {
    if (observer_) observer_->on_dispatch(*this, job, site, window, exec,
                                          serial);
  }
  void notify_job_complete(JobId job, SiteId site, Time time) const {
    if (observer_) observer_->on_job_complete(*this, job, site, time);
  }
  void notify_attempt_failure(JobId job, SiteId site, Time time) const {
    if (observer_) observer_->on_attempt_failure(*this, job, site, time);
  }
  void notify_cycle(Time now, std::size_t batch_jobs, std::size_t assigned,
                    double scheduler_wall_seconds) const {
    if (observer_) {
      observer_->on_cycle(*this, now, batch_jobs, assigned,
                          scheduler_wall_seconds);
    }
  }

 private:
  SimKernel(std::vector<SiteConfig> sites, EngineConfig config,
            ExecModel exec_model, std::size_t total_jobs);

  void validate_workload() const;
  void validate_admitted(const Job& job) const;
  void grow_slot_ring();

  std::vector<GridSite> sites_;
  std::vector<Job> jobs_;  ///< slot table (all jobs in retained mode)
  EngineConfig config_;
  ExecModel exec_model_;

  EventQueue events_;
  std::vector<JobId> pending_;
  std::vector<Attempt> attempts_;  ///< per slot, current attempt
  std::vector<std::uint8_t> site_up_;
  EngineCounters counters_;
  Time makespan_ = 0.0;
  std::size_t arrivals_remaining_ = 0;
  std::size_t running_ = 0;
  bool cycle_scheduled_ = false;
  /// 1 + index of the last scheduled batch cycle (see request_cycle).
  std::uint64_t next_cycle_index_ = 0;
  std::vector<SimProcess*> processes_;
  SimProcess* routes_[kEventKindCount] = {};
  KernelObserver* observer_ = nullptr;
  bool ran_ = false;

  // --- job identity / streaming state ---
  bool stream_mode_ = false;
  std::unique_ptr<workload::JobStream> stream_;
  std::size_t total_jobs_ = 0;
  std::size_t admitted_ = 0;        ///< ids [0, admitted_) hold a slot
  std::size_t retire_frontier_ = 0; ///< ids [0, frontier) are retired
  Time last_arrival_ = 0.0;         ///< sorted-stream admission guard
  /// id -> slot ring (power-of-two capacity >= live-id window); identity
  /// in retained mode.
  std::vector<std::uint32_t> slot_of_;
  std::uint32_t slot_mask_ = 0;
  std::vector<std::uint32_t> free_slots_;  ///< recycled slots (stream mode)
  /// Per-admission feasibility table: best_security_[k] = max security
  /// level over sites with >= k nodes (-1 when no site fits k).
  std::vector<double> best_security_;
  metrics::RetirementAccumulator retired_;
};

}  // namespace gridsched::sim
