// Discrete-event engine implementing the paper's periodic online batch
// scheduling model (Fig. 1) with security-failure injection (Eq. 1) and
// fail-stop rescheduling.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "security/security.hpp"
#include "sim/event_queue.hpp"
#include "sim/exec_model.hpp"
#include "sim/job.hpp"
#include "sim/scheduling.hpp"
#include "sim/site.hpp"
#include "util/rng.hpp"

namespace gridsched::sim {

/// When a doomed risky run is detected as failed (DESIGN.md S4).
enum class FailureDetection {
  kAtEnd,            ///< after the full execution window
  kUniformFraction,  ///< after U(0,1) of the execution window
  kImmediate,        ///< at launch (IDS flags the job as it starts)
};

struct EngineConfig {
  /// Scheduling-cycle period (seconds). Jobs accumulate between cycles.
  Time batch_interval = 2000.0;
  /// Eq. 1 coefficient used for the *actual* failure draws.
  double lambda = security::kDefaultLambda;
  FailureDetection detection = FailureDetection::kUniformFraction;
  /// Seed for failure draws and detection fractions.
  std::uint64_t seed = 1;
  /// Reject workloads containing a job no site could ever run safely
  /// (such a job could starve forever after a failure).
  bool validate_feasibility = true;
  /// Abort if this many consecutive non-empty batches make no progress.
  std::size_t max_idle_cycles = 10000;
};

/// Aggregate outcome counters kept by the engine while it runs; per-job
/// details live in the Job records themselves.
struct EngineCounters {
  std::size_t completed_jobs = 0;
  std::size_t failure_events = 0;     ///< failure detections (attempts)
  std::size_t risky_attempts = 0;     ///< dispatches with P(fail) > 0
  std::size_t batch_invocations = 0;  ///< scheduler calls with a non-empty batch
  double scheduler_seconds = 0.0;     ///< wall time inside schedule()
  /// Node reservation tails reclaimed by failure releases.
  std::size_t released_nodes = 0;
  /// Reserved tails a failure release could NOT reclaim because a later
  /// reservation had already been stacked onto the node (its free time
  /// moved past the stored window end). Not stranded capacity — the tail
  /// is committed to the next job — but surfaced so a zero-node release
  /// is visible instead of silently ignored.
  std::size_t unreleased_nodes = 0;
};

/// Runs one simulation: jobs are injected at their arrival times, scheduled
/// in batches by the supplied BatchScheduler, executed on reservation-based
/// space-shared sites, and possibly re-scheduled after security failures.
class Engine {
 public:
  /// `exec_model`: per-(job, site) execution times. A raw ETC matrix (rows
  /// keyed by position in `jobs`) is authoritative; the default model is
  /// the rank-1 work/speed fallback.
  Engine(std::vector<SiteConfig> sites, std::vector<Job> jobs,
         EngineConfig config = {}, ExecModel exec_model = {});

  /// Run to completion (all jobs finished). The scheduler object must
  /// outlive the call. Throws on scheduler protocol violations.
  void run(BatchScheduler& scheduler);

  [[nodiscard]] const std::vector<Job>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] const std::vector<GridSite>& sites() const noexcept { return sites_; }
  [[nodiscard]] const EngineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// max over jobs of finish time (0 before run / for empty workloads).
  [[nodiscard]] Time makespan() const noexcept { return makespan_; }

 private:
  struct Attempt {
    /// The reservation committed at dispatch. `window.end` is the exact
    /// stored free time the site must be released against after a failure
    /// (recomputing start + exec would rely on bitwise float equality).
    NodeAvailability::Window window;
    double exec = 0.0;
    SiteId site = kInvalidSite;
    bool active = false;
  };

  void validate_workload() const;
  void handle_batch_cycle(Time now, BatchScheduler& scheduler);
  void dispatch(JobId job_id, SiteId site_id, Time now);
  void ensure_cycle_scheduled(Time now);
  [[nodiscard]] bool work_remains() const noexcept;

  std::vector<GridSite> sites_;
  std::vector<Job> jobs_;
  EngineConfig config_;
  ExecModel exec_model_;

  EventQueue events_;
  std::deque<JobId> pending_;
  std::vector<Attempt> attempts_;  ///< per job, current attempt
  EngineCounters counters_;
  Time makespan_ = 0.0;
  std::size_t arrivals_remaining_ = 0;
  std::size_t running_ = 0;
  bool cycle_scheduled_ = false;
  /// 1 + index of the last scheduled batch cycle: cycle times are derived
  /// from integer indices (index * batch_interval), never by accumulating
  /// floats, so a cycle can never land at or before the current time.
  std::uint64_t next_cycle_index_ = 0;
  std::size_t idle_cycles_ = 0;
  bool ran_ = false;
};

}  // namespace gridsched::sim
