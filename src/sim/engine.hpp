// Compatibility facade over the event-driven simulation kernel
// (sim/kernel.hpp): one Engine bundles the paper's standard process set —
// ArrivalProcess, BatchCycleProcess, SecurityFailureProcess and (when the
// workload carries churn parameters) SiteChurnProcess — onto a SimKernel,
// preserving the original monolithic Engine API. Code that composes its
// own process mix (custom dynamism, scripted outages) targets SimKernel
// directly; everything else keeps constructing an Engine.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/kernel.hpp"
#include "sim/scheduling.hpp"

namespace gridsched::sim {

/// Runs one simulation: jobs are injected at their arrival times, scheduled
/// in batches by the supplied BatchScheduler, executed on reservation-based
/// space-shared sites, possibly re-scheduled after security failures, and —
/// when churn parameters are present — interrupted and re-queued when their
/// site goes down.
class Engine {
 public:
  /// `exec_model`: per-(job, site) execution times. A raw ETC matrix (rows
  /// keyed by position in `jobs`) is authoritative; the default model is
  /// the rank-1 work/speed fallback. `churn`: per-site up/down process
  /// parameters (empty, or all entries with mtbf/mttr <= 0, disables the
  /// churn process entirely).
  Engine(std::vector<SiteConfig> sites, std::vector<Job> jobs,
         EngineConfig config = {}, ExecModel exec_model = {},
         std::vector<SiteChurnParams> churn = {});

  /// Streaming variant: jobs come from a cursor (workload/stream.hpp) and
  /// the kernel keeps only O(active jobs) resident, recycling slots as
  /// jobs retire — the constructor for million-job workloads. Semantics
  /// are otherwise identical to the retained constructor (a materialized
  /// stream produces bit-identical artifacts).
  Engine(std::vector<SiteConfig> sites,
         std::unique_ptr<workload::JobStream> stream, EngineConfig config = {},
         ExecModel exec_model = {}, std::vector<SiteChurnParams> churn = {});

  /// Run to completion (all jobs finished). The scheduler object must
  /// outlive the call. Throws on scheduler protocol violations.
  void run(BatchScheduler& scheduler);

  /// Attach a passive kernel observer (nullptr detaches; must outlive
  /// run()). Forwarded to SimKernel::set_observer — observers are
  /// read-only and a null observer costs one branch per notify point.
  void set_observer(KernelObserver* observer) noexcept {
    kernel_.set_observer(observer);
  }

  [[nodiscard]] const std::vector<Job>& jobs() const noexcept {
    return kernel_.jobs();
  }
  [[nodiscard]] const std::vector<GridSite>& sites() const noexcept {
    return kernel_.sites();
  }
  [[nodiscard]] const EngineCounters& counters() const noexcept {
    return kernel_.counters();
  }
  [[nodiscard]] const EngineConfig& config() const noexcept {
    return kernel_.config();
  }

  /// max over jobs of finish time (0 before run / for empty workloads).
  [[nodiscard]] Time makespan() const noexcept { return kernel_.makespan(); }

  /// The underlying kernel (diagnostics, tests).
  [[nodiscard]] const SimKernel& kernel() const noexcept { return kernel_; }

 private:
  SimKernel kernel_;
  std::vector<SiteChurnParams> churn_;
};

}  // namespace gridsched::sim
