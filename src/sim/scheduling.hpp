// The batch-scheduler interface the simulation engine invokes every
// scheduling cycle (the "on-line job scheduling system model" of Fig. 1).
// Heuristics (src/sched) and the GAs (src/core) implement BatchScheduler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/exec_model.hpp"
#include "sim/job.hpp"
#include "sim/site.hpp"
#include "sim/types.hpp"

namespace gridsched::sim {

/// One job of the current batch, as visible to a scheduler.
struct BatchJob {
  JobId id = kInvalidJob;
  double work = 0.0;
  unsigned nodes = 1;
  double demand = 0.0;
  Time arrival = 0.0;
  /// Fail-stop retry: must go to a site with SL >= SD, whatever the mode.
  bool secure_only = false;
};

/// Immutable snapshot handed to BatchScheduler::schedule. Site availability
/// profiles reflect every reservation committed so far.
struct SchedulerContext {
  Time now = 0.0;
  std::vector<SiteConfig> sites;
  std::vector<NodeAvailability> avail;  ///< parallel to `sites`
  std::vector<BatchJob> jobs;           ///< the pending batch
  /// Site availability mask, parallel to `sites` (1 = usable). A site
  /// masked out by the churn process (currently down) must never receive
  /// an assignment — the kernel rejects it as a protocol violation. Empty
  /// means every site is usable (hand-assembled contexts). Schedulers go
  /// through sched::admissible(context, ...) rather than reading this
  /// directly, so the mask and the risk filter can never disagree.
  std::vector<std::uint8_t> site_up;
  /// The engine's execution model. Raw ETC when the workload carries one
  /// (authoritative — schedulers must resolve exec times through it, never
  /// recompute work/speed themselves); rank-1 fallback otherwise.
  ExecModel exec;

  [[nodiscard]] bool site_usable(std::size_t s) const noexcept {
    return site_up.empty() || site_up[s] != 0;
  }

  /// Execution time of batch job `job` on site index `s`, resolved through
  /// the execution model (matrix rows are keyed by the job's global id).
  [[nodiscard]] double exec_time(const BatchJob& job,
                                 std::size_t s) const noexcept {
    return exec.exec(job.id, job.work, static_cast<SiteId>(s), sites[s].speed);
  }
};

/// One placement decision. The engine dispatches assignments in the order
/// returned, which fixes the reservation order (heuristics exploit this).
struct Assignment {
  std::size_t job_index = 0;  ///< index into SchedulerContext::jobs
  SiteId site = kInvalidSite;
};

class BatchScheduler {
 public:
  virtual ~BatchScheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Map (a subset of) the batch to sites. Jobs omitted from the result
  /// remain pending and reappear in the next cycle's batch.
  virtual std::vector<Assignment> schedule(const SchedulerContext& context) = 0;

  /// Allocation-aware variant: write the assignments into `out` (cleared
  /// first), reusing its capacity. The engine's batch cycle calls this so
  /// a scheduler that overrides it can keep the steady-state event loop
  /// heap-free; the default simply delegates to schedule().
  virtual void schedule_into(const SchedulerContext& context,
                             std::vector<Assignment>& out) {
    out = schedule(context);
  }
};

}  // namespace gridsched::sim
