#include "sim/site.hpp"

#include <algorithm>
#include <stdexcept>

namespace gridsched::sim {

NodeAvailability::NodeAvailability(unsigned nodes, Time t0) : free_(nodes, t0) {
  if (nodes == 0)
    throw std::invalid_argument("NodeAvailability: nodes must be > 0");
}

Time NodeAvailability::earliest_start(unsigned k, Time now) const {
  if (k == 0 || k > free_.size()) {
    throw std::invalid_argument(
        "NodeAvailability::earliest_start: bad node count");
  }
  // free_ is sorted ascending: k nodes are simultaneously free once the
  // k-th earliest becomes free.
  return std::max(now, free_[k - 1]);
}

NodeAvailability::Window NodeAvailability::preview(unsigned k, double exec,
                                                   Time now) const {
  const Time start = earliest_start(k, now);
  return {start, start + exec};
}

NodeAvailability::Window NodeAvailability::reserve(unsigned k, double exec,
                                                   Time now) {
  const Window window = preview(k, exec, now);
  // The k earliest-free nodes are all idle by window.start; occupy them.
  for (unsigned i = 0; i < k; ++i) free_[i] = window.end;
  // Restore sorted order. The k changed entries are all equal to
  // window.end, so rotating them as one block to just before the first
  // strictly-larger tail entry yields the same profile a stable merge
  // would — without std::inplace_merge's temporary-buffer allocation
  // (the reserve path must stay heap-free in the steady-state event loop).
  const auto middle = free_.begin() + k;
  const auto insert_at = std::lower_bound(middle, free_.end(), window.end);
  std::rotate(free_.begin(), middle, insert_at);
  return window;
}

unsigned NodeAvailability::release(unsigned k, Time reserved_end,
                                   Time release_at) {
  if (release_at > reserved_end) {
    throw std::invalid_argument(
        "NodeAvailability::release: release_at is late");
  }
  // Entries equal to reserved_end form a contiguous run in the sorted
  // profile; any node re-reserved since has a strictly larger free time.
  unsigned released = 0;
  for (std::size_t i = 0; i < free_.size() && released < k; ++i) {
    if (free_[i] == reserved_end) {
      free_[i] = release_at;
      ++released;
    }
  }
  if (released > 0) std::sort(free_.begin(), free_.end());
  return released;
}

GridSite::GridSite(SiteConfig config)
    : config_(config), avail_(config.nodes, 0.0) {
  if (config_.speed <= 0.0) {
    throw std::invalid_argument("GridSite: speed must be > 0");
  }
}

NodeAvailability::Window GridSite::dispatch(unsigned job_nodes, double exec,
                                            Time now) {
  if (!fits(job_nodes)) {
    throw std::invalid_argument("GridSite::dispatch: job does not fit site");
  }
  ++dispatched_;
  return avail_.reserve(job_nodes, exec, now);
}

unsigned GridSite::release_after_failure(unsigned job_nodes, Time reserved_end,
                                         Time detect_time) {
  return avail_.release(job_nodes, reserved_end, detect_time);
}

void GridSite::account_busy(unsigned job_nodes, double duration) noexcept {
  busy_node_seconds_ += static_cast<double>(job_nodes) * duration;
}

double GridSite::utilization(Time horizon) const noexcept {
  if (horizon <= 0.0) return 0.0;
  const double capacity = static_cast<double>(config_.nodes) * horizon;
  return std::clamp(busy_node_seconds_ / capacity, 0.0, 1.0);
}

}  // namespace gridsched::sim
