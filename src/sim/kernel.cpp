#include "sim/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace gridsched::sim {

namespace {

/// Initial id->slot ring capacity in streaming mode (grows by doubling).
constexpr std::size_t kInitialSlotRing = 64;

std::size_t checked_stream_size(
    const std::unique_ptr<workload::JobStream>& stream) {
  if (stream == nullptr) {
    throw std::invalid_argument("Engine: null job stream");
  }
  return stream->size();
}

}  // namespace

std::string describe_unfinished(const std::vector<Job>& jobs, Time sim_time) {
  constexpr std::size_t kMaxNamed = 5;
  std::size_t unfinished = 0;
  std::string ids;
  for (const Job& job : jobs) {
    if (job.state == JobState::kCompleted) continue;
    ++unfinished;
    if (unfinished <= kMaxNamed) {
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(job.id);
      ids += job.state == JobState::kDispatched ? " (dispatched)"
                                                : " (pending)";
    }
  }
  std::string text = std::to_string(unfinished) + " of " +
                     std::to_string(jobs.size()) + " job(s) unfinished at " +
                     "sim time " + std::to_string(sim_time) + "; first ids: [" +
                     ids;
  if (unfinished > kMaxNamed) text += ", ...";
  return text + "]";
}

SimKernel::SimKernel(std::vector<SiteConfig> sites, EngineConfig config,
                     ExecModel exec_model, std::size_t total_jobs)
    : config_(config),
      exec_model_(std::move(exec_model)),
      total_jobs_(total_jobs) {
  if (sites.empty()) throw std::invalid_argument("Engine: no sites");
  if (config_.batch_interval <= 0.0) {
    throw std::invalid_argument("Engine: batch_interval must be > 0");
  }
  sites_.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    SiteConfig sc = sites[i];
    sc.id = static_cast<SiteId>(i);  // ids are dense indices by construction
    sites_.emplace_back(sc);
  }
  // The matrix rows are keyed by dense job ids; a shape mismatch would
  // silently read a different job's row.
  exec_model_.check_shape(total_jobs_, sites_.size());
  site_up_.assign(sites_.size(), 1);
}

SimKernel::SimKernel(std::vector<SiteConfig> sites, std::vector<Job> jobs,
                     EngineConfig config, ExecModel exec_model)
    : SimKernel(std::move(sites), config, std::move(exec_model), jobs.size()) {
  jobs_ = std::move(jobs);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
  }
  attempts_.resize(jobs_.size());
  // Identity id->slot ring: a power-of-two capacity >= the job count makes
  // `id & slot_mask_ == id`, so job(id) resolves through the same path the
  // streaming mode uses while slot index stays exactly the job id.
  std::size_t capacity = 1;
  while (capacity < jobs_.size()) capacity <<= 1;
  slot_of_.resize(capacity);
  slot_mask_ = static_cast<std::uint32_t>(capacity - 1);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    slot_of_[i] = static_cast<std::uint32_t>(i);
  }
  admitted_ = jobs_.size();
  if (config_.validate_feasibility) validate_workload();
}

SimKernel::SimKernel(std::vector<SiteConfig> sites,
                     std::unique_ptr<workload::JobStream> stream,
                     EngineConfig config, ExecModel exec_model)
    : SimKernel(std::move(sites), config, std::move(exec_model),
                checked_stream_size(stream)) {
  stream_mode_ = true;
  stream_ = std::move(stream);
  slot_of_.resize(kInitialSlotRing);
  slot_mask_ = static_cast<std::uint32_t>(kInitialSlotRing - 1);
  if (config_.validate_feasibility) {
    // Per-admission feasibility must be O(1): precompute, for every node
    // count k, the best security level any site with >= k nodes offers.
    // is_safe(demand, level) is monotone in level, so "some site fits and
    // is safe" == "is_safe(demand, best_security_[nodes])".
    unsigned max_nodes = 0;
    for (const GridSite& site : sites_) {
      max_nodes = std::max(max_nodes, site.config().nodes);
    }
    best_security_.assign(static_cast<std::size_t>(max_nodes) + 1, -1.0);
    for (const GridSite& site : sites_) {
      double& best = best_security_[site.config().nodes];
      best = std::max(best, site.security());
    }
    for (std::size_t k = max_nodes; k-- > 1;) {
      best_security_[k] = std::max(best_security_[k], best_security_[k + 1]);
    }
  }
}

void SimKernel::validate_workload() const {
  for (const Job& job : jobs_) {
    if (job.work <= 0.0)
      throw std::invalid_argument("Engine: job work must be > 0");
    if (job.nodes == 0)
      throw std::invalid_argument("Engine: job nodes must be > 0");
    if (job.arrival < 0.0)
      throw std::invalid_argument("Engine: negative arrival");
    const bool safe_home = std::any_of(
        sites_.begin(), sites_.end(), [&](const GridSite& site) {
          return site.fits(job.nodes) &&
                 security::is_safe(job.demand, site.security());
        });
    if (!safe_home) {
      throw std::invalid_argument(
          "Engine: job " + std::to_string(job.id) +
          " has no absolutely-safe site; it could starve after a failure");
    }
  }
}

void SimKernel::validate_admitted(const Job& job) const {
  if (job.work <= 0.0)
    throw std::invalid_argument("Engine: job work must be > 0");
  if (job.nodes == 0)
    throw std::invalid_argument("Engine: job nodes must be > 0");
  if (job.arrival < 0.0)
    throw std::invalid_argument("Engine: negative arrival");
  const bool safe_home =
      job.nodes < best_security_.size() &&
      security::is_safe(job.demand, best_security_[job.nodes]);
  if (!safe_home) {
    throw std::invalid_argument(
        "Engine: job " + std::to_string(job.id) +
        " has no absolutely-safe site; it could starve after a failure");
  }
}

bool SimKernel::admit_next(Event& arrival) {
  if (!stream_mode_ || admitted_ == total_jobs_) return false;
  Job job{};
  if (!stream_->next(job)) {
    throw std::runtime_error(
        "Engine: job stream ended after " + std::to_string(admitted_) +
        " of " + std::to_string(total_jobs_) + " job(s)");
  }
  job.id = static_cast<JobId>(admitted_);
  if (job.arrival < last_arrival_) {
    throw std::invalid_argument(
        "Engine: job stream arrivals must be nondecreasing (job " +
        std::to_string(job.id) + ")");
  }
  last_arrival_ = job.arrival;
  if (config_.validate_feasibility) validate_admitted(job);
  std::uint32_t slot = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(jobs_.size());
    jobs_.emplace_back();
    attempts_.emplace_back();
    // Keep enough spare capacity for every slot to be parked free at once,
    // so retirement pushes never allocate in the steady-state loop.
    free_slots_.reserve(jobs_.size());
  }
  if (admitted_ + 1 - retire_frontier_ > slot_of_.size()) grow_slot_ring();
  jobs_[slot] = job;
  attempts_[slot] = Attempt{};
  slot_of_[job.id & slot_mask_] = slot;
  ++admitted_;
  arrival = Event{};
  arrival.time = job.arrival;
  arrival.kind = EventKind::kJobArrival;
  arrival.job = job.id;
  return true;
}

void SimKernel::grow_slot_ring() {
  // Live ids form the contiguous window [retire_frontier_, admitted_), so
  // any power-of-two capacity >= the window length is collision-free.
  std::vector<std::uint32_t> bigger(slot_of_.size() * 2);
  const std::uint32_t mask = static_cast<std::uint32_t>(bigger.size() - 1);
  for (std::size_t id = retire_frontier_; id < admitted_; ++id) {
    bigger[id & mask] = slot_of_[id & slot_mask_];
  }
  slot_of_.swap(bigger);
  slot_mask_ = mask;
}

void SimKernel::retire_completed() {
  // Retire strictly in id order: a completed job waits in its slot until
  // every lower id has retired, so the accumulator sums in the same order
  // the retained metrics loop would (bit-identical floating-point sums).
  while (retire_frontier_ < admitted_) {
    const std::uint32_t slot =
        slot_of_[static_cast<JobId>(retire_frontier_) & slot_mask_];
    if (jobs_[slot].state != JobState::kCompleted) break;
    retired_.add(jobs_[slot]);
    if (stream_mode_) free_slots_.push_back(slot);
    ++retire_frontier_;
  }
}

std::string SimKernel::describe_unfinished(Time sim_time) const {
  if (!stream_mode_) return sim::describe_unfinished(jobs_, sim_time);
  constexpr std::size_t kMaxNamed = 5;
  std::size_t unfinished = 0;
  std::string ids;
  for (std::size_t id = retire_frontier_; id < total_jobs_; ++id) {
    const JobState state = id < admitted_
                               ? job(static_cast<JobId>(id)).state
                               : JobState::kPending;
    if (state == JobState::kCompleted) continue;
    ++unfinished;
    if (unfinished <= kMaxNamed) {
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(id);
      ids += state == JobState::kDispatched ? " (dispatched)" : " (pending)";
    }
  }
  std::string text = std::to_string(unfinished) + " of " +
                     std::to_string(total_jobs_) + " job(s) unfinished at " +
                     "sim time " + std::to_string(sim_time) + "; first ids: [" +
                     ids;
  if (unfinished > kMaxNamed) text += ", ...";
  return text + "]";
}

void SimKernel::add_process(SimProcess& process) {
  if (ran_) throw std::logic_error("SimKernel: add_process after run");
  for (const EventKind kind : process.owned_kinds()) {
    SimProcess*& route = routes_[static_cast<std::size_t>(kind)];
    if (route != nullptr) {
      throw std::logic_error("SimKernel: event kind already routed to " +
                             std::string(route->name()));
    }
    route = &process;
  }
  processes_.push_back(&process);
}

void SimKernel::request_cycle(Time now) {
  if (cycle_scheduled_) return;
  // Smallest integer cycle index whose derived time is strictly after
  // `now`. The float quotient only seeds the search: at an exact multiple,
  // floor(now/interval) + 1 can round to a cycle at (or before) `now`
  // itself, so the index is corrected against the derived times and kept
  // monotone across calls before any event is pushed.
  std::uint64_t index = static_cast<std::uint64_t>(std::max(
                            0.0, std::floor(now / config_.batch_interval))) +
                        1;
  while (index > 1 && static_cast<double>(index - 1) * config_.batch_interval >
                          now) {
    --index;
  }
  while (static_cast<double>(index) * config_.batch_interval <= now) ++index;
  index = std::max(index, next_cycle_index_);
  next_cycle_index_ = index + 1;
  Event cycle;
  cycle.time = static_cast<double>(index) * config_.batch_interval;
  cycle.kind = EventKind::kBatchCycle;
  events_.push(cycle);
  cycle_scheduled_ = true;
}

unsigned SimKernel::revoke_attempt(JobId job_id, Time now) {
  Job& the_job = job(job_id);
  Attempt& the_attempt = attempt(job_id);
  if (observer_) observer_->on_revoke(*this, job_id, the_attempt.site, now);
  the_attempt.active = false;  // any queued kJobEnd for this attempt is stale
  --running_;
  the_job.state = JobState::kPending;
  GridSite& site = sites_[the_attempt.site];
  if (the_attempt.window.start < now) {
    site.account_busy(the_job.nodes, now - the_attempt.window.start);
  }
  const unsigned released =
      site.release_after_failure(the_job.nodes, the_attempt.window.end, now);
  pending_.push_back(job_id);
  return released;
}

void SimKernel::run() {
  if (ran_) throw std::logic_error("Engine::run called twice");
  ran_ = true;
  // The kernel does not own its processes (typically facade locals); drop
  // every reference on the way out — normal or throwing — so the exposed
  // post-run kernel can never dereference a dead process.
  struct RouteGuard {
    SimKernel* kernel;
    ~RouteGuard() {
      kernel->processes_.clear();
      for (SimProcess*& route : kernel->routes_) route = nullptr;
    }
  } guard{this};

  arrivals_remaining_ = total_jobs_;
  // Arrival events always carry reserved sequence numbers (seq == job id),
  // so eager (retained) and lazy (streamed) injection pop in the identical
  // (time, seq) total order; dynamic events number from total_jobs_ on.
  events_.reserve_seqs(total_jobs_);
  // Capacity hint: the retained arrival burst dominates the queue's
  // high-water mark; a streamed queue holds O(active) events.
  events_.reserve(stream_mode_
                      ? std::min<std::size_t>(total_jobs_, 1024) + 64
                      : total_jobs_ + 64);
  for (SimProcess* process : processes_) process->start(*this);
  if (observer_) observer_->on_run_start(*this);

  // The loop ends when every job has completed, not when the queue drains:
  // an open-ended process (site churn) keeps future events queued for as
  // long as the simulation could need them.
  Time now = 0.0;
  while (!events_.empty()) {
    if (counters_.completed_jobs == total_jobs_) break;
    const Event event = events_.pop();
    now = event.time;
    // Watchdog checkpoint: batch cycles are the kernel's natural pause
    // points (bounded work between them), so a cancelled/expired token
    // aborts within one cycle without any asynchronous interruption.
    if (config_.cancel != nullptr && event.kind == EventKind::kBatchCycle) {
      config_.cancel->check("simulation batch cycle");
    }
    if (observer_) observer_->on_event(*this, event);
    SimProcess* route = routes_[static_cast<std::size_t>(event.kind)];
    if (route == nullptr) {
      throw std::logic_error("SimKernel: event kind has no registered process");
    }
    route->handle(*this, event);
  }

  if (counters_.completed_jobs != total_jobs_) {
    throw std::runtime_error("Engine: simulation ended with " +
                             describe_unfinished(now));
  }
  if (observer_) observer_->on_run_end(*this);
}

}  // namespace gridsched::sim
