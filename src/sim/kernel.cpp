#include "sim/kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace gridsched::sim {

std::string describe_unfinished(const std::vector<Job>& jobs, Time sim_time) {
  constexpr std::size_t kMaxNamed = 5;
  std::size_t unfinished = 0;
  std::string ids;
  for (const Job& job : jobs) {
    if (job.state == JobState::kCompleted) continue;
    ++unfinished;
    if (unfinished <= kMaxNamed) {
      if (!ids.empty()) ids += ", ";
      ids += std::to_string(job.id);
      ids += job.state == JobState::kDispatched ? " (dispatched)"
                                                : " (pending)";
    }
  }
  std::string text = std::to_string(unfinished) + " of " +
                     std::to_string(jobs.size()) + " job(s) unfinished at " +
                     "sim time " + std::to_string(sim_time) + "; first ids: [" +
                     ids;
  if (unfinished > kMaxNamed) text += ", ...";
  return text + "]";
}

SimKernel::SimKernel(std::vector<SiteConfig> sites, std::vector<Job> jobs,
                     EngineConfig config, ExecModel exec_model)
    : config_(config), exec_model_(std::move(exec_model)) {
  if (sites.empty()) throw std::invalid_argument("Engine: no sites");
  if (config_.batch_interval <= 0.0) {
    throw std::invalid_argument("Engine: batch_interval must be > 0");
  }
  sites_.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    SiteConfig sc = sites[i];
    sc.id = static_cast<SiteId>(i);  // ids are dense indices by construction
    sites_.emplace_back(sc);
  }
  jobs_ = std::move(jobs);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
  }
  // The matrix rows are keyed by the dense ids just assigned; a shape
  // mismatch would silently read a different job's row.
  exec_model_.check_shape(jobs_.size(), sites_.size());
  attempts_.resize(jobs_.size());
  site_up_.assign(sites_.size(), 1);
  if (config_.validate_feasibility) validate_workload();
}

void SimKernel::validate_workload() const {
  for (const Job& job : jobs_) {
    if (job.work <= 0.0)
      throw std::invalid_argument("Engine: job work must be > 0");
    if (job.nodes == 0)
      throw std::invalid_argument("Engine: job nodes must be > 0");
    if (job.arrival < 0.0)
      throw std::invalid_argument("Engine: negative arrival");
    const bool safe_home = std::any_of(
        sites_.begin(), sites_.end(), [&](const GridSite& site) {
          return site.fits(job.nodes) &&
                 security::is_safe(job.demand, site.security());
        });
    if (!safe_home) {
      throw std::invalid_argument(
          "Engine: job " + std::to_string(job.id) +
          " has no absolutely-safe site; it could starve after a failure");
    }
  }
}

void SimKernel::add_process(SimProcess& process) {
  if (ran_) throw std::logic_error("SimKernel: add_process after run");
  for (const EventKind kind : process.owned_kinds()) {
    SimProcess*& route = routes_[static_cast<std::size_t>(kind)];
    if (route != nullptr) {
      throw std::logic_error("SimKernel: event kind already routed to " +
                             std::string(route->name()));
    }
    route = &process;
  }
  processes_.push_back(&process);
}

void SimKernel::request_cycle(Time now) {
  if (cycle_scheduled_) return;
  // Smallest integer cycle index whose derived time is strictly after
  // `now`. The float quotient only seeds the search: at an exact multiple,
  // floor(now/interval) + 1 can round to a cycle at (or before) `now`
  // itself, so the index is corrected against the derived times and kept
  // monotone across calls before any event is pushed.
  std::uint64_t index = static_cast<std::uint64_t>(std::max(
                            0.0, std::floor(now / config_.batch_interval))) +
                        1;
  while (index > 1 && static_cast<double>(index - 1) * config_.batch_interval >
                          now) {
    --index;
  }
  while (static_cast<double>(index) * config_.batch_interval <= now) ++index;
  index = std::max(index, next_cycle_index_);
  next_cycle_index_ = index + 1;
  Event cycle;
  cycle.time = static_cast<double>(index) * config_.batch_interval;
  cycle.kind = EventKind::kBatchCycle;
  events_.push(cycle);
  cycle_scheduled_ = true;
}

unsigned SimKernel::revoke_attempt(JobId job_id, Time now) {
  Job& job = jobs_[job_id];
  Attempt& attempt = attempts_[job_id];
  if (observer_) observer_->on_revoke(*this, job_id, attempt.site, now);
  attempt.active = false;  // any queued kJobEnd for this attempt is stale
  --running_;
  job.state = JobState::kPending;
  GridSite& site = sites_[attempt.site];
  if (attempt.window.start < now) {
    site.account_busy(job.nodes, now - attempt.window.start);
  }
  const unsigned released =
      site.release_after_failure(job.nodes, attempt.window.end, now);
  pending_.push_back(job_id);
  return released;
}

void SimKernel::run() {
  if (ran_) throw std::logic_error("Engine::run called twice");
  ran_ = true;
  // The kernel does not own its processes (typically facade locals); drop
  // every reference on the way out — normal or throwing — so the exposed
  // post-run kernel can never dereference a dead process.
  struct RouteGuard {
    SimKernel* kernel;
    ~RouteGuard() {
      kernel->processes_.clear();
      for (SimProcess*& route : kernel->routes_) route = nullptr;
    }
  } guard{this};

  arrivals_remaining_ = jobs_.size();
  for (SimProcess* process : processes_) process->start(*this);
  if (observer_) observer_->on_run_start(*this);

  // The loop ends when every job has completed, not when the queue drains:
  // an open-ended process (site churn) keeps future events queued for as
  // long as the simulation could need them.
  Time now = 0.0;
  while (!events_.empty()) {
    if (counters_.completed_jobs == jobs_.size()) break;
    const Event event = events_.pop();
    now = event.time;
    // Watchdog checkpoint: batch cycles are the kernel's natural pause
    // points (bounded work between them), so a cancelled/expired token
    // aborts within one cycle without any asynchronous interruption.
    if (config_.cancel != nullptr && event.kind == EventKind::kBatchCycle) {
      config_.cancel->check("simulation batch cycle");
    }
    if (observer_) observer_->on_event(*this, event);
    SimProcess* route = routes_[static_cast<std::size_t>(event.kind)];
    if (route == nullptr) {
      throw std::logic_error("SimKernel: event kind has no registered process");
    }
    route->handle(*this, event);
  }

  if (counters_.completed_jobs != jobs_.size()) {
    throw std::runtime_error("Engine: simulation ended with " +
                             describe_unfinished(jobs_, now));
  }
  if (observer_) observer_->on_run_end(*this);
}

}  // namespace gridsched::sim
