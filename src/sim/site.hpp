// Grid sites: space-shared pools of identical nodes with a security level.
//
// Scheduling uses *node-availability profiles*: the sorted vector of the
// times at which each node becomes free. Reserving k nodes for a job fixes
// its start at max(now, k-th earliest free time) — reservation-based space
// sharing, so the completion times the heuristics/GA optimise are exactly
// the ones the simulator realises (DESIGN.md §5.2/S10).
#pragma once

#include <vector>

#include "sim/types.hpp"

namespace gridsched::sim {

/// Static description of a site.
struct SiteConfig {
  SiteId id = kInvalidSite;
  unsigned nodes = 1;
  /// Node speed for the rank-1 fallback execution model: a job of `work`
  /// reference seconds runs work/speed seconds. Ignored for exec-time
  /// resolution when the workload attaches a raw ETC (sim::ExecModel).
  double speed = 1.0;
  /// Security level SL (paper: U[0.4, 1.0]).
  double security = 1.0;
};

/// Per-site churn-process parameters (exponential up/down alternation).
/// A site with either field <= 0 never churns; workloads carry one entry
/// per site (or none at all) and SiteChurnProcess draws the timeline.
struct SiteChurnParams {
  double mtbf = 0.0;  ///< mean up-time between failures (seconds)
  double mttr = 0.0;  ///< mean outage duration (seconds)

  [[nodiscard]] bool churns() const noexcept {
    return mtbf > 0.0 && mttr > 0.0;
  }
};

/// Sorted multiset of per-node free times with reservation operations.
class NodeAvailability {
 public:
  NodeAvailability() = default;
  explicit NodeAvailability(unsigned nodes, Time t0 = 0.0);

  struct Window {
    Time start = 0.0;
    Time end = 0.0;
  };

  [[nodiscard]] unsigned nodes() const noexcept {
    return static_cast<unsigned>(free_.size());
  }

  /// Earliest time k nodes are simultaneously free, not before `now`.
  /// Requires 1 <= k <= nodes().
  [[nodiscard]] Time earliest_start(unsigned k, Time now) const;

  /// Completion window if k nodes were reserved for `exec` seconds; const.
  [[nodiscard]] Window preview(unsigned k, double exec, Time now) const;

  /// Commit a reservation: the k earliest-free nodes are busy during the
  /// returned window. Keeps the profile sorted.
  Window reserve(unsigned k, double exec, Time now);

  /// Undo the tail of a reservation that ended early (fail-stop detection):
  /// up to k nodes whose free time still equals `reserved_end` (i.e. not
  /// re-reserved since) become free at `release_at` instead. Returns how
  /// many nodes were reclaimed.
  unsigned release(unsigned k, Time reserved_end, Time release_at);

  /// Sorted ascending free times, one entry per node.
  [[nodiscard]] const std::vector<Time>& free_times() const noexcept {
    return free_;
  }

 private:
  std::vector<Time> free_;
};

/// Runtime site state: static config + committed availability profile +
/// utilization accounting.
class GridSite {
 public:
  explicit GridSite(SiteConfig config);

  [[nodiscard]] const SiteConfig& config() const noexcept { return config_; }
  [[nodiscard]] SiteId id() const noexcept { return config_.id; }
  [[nodiscard]] unsigned nodes() const noexcept { return config_.nodes; }
  [[nodiscard]] double speed() const noexcept { return config_.speed; }
  [[nodiscard]] double security() const noexcept { return config_.security; }

  [[nodiscard]] bool fits(unsigned job_nodes) const noexcept {
    return job_nodes <= config_.nodes;
  }

  [[nodiscard]] const NodeAvailability& availability() const noexcept {
    return avail_;
  }

  /// Commit a reservation for a job needing `job_nodes` nodes and `exec`
  /// seconds (resolved by the caller through the ExecModel), starting no
  /// earlier than `now`.
  NodeAvailability::Window dispatch(unsigned job_nodes, double exec, Time now);

  /// Reclaim the unused tail of a failed job's reservation. `reserved_end`
  /// must be the end of the Window `dispatch` returned for that job.
  /// Returns how many nodes were actually reclaimed (the caller checks it
  /// against job_nodes — a shortfall means stranded capacity).
  unsigned release_after_failure(unsigned job_nodes, Time reserved_end,
                                 Time detect_time);

  /// Account node-seconds actually spent computing (successful runs fully,
  /// failed runs until the failure was detected).
  void account_busy(unsigned job_nodes, double duration) noexcept;

  [[nodiscard]] double busy_node_seconds() const noexcept {
    return busy_node_seconds_;
  }

  /// Utilization in [0, 1] over the horizon [0, horizon].
  [[nodiscard]] double utilization(Time horizon) const noexcept;

  [[nodiscard]] std::size_t dispatched_jobs() const noexcept {
    return dispatched_;
  }

 private:
  SiteConfig config_;
  NodeAvailability avail_;
  double busy_node_seconds_ = 0.0;
  std::size_t dispatched_ = 0;
};

}  // namespace gridsched::sim
