#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

namespace gridsched::sim {

Engine::Engine(std::vector<SiteConfig> sites, std::vector<Job> jobs,
               EngineConfig config, ExecModel exec_model)
    : config_(config), exec_model_(std::move(exec_model)) {
  if (sites.empty()) throw std::invalid_argument("Engine: no sites");
  if (config_.batch_interval <= 0.0) {
    throw std::invalid_argument("Engine: batch_interval must be > 0");
  }
  sites_.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    SiteConfig sc = sites[i];
    sc.id = static_cast<SiteId>(i);  // ids are dense indices by construction
    sites_.emplace_back(sc);
  }
  jobs_ = std::move(jobs);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    jobs_[i].id = static_cast<JobId>(i);
  }
  // The matrix rows are keyed by the dense ids just assigned; a shape
  // mismatch would silently read a different job's row.
  exec_model_.check_shape(jobs_.size(), sites_.size());
  attempts_.resize(jobs_.size());
  if (config_.validate_feasibility) validate_workload();
}

void Engine::validate_workload() const {
  for (const Job& job : jobs_) {
    if (job.work <= 0.0) throw std::invalid_argument("Engine: job work must be > 0");
    if (job.nodes == 0) throw std::invalid_argument("Engine: job nodes must be > 0");
    if (job.arrival < 0.0) throw std::invalid_argument("Engine: negative arrival");
    const bool safe_home = std::any_of(
        sites_.begin(), sites_.end(), [&](const GridSite& site) {
          return site.fits(job.nodes) &&
                 security::is_safe(job.demand, site.security());
        });
    if (!safe_home) {
      throw std::invalid_argument(
          "Engine: job " + std::to_string(job.id) +
          " has no absolutely-safe site; it could starve after a failure");
    }
  }
}

bool Engine::work_remains() const noexcept {
  return !pending_.empty() || arrivals_remaining_ > 0 || running_ > 0;
}

void Engine::ensure_cycle_scheduled(Time now) {
  if (cycle_scheduled_) return;
  // Smallest integer cycle index whose derived time is strictly after
  // `now`. The float quotient only seeds the search: at an exact multiple,
  // floor(now/interval) + 1 can round to a cycle at (or before) `now`
  // itself, so the index is corrected against the derived times and kept
  // monotone across calls before any event is pushed.
  std::uint64_t index = static_cast<std::uint64_t>(std::max(
                            0.0, std::floor(now / config_.batch_interval))) +
                        1;
  while (index > 1 && static_cast<double>(index - 1) * config_.batch_interval >
                          now) {
    --index;
  }
  while (static_cast<double>(index) * config_.batch_interval <= now) ++index;
  index = std::max(index, next_cycle_index_);
  next_cycle_index_ = index + 1;
  Event cycle;
  cycle.time = static_cast<double>(index) * config_.batch_interval;
  cycle.kind = EventKind::kBatchCycle;
  events_.push(cycle);
  cycle_scheduled_ = true;
}

void Engine::run(BatchScheduler& scheduler) {
  if (ran_) throw std::logic_error("Engine::run called twice");
  ran_ = true;

  arrivals_remaining_ = jobs_.size();
  for (const Job& job : jobs_) {
    Event arrival;
    arrival.time = job.arrival;
    arrival.kind = EventKind::kJobArrival;
    arrival.job = job.id;
    events_.push(arrival);
  }

  while (!events_.empty()) {
    const Event event = events_.pop();
    switch (event.kind) {
      case EventKind::kJobArrival: {
        --arrivals_remaining_;
        pending_.push_back(event.job);
        ensure_cycle_scheduled(event.time);
        break;
      }
      case EventKind::kBatchCycle: {
        cycle_scheduled_ = false;
        handle_batch_cycle(event.time, scheduler);
        if (work_remains()) ensure_cycle_scheduled(event.time);
        break;
      }
      case EventKind::kJobEnd: {
        Job& job = jobs_[event.job];
        Attempt& attempt = attempts_[event.job];
        GridSite& site = sites_[attempt.site];
        --running_;
        attempt.active = false;
        if (event.is_failure) {
          ++counters_.failure_events;
          ++job.failures;
          job.secure_only = true;  // fail-stop: never risk again
          job.state = JobState::kPending;
          site.account_busy(job.nodes, event.time - attempt.window.start);
          // Give the unused tail of the reservation back to the site,
          // keyed by the exact stored window end (recomputing start + exec
          // would rely on bitwise float equality against the profile). A
          // node is unreclaimable only when a later batch cycle already
          // stacked the next reservation onto it; count both outcomes so a
          // zero-node release is visible instead of silently dropped.
          const unsigned released = site.release_after_failure(
              job.nodes, attempt.window.end, event.time);
          counters_.released_nodes += released;
          counters_.unreleased_nodes += job.nodes - released;
          pending_.push_back(event.job);
          ensure_cycle_scheduled(event.time);
        } else {
          job.state = JobState::kCompleted;
          job.finish = event.time;
          job.final_site = attempt.site;
          site.account_busy(job.nodes, attempt.exec);
          makespan_ = std::max(makespan_, event.time);
          ++counters_.completed_jobs;
        }
        break;
      }
    }
  }

  if (counters_.completed_jobs != jobs_.size()) {
    throw std::runtime_error("Engine: simulation ended with unfinished jobs");
  }
}

void Engine::handle_batch_cycle(Time now, BatchScheduler& scheduler) {
  if (pending_.empty()) return;

  SchedulerContext context;
  context.now = now;
  context.exec = exec_model_;
  context.sites.reserve(sites_.size());
  context.avail.reserve(sites_.size());
  for (const GridSite& site : sites_) {
    context.sites.push_back(site.config());
    context.avail.push_back(site.availability());
  }
  context.jobs.reserve(pending_.size());
  for (const JobId id : pending_) {
    const Job& job = jobs_[id];
    context.jobs.push_back(
        {job.id, job.work, job.nodes, job.demand, job.arrival, job.secure_only});
  }

  ++counters_.batch_invocations;
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<Assignment> assignments = scheduler.schedule(context);
  counters_.scheduler_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  // Validate and apply in the order the scheduler chose.
  std::unordered_set<std::size_t> assigned;
  assigned.reserve(assignments.size());
  for (const Assignment& assignment : assignments) {
    if (assignment.job_index >= context.jobs.size()) {
      throw std::logic_error("scheduler returned an out-of-range job index");
    }
    if (assignment.site >= sites_.size()) {
      throw std::logic_error("scheduler returned an invalid site id");
    }
    if (!assigned.insert(assignment.job_index).second) {
      throw std::logic_error("scheduler assigned the same job twice");
    }
    const JobId job_id = context.jobs[assignment.job_index].id;
    const Job& job = jobs_[job_id];
    const GridSite& site = sites_[assignment.site];
    if (!site.fits(job.nodes)) {
      throw std::logic_error("scheduler placed a job on a site it does not fit");
    }
    if (job.secure_only && !security::is_safe(job.demand, site.security())) {
      throw std::logic_error(
          "scheduler violated the fail-stop rule (secure_only job on risky site)");
    }
    dispatch(job_id, assignment.site, now);
  }

  // Remove dispatched jobs from the pending queue, preserving order.
  if (!assignments.empty()) {
    std::deque<JobId> still_pending;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (!assigned.count(i)) still_pending.push_back(pending_[i]);
    }
    pending_.swap(still_pending);
    idle_cycles_ = 0;
  } else {
    if (++idle_cycles_ > config_.max_idle_cycles) {
      throw std::runtime_error(
          "Engine: scheduler starved " + std::to_string(pending_.size()) +
          " pending job(s) for too many cycles");
    }
  }
}

void Engine::dispatch(JobId job_id, SiteId site_id, Time now) {
  Job& job = jobs_[job_id];
  GridSite& site = sites_[site_id];

  const double exec =
      exec_model_.exec(job.id, job.work, site_id, site.speed());
  const NodeAvailability::Window window = site.dispatch(job.nodes, exec, now);

  Attempt& attempt = attempts_[job_id];
  attempt = {window, exec, site_id, true};
  ++job.attempts;
  ++running_;
  job.state = JobState::kDispatched;
  if (job.first_start < 0.0) job.first_start = window.start;
  job.last_start = window.start;

  const double p_fail =
      security::failure_probability(job.demand, site.security(), config_.lambda);
  // Common random numbers: the failure draw for (job, attempt) is a pure
  // hash of (seed, job, attempt), independent of everything the scheduler
  // did before. Identical placements therefore fail identically under every
  // algorithm, which removes a large cross-algorithm noise term from the
  // paired comparisons the paper makes (DESIGN.md §5.5).
  util::SplitMix64 draw(config_.seed ^
                        0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(job_id) + 1) ^
                        0xc2b2ae3d27d4eb4fULL * (job.attempts + 1ULL));
  const double failure_ticket = static_cast<double>(draw.next() >> 11) * 0x1.0p-53;
  bool will_fail = false;
  if (p_fail > 0.0) {
    ++counters_.risky_attempts;
    job.took_risk = true;
    will_fail = failure_ticket < p_fail;
  }

  Event end;
  end.kind = EventKind::kJobEnd;
  end.job = job_id;
  end.site = site_id;
  if (will_fail) {
    double fraction = 1.0;
    if (config_.detection == FailureDetection::kUniformFraction) {
      fraction = static_cast<double>(draw.next() >> 11) * 0x1.0p-53;
    } else if (config_.detection == FailureDetection::kImmediate) {
      fraction = 0.0;
    }
    // Avoid a zero-length attempt so failure times are strictly after start.
    fraction = std::max(fraction, 1e-6);
    end.time = window.start + exec * fraction;
    end.is_failure = true;
  } else {
    end.time = window.end;
    end.is_failure = false;
  }
  events_.push(end);
}

}  // namespace gridsched::sim
