#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "sim/process/arrival_process.hpp"
#include "sim/process/batch_cycle_process.hpp"
#include "sim/process/security_failure_process.hpp"
#include "sim/process/site_churn_process.hpp"

namespace gridsched::sim {

Engine::Engine(std::vector<SiteConfig> sites, std::vector<Job> jobs,
               EngineConfig config, ExecModel exec_model,
               std::vector<SiteChurnParams> churn)
    : kernel_(std::move(sites), std::move(jobs), config, std::move(exec_model)),
      churn_(std::move(churn)) {}

Engine::Engine(std::vector<SiteConfig> sites,
               std::unique_ptr<workload::JobStream> stream, EngineConfig config,
               ExecModel exec_model, std::vector<SiteChurnParams> churn)
    : kernel_(std::move(sites), std::move(stream), config,
              std::move(exec_model)),
      churn_(std::move(churn)) {}

void Engine::run(BatchScheduler& scheduler) {
  // Registration order fixes the FIFO tie-break among events pushed in
  // start(): arrivals first (matching the pre-kernel engine event order
  // exactly, so churn-free runs are bit-identical), churn timelines last.
  ArrivalProcess arrival;
  SecurityFailureProcess failure;
  BatchCycleProcess batch(scheduler, failure);
  kernel_.add_process(arrival);
  kernel_.add_process(batch);
  kernel_.add_process(failure);

  const bool churns =
      std::any_of(churn_.begin(), churn_.end(),
                  [](const SiteChurnParams& p) { return p.churns(); });
  SiteChurnProcess churn_process(churn_, kernel_.config().seed);
  if (churns) kernel_.add_process(churn_process);

  kernel_.run();
}

}  // namespace gridsched::sim
