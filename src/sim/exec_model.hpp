// Per-(job, site) execution-time resolution. A workload may attach a raw
// Expected-Time-to-Compute matrix (Braun et al. terminology); when present
// it is *authoritative* — the engine, the heuristics and the GA all resolve
// execution times through it. Without a matrix the model falls back to the
// rank-1 `work / speed` law, i.e. the rank-1 ETC is generated on demand
// from the job/site fields rather than materialised.
//
// Invariant (ROADMAP "Execution model"): every consumer of execution times
// must go through an ExecModel (or a matrix derived from one, such as
// sched::EtcMatrix / GaProblem::exec) so that raw-ETC scenarios stay exact
// end to end.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace gridsched::sim {

class ExecModel {
 public:
  /// Rank-1 fallback model: exec(job, site) = work / speed.
  ExecModel() = default;

  /// Wrap a raw jobs x sites ETC matrix, row-major; row j holds the
  /// execution times of the job with JobId j (workloads assign dense ids in
  /// vector order). Cells must be finite and > 0 — infeasible (job, site)
  /// pairs are a node-fit question, not an ETC one. Throws
  /// std::invalid_argument on shape or cell violations.
  ExecModel(std::size_t n_jobs, std::size_t n_sites, std::vector<double> cells);

  [[nodiscard]] bool has_matrix() const noexcept { return matrix_ != nullptr; }
  [[nodiscard]] std::size_t matrix_jobs() const noexcept {
    return matrix_ ? matrix_->n_jobs : 0;
  }
  [[nodiscard]] std::size_t matrix_sites() const noexcept {
    return matrix_ ? matrix_->n_sites : 0;
  }
  /// The raw row-major cells when a matrix is attached (for serialization
  /// and diagnostics); empty span otherwise.
  [[nodiscard]] std::span<const double> matrix_cells() const noexcept {
    return matrix_ ? std::span<const double>(matrix_->cells)
                   : std::span<const double>();
  }

  /// Execution time of `job` on `site`. `work` and `speed` feed the rank-1
  /// fallback and are ignored when a matrix is attached.
  [[nodiscard]] double exec(JobId job, double work, SiteId site,
                            double speed) const noexcept {
    if (matrix_ == nullptr) return work / speed;
    return matrix_->cells[static_cast<std::size_t>(job) * matrix_->n_sites +
                          static_cast<std::size_t>(site)];
  }

  /// Throws std::invalid_argument when a matrix is attached and its shape
  /// is not exactly `n_jobs` x `n_sites` (rows are keyed by dense JobId, so
  /// any size mismatch means misaligned rows). No-op without a matrix.
  void check_shape(std::size_t n_jobs, std::size_t n_sites) const;

 private:
  struct Matrix {
    std::size_t n_jobs = 0;
    std::size_t n_sites = 0;
    std::vector<double> cells;
  };

  /// Shared, immutable: copying an ExecModel (workload -> engine ->
  /// per-batch contexts -> GA problems) never copies the cells.
  std::shared_ptr<const Matrix> matrix_;
};

}  // namespace gridsched::sim
