// Periodic batch-scheduling process (the paper's Fig. 1 online model):
// every kBatchCycle it snapshots the kernel state into a SchedulerContext
// (pending batch, committed availability profiles, site mask), invokes the
// BatchScheduler, validates the returned assignments against the protocol
// (range, duplicates, node fit, fail-stop rule, site mask) and hands each
// accepted placement to the DispatchModel.
#pragma once

#include "sim/kernel.hpp"
#include "sim/scheduling.hpp"

namespace gridsched::sim {

class BatchCycleProcess final : public SimProcess {
 public:
  /// `scheduler` and `dispatcher` must outlive the kernel run.
  BatchCycleProcess(BatchScheduler& scheduler, DispatchModel& dispatcher)
      : scheduler_(scheduler), dispatcher_(dispatcher) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "batch-cycle";
  }
  [[nodiscard]] std::span<const EventKind> owned_kinds()
      const noexcept override;

  void handle(SimKernel& kernel, const Event& event) override;

 private:
  void run_cycle(SimKernel& kernel, Time now);

  BatchScheduler& scheduler_;
  DispatchModel& dispatcher_;
  std::size_t idle_cycles_ = 0;
  // Persistent cycle scratch: the context snapshot, assignment list and
  // per-batch-index marks are rebuilt every cycle but keep their heap
  // buffers, so a steady-state cycle performs no allocations (the
  // invariants tests pin this with a counting allocator).
  SchedulerContext context_;
  std::vector<Assignment> assignments_;
  std::vector<std::uint8_t> assigned_;
  bool context_static_ready_ = false;
};

}  // namespace gridsched::sim
