#include "sim/process/site_churn_process.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gridsched::sim {

SiteChurnProcess::SiteChurnProcess(std::vector<SiteChurnParams> params,
                                   std::uint64_t seed)
    : params_(std::move(params)), seed_(seed) {}

SiteChurnProcess::SiteChurnProcess(std::vector<SiteOutage> script)
    : script_(std::move(script)), scripted_(true) {
  for (const SiteOutage& outage : script_) {
    if (!(outage.up > outage.down) || outage.down < 0.0) {
      throw std::invalid_argument(
          "SiteChurnProcess: outage must satisfy 0 <= down < up");
    }
  }
  // The availability mask is a boolean, so overlapping outages for one
  // site would let the first kSiteUp re-enable a site a second outage
  // still holds down. Reject them instead of mis-simulating.
  std::vector<SiteOutage> sorted = script_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const SiteOutage& a, const SiteOutage& b) {
                     if (a.site != b.site) return a.site < b.site;
                     return a.down < b.down;
                   });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].site == sorted[i - 1].site &&
        sorted[i].down < sorted[i - 1].up) {
      throw std::invalid_argument(
          "SiteChurnProcess: overlapping outages for one site");
    }
  }
}

std::span<const EventKind> SiteChurnProcess::owned_kinds() const noexcept {
  static constexpr EventKind kKinds[] = {EventKind::kSiteDown,
                                         EventKind::kSiteUp};
  return kKinds;
}

void SiteChurnProcess::push_site_event(SimKernel& kernel, EventKind kind,
                                       SiteId site, Time time) {
  Event event;
  event.time = time;
  event.kind = kind;
  event.site = site;
  kernel.push_event(event);
}

void SiteChurnProcess::start(SimKernel& kernel) {
  if (scripted_) {
    // Script order fixes the FIFO tie-break among same-time churn events.
    for (const SiteOutage& outage : script_) {
      push_site_event(kernel, EventKind::kSiteDown, outage.site, outage.down);
      push_site_event(kernel, EventKind::kSiteUp, outage.site, outage.up);
    }
    return;
  }
  const std::size_t n_sites = kernel.sites().size();
  streams_.clear();
  streams_.reserve(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) {
    // Independent per-site streams: adding draws to one site's timeline
    // never perturbs another's, and nothing here shares state with the
    // failure process's per-(job, attempt) hash draws.
    streams_.push_back(util::SeedMix(seed_)
                           .mix("site-churn")
                           .mix(static_cast<std::uint64_t>(s))
                           .rng());
    if (s < params_.size() && params_[s].churns()) {
      push_site_event(kernel, EventKind::kSiteDown, static_cast<SiteId>(s),
                      streams_[s].exponential(1.0 / params_[s].mtbf));
    }
  }
}

void SiteChurnProcess::take_site_down(SimKernel& kernel, SiteId site_id,
                                      Time now) {
  kernel.set_site_up(site_id, false);

  // Victim attempts, latest stored window end first: a node's free time
  // equals the *last* reservation stacked onto it, so releasing in
  // descending end order reclaims every tail that is reclaimable at all.
  // The sweep walks the slot table (only live attempts are active) but
  // records job ids — the sort below and the revocations address by id.
  victims_.clear();
  for (std::size_t j = 0; j < kernel.attempts().size(); ++j) {
    const Attempt& attempt = kernel.attempts()[j];
    if (attempt.active && attempt.site == site_id) {
      victims_.push_back(kernel.jobs()[j].id);
    }
  }
  std::sort(victims_.begin(), victims_.end(), [&](JobId a, JobId b) {
    const Time end_a = kernel.attempt(a).window.end;
    const Time end_b = kernel.attempt(b).window.end;
    if (end_a != end_b) return end_a > end_b;
    return a < b;  // deterministic tie-break
  });

  for (const JobId job_id : victims_) {
    Job& job = kernel.job(job_id);
    ++job.interruptions;
    ++kernel.counters().interrupted_attempts;
    // Reclaim through the stored window — the same revocation primitive
    // failure releases use. An unreclaimable node here means an earlier
    // revoked reservation was stacked behind a later one we already
    // reset; the capacity is free either way, but the shortfall is
    // surfaced instead of silently ignored. The interrupted job re-enters
    // the batch queue with its flags intact: a secure_only retry stays
    // secure_only.
    const unsigned released = kernel.revoke_attempt(job_id, now);
    kernel.counters().churn_released_nodes += released;
    kernel.counters().churn_unreleased_nodes += job.nodes - released;
  }
  if (!victims_.empty()) kernel.request_cycle(now);
}

void SiteChurnProcess::handle(SimKernel& kernel, const Event& event) {
  const auto site = static_cast<std::size_t>(event.site);
  if (event.kind == EventKind::kSiteDown) {
    ++kernel.counters().site_down_events;
    take_site_down(kernel, event.site, event.time);
    if (!scripted_ && site < params_.size() && params_[site].churns()) {
      push_site_event(kernel, EventKind::kSiteUp, event.site,
                      event.time +
                          streams_[site].exponential(1.0 / params_[site].mttr));
    }
    return;
  }
  ++kernel.counters().site_up_events;
  kernel.set_site_up(event.site, true);
  if (!scripted_ && site < params_.size() && params_[site].churns()) {
    push_site_event(kernel, EventKind::kSiteDown, event.site,
                    event.time +
                        streams_[site].exponential(1.0 / params_[site].mtbf));
  }
}

}  // namespace gridsched::sim
