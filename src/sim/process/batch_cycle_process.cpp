#include "sim/process/batch_cycle_process.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace gridsched::sim {

std::span<const EventKind> BatchCycleProcess::owned_kinds() const noexcept {
  static constexpr EventKind kKinds[] = {EventKind::kBatchCycle};
  return kKinds;
}

void BatchCycleProcess::handle(SimKernel& kernel, const Event& event) {
  kernel.cycle_fired();
  run_cycle(kernel, event.time);
  if (kernel.work_remains()) kernel.request_cycle(event.time);
}

void BatchCycleProcess::run_cycle(SimKernel& kernel, Time now) {
  if (kernel.pending().empty()) return;

  SchedulerContext context;
  context.now = now;
  context.exec = kernel.exec_model();
  context.site_up = kernel.site_mask();
  const std::vector<GridSite>& sites = kernel.sites();
  context.sites.reserve(sites.size());
  context.avail.reserve(sites.size());
  for (const GridSite& site : sites) {
    context.sites.push_back(site.config());
    context.avail.push_back(site.availability());
  }
  context.jobs.reserve(kernel.pending().size());
  for (const JobId id : kernel.pending()) {
    const Job& job = kernel.jobs()[id];
    context.jobs.push_back(
        {job.id, job.work, job.nodes, job.demand, job.arrival,
         job.secure_only});
  }

  ++kernel.counters().batch_invocations;
  // Scheduler wall seconds feed the observer hook, the profile sidecar and
  // the kernel.scheduler_seconds gauge only — never a byte-stable artifact.
  // NOLINTNEXTLINE(GS-R05): wall-clock is observability-only here
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<Assignment> assignments = scheduler_.schedule(context);
  const double wall =
      // NOLINTNEXTLINE(GS-R05): wall-clock is observability-only here
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  kernel.counters().scheduler_seconds += wall;
  kernel.notify_cycle(now, context.jobs.size(), assignments.size(), wall);

  // Validate and apply in the order the scheduler chose.
  std::unordered_set<std::size_t> assigned;
  assigned.reserve(assignments.size());
  for (const Assignment& assignment : assignments) {
    if (assignment.job_index >= context.jobs.size()) {
      throw std::logic_error("scheduler returned an out-of-range job index");
    }
    if (assignment.site >= sites.size()) {
      throw std::logic_error("scheduler returned an invalid site id");
    }
    if (!assigned.insert(assignment.job_index).second) {
      throw std::logic_error("scheduler assigned the same job twice");
    }
    const JobId job_id = context.jobs[assignment.job_index].id;
    const Job& job = kernel.jobs()[job_id];
    const GridSite& site = sites[assignment.site];
    if (!kernel.site_usable(assignment.site)) {
      throw std::logic_error(
          "scheduler placed a job on a site that is currently down");
    }
    if (!site.fits(job.nodes)) {
      throw std::logic_error(
          "scheduler placed a job on a site it does not fit");
    }
    if (job.secure_only && !security::is_safe(job.demand, site.security())) {
      throw std::logic_error(
          "scheduler violated the fail-stop rule (secure_only job on "
          "risky site)");
    }
    dispatcher_.dispatch(kernel, job_id, assignment.site, now);
  }

  // Remove dispatched jobs from the pending queue, preserving order.
  if (!assignments.empty()) {
    std::deque<JobId> still_pending;
    for (std::size_t i = 0; i < kernel.pending().size(); ++i) {
      if (!assigned.count(i)) still_pending.push_back(kernel.pending()[i]);
    }
    kernel.pending().swap(still_pending);
    idle_cycles_ = 0;
  } else {
    if (++idle_cycles_ > kernel.config().max_idle_cycles) {
      throw std::runtime_error(
          "Engine: scheduler starved " +
          std::to_string(kernel.pending().size()) +
          " pending job(s) for too many cycles");
    }
  }
}

}  // namespace gridsched::sim
