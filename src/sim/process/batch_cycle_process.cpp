#include "sim/process/batch_cycle_process.hpp"

#include <chrono>
#include <stdexcept>
#include <string>

namespace gridsched::sim {

std::span<const EventKind> BatchCycleProcess::owned_kinds() const noexcept {
  static constexpr EventKind kKinds[] = {EventKind::kBatchCycle};
  return kKinds;
}

void BatchCycleProcess::handle(SimKernel& kernel, const Event& event) {
  kernel.cycle_fired();
  run_cycle(kernel, event.time);
  if (kernel.work_remains()) kernel.request_cycle(event.time);
}

void BatchCycleProcess::run_cycle(SimKernel& kernel, Time now) {
  if (kernel.pending().empty()) return;

  // Refresh the persistent context snapshot in place. Site configs and the
  // execution model never change mid-run, so they are captured once; the
  // per-cycle fields (availability profiles, site mask, batch) copy-assign
  // into buffers that already hold their high-water capacity.
  const std::vector<GridSite>& sites = kernel.sites();
  SchedulerContext& context = context_;
  context.now = now;
  if (!context_static_ready_) {
    context.exec = kernel.exec_model();
    context.sites.reserve(sites.size());
    for (const GridSite& site : sites) context.sites.push_back(site.config());
    context.avail.resize(sites.size(), NodeAvailability(1, 0.0));
    context_static_ready_ = true;
  }
  context.site_up = kernel.site_mask();
  for (std::size_t s = 0; s < sites.size(); ++s) {
    context.avail[s] = sites[s].availability();
  }
  context.jobs.clear();
  context.jobs.reserve(kernel.pending().size());
  for (const JobId id : kernel.pending()) {
    const Job& job = kernel.job(id);
    context.jobs.push_back(
        {job.id, job.work, job.nodes, job.demand, job.arrival,
         job.secure_only});
  }

  ++kernel.counters().batch_invocations;
  // Scheduler wall seconds feed the observer hook, the profile sidecar and
  // the kernel.scheduler_seconds gauge only — never a byte-stable artifact.
  // NOLINTNEXTLINE(GS-R05): wall-clock is observability-only here
  const auto wall_start = std::chrono::steady_clock::now();
  scheduler_.schedule_into(context, assignments_);
  const double wall =
      // NOLINTNEXTLINE(GS-R05): wall-clock is observability-only here
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  kernel.counters().scheduler_seconds += wall;
  const std::vector<Assignment>& assignments = assignments_;
  kernel.notify_cycle(now, context.jobs.size(), assignments.size(), wall);

  // Validate and apply in the order the scheduler chose.
  assigned_.assign(context.jobs.size(), 0);
  for (const Assignment& assignment : assignments) {
    if (assignment.job_index >= context.jobs.size()) {
      throw std::logic_error("scheduler returned an out-of-range job index");
    }
    if (assignment.site >= sites.size()) {
      throw std::logic_error("scheduler returned an invalid site id");
    }
    if (assigned_[assignment.job_index]) {
      throw std::logic_error("scheduler assigned the same job twice");
    }
    assigned_[assignment.job_index] = 1;
    const JobId job_id = context.jobs[assignment.job_index].id;
    const Job& job = kernel.job(job_id);
    const GridSite& site = sites[assignment.site];
    if (!kernel.site_usable(assignment.site)) {
      throw std::logic_error(
          "scheduler placed a job on a site that is currently down");
    }
    if (!site.fits(job.nodes)) {
      throw std::logic_error(
          "scheduler placed a job on a site it does not fit");
    }
    if (job.secure_only && !security::is_safe(job.demand, site.security())) {
      throw std::logic_error(
          "scheduler violated the fail-stop rule (secure_only job on "
          "risky site)");
    }
    dispatcher_.dispatch(kernel, job_id, assignment.site, now);
  }

  // Compact dispatched jobs out of the pending queue in place, preserving
  // order (nothing was appended during the cycle, so pending index ==
  // batch index).
  if (!assignments.empty()) {
    std::vector<JobId>& pending = kernel.pending();
    std::size_t write = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (!assigned_[i]) pending[write++] = pending[i];
    }
    pending.resize(write);
    idle_cycles_ = 0;
  } else {
    if (++idle_cycles_ > kernel.config().max_idle_cycles) {
      throw std::runtime_error(
          "Engine: scheduler starved " +
          std::to_string(kernel.pending().size()) +
          " pending job(s) for too many cycles");
    }
  }
}

}  // namespace gridsched::sim
