// Security-failure process (paper Eq. 1 + fail-stop rescheduling): turns a
// validated placement into a reservation plus a kJobEnd event (success at
// the window end, or a failure detection inside it), and handles the ends —
// completing jobs or releasing the failed reservation's tail and re-queuing
// the job as a secure_only retry.
//
// RNG contract (common random numbers, DESIGN.md §5.5): the failure draw
// for (job, attempt) is a pure hash of (config seed, job id, attempt
// number), independent of everything the scheduler did before, so
// identical placements fail identically under every algorithm. The process
// is therefore stateless.
#pragma once

#include "sim/kernel.hpp"

namespace gridsched::sim {

class SecurityFailureProcess final : public SimProcess, public DispatchModel {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "security-failure";
  }
  [[nodiscard]] std::span<const EventKind> owned_kinds()
      const noexcept override;

  /// Reserve `site` for `job` no earlier than `now`, draw the failure
  /// outcome, push the end event.
  void dispatch(SimKernel& kernel, JobId job, SiteId site, Time now) override;

  void handle(SimKernel& kernel, const Event& event) override;
};

}  // namespace gridsched::sim
