#include "sim/process/security_failure_process.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace gridsched::sim {

std::span<const EventKind> SecurityFailureProcess::owned_kinds()
    const noexcept {
  static constexpr EventKind kKinds[] = {EventKind::kJobEnd};
  return kKinds;
}

void SecurityFailureProcess::dispatch(SimKernel& kernel, JobId job_id,
                                      SiteId site_id, Time now) {
  Job& job = kernel.job(job_id);
  GridSite& site = kernel.sites()[site_id];
  const EngineConfig& config = kernel.config();

  const double exec =
      kernel.exec_model().exec(job.id, job.work, site_id, site.speed());
  const NodeAvailability::Window window = site.dispatch(job.nodes, exec, now);

  ++job.attempts;
  Attempt& attempt = kernel.attempt(job_id);
  attempt = {window, exec, site_id, job.attempts, true};
  kernel.job_started();
  job.state = JobState::kDispatched;
  if (job.first_start < 0.0) job.first_start = window.start;
  job.last_start = window.start;

  const double p_fail =
      security::failure_probability(job.demand, site.security(), config.lambda);
  // Common random numbers: the failure draw for (job, attempt) is a pure
  // hash of (seed, job, attempt), independent of everything the scheduler
  // did before. Identical placements therefore fail identically under every
  // algorithm, which removes a large cross-algorithm noise term from the
  // paired comparisons the paper makes (DESIGN.md §5.5).
  util::SplitMix64 draw(config.seed ^
                        0x9e3779b97f4a7c15ULL *
                            (static_cast<std::uint64_t>(job_id) + 1) ^
                        0xc2b2ae3d27d4eb4fULL * (job.attempts + 1ULL));
  const double failure_ticket = static_cast<double>(draw.next() >> 11) *
      0x1.0p-53;
  bool will_fail = false;
  if (p_fail > 0.0) {
    ++kernel.counters().risky_attempts;
    job.took_risk = true;
    will_fail = failure_ticket < p_fail;
  }

  Event end;
  end.kind = EventKind::kJobEnd;
  end.job = job_id;
  end.site = site_id;
  end.attempt = attempt.serial;
  if (will_fail) {
    double fraction = 1.0;
    if (config.detection == FailureDetection::kUniformFraction) {
      fraction = static_cast<double>(draw.next() >> 11) * 0x1.0p-53;
    } else if (config.detection == FailureDetection::kImmediate) {
      fraction = 0.0;
    }
    // Avoid a zero-length attempt so failure times are strictly after start.
    fraction = std::max(fraction, 1e-6);
    end.time = window.start + exec * fraction;
    end.is_failure = true;
  } else {
    end.time = window.end;
    end.is_failure = false;
  }
  kernel.push_event(end);
  kernel.notify_dispatch(job_id, site_id, window, exec, attempt.serial);
}

void SecurityFailureProcess::handle(SimKernel& kernel, const Event& event) {
  // A retired job's slot may already belong to another job (streaming
  // kernel); an end event for it is necessarily stale — the job completed
  // elsewhere after the attempt this end belongs to was revoked.
  if (kernel.is_retired(event.job)) return;
  Job& job = kernel.job(event.job);
  Attempt& attempt = kernel.attempt(event.job);
  // A site-down revocation deactivates the attempt (and a re-dispatch bumps
  // the serial) but cannot remove the already-queued end event; drop it.
  if (!attempt.active || attempt.serial != event.attempt) return;
  if (event.is_failure) {
    ++kernel.counters().failure_events;
    ++job.failures;
    job.secure_only = true;  // fail-stop: never risk again
    kernel.notify_attempt_failure(event.job, attempt.site, event.time);
    // Give the unused tail of the reservation back to the site, keyed by
    // the exact stored window end (recomputing start + exec would rely on
    // bitwise float equality against the profile; see
    // SimKernel::revoke_attempt). A node is unreclaimable only when a
    // later batch cycle already stacked the next reservation onto it;
    // count both outcomes so a zero-node release is visible instead of
    // silently dropped.
    const unsigned released = kernel.revoke_attempt(event.job, event.time);
    kernel.counters().released_nodes += released;
    kernel.counters().unreleased_nodes += job.nodes - released;
    kernel.request_cycle(event.time);
  } else {
    kernel.job_stopped();
    attempt.active = false;
    job.state = JobState::kCompleted;
    job.finish = event.time;
    job.final_site = attempt.site;
    kernel.sites()[attempt.site].account_busy(job.nodes, attempt.exec);
    kernel.observe_finish(event.time);
    ++kernel.counters().completed_jobs;
    kernel.notify_job_complete(event.job, attempt.site, event.time);
    // Fold newly-retirable jobs into the metric accumulator (and, in
    // streaming mode, recycle their slots) after observers saw the
    // completion — observers address jobs by id and must see live state.
    kernel.retire_completed();
  }
}

}  // namespace gridsched::sim
