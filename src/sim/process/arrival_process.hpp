// Job-arrival process: injects every workload job at its arrival time and
// queues it for the next batch cycle. Arrival times come from the workload
// itself (the synth generators own the stochastic arrival models), so this
// process draws no randomness.
#pragma once

#include "sim/kernel.hpp"

namespace gridsched::sim {

class ArrivalProcess final : public SimProcess {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "arrival";
  }
  [[nodiscard]] std::span<const EventKind> owned_kinds()
      const noexcept override;

  void start(SimKernel& kernel) override;
  void handle(SimKernel& kernel, const Event& event) override;
};

}  // namespace gridsched::sim
