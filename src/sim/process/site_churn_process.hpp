// Site-churn process: sites alternate between up and down. kSiteDown masks
// the victim out of every subsequent SchedulerContext, revokes its active
// reservations through the stored Attempt::window (same
// release-by-stored-window accounting as failure releases) and re-queues
// the interrupted jobs — which keep their secure_only flag, so a
// previously failed job still retries safely. The paired kSiteUp restores
// the site to the mask.
//
// Timelines are either drawn online — per-site exponential up/down
// alternation with MTBF/MTTR means, each site on its own
// SeedMix(seed).mix("site-churn").mix(site) RNG stream so draws are
// independent of every other stochastic component — or supplied as an
// explicit outage script (tests, trace-driven what-ifs).
#pragma once

#include <vector>

#include "sim/kernel.hpp"
#include "util/rng.hpp"

namespace gridsched::sim {

/// One scripted outage: `site` is down during [down, up).
struct SiteOutage {
  SiteId site = kInvalidSite;
  Time down = 0.0;
  Time up = 0.0;
};

class SiteChurnProcess final : public SimProcess {
 public:
  /// Stochastic mode: `params[s]` drives site s (entries beyond the site
  /// count are ignored; sites without an entry, or with mtbf/mttr <= 0,
  /// never churn). `seed` is usually EngineConfig::seed.
  SiteChurnProcess(std::vector<SiteChurnParams> params, std::uint64_t seed);

  /// Scripted mode: exactly the given outages, in the given order. Throws
  /// std::invalid_argument on a non-positive-length outage.
  explicit SiteChurnProcess(std::vector<SiteOutage> script);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "site-churn";
  }
  [[nodiscard]] std::span<const EventKind> owned_kinds()
      const noexcept override;

  void start(SimKernel& kernel) override;
  void handle(SimKernel& kernel, const Event& event) override;

 private:
  void push_site_event(SimKernel& kernel, EventKind kind, SiteId site,
                       Time time);
  /// Mask the site and revoke every active attempt on it.
  void take_site_down(SimKernel& kernel, SiteId site, Time now);

  std::vector<SiteChurnParams> params_;
  std::uint64_t seed_ = 0;
  std::vector<util::Rng> streams_;  ///< per site, stochastic mode only
  std::vector<SiteOutage> script_;
  bool scripted_ = false;
  /// Persistent victim scratch (rebuilt per outage, keeps its capacity so
  /// site-down handling stays heap-free in the steady-state loop).
  std::vector<JobId> victims_;
};

}  // namespace gridsched::sim
