#include "sim/process/arrival_process.hpp"

namespace gridsched::sim {

std::span<const EventKind> ArrivalProcess::owned_kinds() const noexcept {
  static constexpr EventKind kKinds[] = {EventKind::kJobArrival};
  return kKinds;
}

void ArrivalProcess::start(SimKernel& kernel) {
  for (const Job& job : kernel.jobs()) {
    Event arrival;
    arrival.time = job.arrival;
    arrival.kind = EventKind::kJobArrival;
    arrival.job = job.id;
    kernel.push_event(arrival);
  }
}

void ArrivalProcess::handle(SimKernel& kernel, const Event& event) {
  kernel.note_arrival();
  kernel.pending().push_back(event.job);
  kernel.request_cycle(event.time);
}

}  // namespace gridsched::sim
