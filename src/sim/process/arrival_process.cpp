#include "sim/process/arrival_process.hpp"

namespace gridsched::sim {

std::span<const EventKind> ArrivalProcess::owned_kinds() const noexcept {
  static constexpr EventKind kKinds[] = {EventKind::kJobArrival};
  return kKinds;
}

void ArrivalProcess::start(SimKernel& kernel) {
  // Streaming kernel: admit only the first job; each arrival then admits
  // its successor (handle below), so at most one un-arrived job is ever
  // resident. Arrival events use their reserved seq (== job id) so lazy
  // injection pops in the same (time, seq) order the eager loop produces.
  Event arrival;
  if (kernel.admit_next(arrival)) {
    kernel.push_event_reserved(arrival, arrival.job);
    return;
  }
  // Retained kernel: every job is materialised — inject all arrivals now.
  for (const Job& job : kernel.jobs()) {
    arrival = Event{};
    arrival.time = job.arrival;
    arrival.kind = EventKind::kJobArrival;
    arrival.job = job.id;
    kernel.push_event_reserved(arrival, arrival.job);
  }
}

void ArrivalProcess::handle(SimKernel& kernel, const Event& event) {
  kernel.note_arrival();
  kernel.pending().push_back(event.job);
  // Pull the next streamed job (no-op for retained workloads). Its arrival
  // is >= this one (sorted-stream contract) and its reserved seq is larger,
  // so pushing it now cannot perturb the pop order.
  Event next;
  if (kernel.admit_next(next)) {
    kernel.push_event_reserved(next, next.job);
  }
  kernel.request_cycle(event.time);
}

}  // namespace gridsched::sim
