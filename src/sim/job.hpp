// Job model. Jobs are atomic (neither malleable nor moldable, per the
// paper): a job needs `nodes` nodes for `work / site_speed` seconds.
#pragma once

#include "sim/types.hpp"

namespace gridsched::sim {

enum class JobState {
  kPending,    ///< waiting in the scheduler's batch queue
  kDispatched, ///< has a reservation on a site
  kCompleted,  ///< finished successfully
};

struct Job {
  JobId id = kInvalidJob;
  Time arrival = 0.0;
  /// Execution time on a unit-speed site, in seconds (runtime scales as
  /// work / speed; the `nodes` nodes are held for the whole run).
  double work = 0.0;
  unsigned nodes = 1;
  /// Security demand SD (paper: U[0.6, 0.9]).
  double demand = 0.0;

  // --- runtime bookkeeping (owned by the engine) ---
  JobState state = JobState::kPending;
  /// Set after a failure: the fail-stop rule forbids further risk.
  bool secure_only = false;
  unsigned attempts = 0;
  unsigned failures = 0;
  /// Attempts revoked mid-run because their site went down (site churn).
  unsigned interruptions = 0;
  /// True if any attempt ran on a site with SL < SD.
  bool took_risk = false;
  Time first_start = -1.0;  ///< start of the first attempt
  Time last_start = -1.0;   ///< start of the final (successful) attempt
  Time finish = -1.0;       ///< successful completion time
  SiteId final_site = kInvalidSite;
};

}  // namespace gridsched::sim
