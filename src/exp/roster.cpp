#include "exp/roster.hpp"

#include "sched/registry.hpp"

namespace gridsched::exp {

AlgorithmSpec heuristic_spec(const std::string& heuristic_name,
                             security::RiskPolicy policy) {
  AlgorithmSpec spec;
  auto probe = sched::make_heuristic(heuristic_name, policy);  // validates name
  spec.name = probe->name();
  spec.make = [heuristic_name, policy](util::ThreadPool*, std::uint64_t) {
    return sched::make_heuristic(heuristic_name, policy);
  };
  return spec;
}

AlgorithmSpec stga_spec(core::StgaConfig config) {
  AlgorithmSpec spec;
  spec.name = "STGA";
  spec.wants_training = true;
  spec.make = [config](util::ThreadPool* pool, std::uint64_t seed) {
    core::StgaConfig per_run = config;
    per_run.seed = seed;
    return core::make_stga(per_run, pool);
  };
  return spec;
}

AlgorithmSpec classic_ga_spec(core::StgaConfig config) {
  AlgorithmSpec spec;
  spec.name = "GA";
  spec.make = [config](util::ThreadPool* pool, std::uint64_t seed) {
    core::StgaConfig per_run = config;
    per_run.seed = seed;
    return core::make_classic_ga(per_run, pool);
  };
  return spec;
}

std::vector<AlgorithmSpec> paper_roster(double f, core::StgaConfig stga) {
  std::vector<AlgorithmSpec> roster;
  roster.push_back(heuristic_spec("min-min", security::RiskPolicy::secure()));
  roster.push_back(heuristic_spec("min-min", security::RiskPolicy::f_risky(f)));
  roster.push_back(heuristic_spec("min-min", security::RiskPolicy::risky()));
  roster.push_back(heuristic_spec("sufferage", security::RiskPolicy::secure()));
  roster.push_back(heuristic_spec("sufferage",
                                  security::RiskPolicy::f_risky(f)));
  roster.push_back(heuristic_spec("sufferage", security::RiskPolicy::risky()));
  roster.push_back(stga_spec(stga));
  return roster;
}

std::vector<AlgorithmSpec> scaling_roster(double f, core::StgaConfig stga) {
  std::vector<AlgorithmSpec> roster;
  roster.push_back(heuristic_spec("min-min", security::RiskPolicy::f_risky(f)));
  roster.push_back(heuristic_spec("sufferage",
                                  security::RiskPolicy::f_risky(f)));
  roster.push_back(stga_spec(stga));
  return roster;
}

}  // namespace gridsched::exp
