#include "exp/scenario.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace gridsched::exp {

namespace {

/// Stream index for the training-workload ETC row sampling (independent of
/// every draw inside the generators themselves).
constexpr std::uint64_t kTrainingEtcStream = 0x7e57;

}  // namespace

Scenario nas_scenario(std::size_t n_jobs) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kNas;
  scenario.nas.n_jobs = n_jobs;
  // Keep the offered load constant when shrinking the job count for tests.
  scenario.nas.horizon =
      46.0 * 86400.0 * static_cast<double>(n_jobs) / 16000.0;
  scenario.engine.batch_interval = 4000.0;
  return scenario;
}

Scenario psa_scenario(std::size_t n_jobs) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kPsa;
  scenario.psa.n_jobs = n_jobs;
  scenario.engine.batch_interval = 2000.0;
  return scenario;
}

Scenario synth_scenario(workload::synth::SynthConfig config) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kSynth;
  scenario.synth = std::move(config);
  scenario.engine.batch_interval = 2000.0;
  return scenario;
}

Scenario synth_stream_scenario(workload::synth::SynthStreamConfig config) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kSynthStream;
  scenario.stream = std::move(config);
  scenario.engine.batch_interval = 2000.0;
  return scenario;
}

workload::Workload make_workload(const Scenario& scenario, std::uint64_t seed) {
  switch (scenario.kind) {
    case ScenarioKind::kNas:
      return workload::nas_workload(scenario.nas, seed);
    case ScenarioKind::kPsa:
      return workload::psa_workload(scenario.psa, seed);
    case ScenarioKind::kSynth:
      return workload::synth::synth_workload(scenario.synth, seed);
    case ScenarioKind::kSynthStream:
      // Draining the cursor gives byte-identical jobs to the streamed run
      // (same generator, same draws) at O(n_jobs) memory — fine for trace
      // export and tests, wrong for million-job simulation (use
      // make_stream_workload there).
      return workload::synth::materialize_stream(
          workload::synth::stream_workload(scenario.stream, seed));
  }
  throw std::invalid_argument("make_workload: unknown scenario kind");
}

workload::synth::StreamWorkload make_stream_workload(const Scenario& scenario,
                                                     std::uint64_t seed) {
  if (scenario.kind != ScenarioKind::kSynthStream) {
    throw std::invalid_argument(
        "make_stream_workload: scenario is not a streaming kind");
  }
  return workload::synth::stream_workload(scenario.stream, seed);
}

workload::Workload make_training_workload(const Scenario& scenario,
                                          const workload::Workload& main,
                                          std::size_t n_jobs,
                                          std::uint64_t seed) {
  Scenario training = scenario;
  if (training.kind == ScenarioKind::kNas) {
    const double fraction = static_cast<double>(n_jobs) /
                            static_cast<double>(training.nas.n_jobs);
    training.nas.n_jobs = n_jobs;
    training.nas.horizon =
        std::max(training.nas.horizon * fraction, 10.0 * 4000.0);
  } else if (training.kind == ScenarioKind::kSynth) {
    training.synth.n_jobs = n_jobs;
  } else if (training.kind == ScenarioKind::kSynthStream) {
    training.stream.n_jobs = n_jobs;  // drained by make_workload below
  } else {
    training.psa.n_jobs = n_jobs;
  }
  workload::Workload workload = make_workload(training, seed);
  workload.name += "-training";
  workload.sites = main.sites;  // identical grid => comparable signatures
  // Training is the paper's churn-free bootstrap phase; any churn
  // parameters the training generator drew were against the discarded
  // training grid anyway.
  workload.churn.clear();
  // The grid substitution invalidates any raw ETC the training generator
  // attached (its cells were fitted jointly with the discarded training
  // sites, and a raw matrix is authoritative). Re-gather the *main* grid's
  // ETC instead: each training job samples a main-matrix row (with the
  // matching work scalar, keeping etc ~ work / speed self-consistent), so
  // the history table is trained on the very per-site columns the main run
  // executes rather than on a rank-1 projection of a different grid.
  if (main.exec.has_matrix() && !main.jobs.empty()) {
    const std::span<const double> cells = main.exec.matrix_cells();
    const std::size_t n_sites = main.exec.matrix_sites();
    const std::size_t n_main = main.exec.matrix_jobs();
    util::Rng row_rng = util::Rng::child(seed, kTrainingEtcStream);
    std::vector<double> rows(workload.jobs.size() * n_sites);
    for (std::size_t j = 0; j < workload.jobs.size(); ++j) {
      const std::size_t r = row_rng.index(n_main);
      std::copy_n(cells.begin() + static_cast<std::ptrdiff_t>(r * n_sites),
                  n_sites, rows.begin() + static_cast<std::ptrdiff_t>(j *
                                                                      n_sites));
      workload.jobs[j].work = main.jobs[r].work;
    }
    workload.exec =
        sim::ExecModel(workload.jobs.size(), n_sites, std::move(rows));
  } else {
    workload.exec = sim::ExecModel{};
  }
  return workload;
}

}  // namespace gridsched::exp
