#include "exp/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gridsched::exp {

Scenario nas_scenario(std::size_t n_jobs) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kNas;
  scenario.nas.n_jobs = n_jobs;
  // Keep the offered load constant when shrinking the job count for tests.
  scenario.nas.horizon =
      46.0 * 86400.0 * static_cast<double>(n_jobs) / 16000.0;
  scenario.engine.batch_interval = 4000.0;
  return scenario;
}

Scenario psa_scenario(std::size_t n_jobs) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kPsa;
  scenario.psa.n_jobs = n_jobs;
  scenario.engine.batch_interval = 2000.0;
  return scenario;
}

Scenario synth_scenario(workload::synth::SynthConfig config) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kSynth;
  scenario.synth = std::move(config);
  scenario.engine.batch_interval = 2000.0;
  return scenario;
}

workload::Workload make_workload(const Scenario& scenario, std::uint64_t seed) {
  switch (scenario.kind) {
    case ScenarioKind::kNas:
      return workload::nas_workload(scenario.nas, seed);
    case ScenarioKind::kPsa:
      return workload::psa_workload(scenario.psa, seed);
    case ScenarioKind::kSynth:
      return workload::synth::synth_workload(scenario.synth, seed);
  }
  throw std::invalid_argument("make_workload: unknown scenario kind");
}

workload::Workload make_training_workload(const Scenario& scenario,
                                          const workload::Workload& main,
                                          std::size_t n_jobs,
                                          std::uint64_t seed) {
  Scenario training = scenario;
  if (training.kind == ScenarioKind::kNas) {
    const double fraction = static_cast<double>(n_jobs) /
                            static_cast<double>(training.nas.n_jobs);
    training.nas.n_jobs = n_jobs;
    training.nas.horizon =
        std::max(training.nas.horizon * fraction, 10.0 * 4000.0);
  } else if (training.kind == ScenarioKind::kSynth) {
    training.synth.n_jobs = n_jobs;
  } else {
    training.psa.n_jobs = n_jobs;
  }
  workload::Workload workload = make_workload(training, seed);
  workload.name += "-training";
  workload.sites = main.sites;  // identical grid => comparable signatures
  // The grid substitution invalidates any raw ETC the training generator
  // attached (its cells were fitted jointly with the discarded training
  // sites, and a raw matrix is authoritative): fall back to the rank-1
  // model against the main grid instead of simulating exec times from a
  // grid the jobs no longer run on.
  workload.exec = sim::ExecModel{};
  return workload;
}

}  // namespace gridsched::exp
