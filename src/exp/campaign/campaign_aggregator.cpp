#include "exp/campaign/campaign_aggregator.hpp"

#include <array>
#include <stdexcept>

#include "obs/timeseries.hpp"

namespace gridsched::exp::campaign {

namespace {

constexpr std::array<MetricDef, 17> kMetricDefs = {{
    {"makespan", true,
     [](const metrics::RunMetrics& run) { return run.makespan; }},
    {"avg_response", true,
     [](const metrics::RunMetrics& run) { return run.avg_response; }},
    {"slowdown", true,
     [](const metrics::RunMetrics& run) { return run.slowdown_ratio; }},
    {"n_risk", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.n_risk);
     }},
    {"n_fail", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.n_fail);
     }},
    {"avg_utilization", true,
     [](const metrics::RunMetrics& run) { return run.avg_utilization; }},
    // Engine counters (PR 5): pure functions of (scenario, policy, seed),
    // so all deterministic and JSON-safe.
    {"failure_events", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.failure_events);
     }},
    {"risky_attempts", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.risky_attempts);
     }},
    {"released_nodes", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.released_nodes);
     }},
    {"unreleased_nodes", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.unreleased_nodes);
     }},
    {"site_down_events", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.site_down_events);
     }},
    {"site_up_events", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.site_up_events);
     }},
    {"interruptions", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.interruptions);
     }},
    {"n_interrupted", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.n_interrupted);
     }},
    {"churn_released_nodes", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.churn_released_nodes);
     }},
    {"churn_unreleased_nodes", true,
     [](const metrics::RunMetrics& run) {
       return static_cast<double>(run.churn_unreleased_nodes);
     }},
    // Wall time inside schedule(): varies run to run, so it never enters
    // the byte-stable JSON artifact.
    {"scheduler_seconds", false,
     [](const metrics::RunMetrics& run) { return run.scheduler_seconds; }},
}};

}  // namespace

std::string_view status_name(CellStatus status) noexcept {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kFailed:
      return "failed";
    case CellStatus::kTimedOut:
      return "timed_out";
  }
  return "failed";  // unreachable; keeps -Wreturn-type quiet
}

CellStatus parse_status(std::string_view text) {
  if (text == "ok") return CellStatus::kOk;
  if (text == "failed") return CellStatus::kFailed;
  if (text == "timed_out") return CellStatus::kTimedOut;
  throw std::invalid_argument("parse_status: unknown cell status \"" +
                              std::string(text) + "\"");
}

std::span<const MetricDef> metric_defs() { return kMetricDefs; }

const MetricDef* find_metric(std::string_view key) {
  for (const MetricDef& def : kMetricDefs) {
    if (def.key == key) return &def;
  }
  return nullptr;
}

std::vector<const MetricDef*> resolve_metrics(const CampaignSpec& spec) {
  std::vector<const MetricDef*> resolved;
  for (const MetricDef& def : kMetricDefs) {
    if (spec.metrics.empty()) {
      if (def.deterministic) resolved.push_back(&def);
      continue;
    }
    for (const std::string& key : spec.metrics) {
      if (def.key == key) {
        resolved.push_back(&def);
        break;
      }
    }
  }
  return resolved;
}

CampaignAggregator::CampaignAggregator(const CampaignSpec& spec)
    : spec_(spec), metrics_(resolve_metrics(spec_)) {
  const std::size_t n_groups = spec.scenarios.size() * spec.policies.size();
  stats_.resize(n_groups, std::vector<util::RunningStats>(metrics_.size()));
  counts_.resize(n_groups, 0);
  failed_.resize(n_groups, 0);
  timed_out_.resize(n_groups, 0);
}

std::size_t CampaignAggregator::group_index(std::size_t scenario_index,
                                            std::size_t policy_index) const {
  if (scenario_index >= spec_.scenarios.size() ||
      policy_index >= spec_.policies.size()) {
    throw std::out_of_range("CampaignAggregator: cell outside the spec");
  }
  return scenario_index * spec_.policies.size() + policy_index;
}

void CampaignAggregator::add(std::size_t scenario_index,
                             std::size_t policy_index,
                             const metrics::RunMetrics& run) {
  const std::size_t group = group_index(scenario_index, policy_index);
  for (std::size_t m = 0; m < metrics_.size(); ++m) {
    stats_[group][m].add(metrics_[m]->value(run));
  }
  ++counts_[group];
}

void CampaignAggregator::add_lost(std::size_t scenario_index,
                                  std::size_t policy_index,
                                  CellStatus status) {
  const std::size_t group = group_index(scenario_index, policy_index);
  switch (status) {
    case CellStatus::kOk:
      throw std::invalid_argument(
          "CampaignAggregator::add_lost: ok cells go through add()");
    case CellStatus::kFailed:
      ++failed_[group];
      break;
    case CellStatus::kTimedOut:
      ++timed_out_[group];
      break;
  }
}

std::span<const std::string_view> series_column_keys() {
  static constexpr std::array<std::string_view, 7> kKeys = {
      "ready",     "in_flight", "sites_up",     "busy_mean",
      "completed", "failures",  "interruptions"};
  return kKeys;
}

void CampaignAggregator::add_series(std::size_t scenario_index,
                                    std::size_t policy_index,
                                    const obs::TimeSeries& series) {
  const std::size_t group = group_index(scenario_index, policy_index);
  if (series_stats_.empty()) {
    series_stats_.resize(stats_.size());
    series_counts_.resize(stats_.size(), 0);
    series_interval_ = series.interval;
  } else if (series.interval != series_interval_) {
    throw std::invalid_argument(
        "CampaignAggregator::add_series: sample interval differs between "
        "cells — the reduction needs one boundary grid campaign-wide");
  }
  std::vector<std::vector<util::RunningStats>>& columns =
      series_stats_[group];
  columns.resize(series_column_keys().size());
  ++series_counts_[group];
  for (std::size_t i = 0; i < series.samples.size(); ++i) {
    const obs::TimeSeriesSample& sample = series.samples[i];
    // Only boundary-grid samples reduce; the terminal makespan sample's
    // time is replication-specific and falls off the common axis.
    if (sample.t != static_cast<double>(i) * series.interval) break;
    double busy_sum = 0.0;
    for (const double fraction : sample.busy) busy_sum += fraction;
    const double busy_mean =
        sample.busy.empty()
            ? 0.0
            : busy_sum / static_cast<double>(sample.busy.size());
    const std::array<double, 7> values = {
        static_cast<double>(sample.ready),
        static_cast<double>(sample.in_flight),
        static_cast<double>(sample.sites_up),
        busy_mean,
        static_cast<double>(sample.completed),
        static_cast<double>(sample.failures),
        static_cast<double>(sample.interruptions)};
    for (std::size_t c = 0; c < values.size(); ++c) {
      if (columns[c].size() <= i) columns[c].resize(i + 1);
      columns[c][i].add(values[c]);
    }
  }
}

std::vector<SeriesGroupSummary> CampaignAggregator::series_groups() const {
  std::vector<SeriesGroupSummary> groups;
  if (series_stats_.empty()) return groups;
  for (std::size_t s = 0; s < spec_.scenarios.size(); ++s) {
    for (std::size_t p = 0; p < spec_.policies.size(); ++p) {
      const std::size_t index = s * spec_.policies.size() + p;
      if (series_counts_[index] == 0) continue;
      const std::vector<std::vector<util::RunningStats>>& columns =
          series_stats_[index];
      SeriesGroupSummary group;
      group.scenario = spec_.scenarios[s].display();
      group.policy = spec_.policies[p].display();
      group.interval = series_interval_;
      group.replications = series_counts_[index];
      const std::size_t n_samples =
          columns.empty() ? 0 : columns.front().size();
      group.t.reserve(n_samples);
      for (std::size_t i = 0; i < n_samples; ++i) {
        group.t.push_back(static_cast<double>(i) * series_interval_);
      }
      group.columns.reserve(columns.size());
      for (std::size_t c = 0; c < columns.size(); ++c) {
        SeriesColumn column;
        column.key = std::string(series_column_keys()[c]);
        column.samples.reserve(columns[c].size());
        for (const util::RunningStats& stats : columns[c]) {
          column.samples.push_back(util::summarize(stats));
        }
        group.columns.push_back(std::move(column));
      }
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

std::vector<GroupSummary> CampaignAggregator::groups() const {
  std::vector<GroupSummary> groups;
  groups.reserve(stats_.size());
  for (std::size_t s = 0; s < spec_.scenarios.size(); ++s) {
    for (std::size_t p = 0; p < spec_.policies.size(); ++p) {
      const std::size_t index = s * spec_.policies.size() + p;
      GroupSummary group;
      group.scenario = spec_.scenarios[s].display();
      group.policy = spec_.policies[p].display();
      group.cells = counts_[index];
      group.expected = spec_.replications;
      group.failed = failed_[index];
      group.timed_out = timed_out_[index];
      group.metrics.reserve(metrics_.size());
      for (std::size_t m = 0; m < metrics_.size(); ++m) {
        MetricSummary summary;
        summary.key = std::string(metrics_[m]->key);
        summary.deterministic = metrics_[m]->deterministic;
        summary.summary = util::summarize(stats_[index][m]);
        group.metrics.push_back(std::move(summary));
      }
      groups.push_back(std::move(group));
    }
  }
  return groups;
}

}  // namespace gridsched::exp::campaign
