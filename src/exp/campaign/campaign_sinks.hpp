// Campaign result rendering: a pretty util::Table summary, long-format
// CSV (one row per group x metric — tidy data for plotting), and a
// byte-stable JSON artifact suitable for committing next to the bench
// JSON. The renderers are pure functions of the result; the Sink
// interface adapts them to streams/files so callers can fan one campaign
// out to several destinations.
//
// Stability contract: render_json() emits only deterministic fields —
// spec echo, per-group aggregates of deterministic metrics, per-cell
// seeds — with doubles in shortest-exact form. Two runs of the same spec
// produce byte-identical JSON regardless of thread count. Wall-clock
// throughput appears in render_table() only.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>

#include "exp/campaign/campaign_runner.hpp"

namespace gridsched::exp::campaign {

/// Aligned summary table plus a wall-clock/throughput footer.
std::string render_table(const CampaignResult& result);

/// Long-format CSV: scenario,policy,metric,count,mean,stddev,ci95.
std::string render_csv(const CampaignResult& result);

/// Stable JSON artifact (deterministic fields only; trailing newline).
std::string render_json(const CampaignResult& result);

/// Wall-clock profile sidecar JSON: campaign-level throughput plus one
/// row per cell {scenario, policy, replication, wall_seconds,
/// scheduler_seconds, batch_invocations}. Deliberately a SEPARATE
/// artifact from render_json — wall-clock fields are non-deterministic
/// and must never contaminate the byte-stable aggregate (PR 4 contract).
std::string render_profile(const CampaignResult& result);

/// Label-keyed basename for one cell's timeseries artifact:
/// "<scenario>__<policy>__rep<k>.json" with display labels sanitized to
/// [A-Za-z0-9._-]. Labels, never matrix indices — inserting a scenario
/// does not rename the other cells' artifacts.
std::string timeseries_cell_filename(const CampaignResult& result,
                                     const CellResult& cell);

/// Aggregated cross-replication series artifact (trailing newline):
/// per group, the boundary-time axis plus per-sample mean / stddev /
/// t-CI / count for each reduced column. Deterministic fields only —
/// byte-stable at any thread count.
std::string render_series_aggregate_json(const CampaignResult& result);

/// Write one JSON file per cell that carries a series (see
/// timeseries_cell_filename) plus "aggregate.json" into `dir`, creating
/// the directory if needed. Cells replayed from a journal carry no
/// series and are skipped. Throws std::runtime_error on I/O failure.
void write_timeseries_dir(const CampaignResult& result,
                          const std::string& dir);

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void consume(const CampaignResult& result) = 0;
};

/// Writes render_table to a stream the caller keeps alive.
class TableSink final : public Sink {
 public:
  explicit TableSink(std::ostream& out) : out_(out) {}
  void consume(const CampaignResult& result) override;

 private:
  std::ostream& out_;
};

/// Writes render_csv / render_json to a file (created/truncated on
/// consume; throws std::runtime_error when the file cannot be written).
class CsvFileSink final : public Sink {
 public:
  explicit CsvFileSink(std::string path) : path_(std::move(path)) {}
  void consume(const CampaignResult& result) override;

 private:
  std::string path_;
};

class JsonFileSink final : public Sink {
 public:
  explicit JsonFileSink(std::string path) : path_(std::move(path)) {}
  void consume(const CampaignResult& result) override;

 private:
  std::string path_;
};

/// Writes render_profile (the wall-clock sidecar) to a file.
class ProfileFileSink final : public Sink {
 public:
  explicit ProfileFileSink(std::string path) : path_(std::move(path)) {}
  void consume(const CampaignResult& result) override;

 private:
  std::string path_;
};

/// Feed one result to every sink.
void emit(const CampaignResult& result,
          std::span<const std::unique_ptr<Sink>> sinks);

}  // namespace gridsched::exp::campaign
