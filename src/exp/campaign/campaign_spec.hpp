// Declarative experiment campaigns: a CampaignSpec names scenarios
// (registry keys with parameter overrides), policies (scheduler registry
// names + GA configs), a replication count and the metrics to report —
// the {scenario x policy x replication} grid behind the paper's Table 2
// and Figs 7-10, as data instead of hand-rolled bench loops. Specs are
// parsed from a small JSON file (see examples/campaigns/) or built
// programmatically; parsing is strict (unknown keys, unknown registry
// names and malformed JSON all throw with useful messages).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/fault_plan.hpp"
#include "exp/roster.hpp"
#include "exp/scenario.hpp"
#include "util/json.hpp"

namespace gridsched::exp::campaign {

/// One scenario axis entry. In JSON either a bare registry-name string or
/// an object: {"name": "nas", "jobs": 1000, "batch_interval": 4000,
/// "label": "nas-1k"}. `custom` carries a programmatically built Scenario
/// (no JSON form) — used by examples that sweep generator configs the
/// registry doesn't name.
struct ScenarioRef {
  std::string name;              ///< registry key; display fallback for custom
  std::string label;             ///< unique label; defaults to name
  std::size_t n_jobs = 0;        ///< 0 = scenario default
  double batch_interval = 0.0;   ///< 0 = scenario default
  std::optional<Scenario> custom;

  /// Materialise the scenario (registry lookup + overrides, or `custom`
  /// as-is). Throws std::invalid_argument for unknown registry names.
  [[nodiscard]] Scenario resolve() const;
  /// Effective label (explicit label, else name).
  [[nodiscard]] const std::string& display() const noexcept {
    return label.empty() ? name : label;
  }
};

/// One policy axis entry. In JSON: {"algo": "min-min", "mode": "secure"}
/// for registry heuristics, {"algo": "stga", "ga": {"population": 100,
/// "generations": 50}} for the GAs ("ga" keys override StgaConfig fields).
struct PolicyRef {
  std::string algo = "min-min";  ///< heuristic registry name, "stga" or "ga"
  std::string mode = "f-risky";  ///< secure | f-risky | risky (heuristics)
  double f = 0.5;                ///< risk bound for f-risky
  std::string label;             ///< unique label; defaults to algo[-mode]
  core::StgaConfig stga;         ///< GA configuration for stga/ga algos

  /// Materialise the AlgorithmSpec (validates the algo name).
  [[nodiscard]] AlgorithmSpec resolve() const;
  [[nodiscard]] std::string display() const;
};

struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t seed = 1;
  std::size_t replications = 1;
  /// Metric keys to report (see metric_defs() in campaign_aggregator.hpp);
  /// empty = all deterministic metrics.
  std::vector<std::string> metrics;
  std::vector<ScenarioRef> scenarios;
  std::vector<PolicyRef> policies;
  /// Optional chaos plan (JSON key "faults"); empty by default, in which
  /// case no injection code runs and artifacts are byte-identical to a
  /// spec without the key.
  FaultPlan faults;

  /// Full structural validation: non-empty axes, replications >= 1,
  /// unique labels, known registry/metric names. Throws
  /// std::invalid_argument on the first violation.
  void validate() const;
};

/// Parse a spec from a JSON document / text / file. All three validate()
/// before returning.
CampaignSpec parse_spec(const util::json::Value& doc);
CampaignSpec parse_spec_text(std::string_view text);
CampaignSpec load_spec(const std::string& path);

}  // namespace gridsched::exp::campaign
