// Campaign execution: expand a CampaignSpec into its flat
// {scenario x policy x replication} run matrix, shard the cells across a
// thread pool (one task per cell — GA cells run ~100x longer than
// heuristic cells, so fine-grained tasks keep the pool busy), and reduce
// the results with CampaignAggregator.
//
// Determinism contract: every cell gets its own RNG stream with
//   seed = SeedMix(spec.seed).mix(scenario label).mix(policy label)
//                            .mix(replication)
// and runs with GA fitness evaluation serial inside the cell, so cell
// results — and therefore the aggregate JSON artifact — are byte-identical
// for any --threads value and any execution order. Wall-clock fields
// (CampaignResult::wall_seconds and friends) are the only exception and
// never enter the artifact.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exp/campaign/campaign_aggregator.hpp"
#include "exp/campaign/campaign_spec.hpp"
#include "metrics/metrics.hpp"

namespace gridsched::exp::campaign {

/// One run of the campaign matrix, in scenario-major, policy-minor,
/// replication-innermost order.
struct Cell {
  std::size_t scenario = 0;     ///< index into spec.scenarios
  std::size_t policy = 0;       ///< index into spec.policies
  std::size_t replication = 0;  ///< [0, spec.replications)
  std::uint64_t seed = 0;       ///< deterministic per-cell stream
};

/// Per-cell seed; depends only on (spec seed, labels, replication) — never
/// on axis indices, so inserting a scenario does not reseed the others.
std::uint64_t cell_seed(const CampaignSpec& spec, std::size_t scenario_index,
                        std::size_t policy_index, std::size_t replication);

/// The flat run matrix (validates the spec first).
std::vector<Cell> expand(const CampaignSpec& spec);

struct CellResult {
  Cell cell;
  metrics::RunMetrics metrics;
  /// Wall time of this cell's run_once (non-deterministic; feeds the
  /// profile sidecar and the table footer, never the aggregate JSON).
  double wall_seconds = 0.0;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<CellResult> cells;      ///< matrix order
  std::vector<GroupSummary> groups;   ///< scenario-major aggregate

  /// Wall-clock throughput (non-deterministic; table output only).
  double wall_seconds = 0.0;
  std::size_t threads = 1;
  std::size_t jobs_simulated = 0;
  [[nodiscard]] double cells_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(cells.size()) / wall_seconds
               : 0.0;
  }
};

struct RunnerOptions {
  /// Worker threads for the cell fan-out; 0 = hardware_concurrency,
  /// 1 = run serially on the caller.
  std::size_t threads = 0;
  /// Progress hook, invoked per finished cell in completion order under
  /// an internal mutex (callbacks need no locking of their own).
  std::function<void(const CellResult&, std::size_t done, std::size_t total)>
      on_cell;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options = {});

  /// Run the full matrix and aggregate. Throws std::invalid_argument on
  /// an invalid spec; exceptions from cells propagate.
  CampaignResult run(const CampaignSpec& spec);

 private:
  RunnerOptions options_;
};

}  // namespace gridsched::exp::campaign
