// Campaign execution: expand a CampaignSpec into its flat
// {scenario x policy x replication} run matrix, shard the cells across a
// thread pool (one task per cell — GA cells run ~100x longer than
// heuristic cells, so fine-grained tasks keep the pool busy), and reduce
// the results with CampaignAggregator.
//
// Determinism contract: every cell gets its own RNG stream with
//   seed = SeedMix(spec.seed).mix(scenario label).mix(policy label)
//                            .mix(replication)
// and runs with GA fitness evaluation serial inside the cell, so cell
// results — and therefore the aggregate JSON artifact — are byte-identical
// for any --threads value and any execution order. Wall-clock fields
// (CampaignResult::wall_seconds and friends) are the only exception and
// never enter the artifact.
//
// Fault tolerance (PR 7): cells fail *individually*. A throwing or
// timed-out cell is recorded with its status and error, every other cell
// still runs, and the aggregate degrades to the surviving replications —
// unless RunnerOptions::strict restores abort-on-first-error. With a
// checkpoint path set, every finished cell is journaled (fsync'd JSONL)
// and `resume` replays the journal instead of re-running those cells;
// because journal records carry only deterministic values, a resumed
// aggregate is byte-identical to an uninterrupted one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exp/campaign/campaign_aggregator.hpp"
#include "exp/campaign/campaign_spec.hpp"
#include "metrics/metrics.hpp"

namespace gridsched::exp::campaign {

/// One run of the campaign matrix, in scenario-major, policy-minor,
/// replication-innermost order.
struct Cell {
  std::size_t scenario = 0;     ///< index into spec.scenarios
  std::size_t policy = 0;       ///< index into spec.policies
  std::size_t replication = 0;  ///< [0, spec.replications)
  std::uint64_t seed = 0;       ///< deterministic per-cell stream
};

/// Per-cell seed; depends only on (spec seed, labels, replication) — never
/// on axis indices, so inserting a scenario does not reseed the others.
std::uint64_t cell_seed(const CampaignSpec& spec, std::size_t scenario_index,
                        std::size_t policy_index, std::size_t replication);

/// The flat run matrix (validates the spec first).
std::vector<Cell> expand(const CampaignSpec& spec);

struct CellResult {
  Cell cell;
  /// Valid only when status == kOk; default-initialized otherwise.
  metrics::RunMetrics metrics;
  /// Wall time of this cell's run_once (non-deterministic; feeds the
  /// profile sidecar and the table footer, never the aggregate JSON).
  /// Zero for cells replayed from a journal.
  double wall_seconds = 0.0;
  CellStatus status = CellStatus::kOk;
  /// The final attempt's exception what(); empty when status == kOk.
  std::string error;
  /// run_once invocations spent on this cell (1 + retries used). Cells
  /// replayed from a journal keep their recorded count.
  unsigned attempts = 1;
  /// Deterministic sim-time telemetry sampled by a TimeSeriesProbe when
  /// RunnerOptions::timeseries_interval > 0; null otherwise, for non-ok
  /// cells, and for cells replayed from a journal (the journal records
  /// scalar metrics only — a resumed campaign re-runs nothing, so those
  /// cells ship no series).
  std::shared_ptr<const obs::TimeSeries> series;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<CellResult> cells;      ///< matrix order
  std::vector<GroupSummary> groups;   ///< scenario-major aggregate
  /// Per-group cross-replication series reduction (empty unless
  /// RunnerOptions::timeseries_interval > 0). Reduced in matrix order
  /// like `groups`, so the series artifact is byte-stable too.
  std::vector<SeriesGroupSummary> series_groups;

  /// Wall-clock throughput (non-deterministic; table output only).
  double wall_seconds = 0.0;
  std::size_t threads = 1;
  std::size_t jobs_simulated = 0;
  [[nodiscard]] double cells_per_second() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(cells.size()) / wall_seconds
               : 0.0;
  }

  [[nodiscard]] std::size_t failed_cells() const noexcept;
  [[nodiscard]] std::size_t timed_out_cells() const noexcept;
  /// True when every cell survived (the common case; sinks render the
  /// exact pre-fault-tolerance byte format for it).
  [[nodiscard]] bool complete() const noexcept {
    return failed_cells() == 0 && timed_out_cells() == 0;
  }
};

struct RunnerOptions {
  /// Worker threads for the cell fan-out; 0 = hardware_concurrency,
  /// 1 = run serially on the caller.
  std::size_t threads = 0;
  /// Progress hook, invoked per finished cell in completion order under
  /// an internal mutex (callbacks need no locking of their own). Cells
  /// replayed from a journal are not re-announced; `done` starts past
  /// them.
  std::function<void(const CellResult&, std::size_t done, std::size_t total)>
      on_cell;
  /// Abort the campaign on the first cell that still fails after its
  /// retries (pre-PR-7 behavior). Timed-out cells abort too. Default is
  /// graceful degradation: record the loss, run everything else.
  bool strict = false;
  /// Extra run_once attempts per failed cell (same cell seed — a cell is
  /// a pure function of it, so retries only help transient faults).
  /// Timed-out cells are never retried: the budget is already spent.
  unsigned retries = 0;
  /// Per-cell wall-clock budget in seconds (0 = no watchdog), enforced
  /// cooperatively via util::CancelToken at kernel batch-cycle
  /// boundaries and per GA generation.
  double cell_timeout = 0.0;
  /// Journal path for checkpointing (empty = no journal). Without
  /// `resume` an existing file is truncated.
  std::string checkpoint;
  /// Replay `checkpoint` and skip the cells it already records. Requires
  /// `checkpoint`; throws if the journal belongs to a different
  /// campaign/seed or records a mismatching cell seed.
  bool resume = false;
  /// Sample cadence (simulated seconds) for a per-cell TimeSeriesProbe;
  /// 0 disables telemetry (the default — the kernel keeps its
  /// null-observer fast path). The probe is observation-only: cell
  /// metrics stay bit-identical with it attached.
  double timeseries_interval = 0.0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(RunnerOptions options = {});

  /// Run the full matrix and aggregate. Throws std::invalid_argument on
  /// an invalid spec; exceptions from cells propagate.
  CampaignResult run(const CampaignSpec& spec);

 private:
  RunnerOptions options_;
};

}  // namespace gridsched::exp::campaign
