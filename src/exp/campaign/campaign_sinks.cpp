#include "exp/campaign/campaign_sinks.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "obs/timeseries.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace gridsched::exp::campaign {

namespace {

std::string format_mean_ci(const util::Summary& summary) {
  char buffer[64];
  if (summary.count < 2) {
    std::snprintf(buffer, sizeof buffer, "%.6g", summary.mean);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.6g ±%.3g", summary.mean,
                  summary.ci95);
  }
  return buffer;
}

std::string hex_seed(std::uint64_t seed) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(seed));
  return buffer;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create file: " + path);
  out << content;
  if (!out.good()) throw std::runtime_error("failed writing file: " + path);
}

}  // namespace

std::string render_table(const CampaignResult& result) {
  std::vector<std::string> headers = {"scenario", "policy", "cells"};
  const std::vector<const MetricDef*> metrics = resolve_metrics(result.spec);
  for (const MetricDef* def : metrics) {
    headers.emplace_back(std::string(def->key) + " (mean ±95% CI)");
  }
  util::Table table(std::move(headers));
  for (const GroupSummary& group : result.groups) {
    // Degraded groups show surviving/expected ("2/3") so a reduced n is
    // visible right in the grid; clean groups keep the plain count.
    std::string cells_text = std::to_string(group.cells);
    if (group.degraded()) {
      cells_text += '/';
      cells_text += std::to_string(group.expected);
    }
    table.row().cell(group.scenario).cell(group.policy).cell(cells_text);
    for (const MetricSummary& metric : group.metrics) {
      table.cell(format_mean_ci(metric.summary));
    }
  }
  std::ostringstream out;
  out << table.str();
  char footer[160];
  std::snprintf(footer, sizeof footer,
                "%zu cells (%zu jobs) in %.2f s on %zu threads — %.1f "
                "cells/s\n",
                result.cells.size(), result.jobs_simulated,
                result.wall_seconds, result.threads,
                result.cells_per_second());
  out << footer;
  if (!result.complete()) {
    char degraded[160];
    std::snprintf(degraded, sizeof degraded,
                  "DEGRADED: %zu cell(s) failed, %zu timed out — means "
                  "cover surviving replications only\n",
                  result.failed_cells(), result.timed_out_cells());
    out << degraded;
  }
  return out.str();
}

std::string render_csv(const CampaignResult& result) {
  util::Table table(
      {"scenario", "policy", "metric", "count", "mean", "stddev", "ci95"});
  for (const GroupSummary& group : result.groups) {
    for (const MetricSummary& metric : group.metrics) {
      table.row()
          .cell(group.scenario)
          .cell(group.policy)
          .cell(metric.key)
          .cell(metric.summary.count)
          .cell(metric.summary.mean, 9)
          .cell(metric.summary.stddev, 9)
          .cell(metric.summary.ci95, 9);
    }
  }
  return table.csv();
}

std::string render_json(const CampaignResult& result) {
  using util::json::number;
  using util::json::quote;
  const std::vector<const MetricDef*> metrics = resolve_metrics(result.spec);

  std::ostringstream out;
  out << "{\n";
  out << "  \"campaign\": " << quote(result.spec.name) << ",\n";
  // uint64 seeds exceed double precision; emit exact integer text (spec
  // seed) / hex strings (cell seeds) rather than rounding through number().
  out << "  \"seed\": " << result.spec.seed << ",\n";
  out << "  \"replications\": " << result.spec.replications << ",\n";

  out << "  \"scenarios\": [";
  for (std::size_t s = 0; s < result.spec.scenarios.size(); ++s) {
    out << (s ? ", " : "") << quote(result.spec.scenarios[s].display());
  }
  out << "],\n";
  out << "  \"policies\": [";
  for (std::size_t p = 0; p < result.spec.policies.size(); ++p) {
    out << (p ? ", " : "") << quote(result.spec.policies[p].display());
  }
  out << "],\n";
  out << "  \"metrics\": [";
  bool first = true;
  for (const MetricDef* def : metrics) {
    if (!def->deterministic) continue;  // stability contract
    out << (first ? "" : ", ") << quote(def->key);
    first = false;
  }
  out << "],\n";

  out << "  \"groups\": [\n";
  for (std::size_t g = 0; g < result.groups.size(); ++g) {
    const GroupSummary& group = result.groups[g];
    out << "    {\n";
    out << "      \"scenario\": " << quote(group.scenario) << ",\n";
    out << "      \"policy\": " << quote(group.policy) << ",\n";
    out << "      \"cells\": " << group.cells << ",\n";
    // Degradation fields are conditional so clean campaigns stay
    // byte-identical to pre-fault-tolerance artifacts.
    if (group.degraded()) {
      out << "      \"expected\": " << group.expected << ",\n";
      out << "      \"failed\": " << group.failed << ",\n";
      out << "      \"timed_out\": " << group.timed_out << ",\n";
    }
    out << "      \"metrics\": {";
    first = true;
    for (const MetricSummary& metric : group.metrics) {
      if (!metric.deterministic) continue;
      out << (first ? "\n" : ",\n");
      first = false;
      out << "        " << quote(metric.key) << ": {\"count\": "
          << metric.summary.count << ", \"mean\": "
          << number(metric.summary.mean) << ", \"stddev\": "
          << number(metric.summary.stddev) << ", \"ci95\": "
          << number(metric.summary.ci95) << "}";
    }
    out << (first ? "" : "\n      ") << "}\n";
    out << "    }" << (g + 1 < result.groups.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cell = result.cells[i];
    out << "    {\"scenario\": "
        << quote(result.spec.scenarios[cell.cell.scenario].display())
        << ", \"policy\": "
        << quote(result.spec.policies[cell.cell.policy].display())
        << ", \"replication\": " << cell.cell.replication
        << ", \"seed\": " << quote(hex_seed(cell.cell.seed));
    if (cell.status == CellStatus::kOk) {
      for (const MetricDef* def : metrics) {
        if (!def->deterministic) continue;
        out << ", " << quote(def->key) << ": "
            << number(def->value(cell.metrics));
      }
    } else {
      // Lost cells carry their status and error instead of metric values
      // (which would be meaningless defaults).
      out << ", \"status\": " << quote(status_name(cell.status))
          << ", \"error\": " << quote(cell.error);
    }
    out << "}" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string render_profile(const CampaignResult& result) {
  using util::json::number;
  using util::json::quote;

  std::ostringstream out;
  out << "{\n";
  out << "  \"campaign\": " << quote(result.spec.name) << ",\n";
  out << "  \"threads\": " << result.threads << ",\n";
  out << "  \"wall_seconds\": " << number(result.wall_seconds) << ",\n";
  out << "  \"cells_per_second\": " << number(result.cells_per_second())
      << ",\n";
  out << "  \"jobs_simulated\": " << result.jobs_simulated << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cell = result.cells[i];
    out << "    {\"scenario\": "
        << quote(result.spec.scenarios[cell.cell.scenario].display())
        << ", \"policy\": "
        << quote(result.spec.policies[cell.cell.policy].display())
        << ", \"replication\": " << cell.cell.replication
        << ", \"wall_seconds\": " << number(cell.wall_seconds)
        << ", \"scheduler_seconds\": "
        << number(cell.metrics.scheduler_seconds)
        << ", \"batch_invocations\": " << cell.metrics.batch_invocations;
    // Retry/status accounting, conditional so clean single-attempt runs
    // keep the pre-fault-tolerance sidecar bytes.
    if (cell.attempts != 1) out << ", \"attempts\": " << cell.attempts;
    if (cell.status != CellStatus::kOk) {
      out << ", \"status\": " << quote(status_name(cell.status));
    }
    out << "}" << (i + 1 < result.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

std::string timeseries_cell_filename(const CampaignResult& result,
                                     const CellResult& cell) {
  const auto sanitize = [](const std::string& label) {
    std::string out;
    out.reserve(label.size());
    for (const char c : label) {
      const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                        c == '-';
      out += keep ? c : '-';
    }
    return out;
  };
  return sanitize(result.spec.scenarios[cell.cell.scenario].display()) +
         "__" + sanitize(result.spec.policies[cell.cell.policy].display()) +
         "__rep" + std::to_string(cell.cell.replication) + ".json";
}

std::string render_series_aggregate_json(const CampaignResult& result) {
  using util::json::number;
  using util::json::quote;

  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"gridsched-timeseries-aggregate-v1\",\n";
  out << "  \"campaign\": " << quote(result.spec.name) << ",\n";
  out << "  \"seed\": " << result.spec.seed << ",\n";
  out << "  \"groups\": [\n";
  for (std::size_t g = 0; g < result.series_groups.size(); ++g) {
    const SeriesGroupSummary& group = result.series_groups[g];
    out << "    {\n";
    out << "      \"scenario\": " << quote(group.scenario) << ",\n";
    out << "      \"policy\": " << quote(group.policy) << ",\n";
    out << "      \"interval\": " << number(group.interval) << ",\n";
    out << "      \"replications\": " << group.replications << ",\n";
    out << "      \"t\": [";
    for (std::size_t i = 0; i < group.t.size(); ++i) {
      out << (i ? ", " : "") << number(group.t[i]);
    }
    out << "],\n";
    out << "      \"series\": {";
    for (std::size_t c = 0; c < group.columns.size(); ++c) {
      const SeriesColumn& column = group.columns[c];
      out << (c ? ",\n" : "\n");
      out << "        " << quote(column.key) << ": {\"mean\": [";
      for (std::size_t i = 0; i < column.samples.size(); ++i) {
        out << (i ? ", " : "") << number(column.samples[i].mean);
      }
      out << "], \"ci95\": [";
      for (std::size_t i = 0; i < column.samples.size(); ++i) {
        out << (i ? ", " : "") << number(column.samples[i].ci95);
      }
      out << "], \"count\": [";
      for (std::size_t i = 0; i < column.samples.size(); ++i) {
        out << (i ? ", " : "") << column.samples[i].count;
      }
      out << "]}";
    }
    out << (group.columns.empty() ? "" : "\n      ") << "}\n";
    out << "    }" << (g + 1 < result.series_groups.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

void write_timeseries_dir(const CampaignResult& result,
                          const std::string& dir) {
  std::error_code error;
  std::filesystem::create_directories(dir, error);
  if (error) {
    throw std::runtime_error("cannot create timeseries directory " + dir +
                             ": " + error.message());
  }
  for (const CellResult& cell : result.cells) {
    if (cell.series == nullptr) continue;
    obs::write_timeseries_file(
        dir + "/" + timeseries_cell_filename(result, cell),
        obs::render_timeseries_json(*cell.series));
  }
  write_file(dir + "/aggregate.json",
             render_series_aggregate_json(result));
}

void TableSink::consume(const CampaignResult& result) {
  out_ << render_table(result);
  out_.flush();
}

void CsvFileSink::consume(const CampaignResult& result) {
  write_file(path_, render_csv(result));
}

void JsonFileSink::consume(const CampaignResult& result) {
  write_file(path_, render_json(result));
}

void ProfileFileSink::consume(const CampaignResult& result) {
  write_file(path_, render_profile(result));
}

void emit(const CampaignResult& result,
          std::span<const std::unique_ptr<Sink>> sinks) {
  for (const auto& sink : sinks) sink->consume(result);
}

}  // namespace gridsched::exp::campaign
