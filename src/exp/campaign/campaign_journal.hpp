// Crash-safe campaign checkpointing: an append-only JSONL journal with
// one fsync'd record per *finished* cell (ok, failed or timed out), so a
// campaign killed mid-flight can --resume and skip exactly the work that
// already completed. Records are keyed by {scenario label, policy label,
// replication, seed} — never by axis indices — so a journal stays valid
// when the spec file reorders an axis, and a seed mismatch on a matching
// key is detected as a stale journal instead of silently merging results
// from a different spec.
//
// Determinism contract: records carry only deterministic values (the
// metric_defs() deterministic set plus n_jobs / batch_invocations);
// wall-clock never enters the journal, so an aggregate rebuilt from a
// resumed run is byte-identical to an uninterrupted one at any thread
// count.
//
// Crash tolerance: the writer appends whole lines and fsyncs each one; a
// crash can only truncate the *final* line. The loader therefore
// tolerates a malformed last line (dropped, its cell reruns) but treats
// malformed interior lines as corruption and throws.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "exp/campaign/campaign_aggregator.hpp"
#include "metrics/metrics.hpp"

namespace gridsched::exp::campaign {

/// One journaled cell outcome. `metrics` holds only the journaled fields
/// (deterministic metric sources, n_jobs, batch_invocations); everything
/// else is default-initialized on load.
struct JournalRecord {
  std::string scenario;  ///< scenario display label
  std::string policy;    ///< policy display label
  std::size_t replication = 0;
  std::uint64_t seed = 0;
  CellStatus status = CellStatus::kOk;
  unsigned attempts = 1;
  std::string error;  ///< empty when status == kOk
  metrics::RunMetrics metrics;

  /// Resume key: labels + replication (seed is checked separately so a
  /// stale journal fails loudly instead of matching nothing).
  [[nodiscard]] std::string key() const;
};

/// Serialize one record as a single JSON line (no trailing newline).
/// Doubles use util::json::number, so values round-trip bit-exactly.
std::string encode_record(const JournalRecord& record);

/// Parse one journal line back into a record. Throws std::runtime_error
/// on malformed input or unknown metric keys.
JournalRecord decode_record(const std::string& line);

/// Append-only fsync-per-record writer. Thread-safe: append() serializes
/// under an internal mutex, and each record hits the disk (write +
/// fsync) before append() returns, so a SIGKILL loses at most the record
/// being written.
class JournalWriter {
 public:
  /// Opens `path` for appending (resume) or truncates it (fresh run) and
  /// writes the header line when the file starts empty. Throws
  /// std::runtime_error on I/O errors.
  JournalWriter(const std::string& path, const std::string& campaign,
                std::uint64_t spec_seed, bool append);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void append(const JournalRecord& record);

 private:
  void write_line(const std::string& line);

  std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
};

struct JournalContents {
  std::string campaign;
  std::uint64_t spec_seed = 0;
  std::vector<JournalRecord> records;
  /// True when the final line was malformed and dropped (interrupted
  /// append); interior corruption throws instead.
  bool truncated_tail = false;
};

/// Load a journal for --resume. Validates the header (journal format
/// name, campaign name, spec seed) against the spec being resumed;
/// throws std::runtime_error on mismatch or interior corruption. A
/// missing file is an error (resume without a checkpoint is a typo);
/// an empty file is not.
JournalContents load_journal(const std::string& path,
                             const std::string& campaign,
                             std::uint64_t spec_seed);

}  // namespace gridsched::exp::campaign
