#include "exp/campaign/campaign_spec.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "exp/campaign/campaign_aggregator.hpp"
#include "exp/scenario_registry.hpp"
#include "sched/registry.hpp"

namespace gridsched::exp::campaign {

namespace {

using util::json::Value;

const std::vector<std::string>& mode_names() {
  static const std::vector<std::string> names = {"secure", "f-risky", "risky"};
  return names;
}

security::RiskPolicy policy_for(const PolicyRef& ref) {
  if (ref.mode == "secure") return security::RiskPolicy::secure();
  if (ref.mode == "risky") return security::RiskPolicy::risky();
  return security::RiskPolicy::f_risky(ref.f);
}

[[noreturn]] void spec_error(const std::string& what) {
  throw std::invalid_argument("campaign spec: " + what);
}

/// Strict key check — the shared util::json helper — so spec typos fail
/// loudly instead of silently running the defaults ("generatoins": 50
/// would otherwise burn a campaign).
using util::json::check_keys;

ScenarioRef parse_scenario_ref(const Value& entry) {
  ScenarioRef ref;
  if (entry.is_string()) {
    ref.name = entry.as_string();
    return ref;
  }
  check_keys(entry, {"name", "label", "jobs", "batch_interval"},
             "scenario entry");
  ref.name = entry.at("name").as_string();
  if (const Value* label = entry.find("label")) ref.label = label->as_string();
  if (const Value* jobs = entry.find("jobs")) {
    ref.n_jobs = static_cast<std::size_t>(jobs->as_uint());
  }
  if (const Value* interval = entry.find("batch_interval")) {
    ref.batch_interval = interval->as_number();
    if (ref.batch_interval <= 0.0) {
      spec_error("batch_interval must be > 0 for scenario " + ref.name);
    }
  }
  return ref;
}

PolicyRef parse_policy_ref(const Value& entry) {
  PolicyRef ref;
  if (entry.is_string()) {
    ref.algo = entry.as_string();
    return ref;
  }
  check_keys(entry, {"algo", "mode", "f", "label", "ga"}, "policy entry");
  ref.algo = entry.at("algo").as_string();
  // No-effect keys are errors, not silent defaults: the GAs ignore the
  // heuristic risk mode, and heuristics ignore the GA config.
  const bool is_ga = ref.algo == "stga" || ref.algo == "ga";
  if (is_ga && (entry.find("mode") != nullptr || entry.find("f") != nullptr)) {
    spec_error("\"mode\"/\"f\" have no effect on policy algo \"" + ref.algo +
               "\" (the GA handles risk internally)");
  }
  if (!is_ga && entry.find("ga") != nullptr) {
    spec_error("\"ga\" config only applies to the stga/ga algos, not \"" +
               ref.algo + "\"");
  }
  if (const Value* mode = entry.find("mode")) ref.mode = mode->as_string();
  if (const Value* f = entry.find("f")) ref.f = f->as_number();
  if (const Value* label = entry.find("label")) ref.label = label->as_string();
  if (const Value* ga = entry.find("ga")) {
    check_keys(*ga,
               {"population", "generations", "crossover_prob", "mutation_prob",
                "elite_count", "table_capacity", "similarity_threshold",
                "history_seed_fraction"},
               "policy \"ga\" config");
    if (const Value* v = ga->find("population")) {
      ref.stga.ga.population = static_cast<std::size_t>(v->as_uint());
    }
    if (const Value* v = ga->find("generations")) {
      ref.stga.ga.generations = static_cast<std::size_t>(v->as_uint());
    }
    if (const Value* v = ga->find("crossover_prob")) {
      ref.stga.ga.crossover_prob = v->as_number();
    }
    if (const Value* v = ga->find("mutation_prob")) {
      ref.stga.ga.mutation_prob = v->as_number();
    }
    if (const Value* v = ga->find("elite_count")) {
      ref.stga.ga.elite_count = static_cast<std::size_t>(v->as_uint());
    }
    if (const Value* v = ga->find("table_capacity")) {
      ref.stga.table_capacity = static_cast<std::size_t>(v->as_uint());
    }
    if (const Value* v = ga->find("similarity_threshold")) {
      ref.stga.similarity_threshold = v->as_number();
    }
    if (const Value* v = ga->find("history_seed_fraction")) {
      ref.stga.history_seed_fraction = v->as_number();
    }
  }
  return ref;
}

FaultPlan parse_fault_plan(const Value& entry) {
  check_keys(entry,
             {"throw_prob", "delay_prob", "delay_seconds", "scenario",
              "policy"},
             "\"faults\" plan");
  FaultPlan plan;
  if (const Value* v = entry.find("throw_prob")) {
    plan.throw_prob = v->as_number();
  }
  if (const Value* v = entry.find("delay_prob")) {
    plan.delay_prob = v->as_number();
  }
  if (const Value* v = entry.find("delay_seconds")) {
    plan.delay_seconds = v->as_number();
  }
  if (const Value* v = entry.find("scenario")) {
    plan.scenario = v->as_string();
  }
  if (const Value* v = entry.find("policy")) plan.policy = v->as_string();
  return plan;
}

}  // namespace

Scenario ScenarioRef::resolve() const {
  Scenario scenario =
      custom.has_value() ? *custom : make_scenario(name, 0);
  override_jobs(scenario, n_jobs);
  if (batch_interval > 0.0) scenario.engine.batch_interval = batch_interval;
  return scenario;
}

AlgorithmSpec PolicyRef::resolve() const {
  if (algo == "stga") return stga_spec(stga);
  if (algo == "ga") return classic_ga_spec(stga);
  return heuristic_spec(algo, policy_for(*this));
}

std::string PolicyRef::display() const {
  if (!label.empty()) return label;
  if (algo == "stga" || algo == "ga") return algo;
  return algo + "-" + mode;
}

void CampaignSpec::validate() const {
  if (scenarios.empty()) spec_error("no scenarios");
  if (policies.empty()) spec_error("no policies");
  if (replications == 0) spec_error("replications must be >= 1");

  const std::vector<std::string> scenario_names = exp::scenario_names();
  std::set<std::string> seen_scenarios;
  for (const ScenarioRef& ref : scenarios) {
    if (!ref.custom.has_value() &&
        std::find(scenario_names.begin(), scenario_names.end(), ref.name) ==
            scenario_names.end()) {
      spec_error("unknown scenario \"" + ref.name + "\" (run `gridsched_cli " +
                 "scenarios` for the registry)");
    }
    if (!seen_scenarios.insert(ref.display()).second) {
      spec_error("duplicate scenario label \"" + ref.display() +
                 "\" (set \"label\" to disambiguate)");
    }
  }

  const std::vector<std::string> heuristics = sched::heuristic_names();
  std::set<std::string> seen_policies;
  for (const PolicyRef& ref : policies) {
    if (ref.algo != "stga" && ref.algo != "ga" &&
        std::find(heuristics.begin(), heuristics.end(), ref.algo) ==
            heuristics.end()) {
      std::string known = "stga ga";
      for (const std::string& name : heuristics) known += " " + name;
      spec_error("unknown policy algo \"" + ref.algo + "\" (valid: " + known +
                 ")");
    }
    if (std::find(mode_names().begin(), mode_names().end(), ref.mode) ==
        mode_names().end()) {
      spec_error("unknown mode \"" + ref.mode +
                 "\" (valid: secure f-risky risky)");
    }
    if (ref.f < 0.0 || ref.f > 1.0) spec_error("f must be in [0, 1]");
    if (!seen_policies.insert(ref.display()).second) {
      spec_error("duplicate policy label \"" + ref.display() +
                 "\" (set \"label\" to disambiguate)");
    }
  }

  for (const std::string& key : metrics) {
    if (find_metric(key) == nullptr) {
      std::string message = "unknown metric \"";
      message += key;
      message += "\" (valid:";
      for (const MetricDef& def : metric_defs()) {
        message += ' ';
        message += def.key;
      }
      spec_error(message + ")");
    }
  }

  faults.validate();
  // Fault filters must name real axis labels: a typo'd filter would
  // silently inject nothing and the chaos run would prove nothing.
  if (!faults.scenario.empty() &&
      seen_scenarios.find(faults.scenario) == seen_scenarios.end()) {
    spec_error("faults.scenario \"" + faults.scenario +
               "\" names no scenario label in this spec");
  }
  if (!faults.policy.empty() &&
      seen_policies.find(faults.policy) == seen_policies.end()) {
    spec_error("faults.policy \"" + faults.policy +
               "\" names no policy label in this spec");
  }
}

CampaignSpec parse_spec(const Value& doc) {
  if (!doc.is_object()) spec_error("top-level value must be an object");
  check_keys(doc,
             {"name", "seed", "replications", "metrics", "scenarios",
              "policies", "faults"},
             "campaign");
  CampaignSpec spec;
  if (const Value* name = doc.find("name")) spec.name = name->as_string();
  if (const Value* seed = doc.find("seed")) spec.seed = seed->as_uint();
  if (const Value* reps = doc.find("replications")) {
    spec.replications = static_cast<std::size_t>(reps->as_uint());
  }
  if (const Value* metrics = doc.find("metrics")) {
    for (const Value& key : metrics->items()) {
      spec.metrics.push_back(key.as_string());
    }
  }
  for (const Value& entry : doc.at("scenarios").items()) {
    spec.scenarios.push_back(parse_scenario_ref(entry));
  }
  for (const Value& entry : doc.at("policies").items()) {
    spec.policies.push_back(parse_policy_ref(entry));
  }
  if (const Value* faults = doc.find("faults")) {
    spec.faults = parse_fault_plan(*faults);
  }
  spec.validate();
  return spec;
}

CampaignSpec parse_spec_text(std::string_view text) {
  return parse_spec(util::json::parse(text));
}

CampaignSpec load_spec(const std::string& path) {
  return parse_spec(util::json::parse_file(path));
}

}  // namespace gridsched::exp::campaign
