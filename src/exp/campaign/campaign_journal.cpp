#include "exp/campaign/campaign_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace gridsched::exp::campaign {

namespace {

constexpr std::string_view kJournalFormat = "gridsched-campaign-journal-v1";

std::string hex_seed(std::uint64_t seed) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "0x%016llx",
                static_cast<unsigned long long>(seed));
  return buffer;
}

std::uint64_t parse_hex_seed(const std::string& text) {
  if (text.size() < 3 || text[0] != '0' || text[1] != 'x') {
    throw std::runtime_error("campaign journal: bad seed \"" + text + "\"");
  }
  return std::strtoull(text.c_str() + 2, nullptr, 16);
}

/// The deterministic metric values a record persists, applied back onto a
/// RunMetrics on load. Kept next to decode so adding a metric def without
/// a setter fails the journal round-trip test, not silently.
void apply_metric(metrics::RunMetrics& m, const std::string& key,
                  double value) {
  const auto count = [&](std::size_t& field) {
    field = static_cast<std::size_t>(value);
  };
  if (key == "makespan") {
    m.makespan = value;
  } else if (key == "avg_response") {
    m.avg_response = value;
  } else if (key == "slowdown") {
    m.slowdown_ratio = value;
  } else if (key == "n_risk") {
    count(m.n_risk);
  } else if (key == "n_fail") {
    count(m.n_fail);
  } else if (key == "avg_utilization") {
    m.avg_utilization = value;
  } else if (key == "failure_events") {
    count(m.failure_events);
  } else if (key == "risky_attempts") {
    count(m.risky_attempts);
  } else if (key == "released_nodes") {
    count(m.released_nodes);
  } else if (key == "unreleased_nodes") {
    count(m.unreleased_nodes);
  } else if (key == "site_down_events") {
    count(m.site_down_events);
  } else if (key == "site_up_events") {
    count(m.site_up_events);
  } else if (key == "interruptions") {
    count(m.interruptions);
  } else if (key == "n_interrupted") {
    count(m.n_interrupted);
  } else if (key == "churn_released_nodes") {
    count(m.churn_released_nodes);
  } else if (key == "churn_unreleased_nodes") {
    count(m.churn_unreleased_nodes);
  } else {
    throw std::runtime_error("campaign journal: unknown metric \"" + key +
                             "\" (journal from a newer build?)");
  }
}

}  // namespace

std::string JournalRecord::key() const {
  // \x1f (unit separator) cannot appear in display labels read from JSON
  // specs without deliberate effort, so the composite key is unambiguous.
  return scenario + '\x1f' + policy + '\x1f' + std::to_string(replication);
}

std::string encode_record(const JournalRecord& record) {
  using util::json::number;
  using util::json::quote;
  std::ostringstream out;
  out << "{\"scenario\": " << quote(record.scenario)
      << ", \"policy\": " << quote(record.policy)
      << ", \"replication\": " << record.replication
      << ", \"seed\": " << quote(hex_seed(record.seed))
      << ", \"status\": " << quote(status_name(record.status))
      << ", \"attempts\": " << record.attempts;
  if (record.status == CellStatus::kOk) {
    out << ", \"n_jobs\": " << record.metrics.n_jobs
        << ", \"batch_invocations\": " << record.metrics.batch_invocations
        << ", \"metrics\": {";
    bool first = true;
    for (const MetricDef& def : metric_defs()) {
      if (!def.deterministic) continue;  // wall-clock never enters records
      out << (first ? "" : ", ") << quote(def.key) << ": "
          << number(def.value(record.metrics));
      first = false;
    }
    out << "}";
  } else {
    out << ", \"error\": " << quote(record.error);
  }
  out << "}";
  return out.str();
}

JournalRecord decode_record(const std::string& line) {
  const util::json::Value doc = util::json::parse(line);
  // Strict like the spec parser: a key this build doesn't know means the
  // journal came from a newer build — refuse rather than drop data.
  util::json::check_keys(doc,
                         {"scenario", "policy", "replication", "seed",
                          "status", "attempts", "n_jobs",
                          "batch_invocations", "metrics", "error"},
                         "journal record");
  JournalRecord record;
  record.scenario = doc.at("scenario").as_string();
  record.policy = doc.at("policy").as_string();
  record.replication = static_cast<std::size_t>(doc.at("replication")
                                                    .as_uint());
  record.seed = parse_hex_seed(doc.at("seed").as_string());
  record.status = parse_status(doc.at("status").as_string());
  record.attempts = static_cast<unsigned>(doc.at("attempts").as_uint());
  if (record.status == CellStatus::kOk) {
    record.metrics.n_jobs =
        static_cast<std::size_t>(doc.at("n_jobs").as_uint());
    record.metrics.batch_invocations =
        static_cast<std::size_t>(doc.at("batch_invocations").as_uint());
    for (const auto& [key, value] : doc.at("metrics").members()) {
      apply_metric(record.metrics, key, value.as_number());
    }
  } else {
    record.error = doc.at("error").as_string();
  }
  return record;
}

JournalWriter::JournalWriter(const std::string& path,
                             const std::string& campaign,
                             std::uint64_t spec_seed, bool append)
    : path_(path) {
  int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
  flags |= append ? O_APPEND : O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("campaign journal: cannot open " + path + ": " +
                             std::strerror(errno));
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    std::ostringstream header;
    header << "{\"journal\": " << util::json::quote(kJournalFormat)
           << ", \"campaign\": " << util::json::quote(campaign)
           << ", \"spec_seed\": " << spec_seed << "}";
    write_line(header.str());
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(const JournalRecord& record) {
  write_line(encode_record(record));
}

void JournalWriter::write_line(const std::string& line) {
  const std::lock_guard lock(mutex_);
  std::string data = line;
  data.push_back('\n');
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd_, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("campaign journal: write failed for " +
                               path_ + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  // One fsync per record: a finished cell survives SIGKILL the moment
  // append() returns. Campaign cells run for seconds, so the sync cost is
  // noise next to the work it makes durable.
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("campaign journal: fsync failed for " + path_ +
                             ": " + std::strerror(errno));
  }
}

JournalContents load_journal(const std::string& path,
                             const std::string& campaign,
                             std::uint64_t spec_seed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(
        "campaign journal: cannot open " + path +
        " for --resume (use --checkpoint without --resume to start fresh)");
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  JournalContents contents;
  if (lines.empty()) return contents;  // created, then killed: no records

  const auto tail_or_throw = [&](std::size_t index,
                                 const std::string& what) {
    // Only the final line can be damaged by a crash (appends are
    // sequential and fsync'd); anything earlier is real corruption.
    if (index + 1 == lines.size()) {
      contents.truncated_tail = true;
      return;
    }
    throw std::runtime_error("campaign journal: " + path + " line " +
                             std::to_string(index + 1) + ": " + what);
  };

  // Header.
  try {
    const util::json::Value header = util::json::parse(lines[0]);
    util::json::check_keys(header, {"journal", "campaign", "spec_seed"},
                           "journal header");
    if (header.at("journal").as_string() != kJournalFormat) {
      throw std::runtime_error("not a " + std::string(kJournalFormat) +
                               " file");
    }
    contents.campaign = header.at("campaign").as_string();
    contents.spec_seed = header.at("spec_seed").as_uint();
  } catch (const std::exception& e) {
    tail_or_throw(0, e.what());
    return contents;  // lone truncated header: an empty journal
  }
  if (contents.campaign != campaign || contents.spec_seed != spec_seed) {
    throw std::runtime_error(
        "campaign journal: " + path + " belongs to campaign \"" +
        contents.campaign + "\" (seed " + std::to_string(contents.spec_seed) +
        "), not \"" + campaign + "\" (seed " + std::to_string(spec_seed) +
        ") — refusing to resume from a different spec");
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    try {
      contents.records.push_back(decode_record(lines[i]));
    } catch (const std::exception& e) {
      tail_or_throw(i, e.what());
    }
  }
  return contents;
}

}  // namespace gridsched::exp::campaign
