#include "exp/campaign/campaign_runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "exp/runner.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gridsched::exp::campaign {

std::uint64_t cell_seed(const CampaignSpec& spec, std::size_t scenario_index,
                        std::size_t policy_index, std::size_t replication) {
  return util::SeedMix(spec.seed)
      .mix(spec.scenarios[scenario_index].display())
      .mix(spec.policies[policy_index].display())
      .mix(static_cast<std::uint64_t>(replication))
      .seed();
}

std::vector<Cell> expand(const CampaignSpec& spec) {
  spec.validate();
  std::vector<Cell> cells;
  cells.reserve(spec.scenarios.size() * spec.policies.size() *
                spec.replications);
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      for (std::size_t r = 0; r < spec.replications; ++r) {
        Cell cell;
        cell.scenario = s;
        cell.policy = p;
        cell.replication = r;
        cell.seed = cell_seed(spec, s, p, r);
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_(std::move(options)) {}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) {
  CampaignResult result;
  result.spec = spec;
  const std::vector<Cell> cells = expand(spec);  // validates

  // Resolve both axes once up front: registry lookups throw here (before
  // any simulation) and the factories are shared by all cells.
  std::vector<Scenario> scenarios;
  scenarios.reserve(spec.scenarios.size());
  for (const ScenarioRef& ref : spec.scenarios) {
    scenarios.push_back(ref.resolve());
  }
  std::vector<AlgorithmSpec> algorithms;
  algorithms.reserve(spec.policies.size());
  for (const PolicyRef& ref : spec.policies) {
    algorithms.push_back(ref.resolve());
  }

  result.cells.resize(cells.size());
  std::mutex progress_mutex;
  std::size_t done = 0;
  auto run_cell = [&](std::size_t i) {
    CellResult& out = result.cells[i];
    out.cell = cells[i];
    const auto cell_start = std::chrono::steady_clock::now();
    // GA fitness stays serial inside each cell: the pool's workers are
    // busy running cells and must not block on nested waits — and serial
    // evaluation keeps the cell a pure function of its seed.
    try {
      out.metrics = run_once(scenarios[cells[i].scenario],
                             algorithms[cells[i].policy], cells[i].seed,
                             /*ga_pool=*/nullptr);
    } catch (const std::exception& e) {
      // The pool rethrows worker exceptions context-free; label the
      // failing cell here so a campaign abort names the exact
      // {scenario, policy, replication} that died.
      throw std::runtime_error(
          "campaign cell {scenario=" +
          spec.scenarios[cells[i].scenario].display() +
          ", policy=" + spec.policies[cells[i].policy].display() +
          ", replication=" + std::to_string(cells[i].replication) +
          ", seed=" + std::to_string(cells[i].seed) + "}: " + e.what());
    }
    out.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - cell_start)
                           .count();
    if (options_.on_cell) {
      const std::lock_guard lock(progress_mutex);
      options_.on_cell(out, ++done, cells.size());
    }
  };

  const auto start = std::chrono::steady_clock::now();
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, cells.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
    threads = 1;
  } else {
    util::ThreadPool pool(threads);
    // One chunk per cell: cell costs span orders of magnitude, so
    // anything coarser serialises the tail behind the slowest chunk.
    pool.parallel_for(cells.size(), run_cell, cells.size());
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.threads = threads;

  // Aggregate in matrix order — never completion order — so the summary
  // floats are bit-identical for any thread count.
  CampaignAggregator aggregator(result.spec);
  for (const CellResult& cell : result.cells) {
    aggregator.add(cell.cell.scenario, cell.cell.policy, cell.metrics);
    result.jobs_simulated += cell.metrics.n_jobs;
  }
  result.groups = aggregator.groups();
  return result;
}

}  // namespace gridsched::exp::campaign
