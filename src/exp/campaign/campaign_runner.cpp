#include "exp/campaign/campaign_runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "exp/campaign/campaign_journal.hpp"
#include "exp/fault_plan.hpp"
#include "exp/runner.hpp"
#include "obs/timeseries.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace gridsched::exp::campaign {

std::uint64_t cell_seed(const CampaignSpec& spec, std::size_t scenario_index,
                        std::size_t policy_index, std::size_t replication) {
  return util::SeedMix(spec.seed)
      .mix(spec.scenarios[scenario_index].display())
      .mix(spec.policies[policy_index].display())
      .mix(static_cast<std::uint64_t>(replication))
      .seed();
}

std::vector<Cell> expand(const CampaignSpec& spec) {
  spec.validate();
  std::vector<Cell> cells;
  cells.reserve(spec.scenarios.size() * spec.policies.size() *
                spec.replications);
  for (std::size_t s = 0; s < spec.scenarios.size(); ++s) {
    for (std::size_t p = 0; p < spec.policies.size(); ++p) {
      for (std::size_t r = 0; r < spec.replications; ++r) {
        Cell cell;
        cell.scenario = s;
        cell.policy = p;
        cell.replication = r;
        cell.seed = cell_seed(spec, s, p, r);
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

std::size_t CampaignResult::failed_cells() const noexcept {
  std::size_t n = 0;
  for (const CellResult& cell : cells) {
    if (cell.status == CellStatus::kFailed) ++n;
  }
  return n;
}

std::size_t CampaignResult::timed_out_cells() const noexcept {
  std::size_t n = 0;
  for (const CellResult& cell : cells) {
    if (cell.status == CellStatus::kTimedOut) ++n;
  }
  return n;
}

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_(std::move(options)) {}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) {
  if (options_.resume && options_.checkpoint.empty()) {
    throw std::invalid_argument(
        "campaign: --resume requires --checkpoint FILE");
  }

  CampaignResult result;
  result.spec = spec;
  const std::vector<Cell> cells = expand(spec);  // validates

  // Resolve both axes once up front: registry lookups throw here (before
  // any simulation) and the factories are shared by all cells.
  std::vector<Scenario> scenarios;
  scenarios.reserve(spec.scenarios.size());
  for (const ScenarioRef& ref : spec.scenarios) {
    scenarios.push_back(ref.resolve());
  }
  std::vector<AlgorithmSpec> algorithms;
  algorithms.reserve(spec.policies.size());
  for (const PolicyRef& ref : spec.policies) {
    algorithms.push_back(ref.resolve());
  }

  result.cells.resize(cells.size());
  std::vector<char> replayed(cells.size(), 0);
  std::size_t n_replayed = 0;

  if (options_.resume) {
    JournalContents journal =
        load_journal(options_.checkpoint, spec.name, spec.seed);
    std::unordered_map<std::string, const JournalRecord*> by_key;
    by_key.reserve(journal.records.size());
    for (const JournalRecord& record : journal.records) {
      by_key[record.key()] = &record;  // last write wins (retried resumes)
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      JournalRecord probe;
      probe.scenario = spec.scenarios[cells[i].scenario].display();
      probe.policy = spec.policies[cells[i].policy].display();
      probe.replication = cells[i].replication;
      const auto it = by_key.find(probe.key());
      if (it == by_key.end()) continue;
      const JournalRecord& record = *it->second;
      if (record.seed != cells[i].seed) {
        throw std::runtime_error(
            "campaign journal: recorded seed for {scenario=" +
            record.scenario + ", policy=" + record.policy +
            ", replication=" + std::to_string(record.replication) +
            "} does not match the spec — stale journal, refusing to "
            "resume");
      }
      CellResult& out = result.cells[i];
      out.cell = cells[i];
      out.status = record.status;
      out.error = record.error;
      out.attempts = record.attempts;
      out.metrics = record.metrics;
      replayed[i] = 1;
      ++n_replayed;
    }
  }

  std::unique_ptr<JournalWriter> writer;
  if (!options_.checkpoint.empty()) {
    writer = std::make_unique<JournalWriter>(options_.checkpoint, spec.name,
                                             spec.seed,
                                             /*append=*/options_.resume);
  }

  std::mutex progress_mutex;
  std::size_t done = n_replayed;
  auto run_cell = [&](std::size_t i) {
    if (replayed[i]) return;
    CellResult& out = result.cells[i];
    out.cell = cells[i];
    const std::string& scenario_label =
        spec.scenarios[cells[i].scenario].display();
    const std::string policy_label =
        spec.policies[cells[i].policy].display();
    // Cell timing reaches the --profile sidecar only, never the
    // byte-stable aggregate (ROADMAP "Campaign fault-tolerance").
    // NOLINTNEXTLINE(GS-R05): wall-clock is sidecar-only here
    const auto cell_start = std::chrono::steady_clock::now();
    // GA fitness stays serial inside each cell: the pool's workers are
    // busy running cells and must not block on nested waits — and serial
    // evaluation keeps the cell a pure function of its seed.
    for (unsigned attempt = 0;; ++attempt) {
      out.attempts = attempt + 1;
      // Fresh watchdog per attempt, armed at attempt start.
      util::CancelToken watchdog =
          options_.cell_timeout > 0.0
              ? util::CancelToken::with_deadline(options_.cell_timeout)
              : util::CancelToken();
      RunHooks hooks;
      hooks.cancel = options_.cell_timeout > 0.0 ? &watchdog : nullptr;
      // Telemetry probe: observation-only by the kernel observer
      // contract, so attaching it cannot change out.metrics. The series
      // is kept only for the attempt that produced the final status.
      std::unique_ptr<obs::TimeSeriesProbe> probe;
      if (options_.timeseries_interval > 0.0) {
        probe = std::make_unique<obs::TimeSeriesProbe>(
            options_.timeseries_interval);
        hooks.observer = probe.get();
      }
      try {
        maybe_inject(spec.faults, spec.seed, scenario_label, policy_label,
                     cells[i].replication, attempt);
        out.metrics = run_once(scenarios[cells[i].scenario],
                               algorithms[cells[i].policy], cells[i].seed,
                               /*ga_pool=*/nullptr, hooks);
        out.status = CellStatus::kOk;
        out.error.clear();
        if (probe != nullptr) {
          out.series =
              std::make_shared<const obs::TimeSeries>(probe->series());
        }
        break;
      } catch (const util::CancelledError& e) {
        // The budget is spent; a retry would spend it again on the same
        // deterministic hang. Surface timed_out and move on.
        out.status = CellStatus::kTimedOut;
        out.error = e.what();
        break;
      } catch (const std::exception& e) {
        out.status = CellStatus::kFailed;
        out.error = e.what();
        if (attempt < options_.retries) continue;
        break;
      }
    }
    out.wall_seconds = std::chrono::duration<double>(
                           // NOLINTNEXTLINE(GS-R05): sidecar-only
                           std::chrono::steady_clock::now() - cell_start)
                           .count();
    // Journal before any strict-mode throw: the finished work survives
    // the abort. Strict non-ok cells are NOT journaled — after the user
    // fixes the fault, --resume should re-run them.
    if (writer != nullptr &&
        (out.status == CellStatus::kOk || !options_.strict)) {
      JournalRecord record;
      record.scenario = scenario_label;
      record.policy = policy_label;
      record.replication = cells[i].replication;
      record.seed = cells[i].seed;
      record.status = out.status;
      record.attempts = out.attempts;
      record.error = out.error;
      record.metrics = out.metrics;
      writer->append(record);
    }
    if (options_.strict && out.status != CellStatus::kOk) {
      // The pool rethrows worker exceptions context-free; label the
      // failing cell here so a campaign abort names the exact
      // {scenario, policy, replication} that died.
      throw std::runtime_error(
          "campaign cell {scenario=" + scenario_label +
          ", policy=" + policy_label +
          ", replication=" + std::to_string(cells[i].replication) +
          ", seed=" + std::to_string(cells[i].seed) + "}: " + out.error);
    }
    if (options_.on_cell) {
      const std::lock_guard lock(progress_mutex);
      options_.on_cell(out, ++done, cells.size());
    }
  };

  // Campaign wall seconds feed the table footer and throughput logging
  // on stdout/stderr — render_json deliberately never serializes them.
  // NOLINTNEXTLINE(GS-R05): wall-clock is display-only here
  const auto start = std::chrono::steady_clock::now();
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, cells.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
    threads = 1;
  } else {
    util::ThreadPool pool(threads);
    // One chunk per cell: cell costs span orders of magnitude, so
    // anything coarser serialises the tail behind the slowest chunk.
    pool.parallel_for(cells.size(), run_cell, cells.size());
  }
  result.wall_seconds =
      // NOLINTNEXTLINE(GS-R05): wall-clock is display-only here
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.threads = threads;

  // Aggregate in matrix order — never completion order — so the summary
  // floats are bit-identical for any thread count. Lost cells contribute
  // no samples, only degradation counters.
  CampaignAggregator aggregator(result.spec);
  for (const CellResult& cell : result.cells) {
    if (cell.status == CellStatus::kOk) {
      aggregator.add(cell.cell.scenario, cell.cell.policy, cell.metrics);
      result.jobs_simulated += cell.metrics.n_jobs;
      if (cell.series != nullptr) {
        aggregator.add_series(cell.cell.scenario, cell.cell.policy,
                              *cell.series);
      }
    } else {
      aggregator.add_lost(cell.cell.scenario, cell.cell.policy, cell.status);
    }
  }
  result.groups = aggregator.groups();
  result.series_groups = aggregator.series_groups();
  return result;
}

}  // namespace gridsched::exp::campaign
