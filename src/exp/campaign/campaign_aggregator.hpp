// Statistical reduction of a campaign's cell results: per (scenario,
// policy) group, each requested metric is reduced to count / mean /
// sample stddev / t-distribution 95% CI via util::summarize. Cells are
// fed in matrix order after the shard fan-out completes, so aggregates
// are byte-stable regardless of thread count or completion order.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "exp/campaign/campaign_spec.hpp"
#include "metrics/metrics.hpp"
#include "util/stats.hpp"

namespace gridsched::obs {
struct TimeSeries;  // obs/timeseries.hpp
}  // namespace gridsched::obs

namespace gridsched::exp::campaign {

/// Outcome of one campaign cell. A cell is `ok` only when run_once
/// returned metrics; `failed` covers thrown exceptions (real or
/// injected) after any retries, `timed_out` a cell whose CancelToken
/// watchdog fired. Non-ok cells never contribute samples to a group —
/// the group is *degraded* (reduced n) instead of poisoned.
enum class CellStatus { kOk, kFailed, kTimedOut };

/// Stable wire name ("ok", "failed", "timed_out") — used by the journal
/// and the JSON artifact.
std::string_view status_name(CellStatus status) noexcept;

/// Inverse of status_name; throws std::invalid_argument on unknown text.
CellStatus parse_status(std::string_view text);

/// A reportable scalar derived from one run's metrics. `deterministic`
/// marks metrics that are pure functions of (scenario, policy, seed);
/// wall-clock metrics (scheduler_seconds) are excluded from the stable
/// JSON artifact and only appear in table/CSV output when requested.
struct MetricDef {
  std::string_view key;
  bool deterministic;
  double (*value)(const metrics::RunMetrics&);
};

/// All known metrics, in canonical report order.
std::span<const MetricDef> metric_defs();

/// Lookup by key; nullptr when unknown.
const MetricDef* find_metric(std::string_view key);

/// The spec's requested metrics resolved to defs (empty request = all
/// deterministic metrics), in canonical order.
std::vector<const MetricDef*> resolve_metrics(const CampaignSpec& spec);

struct MetricSummary {
  std::string key;
  bool deterministic = true;
  util::Summary summary;
};

struct GroupSummary {
  std::string scenario;  ///< scenario display label
  std::string policy;    ///< policy display label
  std::size_t cells = 0;     ///< surviving (ok) replications
  std::size_t expected = 0;  ///< spec.replications
  std::size_t failed = 0;    ///< cells lost to faults (after retries)
  std::size_t timed_out = 0; ///< cells lost to the watchdog
  std::vector<MetricSummary> metrics;  ///< canonical order

  /// True when any replication was lost: the summaries are over a
  /// reduced n and sinks must say so.
  [[nodiscard]] bool degraded() const noexcept { return cells < expected; }
};

/// The reduced timeseries columns, in artifact order. busy_mean is the
/// per-sample mean busy fraction across the scenario's sites (per-site
/// curves stay in the per-cell artifacts; the cross-replication reduction
/// needs a scalar).
std::span<const std::string_view> series_column_keys();

/// One reduced timeseries column: summaries[k] is the mean / t-CI of the
/// column at sample boundary k over the replications whose series reach
/// that boundary (the count shrinks at the tail as shorter runs drop
/// out — Summary::count says over how many).
struct SeriesColumn {
  std::string key;
  std::vector<util::Summary> samples;
};

/// Per-group cross-replication timeseries reduction. Only samples on the
/// boundary grid t_k = k * interval participate; each cell's terminal
/// makespan sample is a per-cell artifact detail and is excluded (its
/// time differs per replication, so there is no common axis for it).
struct SeriesGroupSummary {
  std::string scenario;  ///< scenario display label
  std::string policy;    ///< policy display label
  double interval = 0.0;
  std::size_t replications = 0;  ///< series fed into the reduction
  std::vector<double> t;         ///< boundary times, k * interval
  std::vector<SeriesColumn> columns;  ///< series_column_keys() order
};

class CampaignAggregator {
 public:
  explicit CampaignAggregator(const CampaignSpec& spec);

  /// Accumulate one surviving cell. Call in matrix order for stable
  /// output.
  void add(std::size_t scenario_index, std::size_t policy_index,
           const metrics::RunMetrics& run);

  /// Record a lost cell (failed or timed out): no metric samples, but
  /// the group's degradation counters reflect it.
  void add_lost(std::size_t scenario_index, std::size_t policy_index,
                CellStatus status);

  /// Accumulate one surviving cell's telemetry series into the group's
  /// per-sample reduction. Call in matrix order (like add) for stable
  /// output; the boundary grid must share one interval campaign-wide
  /// (throws std::invalid_argument on a mismatch).
  void add_series(std::size_t scenario_index, std::size_t policy_index,
                  const obs::TimeSeries& series);

  /// Scenario-major, policy-minor group summaries.
  [[nodiscard]] std::vector<GroupSummary> groups() const;

  /// Reduced timeseries for every group that received at least one
  /// series, scenario-major. Empty when add_series was never called.
  [[nodiscard]] std::vector<SeriesGroupSummary> series_groups() const;

 private:
  /// By value: binding a caller's temporary must not dangle, and the
  /// aggregator outlives the runner's local state in some call shapes.
  CampaignSpec spec_;
  std::vector<const MetricDef*> metrics_;
  [[nodiscard]] std::size_t group_index(std::size_t scenario_index,
                                        std::size_t policy_index) const;

  /// groups_[scenario * n_policies + policy][metric]
  std::vector<std::vector<util::RunningStats>> stats_;
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> failed_;
  std::vector<std::size_t> timed_out_;

  /// series_stats_[group][column][sample index]; lazily grown to the
  /// longest series the group has seen.
  std::vector<std::vector<std::vector<util::RunningStats>>> series_stats_;
  std::vector<std::size_t> series_counts_;
  double series_interval_ = 0.0;
};

}  // namespace gridsched::exp::campaign
