// Statistical reduction of a campaign's cell results: per (scenario,
// policy) group, each requested metric is reduced to count / mean /
// sample stddev / t-distribution 95% CI via util::summarize. Cells are
// fed in matrix order after the shard fan-out completes, so aggregates
// are byte-stable regardless of thread count or completion order.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "exp/campaign/campaign_spec.hpp"
#include "metrics/metrics.hpp"
#include "util/stats.hpp"

namespace gridsched::exp::campaign {

/// A reportable scalar derived from one run's metrics. `deterministic`
/// marks metrics that are pure functions of (scenario, policy, seed);
/// wall-clock metrics (scheduler_seconds) are excluded from the stable
/// JSON artifact and only appear in table/CSV output when requested.
struct MetricDef {
  std::string_view key;
  bool deterministic;
  double (*value)(const metrics::RunMetrics&);
};

/// All known metrics, in canonical report order.
std::span<const MetricDef> metric_defs();

/// Lookup by key; nullptr when unknown.
const MetricDef* find_metric(std::string_view key);

/// The spec's requested metrics resolved to defs (empty request = all
/// deterministic metrics), in canonical order.
std::vector<const MetricDef*> resolve_metrics(const CampaignSpec& spec);

struct MetricSummary {
  std::string key;
  bool deterministic = true;
  util::Summary summary;
};

struct GroupSummary {
  std::string scenario;  ///< scenario display label
  std::string policy;    ///< policy display label
  std::size_t cells = 0;
  std::vector<MetricSummary> metrics;  ///< canonical order
};

class CampaignAggregator {
 public:
  explicit CampaignAggregator(const CampaignSpec& spec);

  /// Accumulate one cell. Call in matrix order for stable output.
  void add(std::size_t scenario_index, std::size_t policy_index,
           const metrics::RunMetrics& run);

  /// Scenario-major, policy-minor group summaries.
  [[nodiscard]] std::vector<GroupSummary> groups() const;

 private:
  /// By value: binding a caller's temporary must not dangle, and the
  /// aggregator outlives the runner's local state in some call shapes.
  CampaignSpec spec_;
  std::vector<const MetricDef*> metrics_;
  /// groups_[scenario * n_policies + policy][metric]
  std::vector<std::vector<util::RunningStats>> stats_;
  std::vector<std::size_t> counts_;
};

}  // namespace gridsched::exp::campaign
