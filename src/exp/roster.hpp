// The paper's algorithm roster: Min-Min and Sufferage under the three risk
// modes, plus the STGA (7 algorithms), with optional extras (classic GA,
// Max-Min/MCT/MET/OLB baselines).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ga_scheduler.hpp"
#include "sim/scheduling.hpp"
#include "util/thread_pool.hpp"

namespace gridsched::exp {

struct AlgorithmSpec {
  std::string name;
  /// Fresh scheduler per run; `pool` may be null (serial GA fitness),
  /// `seed` feeds the GA's stochastic components.
  std::function<std::unique_ptr<sim::BatchScheduler>(util::ThreadPool* pool,
                                                     std::uint64_t seed)>
      make;
  /// True for STGA-style schedulers that want the 500-job training phase.
  bool wants_training = false;
};

/// The 7 algorithms of Figures 8-9 / Table 2, in the paper's order:
/// Min-Min secure / f-risky / risky, Sufferage secure / f-risky / risky,
/// STGA. `f` defaults to the paper's 0.5.
std::vector<AlgorithmSpec> paper_roster(double f = 0.5,
                                        core::StgaConfig stga = {});

/// The three best performers used in the Fig. 10 scaling study.
std::vector<AlgorithmSpec> scaling_roster(double f = 0.5,
                                          core::StgaConfig stga = {});

/// Single-algorithm specs, composable in custom experiments.
AlgorithmSpec heuristic_spec(const std::string& heuristic_name,
                             security::RiskPolicy policy);
AlgorithmSpec stga_spec(core::StgaConfig config = {});
AlgorithmSpec classic_ga_spec(core::StgaConfig config = {});

}  // namespace gridsched::exp
