// Deterministic fault injection for campaign chaos testing.
//
// A FaultPlan describes throw/delay faults injected at the run_once
// boundary of campaign cells: every {scenario, policy, replication,
// attempt} draws from its own util::SeedMix-derived stream
// (SeedMix(spec seed).mix("fault").mix(cell key).mix(attempt)), so the
// exact set of injected faults is a pure function of the spec — the same
// cells fail at any thread count, degraded aggregates are byte-stable,
// and a CI chaos run is reproducible from its seed alone. Mixing the
// attempt index gives retries fresh draws, which is what makes injected
// faults *transient*: a cell with throw_prob 0.5 usually survives a
// couple of --retries, exercising the retry path end to end.
//
// Injection is strictly opt-in: an empty() plan (the default) is never
// consulted and leaves every artifact byte-identical to a build without
// fault injection at all.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gridsched::exp {

/// Thrown by maybe_inject for a "throw" fault. A distinct type so tests
/// and logs can tell injected chaos from real faults; the campaign
/// runner treats both identically (failed cell, retried if budget
/// remains).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

struct FaultPlan {
  /// P(throw InjectedFault) per cell attempt, drawn deterministically.
  double throw_prob = 0.0;
  /// P(sleep delay_seconds) per cell attempt — stalls the cell so the
  /// --cell-timeout watchdog path is testable without a real hang.
  double delay_prob = 0.0;
  double delay_seconds = 0.0;
  /// Optional filters: when non-empty, only cells whose scenario/policy
  /// display label matches are eligible for injection. Lets a chaos spec
  /// target one axis ("fail psa cells only") while the rest of the
  /// campaign runs clean.
  std::string scenario;
  std::string policy;

  /// True when the plan can never inject anything (the default). Empty
  /// plans are skipped entirely — not even an RNG stream is created.
  [[nodiscard]] bool empty() const noexcept {
    return throw_prob <= 0.0 && delay_prob <= 0.0;
  }

  /// Structural validation: probabilities in [0, 1], non-negative delay,
  /// a delay probability only with a positive delay. Throws
  /// std::invalid_argument.
  void validate() const;
};

/// Consult `plan` for one cell attempt (attempt is 0-based). Throws
/// InjectedFault for a throw fault, sleeps for a delay fault, otherwise
/// returns. The draw order is fixed (throw before delay) so a plan with
/// both kinds is still deterministic.
void maybe_inject(const FaultPlan& plan, std::uint64_t spec_seed,
                  std::string_view scenario, std::string_view policy,
                  std::size_t replication, unsigned attempt);

}  // namespace gridsched::exp
