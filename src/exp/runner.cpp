#include "exp/runner.hpp"

#include "core/ga_scheduler.hpp"
#include "sched/heuristics.hpp"

namespace gridsched::exp {

namespace {

/// Paper bootstrap (DESIGN.md S8): schedule training jobs with Min-Min and
/// Sufferage (half each), recording every batch solution into the STGA's
/// history table.
void train_stga(const Scenario& scenario, const workload::Workload& main,
                core::GaScheduler& stga, std::uint64_t seed,
                const util::CancelToken* cancel) {
  const std::size_t total = scenario.training_jobs;
  if (total == 0) return;
  const std::size_t half = total / 2;

  struct Phase {
    std::size_t jobs;
    bool use_sufferage;
    std::uint64_t salt;
  };
  const Phase phases[] = {{total - half, false, 0xB001}, {half, true, 0xB002}};
  for (const Phase& phase : phases) {
    if (phase.jobs == 0) continue;
    const std::uint64_t phase_seed =
        util::Rng::child(seed, phase.salt).next_u64();
    workload::Workload training =
        make_training_workload(scenario, main, phase.jobs, phase_seed);
    std::unique_ptr<sched::HeuristicScheduler> heuristic;
    if (phase.use_sufferage) {
      heuristic = std::make_unique<sched::SufferageScheduler>(
          security::RiskPolicy::risky());
    } else {
      heuristic = std::make_unique<sched::MinMinScheduler>(
          security::RiskPolicy::risky());
    }
    core::RecordingScheduler recorder(*heuristic, stga);
    sim::EngineConfig engine_config = scenario.engine;
    engine_config.seed = phase_seed;
    engine_config.cancel = cancel;  // the watchdog covers training too
    sim::Engine engine(training.sites, training.jobs, engine_config,
                       training.exec);
    engine.run(recorder);
  }
}

}  // namespace

namespace {

/// run_once for a streaming (kSynthStream) scenario: the job cursor goes
/// straight into the kernel's stream constructor, so the run holds
/// O(active jobs) — never the whole workload. Seed derivation matches the
/// materialised path exactly, so draining the same scenario through
/// make_workload reproduces the jobs this run simulates.
metrics::RunMetrics run_once_stream(const Scenario& scenario,
                                    const AlgorithmSpec& spec,
                                    std::uint64_t seed,
                                    util::ThreadPool* ga_pool,
                                    const RunHooks& hooks) {
  const std::uint64_t workload_seed = util::Rng::child(seed, 1).next_u64();
  const std::uint64_t engine_seed = util::Rng::child(seed, 2).next_u64();
  const std::uint64_t algo_seed = util::Rng::child(seed, 3).next_u64();

  workload::synth::StreamWorkload stream =
      make_stream_workload(scenario, workload_seed);
  std::unique_ptr<sim::BatchScheduler> scheduler = spec.make(ga_pool,
                                                             algo_seed);
  if (hooks.cancel != nullptr) {
    if (auto* ga = dynamic_cast<core::GaScheduler*>(scheduler.get())) {
      ga->set_cancel_token(hooks.cancel);
    }
  }
  if (spec.wants_training) {
    if (auto* stga = dynamic_cast<core::GaScheduler*>(scheduler.get())) {
      // Training drains a small reduced copy of the stream (hundreds of
      // jobs), so the bootstrap stays O(training) while the measured run
      // streams. Only the grid is borrowed from the main workload.
      workload::Workload grid_only;
      grid_only.name = stream.name;
      grid_only.sites = stream.sites;
      train_stga(scenario, grid_only, *stga, seed, hooks.cancel);
    }
  }
  if (hooks.ga_profiles != nullptr) {
    if (auto* ga = dynamic_cast<core::GaScheduler*>(scheduler.get())) {
      ga->set_profile_sink(hooks.ga_profiles);
    }
  }

  sim::EngineConfig engine_config = scenario.engine;
  engine_config.seed = engine_seed;
  engine_config.cancel = hooks.cancel;
  sim::Engine engine(std::move(stream.sites), std::move(stream.jobs),
                     engine_config, std::move(stream.exec),
                     std::move(stream.churn));
  engine.set_observer(hooks.observer);
  engine.run(*scheduler);
  return metrics::compute_metrics(engine);
}

}  // namespace

metrics::RunMetrics run_once(const Scenario& scenario,
                             const AlgorithmSpec& spec,
                             std::uint64_t seed, util::ThreadPool* ga_pool,
                             const RunHooks& hooks) {
  if (scenario.kind == ScenarioKind::kSynthStream) {
    return run_once_stream(scenario, spec, seed, ga_pool, hooks);
  }
  const std::uint64_t workload_seed = util::Rng::child(seed, 1).next_u64();
  const std::uint64_t engine_seed = util::Rng::child(seed, 2).next_u64();
  const std::uint64_t algo_seed = util::Rng::child(seed, 3).next_u64();

  workload::Workload workload = make_workload(scenario, workload_seed);
  std::unique_ptr<sim::BatchScheduler> scheduler = spec.make(ga_pool,
                                                             algo_seed);

  // Cancellation attaches before training: a timed-out cell must not
  // spend its whole budget in the bootstrap phase.
  if (hooks.cancel != nullptr) {
    if (auto* ga = dynamic_cast<core::GaScheduler*>(scheduler.get())) {
      ga->set_cancel_token(hooks.cancel);
    }
  }

  if (spec.wants_training) {
    if (auto* stga = dynamic_cast<core::GaScheduler*>(scheduler.get())) {
      train_stga(scenario, workload, *stga, seed, hooks.cancel);
    }
  }

  // GA profiling attaches after training so the sink sees only the
  // measured run's scheduler invocations.
  if (hooks.ga_profiles != nullptr) {
    if (auto* ga = dynamic_cast<core::GaScheduler*>(scheduler.get())) {
      ga->set_profile_sink(hooks.ga_profiles);
    }
  }

  sim::EngineConfig engine_config = scenario.engine;
  engine_config.seed = engine_seed;
  engine_config.cancel = hooks.cancel;
  sim::Engine engine(workload.sites, workload.jobs, engine_config,
                     workload.exec, workload.churn);
  engine.set_observer(hooks.observer);
  engine.run(*scheduler);
  return metrics::compute_metrics(engine);
}

ReplicatedResult run_replicated(const Scenario& scenario,
                                const AlgorithmSpec& spec,
                                std::size_t replications,
                                std::uint64_t base_seed,
                                util::ThreadPool* pool) {
  ReplicatedResult result;
  result.runs.resize(replications);
  auto one = [&](std::size_t r) {
    const std::uint64_t seed = util::Rng::child(base_seed, r).next_u64();
    // GA fitness stays serial inside each replication: the pool's workers
    // are busy running replications and must not block on nested waits.
    result.runs[r] = run_once(scenario, spec, seed, nullptr);
  };
  if (pool != nullptr && replications > 1) {
    pool->parallel_for(replications, one, replications);
  } else {
    for (std::size_t r = 0; r < replications; ++r) one(r);
  }
  for (const auto& run : result.runs) result.aggregate.add(run);
  return result;
}

}  // namespace gridsched::exp
