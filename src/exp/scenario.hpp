// End-to-end experiment scenarios matching the paper's two testbeds
// (Table 1), with the batch intervals of DESIGN.md S5.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "workload/nas.hpp"
#include "workload/psa.hpp"
#include "workload/synth/stream_gen.hpp"
#include "workload/synth/synth.hpp"
#include "workload/workload.hpp"

namespace gridsched::exp {

enum class ScenarioKind { kNas, kPsa, kSynth, kSynthStream };

struct Scenario {
  ScenarioKind kind = ScenarioKind::kPsa;
  workload::NasTraceConfig nas;
  workload::PsaConfig psa;
  workload::synth::SynthConfig synth;
  /// Streaming generator config (kSynthStream only): the runner feeds the
  /// kernel a job cursor instead of a materialised vector, so these
  /// scenarios scale to millions of jobs in O(active) memory.
  workload::synth::SynthStreamConfig stream;
  sim::EngineConfig engine;
  /// Training jobs for STGA-style schedulers (paper Table 1: 500).
  std::size_t training_jobs = 500;
};

/// NAS trace testbed: 16 000 jobs / 12 sites / 46 days, 4000 s batches.
Scenario nas_scenario(std::size_t n_jobs = 16000);

/// PSA testbed: N jobs / 20 sites, 2000 s batches.
Scenario psa_scenario(std::size_t n_jobs = 1000);

/// Synthetic testbed from an explicit generator config, 2000 s batches.
Scenario synth_scenario(workload::synth::SynthConfig config);

/// Streaming synthetic testbed (kSynthStream), 2000 s batches.
Scenario synth_stream_scenario(workload::synth::SynthStreamConfig config);

/// Materialise the scenario's workload; deterministic in (scenario, seed).
/// A kSynthStream scenario is drained into a job vector here — use
/// make_stream_workload for the O(active) path the runner takes.
workload::Workload make_workload(const Scenario& scenario, std::uint64_t seed);

/// The streaming workload of a kSynthStream scenario (grid + job cursor);
/// throws std::invalid_argument for every other kind.
workload::synth::StreamWorkload make_stream_workload(const Scenario& scenario,
                                                     std::uint64_t seed);

/// A reduced copy of the scenario used for the STGA training phase
/// (`n_jobs` jobs over a proportionally shorter horizon) that reuses the
/// main run's sites so availability/security signatures are comparable.
workload::Workload make_training_workload(const Scenario& scenario,
                                          const workload::Workload& main,
                                          std::size_t n_jobs,
                                          std::uint64_t seed);

}  // namespace gridsched::exp
