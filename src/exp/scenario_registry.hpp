// Name -> scenario factory, mirroring sched/registry, so the CLI, runner,
// examples and benches can all select experiment scenarios by name
// ("nas", "psa", "synth-inconsistent-hihi", ...).
#pragma once

#include <string>
#include <vector>

#include "exp/scenario.hpp"

namespace gridsched::exp {

/// Registered scenario names (sorted).
std::vector<std::string> scenario_names();

/// One-line description of a registered scenario (for --help/list output);
/// throws std::invalid_argument for unknown names.
std::string scenario_description(const std::string& name);

/// Instantiate by name with each scenario's default size; pass `n_jobs` to
/// override the job count (0 keeps the default). Throws
/// std::invalid_argument for unknown names, listing the valid ones.
Scenario make_scenario(const std::string& name, std::size_t n_jobs = 0);

/// Apply a job-count override to an already-built scenario (0 is a no-op).
/// NAS scales its horizon with the job count (constant offered load);
/// shared by make_scenario and campaign ScenarioRef overrides.
void override_jobs(Scenario& scenario, std::size_t n_jobs);

}  // namespace gridsched::exp
