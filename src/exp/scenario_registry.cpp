#include "exp/scenario_registry.hpp"

#include <functional>
#include <map>
#include <stdexcept>

namespace gridsched::exp {

namespace {

using workload::synth::ArrivalProcess;
using workload::synth::EtcConsistency;
using workload::synth::Heterogeneity;
using workload::synth::SecurityProfile;
using workload::synth::SynthConfig;
using workload::synth::SynthStreamConfig;

struct ScenarioEntry {
  std::string description;
  std::function<Scenario()> make;
};

/// Shared base for the synthetic scenarios: a 16-site grid mixing one
/// 16-node and three 4-node sites per 8-node site, modest job count so
/// sweeps over many scenarios stay fast, NAS-like power-of-two requests.
SynthConfig synth_base(std::string name) {
  SynthConfig config;
  config.name = std::move(name);
  config.n_jobs = 1000;
  config.n_sites = 16;
  config.site_node_pattern = {16, 4, 8, 4, 4};
  config.size_weights = {0.4, 0.25, 0.2, 0.1, 0.05};
  config.arrival.process = ArrivalProcess::kPoisson;
  config.arrival.rate = 0.05;
  return config;
}

SynthConfig etc_class(EtcConsistency consistency, Heterogeneity task,
                      Heterogeneity machine, std::string name) {
  SynthConfig config = synth_base(std::move(name));
  config.etc.consistency = consistency;
  config.etc.task_heterogeneity = task;
  config.etc.machine_heterogeneity = machine;
  return config;
}

const std::map<std::string, ScenarioEntry>& registry() {
  static const std::map<std::string, ScenarioEntry> table = {
      {"nas",
       {"NAS iPSC/860 trace testbed (paper Table 1; 12 sites)",
        [] { return nas_scenario(2000); }}},
      {"psa",
       {"parameter-sweep application testbed (paper Table 1; 20 sites)",
        [] { return psa_scenario(500); }}},
      {"synth-consistent-hihi",
       {"consistent ETC, hi task / hi machine heterogeneity",
        [] {
          return synth_scenario(etc_class(EtcConsistency::kConsistent,
                                          Heterogeneity::kHi,
                                          Heterogeneity::kHi,
                                          "synth-consistent-hihi"));
        }}},
      {"synth-consistent-lolo",
       {"consistent ETC, lo task / lo machine heterogeneity",
        [] {
          return synth_scenario(etc_class(EtcConsistency::kConsistent,
                                          Heterogeneity::kLo,
                                          Heterogeneity::kLo,
                                          "synth-consistent-lolo"));
        }}},
      {"synth-semi-hihi",
       {"semi-consistent ETC, hi task / hi machine heterogeneity",
        [] {
          return synth_scenario(etc_class(EtcConsistency::kSemiConsistent,
                                          Heterogeneity::kHi,
                                          Heterogeneity::kHi,
                                          "synth-semi-hihi"));
        }}},
      {"synth-semi-lolo",
       {"semi-consistent ETC, lo task / lo machine heterogeneity",
        [] {
          return synth_scenario(etc_class(EtcConsistency::kSemiConsistent,
                                          Heterogeneity::kLo,
                                          Heterogeneity::kLo,
                                          "synth-semi-lolo"));
        }}},
      {"synth-inconsistent-hihi",
       {"inconsistent ETC, hi task / hi machine heterogeneity",
        [] {
          return synth_scenario(etc_class(EtcConsistency::kInconsistent,
                                          Heterogeneity::kHi,
                                          Heterogeneity::kHi,
                                          "synth-inconsistent-hihi"));
        }}},
      {"synth-inconsistent-lolo",
       {"inconsistent ETC, lo task / lo machine heterogeneity",
        [] {
          return synth_scenario(etc_class(EtcConsistency::kInconsistent,
                                          Heterogeneity::kLo,
                                          Heterogeneity::kLo,
                                          "synth-inconsistent-lolo"));
        }}},
      {"synth-batch",
       {"staged batch arrival waves (4 x 8000 s apart)",
        [] {
          SynthConfig config = synth_base("synth-batch");
          config.arrival.process = ArrivalProcess::kBatch;
          config.arrival.batch_waves = 4;
          config.arrival.wave_interval = 8000.0;
          return synth_scenario(std::move(config));
        }}},
      {"synth-bursty",
       {"bursty ON/OFF arrivals (flash-crowd regime)",
        [] {
          SynthConfig config = synth_base("synth-bursty");
          config.arrival.process = ArrivalProcess::kBurstyOnOff;
          config.arrival.on_duration = 1500.0;
          config.arrival.off_duration = 6000.0;
          config.arrival.burst_rate = 0.25;
          return synth_scenario(std::move(config));
        }}},
      {"synth-churn-lo",
       {"mild site churn (~1 outage/site/run, ~9% downtime)",
        [] {
          SynthConfig config = synth_base("synth-churn-lo");
          config.churn.enabled = true;
          config.churn.mtbf_mean = 40000.0;
          config.churn.mttr_mean = 4000.0;
          config.churn.spread = 0.5;
          return synth_scenario(std::move(config));
        }}},
      {"synth-churn-hi",
       {"aggressive site churn (frequent outages, ~1/3 downtime)",
        [] {
          SynthConfig config = synth_base("synth-churn-hi");
          config.churn.enabled = true;
          config.churn.mtbf_mean = 12000.0;
          config.churn.mttr_mean = 6000.0;
          config.churn.spread = 0.5;
          return synth_scenario(std::move(config));
        }}},
      {"synth-stream-med",
       {"streaming scale: 100k jobs / 100 sites via the job-stream cursor",
        [] {
          SynthStreamConfig config;
          config.name = "synth-stream-med";
          config.n_jobs = 100000;
          config.n_sites = 100;
          // ~720 nodes at ~1980 node-seconds per job sustains ~0.36
          // jobs/s; 0.25 runs the grid at roughly 70% offered load.
          config.arrival.rate = 0.25;
          return synth_stream_scenario(std::move(config));
        }}},
      {"synth-stream-hi",
       {"streaming scale: 1M jobs / 1000 sites via the job-stream cursor",
        [] {
          SynthStreamConfig config;
          config.name = "synth-stream-hi";
          config.n_jobs = 1000000;
          config.n_sites = 1000;
          // 10x the med grid sustains ~3.6 jobs/s; 2.4 keeps the same
          // ~70% offered load at a million jobs.
          config.arrival.rate = 2.4;
          return synth_stream_scenario(std::move(config));
        }}},
      {"synth-secure",
       {"trust-dominant security regime (risk rarely needed)",
        [] {
          SynthConfig config = synth_base("synth-secure");
          config.security = SecurityProfile::secure();
          return synth_scenario(std::move(config));
        }}},
      {"synth-risky",
       {"demand-dominant security regime (secure placements scarce)",
        [] {
          SynthConfig config = synth_base("synth-risky");
          config.security = SecurityProfile::risky();
          return synth_scenario(std::move(config));
        }}},
  };
  return table;
}

const ScenarioEntry& find_entry(const std::string& name) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::string message = "unknown scenario: " + name + " (valid:";
    for (const auto& [known, entry] : registry()) message += " " + known;
    throw std::invalid_argument(message + ")");
  }
  return it->second;
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;
}

std::string scenario_description(const std::string& name) {
  return find_entry(name).description;
}

Scenario make_scenario(const std::string& name, std::size_t n_jobs) {
  Scenario scenario = find_entry(name).make();
  override_jobs(scenario, n_jobs);
  return scenario;
}

void override_jobs(Scenario& scenario, std::size_t n_jobs) {
  if (n_jobs == 0) return;
  switch (scenario.kind) {
    case ScenarioKind::kNas: {
      // Scale the horizon with the job count (constant offered load)
      // in place, preserving any other per-entry customisation.
      scenario.nas.horizon *= static_cast<double>(n_jobs) /
                              static_cast<double>(scenario.nas.n_jobs);
      scenario.nas.n_jobs = n_jobs;
      break;
    }
    case ScenarioKind::kPsa:
      scenario.psa.n_jobs = n_jobs;
      break;
    case ScenarioKind::kSynth:
      scenario.synth.n_jobs = n_jobs;
      break;
    case ScenarioKind::kSynthStream:
      scenario.stream.n_jobs = n_jobs;
      break;
  }
}

}  // namespace gridsched::exp
