// Experiment execution: single runs (with the STGA training phase when the
// algorithm asks for it) and seed-replicated runs fanned out over a thread
// pool. Results are bit-reproducible in (scenario, spec, seed) regardless
// of thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ga_engine.hpp"
#include "exp/roster.hpp"
#include "exp/scenario.hpp"
#include "metrics/metrics.hpp"
#include "sim/observer.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace gridsched::exp {

/// Optional observation hooks for one run. Both pointers are non-owning
/// and may be null; hooks attach to the *measured* engine run only (the
/// STGA training phase stays unobserved — it is scaffolding, not the
/// simulation under study). Attaching hooks never changes the metrics.
struct RunHooks {
  /// Passive kernel observer (trace recorder, metric collector, ...).
  sim::KernelObserver* observer = nullptr;
  /// Receives one GaProfile per scheduler invocation when the algorithm
  /// is GA-based (ignored for heuristic specs).
  std::vector<core::GaProfile>* ga_profiles = nullptr;
  /// Cooperative cancel token (non-owning; may be null). Polled at every
  /// kernel batch cycle — including the STGA training phase's engines —
  /// and once per GA generation; a cancelled/expired token aborts the run
  /// with util::CancelledError before any metrics are produced. Unlike
  /// the passive hooks above, the token can end the run early; it never
  /// changes the results of a run it lets finish.
  const util::CancelToken* cancel = nullptr;
};

/// Build workload, (optionally) run the training phase, simulate, measure.
metrics::RunMetrics run_once(const Scenario& scenario,
                             const AlgorithmSpec& spec,
                             std::uint64_t seed,
                             util::ThreadPool* ga_pool = nullptr,
                             const RunHooks& hooks = {});

struct ReplicatedResult {
  metrics::MetricsAggregate aggregate;
  std::vector<metrics::RunMetrics> runs;  ///< per replication, in seed order
};

/// Run `replications` independent seeds (base_seed-derived). When `pool` is
/// given, replications run concurrently and GA fitness evaluation stays
/// serial inside each run (no nested blocking).
ReplicatedResult run_replicated(const Scenario& scenario,
                                const AlgorithmSpec& spec,
                                std::size_t replications,
                                std::uint64_t base_seed,
                                util::ThreadPool* pool = nullptr);

}  // namespace gridsched::exp
