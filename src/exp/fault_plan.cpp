#include "exp/fault_plan.hpp"

#include <chrono>
#include <thread>

#include "util/rng.hpp"

namespace gridsched::exp {

void FaultPlan::validate() const {
  if (throw_prob < 0.0 || throw_prob > 1.0) {
    throw std::invalid_argument("fault plan: throw_prob must be in [0, 1]");
  }
  if (delay_prob < 0.0 || delay_prob > 1.0) {
    throw std::invalid_argument("fault plan: delay_prob must be in [0, 1]");
  }
  if (delay_seconds < 0.0) {
    throw std::invalid_argument("fault plan: delay_seconds must be >= 0");
  }
  if (delay_prob > 0.0 && delay_seconds <= 0.0) {
    throw std::invalid_argument(
        "fault plan: delay_prob > 0 requires delay_seconds > 0");
  }
}

void maybe_inject(const FaultPlan& plan, std::uint64_t spec_seed,
                  std::string_view scenario, std::string_view policy,
                  std::size_t replication, unsigned attempt) {
  if (plan.empty()) return;
  if (!plan.scenario.empty() && plan.scenario != scenario) return;
  if (!plan.policy.empty() && plan.policy != policy) return;

  // Same cell-key convention as campaign::cell_seed (labels + replication,
  // never axis indices) under a dedicated "fault" domain, plus the attempt
  // index so retries re-draw.
  util::Rng rng = util::SeedMix(spec_seed)
                      .mix("fault")
                      .mix(scenario)
                      .mix(policy)
                      .mix(static_cast<std::uint64_t>(replication))
                      .mix(static_cast<std::uint64_t>(attempt))
                      .rng();
  if (plan.throw_prob > 0.0 && rng.bernoulli(plan.throw_prob)) {
    throw InjectedFault("injected fault (attempt " +
                        std::to_string(attempt + 1) + ")");
  }
  if (plan.delay_prob > 0.0 && rng.bernoulli(plan.delay_prob)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(plan.delay_seconds));
  }
}

}  // namespace gridsched::exp
