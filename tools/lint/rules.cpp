#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "lexer.hpp"

namespace gridsched::lint {

namespace {

// --------------------------------------------------------------- scoping ---

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool path_contains(std::string_view path, std::string_view needle) {
  return path.find(needle) != std::string_view::npos;
}

std::string_view basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

// ---------------------------------------------------------- suppressions ---

/// Per-file suppression state parsed from NOLINT comments.
struct Suppressions {
  /// rule id -> suppressed lines (NOLINT: that line; NOLINTNEXTLINE: +1).
  std::map<std::string, std::set<std::size_t>> lines;
  /// rule id -> [begin, end] line ranges from NOLINTBEGIN/NOLINTEND.
  std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>
      ranges;

  [[nodiscard]] bool covers(const std::string& rule,
                            std::size_t line) const {
    if (const auto it = lines.find(rule);
        it != lines.end() && it->second.count(line) != 0) {
      return true;
    }
    if (const auto it = ranges.find(rule); it != ranges.end()) {
      for (const auto& [begin, end] : it->second) {
        if (line >= begin && line <= end) return true;
      }
    }
    return false;
  }
};

/// Extract the GS rule ids listed in "NOLINT...(GS-R01, GS-R05)". Returns
/// empty when the parenthesized list names no GS rule (a clang-tidy
/// suppression, which never silences gridsched_lint).
std::vector<std::string> gs_rules_in(std::string_view list) {
  std::vector<std::string> rules;
  std::size_t pos = 0;
  while ((pos = list.find("GS-R", pos)) != std::string_view::npos) {
    std::size_t end = pos + 4;
    while (end < list.size() &&
           std::isdigit(static_cast<unsigned char>(list[end])) != 0) {
      ++end;
    }
    // A real id has digits; "GS-Rxx" in prose/docs is not a suppression.
    if (end > pos + 4) rules.emplace_back(list.substr(pos, end - pos));
    pos = end;
  }
  return rules;
}

/// Parse a file's comments for NOLINT / NOLINTNEXTLINE / NOLINTBEGIN /
/// NOLINTEND markers. Malformed GS suppressions (missing ": reason",
/// unmatched BEGIN/END) surface as GS-R00 diagnostics — suppressions are
/// part of the reviewed surface, not an escape hatch.
Suppressions parse_suppressions(const SourceFile& file,
                                const std::vector<Comment>& comments,
                                std::vector<Diagnostic>& out) {
  Suppressions sup;
  // rule -> stack of open BEGIN lines.
  std::map<std::string, std::vector<std::size_t>> open;
  for (const Comment& comment : comments) {
    const std::size_t at = comment.text.find("NOLINT");
    if (at == std::string::npos) continue;
    std::string_view rest = std::string_view(comment.text).substr(at + 6);
    enum class Form { kLine, kNextLine, kBegin, kEnd } form = Form::kLine;
    if (starts_with(rest, "NEXTLINE")) {
      form = Form::kNextLine;
      rest.remove_prefix(8);
    } else if (starts_with(rest, "BEGIN")) {
      form = Form::kBegin;
      rest.remove_prefix(5);
    } else if (starts_with(rest, "END")) {
      form = Form::kEnd;
      rest.remove_prefix(3);
    }
    if (rest.empty() || rest.front() != '(') continue;  // bare NOLINT
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) continue;
    const std::vector<std::string> rules = gs_rules_in(rest.substr(1, close));
    if (rules.empty()) continue;  // clang-tidy-only suppression
    const std::string_view after = rest.substr(close + 1);
    const bool has_reason =
        starts_with(after, ":") &&
        after.find_first_not_of(" \t", 1) != std::string_view::npos;
    if (form != Form::kEnd && !has_reason) {
      out.push_back({file.path, comment.line, "GS-R00",
                     "suppression for " + rules.front() +
                         " is missing a \": reason\" — justify it"});
      continue;
    }
    for (const std::string& rule : rules) {
      switch (form) {
        case Form::kLine:
          sup.lines[rule].insert(comment.line);
          break;
        case Form::kNextLine:
          sup.lines[rule].insert(comment.line + 1);
          break;
        case Form::kBegin:
          open[rule].push_back(comment.line);
          break;
        case Form::kEnd:
          if (open[rule].empty()) {
            out.push_back({file.path, comment.line, "GS-R00",
                           "NOLINTEND(" + rule +
                               ") without a matching NOLINTBEGIN"});
          } else {
            sup.ranges[rule].emplace_back(open[rule].back(), comment.line);
            open[rule].pop_back();
          }
          break;
      }
    }
  }
  for (const auto& [rule, begins] : open) {
    for (const std::size_t line : begins) {
      out.push_back({file.path, line, "GS-R00",
                     "NOLINTBEGIN(" + rule +
                         ") is never closed by NOLINTEND"});
    }
  }
  return sup;
}

// ---------------------------------------------------------- lexed files ----

struct LintFile {
  const SourceFile* src = nullptr;
  TokenStream stream;
  Suppressions sup;
};

const std::vector<Token>& toks(const LintFile& f) { return f.stream.tokens; }

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

void diag(std::vector<Diagnostic>& out, const LintFile& f, std::size_t line,
          std::string rule, std::string message) {
  out.push_back({f.src->path, line, std::move(rule), std::move(message)});
}

// ------------------------------------------------------------------ rules --

/// GS-R01 — no allocating calls inside GS-FASTPATH regions. The decode
/// fast path (ROADMAP "Decode fast-path invariants") must stay heap-free
/// in steady state: no stable_sort / inplace_merge (both allocate
/// temporaries), no std::vector construction, no new.
void rule_r01(const std::vector<LintFile>& files,
              std::vector<Diagnostic>& out) {
  for (const LintFile& f : files) {
    std::vector<std::pair<std::size_t, std::size_t>> regions;
    std::size_t open_line = 0;
    bool open = false;
    for (const Comment& comment : f.stream.comments) {
      if (comment.text.find("GS-FASTPATH-BEGIN") != std::string::npos) {
        if (open) {
          diag(out, f, comment.line, "GS-R01",
               "nested GS-FASTPATH-BEGIN (previous at line " +
                   std::to_string(open_line) + ")");
        }
        open = true;
        open_line = comment.line;
      } else if (comment.text.find("GS-FASTPATH-END") != std::string::npos) {
        if (!open) {
          diag(out, f, comment.line, "GS-R01",
               "GS-FASTPATH-END without a matching BEGIN");
          continue;
        }
        regions.emplace_back(open_line, comment.line);
        open = false;
      }
    }
    if (open) {
      diag(out, f, open_line, "GS-R01",
           "GS-FASTPATH-BEGIN is never closed");
    }
    if (f.src->path == "src/core/ga_problem.cpp" && regions.empty()) {
      diag(out, f, 1, "GS-R01",
           "the decode fast path must be fenced with GS-FASTPATH-BEGIN/"
           "END markers (ROADMAP: zero steady-state allocations)");
    }
    if (regions.empty()) continue;
    const auto in_region = [&](std::size_t line) {
      for (const auto& [begin, end] : regions) {
        if (line >= begin && line <= end) return true;
      }
      return false;
    };
    for (const Token& t : toks(f)) {
      if (t.kind != TokenKind::kIdentifier || !in_region(t.line)) continue;
      if (t.text == "stable_sort" || t.text == "inplace_merge" ||
          t.text == "new" || t.text == "vector" ||
          t.text == "make_shared" || t.text == "make_unique") {
        diag(out, f, t.line, "GS-R01",
             "allocating call \"" + t.text +
                 "\" in the decode fast-path region — per-decode state "
                 "belongs in the DecodeScratch arena");
      }
    }
  }
}

/// GS-R02 — no wall-clock sources in byte-stable artifact renderers
/// (campaign sinks, campaign journal, trace writer) or in the streaming
/// aggregation they read (the retirement accumulator and the job-stream
/// cursors feed bit-identical metric sums; a clock there would desync
/// streamed and retained artifacts). Host time may only reach the
/// --profile sidecar (ROADMAP "Observability invariants").
void rule_r02(const std::vector<LintFile>& files,
              std::vector<Diagnostic>& out) {
  for (const LintFile& f : files) {
    const std::string_view path = f.src->path;
    if (!path_contains(path, "campaign_sinks") &&
        !path_contains(path, "campaign_journal") &&
        !path_contains(path, "trace_event") &&
        !path_contains(path, "timeseries") &&
        !path_contains(path, "benchgate") &&
        !path_contains(path, "retirement") &&
        !path_contains(path, "workload/stream") &&
        !path_contains(path, "stream_gen")) {
      continue;
    }
    const auto& tokens = toks(f);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      const bool clock_type = t.text == "system_clock" ||
                              t.text == "steady_clock" ||
                              t.text == "high_resolution_clock" ||
                              t.text == "getrusage";
      const bool call_like = (t.text == "time" || t.text == "clock") &&
                             i + 1 < tokens.size() &&
                             is_punct(tokens[i + 1], "(");
      if (clock_type || call_like) {
        diag(out, f, t.line, "GS-R02",
             "wall-clock source \"" + t.text +
                 "\" in a byte-stable artifact renderer — host time may "
                 "only flow to the profile sidecar");
      }
    }
  }
}

/// GS-R03 — schedulers must not recompute work / speed; execution times
/// resolve via SchedulerContext::exec_time / EtcMatrix(context), which are
/// raw-ETC-aware (ROADMAP "Execution-model invariant").
void rule_r03(const std::vector<LintFile>& files,
              std::vector<Diagnostic>& out) {
  for (const LintFile& f : files) {
    if (!starts_with(f.src->path, "src/sched/")) continue;
    const auto& tokens = toks(f);
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!is_ident(tokens[i], "work") || !is_punct(tokens[i + 1], "/")) {
        continue;
      }
      const std::size_t limit = std::min(tokens.size(), i + 10);
      for (std::size_t j = i + 2; j < limit; ++j) {
        if (is_punct(tokens[j], ";") || is_punct(tokens[j], ",")) break;
        if (is_ident(tokens[j], "speed")) {
          diag(out, f, tokens[i].line, "GS-R03",
               "scheduler recomputes work / speed — resolve exec times "
               "via context.exec_time or sched::EtcMatrix(context)");
          break;
        }
      }
    }
  }
}

/// GS-R04 — SplitMix64 is pinned to the CRN failure draw and the RNG
/// utility; SeedMix string domains are globally unique across files.
void rule_r04(const std::vector<LintFile>& files,
              std::vector<Diagnostic>& out) {
  static constexpr std::string_view kSplitMixAllowed[] = {
      "src/util/rng.hpp",
      "src/util/rng.cpp",
      "src/sim/process/security_failure_process.cpp",
      "src/sim/process/security_failure_process.hpp",
  };
  struct Use {
    const LintFile* file;
    std::size_t line;
  };
  std::map<std::string, std::vector<Use>> domains;
  for (const LintFile& f : files) {
    const std::string_view path = f.src->path;
    const bool src_scope = starts_with(path, "src/");
    const bool mix_scope = src_scope || starts_with(path, "bench/") ||
                           starts_with(path, "examples/");
    const auto& tokens = toks(f);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (src_scope && is_ident(tokens[i], "SplitMix64")) {
        const bool allowed =
            std::find(std::begin(kSplitMixAllowed),
                      std::end(kSplitMixAllowed),
                      path) != std::end(kSplitMixAllowed);
        if (!allowed) {
          diag(out, f, tokens[i].line, "GS-R04",
               "SplitMix64 outside util/rng and the CRN failure draw — "
               "derive streams with util::SeedMix instead");
        }
      }
      if (mix_scope && i + 2 < tokens.size() && is_ident(tokens[i], "mix") &&
          is_punct(tokens[i + 1], "(") &&
          tokens[i + 2].kind == TokenKind::kString) {
        domains[tokens[i + 2].text].push_back({&f, tokens[i + 2].line});
      }
    }
  }
  for (const auto& [domain, uses] : domains) {
    for (std::size_t i = 1; i < uses.size(); ++i) {
      // Same-file reuse is a deliberate shared stream; only a *different*
      // file reusing the literal collides subsystems.
      if (uses[i].file == uses[0].file) continue;
      diag(out, *uses[i].file, uses[i].line, "GS-R04",
           "SeedMix domain \"" + domain + "\" already claimed by " +
               uses[0].file->src->path + ":" +
               std::to_string(uses[0].line) +
               " — domain strings must be unique per subsystem");
    }
  }
}

/// GS-R05 — no ambient nondeterminism in simulation/experiment code:
/// rand/srand/random_device and chrono ::now() live only in obs/ probes
/// and the cancellation deadline (or behind a justified NOLINT). The
/// benchgate tool is held to the same bar — a regression gate that
/// consulted the clock could pass or fail the same artifacts on rerun.
/// The streaming kernel (slot table, admission path) and the job-stream
/// cursors sit squarely in scope: lazy admission replays the exact draws
/// the retained path makes, so any ambient entropy there would break the
/// streamed-equals-materialised bit-identity contract.
void rule_r05(const std::vector<LintFile>& files,
              std::vector<Diagnostic>& out) {
  for (const LintFile& f : files) {
    const std::string_view path = f.src->path;
    if (!starts_with(path, "src/") &&
        !starts_with(path, "tools/benchgate/")) {
      continue;
    }
    if (starts_with(path, "src/obs/") || path == "src/util/cancel.hpp") {
      continue;
    }
    const auto& tokens = toks(f);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      const bool call = i + 1 < tokens.size() && is_punct(tokens[i + 1], "(");
      if (t.text == "random_device" || (t.text == "srand" && call) ||
          (t.text == "rand" && call)) {
        diag(out, f, t.line, "GS-R05",
             "nondeterministic source \"" + t.text +
                 "\" — all randomness flows from the run seed via "
                 "util::Rng / util::SeedMix");
      }
      if (t.text == "now" && call && i > 0 && is_punct(tokens[i - 1], "::")) {
        diag(out, f, t.line, "GS-R05",
             "wall-clock ::now() outside obs/ — host time must never "
             "influence simulation results or byte-stable artifacts");
      }
    }
  }
}

/// GS-R06 — every EventKind enumerator is owned by exactly one SimProcess
/// (ROADMAP "Kernel invariants": exclusive event routing).
void rule_r06(const std::vector<LintFile>& files,
              std::vector<Diagnostic>& out) {
  const LintFile* enum_file = nullptr;
  struct Enumerator {
    std::string name;
    std::size_t line;
  };
  std::vector<Enumerator> kinds;
  for (const LintFile& f : files) {
    if (f.src->path != "src/sim/event_queue.hpp") continue;
    enum_file = &f;
    const auto& tokens = toks(f);
    for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
      if (!is_ident(tokens[i], "enum") || !is_ident(tokens[i + 1], "class") ||
          !is_ident(tokens[i + 2], "EventKind")) {
        continue;
      }
      std::size_t j = i + 3;
      while (j < tokens.size() && !is_punct(tokens[j], "{")) ++j;
      for (++j; j < tokens.size() && !is_punct(tokens[j], "}"); ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier &&
            !ends_with(tokens[j].text, "_")) {  // skip the sentinel
          kinds.push_back({tokens[j].text, tokens[j].line});
        }
      }
      break;
    }
  }
  if (enum_file == nullptr) return;  // fixture sets without the kernel

  struct Owner {
    const LintFile* file;
    std::size_t line;
  };
  std::map<std::string, std::vector<Owner>> owners;
  for (const LintFile& f : files) {
    if (!starts_with(f.src->path, "src/sim/process/") ||
        !ends_with(f.src->path, ".cpp")) {
      continue;
    }
    const auto& tokens = toks(f);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (!is_ident(tokens[i], "owned_kinds")) continue;
      std::size_t j = i + 1;
      while (j < tokens.size() && !is_punct(tokens[j], "{") &&
             !is_punct(tokens[j], ";")) {
        ++j;
      }
      if (j >= tokens.size() || is_punct(tokens[j], ";")) continue;
      std::size_t depth = 1;
      for (++j; j < tokens.size() && depth > 0; ++j) {
        if (is_punct(tokens[j], "{")) ++depth;
        if (is_punct(tokens[j], "}")) --depth;
        if (j + 2 < tokens.size() && is_ident(tokens[j], "EventKind") &&
            is_punct(tokens[j + 1], "::") &&
            tokens[j + 2].kind == TokenKind::kIdentifier) {
          owners[tokens[j + 2].text].push_back({&f, tokens[j + 2].line});
        }
      }
      i = j;
    }
  }
  for (const Enumerator& kind : kinds) {
    const auto it = owners.find(kind.name);
    const std::size_t n = it == owners.end() ? 0 : it->second.size();
    if (n == 0) {
      diag(out, *enum_file, kind.line, "GS-R06",
           "EventKind::" + kind.name +
               " is owned by no SimProcess (owned_kinds) — routing is "
               "exclusive and total");
    } else if (n > 1) {
      for (const Owner& owner : it->second) {
        diag(out, *owner.file, owner.line, "GS-R06",
             "EventKind::" + kind.name + " is owned by " +
                 std::to_string(n) +
                 " SimProcesses — routing must be exclusive");
      }
    }
  }
  for (const auto& [name, sites] : owners) {
    const auto known = std::find_if(
        kinds.begin(), kinds.end(),
        [&name = name](const Enumerator& k) { return k.name == name; });
    if (known == kinds.end()) {
      diag(out, *sites[0].file, sites[0].line, "GS-R06",
           "owned_kinds names unknown EventKind::" + name);
    }
  }
}

/// A heuristically segmented function body: token index range [begin, end).
struct Body {
  std::size_t begin;
  std::size_t end;
};

/// Find top-level function bodies: a `{` whose recent backward context
/// contains a `)` before any statement terminator. Nested blocks (ifs,
/// lambdas, try) stay inside their enclosing body.
std::vector<Body> segment_bodies(const std::vector<Token>& tokens) {
  std::vector<Body> bodies;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!is_punct(tokens[i], "{")) continue;
    bool function_like = false;
    const std::size_t floor = i >= 12 ? i - 12 : 0;
    for (std::size_t back = i; back-- > floor;) {
      if (is_punct(tokens[back], ")")) {
        function_like = true;
        break;
      }
      if (is_punct(tokens[back], ";") || is_punct(tokens[back], "{") ||
          is_punct(tokens[back], "}") || is_punct(tokens[back], "=")) {
        break;
      }
    }
    if (!function_like) continue;
    std::size_t depth = 1;
    std::size_t j = i + 1;
    for (; j < tokens.size() && depth > 0; ++j) {
      if (is_punct(tokens[j], "{")) ++depth;
      if (is_punct(tokens[j], "}")) --depth;
    }
    bodies.push_back({i, j});
    i = j - 1;  // resume after the body
  }
  return bodies;
}

/// GS-R07 — strict spec parsing: in files that ingest JSON text, every
/// function that reads object members by key (.at("...") / .find("..."))
/// must also check_keys the object, so unknown keys throw instead of
/// silently running defaults (ROADMAP "Campaign subsystem").
void rule_r07(const std::vector<LintFile>& files,
              std::vector<Diagnostic>& out) {
  for (const LintFile& f : files) {
    if (!starts_with(f.src->path, "src/")) continue;
    bool ingests_json = false;
    for (const Token& t : toks(f)) {
      if (t.kind == TokenKind::kPreproc &&
          t.text.find("util/json.hpp") != std::string::npos) {
        ingests_json = true;
        break;
      }
    }
    if (!ingests_json) continue;
    const auto& tokens = toks(f);
    for (const Body& body : segment_bodies(tokens)) {
      std::size_t first_read = 0;
      bool reads = false;
      bool checks = false;
      for (std::size_t i = body.begin; i < body.end; ++i) {
        if (is_ident(tokens[i], "check_keys")) checks = true;
        if (i + 2 < body.end &&
            (is_ident(tokens[i], "at") || is_ident(tokens[i], "find")) &&
            is_punct(tokens[i + 1], "(") &&
            tokens[i + 2].kind == TokenKind::kString && !reads) {
          reads = true;
          first_read = tokens[i].line;
        }
      }
      if (reads && !checks) {
        diag(out, f, first_read, "GS-R07",
             "JSON object read without check_keys in this function — "
             "strict parsing: unknown keys must throw");
      }
    }
  }
}

/// GS-R08 — headers use #pragma once; a source file whose sibling header
/// exists includes it first (catches headers that don't stand alone).
void rule_r08(const std::vector<LintFile>& files,
              std::vector<Diagnostic>& out) {
  std::set<std::string_view> paths;
  for (const LintFile& f : files) paths.insert(f.src->path);
  for (const LintFile& f : files) {
    const std::string_view path = f.src->path;
    const bool scoped = starts_with(path, "src/") ||
                        starts_with(path, "tools/") ||
                        starts_with(path, "bench/");
    if (!scoped) continue;
    if (ends_with(path, ".hpp")) {
      bool pragma_once = false;
      for (const Token& t : toks(f)) {
        if (t.kind != TokenKind::kPreproc) continue;
        if (t.text.find("pragma") != std::string::npos &&
            t.text.find("once") != std::string::npos) {
          pragma_once = true;
        }
        break;  // only the first directive may precede #pragma once
      }
      if (!pragma_once) {
        diag(out, f, 1, "GS-R08",
             "header must open with #pragma once (before any #include)");
      }
    } else if (ends_with(path, ".cpp")) {
      std::string sibling(path.substr(0, path.size() - 4));
      sibling += ".hpp";
      if (paths.count(sibling) == 0) continue;
      const Token* first_include = nullptr;
      for (const Token& t : toks(f)) {
        if (t.kind == TokenKind::kPreproc &&
            t.text.find("include") != std::string::npos) {
          first_include = &t;
          break;
        }
      }
      const std::string expect(basename_of(sibling));
      if (first_include == nullptr ||
          first_include->text.find(expect) == std::string::npos) {
        diag(out, f,
             first_include == nullptr ? 1 : first_include->line, "GS-R08",
             "first #include must be the file's own header (" + expect +
                 ") so the header proves it stands alone");
      }
    }
  }
}

}  // namespace

// ------------------------------------------------------------- interface ---

const std::vector<RuleInfo>& rule_infos() {
  static const std::vector<RuleInfo> infos = {
      {"GS-R00", "suppression hygiene: NOLINT(GS-Rxx) needs a reason; "
                 "BEGIN/END pairs must match"},
      {"GS-R01", "no allocating calls inside GS-FASTPATH decode regions"},
      {"GS-R02", "no wall-clock sources in byte-stable artifact renderers"},
      {"GS-R03", "schedulers must not recompute work / speed"},
      {"GS-R04", "SplitMix64 stays pinned; SeedMix domains unique per "
                 "subsystem"},
      {"GS-R05", "no rand/random_device/::now() outside obs/ allowlist"},
      {"GS-R06", "every EventKind is owned by exactly one SimProcess"},
      {"GS-R07", "JSON spec parsers reading objects must check_keys"},
      {"GS-R08", "#pragma once headers; sources include own header first"},
  };
  return infos;
}

std::vector<Diagnostic> run_rules(const std::vector<SourceFile>& files) {
  std::vector<Diagnostic> meta;
  std::vector<LintFile> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& file : files) {
    LintFile lf;
    lf.src = &file;
    lf.stream = tokenize(file.content);
    lf.sup = parse_suppressions(file, lf.stream.comments, meta);
    lexed.push_back(std::move(lf));
  }

  std::vector<Diagnostic> raw;
  rule_r01(lexed, raw);
  rule_r02(lexed, raw);
  rule_r03(lexed, raw);
  rule_r04(lexed, raw);
  rule_r05(lexed, raw);
  rule_r06(lexed, raw);
  rule_r07(lexed, raw);
  rule_r08(lexed, raw);

  std::vector<Diagnostic> kept = std::move(meta);  // GS-R00 is unsuppressable
  for (Diagnostic& d : raw) {
    const auto owner = std::find_if(
        lexed.begin(), lexed.end(),
        [&d](const LintFile& f) { return f.src->path == d.file; });
    if (owner != lexed.end() && owner->sup.covers(d.rule, d.line)) continue;
    kept.push_back(std::move(d));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return kept;
}

int run_lint(const std::vector<SourceFile>& files, std::ostream& out,
             std::string_view only_rule) {
  std::vector<Diagnostic> diagnostics = run_rules(files);
  if (!only_rule.empty()) {
    diagnostics.erase(
        std::remove_if(diagnostics.begin(), diagnostics.end(),
                       [only_rule](const Diagnostic& d) {
                         return d.rule != only_rule;
                       }),
        diagnostics.end());
  }
  for (const Diagnostic& d : diagnostics) {
    out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
        << "\n";
  }
  std::set<std::string_view> touched;
  for (const Diagnostic& d : diagnostics) touched.insert(d.file);
  if (diagnostics.empty()) {
    out << "gridsched_lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  out << "gridsched_lint: " << diagnostics.size() << " violation"
      << (diagnostics.size() == 1 ? "" : "s") << " in " << touched.size()
      << " file" << (touched.size() == 1 ? "" : "s") << " ("
      << files.size() << " scanned)\n";
  return 1;
}

std::vector<SourceFile> load_tree(const std::string& root) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(fs::path(root) / "src")) {
    throw std::runtime_error("gridsched_lint: " + root +
                             " has no src/ — pass --root=REPO");
  }
  std::vector<SourceFile> files;
  for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream content;
      content << in.rdbuf();
      files.push_back({fs::relative(entry.path(), root).generic_string(),
                       std::move(content).str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

}  // namespace gridsched::lint
