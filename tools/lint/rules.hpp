// gridsched_lint rule engine: repo-specific static-analysis rules that
// mechanize the ROADMAP invariants (see README "Static analysis" for the
// rule table). Rules run over lexed token streams (lexer.hpp), support
// path scoping, cross-file checks, and clang-tidy-style suppressions:
//
//   // NOLINT(GS-Rxx): reason          — this line
//   // NOLINTNEXTLINE(GS-Rxx): reason  — the following line
//   // NOLINTBEGIN(GS-Rxx): reason ... // NOLINTEND(GS-Rxx) — a region
//
// A reason after the colon is mandatory; a GS suppression without one is
// itself a violation (GS-R00), as are unmatched BEGIN/END pairs. Bare
// `// NOLINT` (clang-tidy's blanket form) never silences a GS rule.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace gridsched::lint {

/// One file to lint. `path` is repo-relative with '/' separators — rules
/// scope on it, so tests can lint fixture snippets under fake paths.
struct SourceFile {
  std::string path;
  std::string content;
};

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;  ///< "GS-R01" ... "GS-R08", "GS-R00" for meta
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// The registered rules, in id order (for --list-rules and the README).
const std::vector<RuleInfo>& rule_infos();

/// Run every rule over `files` and return the unsuppressed diagnostics,
/// sorted by (file, line, rule).
std::vector<Diagnostic> run_rules(const std::vector<SourceFile>& files);

/// Lint `files`, printing "file:line: [GS-Rxx] message" per finding plus a
/// summary line to `out`. Returns the process exit code: 0 clean, 1 when
/// any diagnostic fired. `only_rule` (e.g. "GS-R03") restricts both the
/// output and the exit code to one rule; empty runs everything.
int run_lint(const std::vector<SourceFile>& files, std::ostream& out,
             std::string_view only_rule = {});

/// Load every .cpp/.hpp under root's src/, tests/, bench/, examples/, and
/// tools/ directories (sorted by path; build trees are never entered
/// because only those five roots are walked). Throws std::runtime_error
/// when root/src does not exist — the sanity check that --root points at
/// the repo.
std::vector<SourceFile> load_tree(const std::string& root);

}  // namespace gridsched::lint
