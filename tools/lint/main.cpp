// gridsched_lint — repo-specific static analysis for the gridsched tree.
//
//   gridsched_lint [--root=DIR] [--rule=GS-Rxx] [--list-rules]
//
// Scans src/, tests/, bench/, examples/, and tools/ under --root (default:
// the current directory), applies the GS-Rxx rules (see --list-rules and
// README "Static analysis"), prints file:line diagnostics, and exits 1
// when any rule fires. Wired as the `lint` CTest entry and a blocking CI
// job; suppress individual findings with // NOLINT(GS-Rxx): reason.
#include <exception>
#include <iostream>
#include <string>
#include <string_view>

#include "rules.hpp"

namespace {

bool take_value(std::string_view arg, std::string_view flag,
                std::string& out) {
  if (arg.substr(0, flag.size()) != flag) return false;
  out = std::string(arg.substr(flag.size()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string only_rule;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& info : gridsched::lint::rule_infos()) {
        std::cout << info.id << "  " << info.summary << "\n";
      }
      return 0;
    }
    if (take_value(arg, "--root=", root)) continue;
    if (take_value(arg, "--rule=", only_rule)) continue;
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gridsched_lint [--root=DIR] [--rule=GS-Rxx] "
                   "[--list-rules]\n";
      return 0;
    }
    std::cerr << "gridsched_lint: unknown argument \"" << arg
              << "\" (try --help)\n";
    return 2;
  }
  try {
    const auto files = gridsched::lint::load_tree(root);
    return gridsched::lint::run_lint(files, std::cout, only_rule);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
