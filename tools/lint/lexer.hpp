// Minimal C++ tokenizer for gridsched_lint. Produces a stream of code
// tokens (identifiers, literals, punctuation, preprocessor lines) plus a
// separate list of comments, so rules can match identifier patterns
// without tripping over comment or string-literal text, while the
// suppression scanner (NOLINT) and region markers (GS-FASTPATH) read the
// comments. Dependency-free by design, like util/json.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace gridsched::lint {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords ("new" is an identifier here)
  kNumber,
  kString,  ///< text is the literal's content, without quotes
  kChar,
  kPunct,    ///< single character, except "::" which is one token
  kPreproc,  ///< whole logical directive line, continuations joined
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line = 0;  ///< 1-based line of the token's first character
};

struct Comment {
  std::string text;      ///< body without the // or /* */ delimiters
  std::size_t line = 0;  ///< 1-based line where the comment starts
};

struct TokenStream {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize a translation unit. Never throws on malformed input — an
/// unterminated literal or comment simply ends at EOF (the linter must
/// degrade gracefully on code the compiler would reject anyway).
TokenStream tokenize(std::string_view source);

}  // namespace gridsched::lint
