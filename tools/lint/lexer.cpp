#include "lexer.hpp"

#include <cctype>

namespace gridsched::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  TokenStream run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        lex_preproc();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          lex_line_comment();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          lex_block_comment();
          continue;
        }
      }
      if (ident_start(c)) {
        lex_identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        lex_number();
        continue;
      }
      if (c == '"') {
        lex_string();
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      lex_punct();
    }
    return std::move(out_);
  }

 private:
  void push(TokenKind kind, std::string text, std::size_t line) {
    out_.tokens.push_back({kind, std::move(text), line});
  }

  /// Consume to end of logical line (honouring backslash continuations);
  /// a trailing // comment is split out so NOLINT works on directives.
  void lex_preproc() {
    const std::size_t start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
        text.push_back(' ');
        continue;
      }
      if (c == '\n') break;
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        lex_line_comment();
        break;
      }
      text.push_back(c);
      ++pos_;
    }
    push(TokenKind::kPreproc, std::move(text), start_line);
  }

  void lex_line_comment() {
    const std::size_t start_line = line_;
    pos_ += 2;  // skip //
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      text.push_back(src_[pos_]);
      ++pos_;
    }
    out_.comments.push_back({std::move(text), start_line});
  }

  void lex_block_comment() {
    const std::size_t start_line = line_;
    pos_ += 2;  // skip /*
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text.push_back(src_[pos_]);
      ++pos_;
    }
    out_.comments.push_back({std::move(text), start_line});
  }

  void lex_identifier() {
    const std::size_t start_line = line_;
    std::string text;
    while (pos_ < src_.size() && ident_char(src_[pos_])) {
      text.push_back(src_[pos_]);
      ++pos_;
    }
    // Raw string literal: R"delim(...)delim" (and u8R/uR/LR prefixes).
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "LR")) {
      lex_raw_string(start_line);
      return;
    }
    // Ordinary prefixed string/char literal (u8"x", L'x', ...).
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      lex_string();
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        (text == "u8" || text == "u" || text == "U" || text == "L")) {
      lex_char();
      return;
    }
    push(TokenKind::kIdentifier, std::move(text), start_line);
  }

  void lex_number() {
    const std::size_t start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      const bool exponent_sign =
          (c == '+' || c == '-') && !text.empty() &&
          (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
           text.back() == 'P');
      if (ident_char(c) || c == '.' || c == '\'' || exponent_sign) {
        text.push_back(c);
        ++pos_;
        continue;
      }
      break;
    }
    push(TokenKind::kNumber, std::move(text), start_line);
  }

  void lex_string() {
    const std::size_t start_line = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text.push_back(src_[pos_]);
        text.push_back(src_[pos_ + 1]);
        if (src_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') ++line_;  // unterminated; keep line count sane
      text.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    push(TokenKind::kString, std::move(text), start_line);
  }

  void lex_raw_string(std::size_t start_line) {
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size()) ++pos_;  // (
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        pos_ += closer.size();
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text.push_back(src_[pos_]);
      ++pos_;
    }
    push(TokenKind::kString, std::move(text), start_line);
  }

  void lex_char() {
    const std::size_t start_line = line_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text.push_back(src_[pos_]);
        text.push_back(src_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // stray quote, not a literal
      text.push_back(src_[pos_]);
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    push(TokenKind::kChar, std::move(text), start_line);
  }

  void lex_punct() {
    if (src_[pos_] == ':' && pos_ + 1 < src_.size() &&
        src_[pos_ + 1] == ':') {
      push(TokenKind::kPunct, "::", line_);
      pos_ += 2;
      return;
    }
    push(TokenKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  bool at_line_start_ = true;
  TokenStream out_;
};

}  // namespace

TokenStream tokenize(std::string_view source) { return Lexer(source).run(); }

}  // namespace gridsched::lint
