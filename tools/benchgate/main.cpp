// gridsched_benchgate: CI regression gate over the committed BENCH_*.json
// baselines. Reads a committed baseline and a freshly generated artifact
// from the same bench binary and applies a per-bench policy (keyed on the
// artifact's "bench" field):
//
//   kernel     hard-fail when any deterministic kernel counter (events,
//              dispatches, cycles, failures, interruptions, makespan,
//              n_jobs) drifts from the baseline — those are pure functions
//              of (scenario, seed), so a drift is a semantic change that
//              must be reviewed (and the baseline regenerated) rather
//              than absorbed silently. Throughput (events/sec) and peak
//              RSS are hardware-dependent: deviations beyond the advisory
//              band only warn. Streaming rows (synth-stream-*) get an
//              extra advisory: resident growth per streamed job
//              (rss_delta_bytes / n_jobs) beyond --stream-bytes-per-job
//              suggests the kernel stopped holding O(active) job state.
//
//   ga_decode  hard-fail when the fresh run reports any steady-state
//              allocation on the decode fast path (fast_allocs_per_decode
//              != 0; ROADMAP "Decode fast-path invariants") or when the
//              paper-shaped target-512x16 speedup falls below the floor
//              (--speedup-floor, default 1.5 — well under the committed
//              ~3.7x, so only a real fast-path regression trips it).
//              ns-per-decode comparisons against the baseline are
//              advisory.
//
// Exit codes: 0 pass (warnings allowed), 1 hard failure, 2 usage/IO
// error. The gate never launches the benches itself — CI runs them and
// hands the artifacts over — so it stays dependency-free and instant.
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using gridsched::util::Cli;
namespace json = gridsched::util::json;

struct Gate {
  int hard = 0;
  int warnings = 0;

  void fail(const std::string& message) {
    std::fprintf(stderr, "benchgate: [FAIL] %s\n", message.c_str());
    ++hard;
  }
  void warn(const std::string& message) {
    std::fprintf(stderr, "benchgate: [warn] %s\n", message.c_str());
    ++warnings;
  }
};

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

/// Find the row whose "scenario" (plus optional shape keys) matches; the
/// bench artifacts key rows by scenario name.
const json::Value* find_row(const json::Value& rows, const json::Value& like,
                            const std::vector<const char*>& keys) {
  for (const json::Value& row : rows.items()) {
    bool match = true;
    for (const char* key : keys) {
      const json::Value* a = row.find(key);
      const json::Value* b = like.find(key);
      if (a == nullptr || b == nullptr) return nullptr;
      const bool equal = a->is_string()
                             ? a->as_string() == b->as_string()
                             : a->as_number() == b->as_number();
      if (!equal) {
        match = false;
        break;
      }
    }
    if (match) return &row;
  }
  return nullptr;
}

/// Hard-compare a deterministic numeric field (exact equality — both
/// sides are bit-deterministic in the same seed).
void check_exact(Gate& gate, const std::string& where,
                 const json::Value& baseline, const json::Value& fresh,
                 const char* key) {
  const double expect = baseline.at(key).as_number();
  const double got = fresh.at(key).as_number();
  if (got != expect) {
    gate.fail(where + ": deterministic field \"" + key + "\" drifted (" +
              fmt(expect) + " -> " + fmt(got) +
              ") — review the change and regenerate the baseline");
  }
}

/// Advisory throughput comparison: `fresh` below `(1 - band) * baseline`
/// warns (higher is better).
void advise_rate(Gate& gate, const std::string& where,
                 const json::Value& baseline, const json::Value& fresh,
                 const char* key, double band) {
  const json::Value* expect = baseline.find(key);
  const json::Value* got = fresh.find(key);
  if (expect == nullptr || got == nullptr) return;
  if (expect->as_number() <= 0.0) return;
  const double ratio = got->as_number() / expect->as_number();
  if (ratio < 1.0 - band) {
    gate.warn(where + ": " + std::string(key) + " at " +
              fmt(ratio * 100.0) + "% of baseline (" +
              fmt(expect->as_number()) + " -> " + fmt(got->as_number()) +
              ") — advisory; hardware-dependent");
  }
}

void gate_kernel(Gate& gate, const json::Value& baseline,
                 const json::Value& fresh, double band,
                 double stream_bytes_per_job) {
  if (baseline.at("seed").as_uint() != fresh.at("seed").as_uint() ||
      baseline.at("quick").as_bool() != fresh.at("quick").as_bool()) {
    gate.fail("kernel: baseline and fresh artifacts were generated with "
              "different --seed/--quick shapes; rerun bench_kernel with "
              "the baseline's flags");
    return;
  }
  static const std::vector<const char*> kRowKey = {"scenario"};
  for (const json::Value& row : baseline.at("scenarios").items()) {
    const std::string& name = row.at("scenario").as_string();
    const json::Value* match = find_row(fresh.at("scenarios"), row, kRowKey);
    if (match == nullptr) {
      gate.fail("kernel: scenario \"" + name +
                "\" is in the baseline but not in the fresh artifact");
      continue;
    }
    const std::string where = "kernel/" + name;
    for (const char* key : {"n_jobs", "events", "dispatches", "cycles",
                            "failures", "interruptions", "makespan"}) {
      check_exact(gate, where, row, *match, key);
    }
    advise_rate(gate, where, row, *match, "events_per_sec", band);
    advise_rate(gate, where, row, *match, "dispatches_per_sec", band);
  }
  // Streaming rows carry the O(active)-memory claim: resident growth per
  // job must stay far below the footprint of a materialised job record.
  // Self-check on the fresh artifact (no baseline needed) and advisory —
  // RSS attribution is allocator- and page-cache-dependent.
  for (const json::Value& row : fresh.at("scenarios").items()) {
    const std::string& name = row.at("scenario").as_string();
    if (name.rfind("synth-stream", 0) != 0) continue;
    const json::Value* delta = row.find("rss_delta_bytes");
    const double n_jobs = row.at("n_jobs").as_number();
    if (delta == nullptr || n_jobs <= 0.0) continue;
    const double per_job = delta->as_number() / n_jobs;
    if (per_job > stream_bytes_per_job) {
      gate.warn("kernel/" + name + ": " + fmt(per_job) +
                " resident bytes per streamed job (limit " +
                fmt(stream_bytes_per_job) +
                ") — the O(active) streaming memory claim looks violated");
    }
  }
  // Peak RSS: lower is better; warn when fresh exceeds (1 + band) * base.
  const double base_rss =
      static_cast<double>(baseline.at("peak_rss_bytes").as_uint());
  const double got_rss =
      static_cast<double>(fresh.at("peak_rss_bytes").as_uint());
  if (base_rss > 0.0 && got_rss > (1.0 + band) * base_rss) {
    gate.warn("kernel: peak_rss_bytes grew " + fmt(got_rss / base_rss) +
              "x over baseline (" + fmt(base_rss) + " -> " + fmt(got_rss) +
              ") — advisory; hardware-dependent");
  }
}

void gate_ga_decode(Gate& gate, const json::Value& baseline,
                    const json::Value& fresh, double band,
                    double speedup_floor) {
  std::optional<double> target_speedup;
  for (const json::Value& row : fresh.at("decode").items()) {
    const std::string& name = row.at("scenario").as_string();
    const std::string where =
        "ga_decode/" + name + "/" +
        std::to_string(row.at("n_jobs").as_uint()) + "x" +
        std::to_string(row.at("n_sites").as_uint());
    // ROADMAP invariant, not a baseline comparison: the fresh run itself
    // must report a heap-free steady-state decode.
    if (row.at("fast_allocs_per_decode").as_uint() != 0) {
      gate.fail(where + ": fast path allocated (fast_allocs_per_decode = " +
                std::to_string(row.at("fast_allocs_per_decode").as_uint()) +
                ", expected 0) — the decode arena invariant regressed");
    }
    if (name == "target-512x16") {
      target_speedup = row.at("speedup").as_number();
    }
    static const std::vector<const char*> kRowKey = {"scenario", "n_jobs",
                                                     "n_sites"};
    if (const json::Value* match =
            find_row(baseline.at("decode"), row, kRowKey)) {
      // Lower ns/decode is better — compare as a rate via the inverse.
      const double expect = match->at("fast_ns_per_decode").as_number();
      const double got = row.at("fast_ns_per_decode").as_number();
      if (expect > 0.0 && got > (1.0 + band) * expect) {
        gate.warn(where + ": fast_ns_per_decode slowed " +
                  fmt(got / expect) + "x over baseline (" + fmt(expect) +
                  " -> " + fmt(got) + ") — advisory; hardware-dependent");
      }
    }
  }
  if (!target_speedup.has_value()) {
    gate.fail("ga_decode: fresh artifact has no target-512x16 row — the "
              "paper-shaped decode benchmark must run");
  } else if (*target_speedup < speedup_floor) {
    gate.fail("ga_decode: target-512x16 speedup " + fmt(*target_speedup) +
              "x is below the floor " + fmt(speedup_floor) +
              "x — the decode fast path lost its advantage");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::optional<std::string> baseline_path = cli.get("baseline");
  const std::optional<std::string> fresh_path = cli.get("fresh");
  if (!baseline_path.has_value() || !fresh_path.has_value()) {
    std::fprintf(
        stderr,
        "usage: %s --baseline=BENCH_x.json --fresh=fresh.json\n"
        "           [--band=0.5] [--speedup-floor=1.5]\n"
        "           [--stream-bytes-per-job=64]\n"
        "Compares a fresh bench artifact against its committed baseline;\n"
        "exits 1 on hard regressions, 0 on pass (advisory warnings ok).\n",
        cli.program().c_str());
    return 2;
  }
  const double band = cli.get_or("band", 0.5);
  const double speedup_floor = cli.get_or("speedup-floor", 1.5);
  const double stream_bytes_per_job = cli.get_or("stream-bytes-per-job", 64.0);

  Gate gate;
  try {
    const json::Value baseline = json::parse_file(*baseline_path);
    const json::Value fresh = json::parse_file(*fresh_path);
    const std::string& kind = fresh.at("bench").as_string();
    if (baseline.at("bench").as_string() != kind) {
      std::fprintf(stderr,
                   "benchgate: baseline is \"%s\" but fresh is \"%s\" — "
                   "mismatched artifacts\n",
                   baseline.at("bench").as_string().c_str(), kind.c_str());
      return 2;
    }
    if (kind == "kernel") {
      gate_kernel(gate, baseline, fresh, band, stream_bytes_per_job);
    } else if (kind == "ga_decode") {
      gate_ga_decode(gate, baseline, fresh, band, speedup_floor);
    } else {
      std::fprintf(stderr, "benchgate: no policy for bench \"%s\"\n",
                   kind.c_str());
      return 2;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "benchgate: %s\n", error.what());
    return 2;
  }
  if (gate.hard > 0) {
    std::fprintf(stderr, "benchgate: %d hard failure%s, %d warning%s\n",
                 gate.hard, gate.hard == 1 ? "" : "s", gate.warnings,
                 gate.warnings == 1 ? "" : "s");
    return 1;
  }
  std::fprintf(stderr, "benchgate: pass (%d warning%s)\n", gate.warnings,
               gate.warnings == 1 ? "" : "s");
  return 0;
}
