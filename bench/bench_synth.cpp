// Synthetic-scenario sweep: every registered synth-* scenario (ETC
// consistency classes, arrival processes, security regimes) against every
// registry heuristic plus the GAs. Deterministic in --seed: two runs with
// the same seed print identical makespan/slowdown tables, so the output
// doubles as a reproducibility check for the generator.
#include "bench_common.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const util::Cli cli(argc, argv);
  const auto jobs = static_cast<std::size_t>(
      cli.get_or("jobs", std::int64_t{args.quick ? 200 : 500}));

  bench::print_banner(
      "Synthetic scenario sweep (N=" + std::to_string(jobs) +
          " per scenario, seed=" + std::to_string(args.seed) + ")",
      "heterogeneity class and arrival burstiness dominate makespan; the "
      "risky security regime trades failures for response time");

  // All registry heuristics under the f-risky policy, plus the GAs.
  std::vector<exp::AlgorithmSpec> specs;
  for (const std::string& name : sched::heuristic_names()) {
    specs.push_back(
        exp::heuristic_spec(name, security::RiskPolicy::f_risky(args.f)));
  }
  core::StgaConfig stga = bench::paper_stga();
  if (args.quick) {
    stga.ga.population = 50;
    stga.ga.generations = 20;
  }
  specs.push_back(exp::stga_spec(stga));
  specs.push_back(exp::classic_ga_spec(stga));

  util::Table table({"scenario", "algorithm", "makespan (s)", "slowdown",
                     "N_fail", "N_risk", "avg response (s)"});
  for (const std::string& name : exp::scenario_names()) {
    if (name.rfind("synth-", 0) != 0) continue;
    const exp::Scenario scenario = exp::make_scenario(name, jobs);
    for (const auto& spec : specs) {
      const auto result =
          exp::run_replicated(scenario, spec, args.reps, args.seed);
      const auto& agg = result.aggregate;
      table.row()
          .cell(name)
          .cell(spec.name)
          .cell(agg.makespan().mean(), 3)
          .cell(agg.slowdown().mean(), 2)
          .cell(agg.n_fail().mean(), 0)
          .cell(agg.n_risk().mean(), 0)
          .cell(agg.avg_response().mean(), 3);
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
