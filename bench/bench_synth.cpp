// Synthetic-scenario sweep: every registered synth-* scenario (ETC
// consistency classes, arrival processes, security regimes) against every
// registry heuristic plus the GAs — expressed as a declarative campaign
// and sharded across the thread pool (--threads=N; 1 = serial).
// Deterministic in --seed: per-cell seeds hash (seed, scenario, policy,
// replication), so two runs with the same seed print identical
// makespan/slowdown tables for ANY thread count, and the output doubles
// as a reproducibility check for the generator and the campaign layer.
#include "bench_common.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const util::Cli cli(argc, argv);
  const auto jobs = static_cast<std::size_t>(
      cli.get_or("jobs", std::int64_t{args.quick ? 200 : 500}));

  bench::print_banner(
      "Synthetic scenario sweep (N=" + std::to_string(jobs) +
          " per scenario, seed=" + std::to_string(args.seed) + ")",
      "heterogeneity class and arrival burstiness dominate makespan; the "
      "risky security regime trades failures for response time");

  exp::campaign::CampaignSpec spec;
  spec.name = "bench-synth";
  spec.seed = args.seed;
  spec.replications = args.reps;
  spec.metrics = {"makespan", "slowdown", "n_fail", "n_risk", "avg_response"};
  for (const std::string& name : exp::scenario_names()) {
    if (name.rfind("synth-", 0) != 0) continue;
    exp::campaign::ScenarioRef ref;
    ref.name = name;
    ref.n_jobs = jobs;
    spec.scenarios.push_back(std::move(ref));
  }
  // All registry heuristics under the f-risky policy, plus the GAs.
  for (const std::string& name : sched::heuristic_names()) {
    exp::campaign::PolicyRef ref;
    ref.algo = name;
    ref.mode = "f-risky";
    ref.f = args.f;
    spec.policies.push_back(std::move(ref));
  }
  core::StgaConfig stga = bench::paper_stga();
  if (args.quick) {
    stga.ga.population = 50;
    stga.ga.generations = 20;
  }
  for (const char* ga_algo : {"stga", "ga"}) {
    exp::campaign::PolicyRef ref;
    ref.algo = ga_algo;
    ref.stga = stga;
    spec.policies.push_back(std::move(ref));
  }

  exp::campaign::RunnerOptions options;
  options.threads = static_cast<std::size_t>(
      cli.get_or("threads", std::int64_t{0}));
  // Full sweeps run the GAs for minutes: stream per-cell progress to
  // stderr so the (stdout) table stays clean and diffable.
  options.on_cell = [&spec](const exp::campaign::CellResult& cell,
                            std::size_t done, std::size_t total) {
    std::fprintf(stderr, "[%zu/%zu] %s / %s rep %zu: makespan %.0f s\n",
                 done, total,
                 spec.scenarios[cell.cell.scenario].display().c_str(),
                 spec.policies[cell.cell.policy].display().c_str(),
                 cell.cell.replication, cell.metrics.makespan);
  };
  exp::campaign::CampaignRunner runner(options);
  const exp::campaign::CampaignResult result = runner.run(spec);
  std::printf("%s\n", exp::campaign::render_table(result).c_str());
  // Wall clock and memory stay out of any --out-json artifact (that one
  // is byte-stable); they live on the human-facing footer only.
  std::printf("peak RSS: %.1f MiB\n", bench::peak_rss_mib());

  if (const auto path = cli.get("out-json")) {
    exp::campaign::JsonFileSink(*path).consume(result);
    std::printf("wrote %s\n", path->c_str());
  }
  if (const auto path = cli.get("profile")) {
    exp::campaign::ProfileFileSink(*path).consume(result);
    std::printf("wrote %s\n", path->c_str());
  }
  return 0;
}
