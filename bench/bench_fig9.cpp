// Figure 9(a-c): per-site utilization (%) across the 12 NAS sites for the
// Min-Min family, the Sufferage family, and the three best performers.
// Expected shape: secure leaves the low-SL sites idle (~3 of 12 unused);
// f-risky leaves fewer idle; risky and STGA leave none, with STGA the most
// balanced.
#include "bench_common.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 9 -- per-site utilization (%) on the NAS trace (N=" +
          std::to_string(args.nas_jobs) + ")",
      "secure: ~3 idle sites; f-risky: fewer idle; risky/STGA: none idle, "
      "STGA most balanced");

  const exp::Scenario scenario = exp::nas_scenario(args.nas_jobs);
  const auto roster = exp::paper_roster(args.f, bench::paper_stga());

  std::vector<std::string> headers = {"site"};
  for (const auto& spec : roster) headers.push_back(spec.name);
  util::Table table(std::move(headers));

  std::vector<std::vector<double>> per_algorithm;
  std::vector<std::size_t> idle_counts;
  for (const auto& spec : roster) {
    const auto result =
        exp::run_replicated(scenario, spec, args.reps, args.seed);
    std::vector<double> utils;
    std::size_t idle = 0;
    for (const auto& stats : result.aggregate.site_utilization()) {
      utils.push_back(100.0 * stats.mean());
      if (stats.mean() < 0.01) ++idle;
    }
    per_algorithm.push_back(std::move(utils));
    idle_counts.push_back(idle);
    std::fflush(stdout);
  }

  const std::size_t n_sites = per_algorithm.front().size();
  for (std::size_t s = 0; s < n_sites; ++s) {
    table.row().cell(s + 1);
    for (const auto& utils : per_algorithm) table.cell(utils[s], 1);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Idle sites (<1%% utilization):");
  for (std::size_t a = 0; a < roster.size(); ++a) {
    std::printf("  %s=%zu", roster[a].name.c_str(), idle_counts[a]);
  }
  std::printf("\n");
  return 0;
}
