// Decode fast-path microbenchmark (PR 2): times the retained reference
// decode (fresh order vector + stable_sort + deep-copied availability)
// against the DecodeScratch fast path over the synthetic scenario registry
// (consistent/inconsistent x hi/lo heterogeneity, 64-1024 jobs), counts
// heap allocations per decode by replacing global new/delete, and measures
// end-to-end per-batch GA latency at the ISSUE's 512 jobs x 16 sites
// target. Emits machine-readable JSON (default BENCH_ga_decode.json) so the
// perf trajectory accumulates across PRs; see README "Performance".
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "decode_harness.hpp"  // counting allocator + scenario_batch

namespace {

using namespace gridsched;
using bench::allocation_count;
using bench::scenario_batch;
using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() -
                                                   start).count();
}

/// The ISSUE's per-batch target shape: 512 jobs over 16 heterogeneous sites.
sim::SchedulerContext target_batch(std::size_t n_jobs, std::size_t n_sites,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  sim::SchedulerContext context;
  context.now = 1000.0;
  for (std::size_t s = 0; s < n_sites; ++s) {
    const auto nodes = static_cast<unsigned>(1 + rng.index(16));
    context.sites.push_back({static_cast<sim::SiteId>(s), nodes,
                             rng.uniform(0.5, 4.0), rng.uniform(0.4, 1.0)});
    sim::NodeAvailability avail(nodes, 0.0);
    avail.reserve(1, rng.uniform(0.0, 2000.0), 0.0);
    context.avail.push_back(avail);
  }
  for (std::size_t j = 0; j < n_jobs; ++j) {
    sim::BatchJob job;
    job.id = static_cast<sim::JobId>(j);
    job.work = rng.uniform(10.0, 5000.0);
    job.nodes = 1u << rng.index(4);
    job.demand = rng.uniform(0.6, 0.9);
    context.jobs.push_back(job);
  }
  return context;
}

struct DecodeRow {
  std::string scenario;
  std::size_t n_jobs = 0;
  std::size_t n_sites = 0;
  double reference_ns = 0.0;
  double fast_ns = 0.0;
  std::uint64_t reference_allocs = 0;
  std::uint64_t fast_allocs = 0;
};

DecodeRow measure_decode(const std::string& label,
                         const sim::SchedulerContext& context,
                         std::size_t repeats, std::uint64_t seed) {
  const core::GaProblem problem =
      core::build_problem(context, security::RiskPolicy::risky());
  const core::FitnessParams params{0.6, 2.0};
  util::Rng rng(seed);
  std::vector<core::Chromosome> chromosomes;
  for (int i = 0; i < 16; ++i) {
    chromosomes.push_back(core::random_chromosome(problem, rng));
  }
  core::DecodeScratch scratch;
  scratch.bind(problem);

  DecodeRow row;
  row.scenario = label;
  row.n_jobs = problem.n_jobs();
  row.n_sites = problem.n_sites();

  double sink = 0.0;
  // Warm both paths, then count allocations over one call each.
  sink += core::decode_fitness_reference(problem, chromosomes[0], params);
  sink += core::decode_fitness(problem, chromosomes[0], params, scratch);
  std::uint64_t mark = allocation_count();
  sink += core::decode_fitness_reference(problem, chromosomes[0], params);
  row.reference_allocs = allocation_count() - mark;
  mark = allocation_count();
  sink += core::decode_fitness(problem, chromosomes[0], params, scratch);
  row.fast_allocs = allocation_count() - mark;

  const std::size_t calls = repeats * chromosomes.size();
  auto start = Clock::now();
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const core::Chromosome& chromosome : chromosomes) {
      sink += core::decode_fitness_reference(problem, chromosome, params);
    }
  }
  row.reference_ns = elapsed_ms(start) * 1e6 / static_cast<double>(calls);

  start = Clock::now();
  for (std::size_t r = 0; r < repeats; ++r) {
    for (const core::Chromosome& chromosome : chromosomes) {
      sink += core::decode_fitness(problem, chromosome, params, scratch);
    }
  }
  row.fast_ns = elapsed_ms(start) * 1e6 / static_cast<double>(calls);
  if (sink == 42.0) std::printf("#");  // defeat dead-code elimination
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const util::Cli cli(argc, argv);
  const std::string out_path =
      cli.get_or("out", std::string("BENCH_ga_decode.json"));

  bench::print_banner(
      "GA decode fast path (DecodeScratch vs retained reference)",
      "zero-allocation arena decode is >= 3x faster per batch and >= 5x "
      "lighter on the allocator than the seed implementation");

  // --- decode microbenchmark over the synth registry ------------------------
  const std::vector<std::string> classes = {
      "synth-consistent-hihi", "synth-consistent-lolo",
      "synth-inconsistent-hihi", "synth-inconsistent-lolo"};
  const std::vector<std::size_t> sizes =
      args.quick ? std::vector<std::size_t>{64, 256}
                 : std::vector<std::size_t>{64, 256, 1024};
  const std::size_t repeats = args.quick ? 8 : 64;

  std::vector<DecodeRow> rows;
  util::Table table({"scenario", "jobs", "sites", "ref ns/decode",
                     "fast ns/decode", "speedup", "ref allocs", "fast allocs"});
  for (const std::string& name : classes) {
    for (const std::size_t n_jobs : sizes) {
      const auto context = scenario_batch(name, n_jobs, args.seed);
      rows.push_back(measure_decode(
          name, context, repeats,
          util::SeedMix(args.seed).mix(name).mix(n_jobs).seed()));
      const DecodeRow& row = rows.back();
      table.row()
          .cell(row.scenario)
          .cell(static_cast<double>(row.n_jobs), 0)
          .cell(static_cast<double>(row.n_sites), 0)
          .cell(row.reference_ns, 0)
          .cell(row.fast_ns, 0)
          .cell(row.reference_ns / row.fast_ns, 2)
          .cell(static_cast<double>(row.reference_allocs), 0)
          .cell(static_cast<double>(row.fast_allocs), 0);
    }
  }
  // The ISSUE's headline shape, measured with the same harness.
  {
    const auto context = target_batch(512, 16, args.seed);
    rows.push_back(measure_decode("target-512x16", context, repeats,
                                  args.seed));
    const DecodeRow& row = rows.back();
    table.row()
        .cell(row.scenario)
        .cell(static_cast<double>(row.n_jobs), 0)
        .cell(static_cast<double>(row.n_sites), 0)
        .cell(row.reference_ns, 0)
        .cell(row.fast_ns, 0)
        .cell(row.reference_ns / row.fast_ns, 2)
        .cell(static_cast<double>(row.reference_allocs), 0)
        .cell(static_cast<double>(row.fast_allocs), 0);
  }
  std::printf("%s\n", table.str().c_str());

  // --- per-batch GA latency at 512 jobs x 16 sites --------------------------
  const std::size_t ga_jobs = args.quick ? 128 : 512;
  const std::size_t population = args.quick ? 50 : 200;
  const std::size_t generations = args.quick ? 20 : 100;
  const auto context = target_batch(ga_jobs, 16, args.seed);
  const core::GaProblem problem =
      core::build_problem(context, security::RiskPolicy::risky());
  const core::FitnessParams fitness_params{0.6, 2.0};

  // The seed implementation's per-batch evaluation bill: population x
  // (generations + 1) reference decodes — a strict lower bound on its
  // per-batch latency. Replayed here with the retained reference decode.
  util::Rng bill_rng = util::SeedMix(args.seed).mix("bill").rng();
  std::vector<core::Chromosome> stream;
  for (int i = 0; i < 32; ++i) {
    stream.push_back(core::random_chromosome(problem, bill_rng));
  }
  const std::size_t bill_calls = population * (generations + 1);
  double sink = 0.0;
  auto start = Clock::now();
  for (std::size_t i = 0; i < bill_calls; ++i) {
    sink += core::decode_fitness_reference(problem, stream[i % stream.size()],
                                           fitness_params);
  }
  const double reference_bill_ms = elapsed_ms(start);

  // The new engine end to end (scratch decode + memoization + prefix-sum
  // selection), same budget.
  core::GaParams ga;
  ga.population = population;
  ga.generations = generations;
  ga.fitness = fitness_params;
  util::Rng ga_rng = util::SeedMix(args.seed).mix("ga").rng();
  start = Clock::now();
  const core::GaResult result = core::evolve(problem, {}, ga, ga_rng);
  const double evolve_ms = elapsed_ms(start);
  sink += result.best_fitness;
  if (sink == 42.0) std::printf("#");

  const double speedup = reference_bill_ms / evolve_ms;
  std::printf(
      "per-batch GA @ %zu jobs x 16 sites (pop %zu, gens %zu):\n"
      "  reference evaluation bill : %.1f ms (%zu reference decodes)\n"
      "  evolve() end-to-end       : %.1f ms (%llu decodes, %llu memo hits)\n"
      "  per-batch speedup         : %.2fx (vs the seed's evaluation bill "
      "alone)\n",
      ga_jobs, population, generations, reference_bill_ms, bill_calls,
      evolve_ms, static_cast<unsigned long long>(result.evaluations),
      static_cast<unsigned long long>(result.memo_hits), speedup);

  // --- observability overhead -----------------------------------------------
  // The same evolve with a GaProfile attached: the per-generation clock
  // reads and profile rows are the only extra work, and the GaResult must
  // stay bit-identical. --check-overhead=PCT turns the measurement into
  // an exit-code assertion so CI can gate regressions.
  util::Rng profiled_rng = util::SeedMix(args.seed).mix("ga").rng();
  core::GaProfile profile;
  start = Clock::now();
  const core::GaResult profiled =
      core::evolve(problem, {}, ga, profiled_rng, nullptr, &profile);
  const double profiled_ms = elapsed_ms(start);
  sink += profiled.best_fitness;
  if (profiled.best_fitness != result.best_fitness ||
      profiled.evaluations != result.evaluations) {
    std::fprintf(stderr,
                 "FAIL: profiled evolve() diverged from the unprofiled "
                 "run (profiling must be observation-only)\n");
    return 1;
  }
  const double overhead_pct =
      evolve_ms > 0.0 ? (profiled_ms - evolve_ms) / evolve_ms * 100.0 : 0.0;
  std::printf(
      "  evolve() with GaProfile   : %.1f ms (%zu generation rows, "
      "%+.2f%% overhead)\n"
      "  peak RSS                  : %.1f MiB\n",
      profiled_ms, profile.generations.size(), overhead_pct,
      bench::peak_rss_mib());
  if (const auto limit = cli.get("check-overhead")) {
    const double max_pct = std::stod(*limit);
    if (overhead_pct > max_pct) {
      std::fprintf(stderr,
                   "FAIL: GA profiling overhead %.2f%% exceeds the "
                   "--check-overhead=%.2f%% budget\n",
                   overhead_pct, max_pct);
      return 1;
    }
  }

  // --- JSON -----------------------------------------------------------------
  std::vector<std::string> decode_rows;
  decode_rows.reserve(rows.size());
  for (const DecodeRow& row : rows) {
    decode_rows.push_back(
        bench::JsonObject()
            .text("scenario", row.scenario)
            .integer("n_jobs", row.n_jobs)
            .integer("n_sites", row.n_sites)
            .num("reference_ns_per_decode", row.reference_ns, 1)
            .num("fast_ns_per_decode", row.fast_ns, 1)
            .num("speedup", row.reference_ns / row.fast_ns, 3)
            .integer("reference_allocs_per_decode", row.reference_allocs)
            .integer("fast_allocs_per_decode", row.fast_allocs)
            .str());
  }
  const bench::JsonObject document =
      bench::JsonObject()
          .text("bench", "ga_decode")
          .integer("seed", args.seed)
          .boolean("quick", args.quick)
          .raw("decode", bench::json_array(decode_rows))
          .raw("ga_batch", bench::JsonObject()
                               .integer("n_jobs", ga_jobs)
                               .integer("n_sites", 16)
                               .integer("population", population)
                               .integer("generations", generations)
                               .num("reference_eval_bill_ms",
                                    reference_bill_ms, 2)
                               .num("evolve_ms", evolve_ms, 2)
                               .num("per_batch_speedup", speedup, 3)
                               .integer("evaluations", result.evaluations)
                               .integer("memo_hits", result.memo_hits)
                               .str())
          .raw("observability",
               bench::JsonObject()
                   .num("profiled_evolve_ms", profiled_ms, 2)
                   .num("profile_overhead_pct", overhead_pct, 2)
                   .integer("peak_rss_bytes", obs::peak_rss_bytes())
                   .str());
  if (!bench::write_bench_json(out_path, document)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
