// Shared plumbing for the per-figure bench binaries: flag parsing, the
// paper-roster runners and table helpers. Every binary runs with no
// arguments and prints the same rows/series the paper reports; flags let
// you scale the experiment (--jobs, --reps, --seed, --f, ...).
#pragma once

#include <cstdio>
#include <string>

#include "gridsched.hpp"

namespace gridsched::bench {

struct BenchArgs {
  std::size_t reps = 1;  // the paper reports single-trace runs; raise for CIs
  std::uint64_t seed = 20050419;  // IPDPS 2005 vintage
  double f = 0.5;                 // paper's chosen risk bound
  std::size_t nas_jobs = 16000;   // paper Table 1
  std::size_t psa_jobs = 1000;
  bool quick = false;             // shrink everything for CI-style runs
};

inline BenchArgs parse_args(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  BenchArgs args;
  args.reps = static_cast<std::size_t>(
      cli.get_or("reps", static_cast<std::int64_t>(args.reps)));
  args.seed = static_cast<std::uint64_t>(
      cli.get_or("seed", static_cast<std::int64_t>(args.seed)));
  args.f = cli.get_or("f", args.f);
  args.nas_jobs = static_cast<std::size_t>(
      cli.get_or("nas-jobs", static_cast<std::int64_t>(args.nas_jobs)));
  args.psa_jobs = static_cast<std::size_t>(
      cli.get_or("psa-jobs", static_cast<std::int64_t>(args.psa_jobs)));
  args.quick = cli.get_or("quick", false);
  if (args.quick) {
    args.nas_jobs = std::min<std::size_t>(args.nas_jobs, 2000);
    args.psa_jobs = std::min<std::size_t>(args.psa_jobs, 300);
    args.reps = 1;
  }
  return args;
}

inline void print_banner(const std::string& id, const std::string& claim) {
  std::printf("============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper expectation: %s\n", claim.c_str());
  std::printf("============================================================\n");
}

/// Paper-default STGA configuration (Table 1).
inline core::StgaConfig paper_stga() {
  core::StgaConfig config;
  config.ga.population = 200;
  config.ga.generations = 100;
  config.ga.crossover_prob = 0.8;
  config.ga.mutation_prob = 0.01;
  config.table_capacity = 150;
  config.similarity_threshold = 0.8;
  return config;
}

}  // namespace gridsched::bench
