// Shared plumbing for the per-figure bench binaries: flag parsing, the
// paper-roster runners, table helpers and the BENCH_*.json emission
// helpers (one ordered-key writer instead of per-binary fprintf blocks).
// Every binary runs with no arguments and prints the same rows/series the
// paper reports; flags let you scale the experiment (--jobs, --reps,
// --seed, --f, ...).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gridsched.hpp"

namespace gridsched::bench {

struct BenchArgs {
  std::size_t reps = 1;  // the paper reports single-trace runs; raise for CIs
  std::uint64_t seed = 20050419;  // IPDPS 2005 vintage
  double f = 0.5;                 // paper's chosen risk bound
  std::size_t nas_jobs = 16000;   // paper Table 1
  std::size_t psa_jobs = 1000;
  bool quick = false;             // shrink everything for CI-style runs
};

inline BenchArgs parse_args(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  BenchArgs args;
  args.reps = static_cast<std::size_t>(
      cli.get_or("reps", static_cast<std::int64_t>(args.reps)));
  args.seed = static_cast<std::uint64_t>(
      cli.get_or("seed", static_cast<std::int64_t>(args.seed)));
  args.f = cli.get_or("f", args.f);
  args.nas_jobs = static_cast<std::size_t>(
      cli.get_or("nas-jobs", static_cast<std::int64_t>(args.nas_jobs)));
  args.psa_jobs = static_cast<std::size_t>(
      cli.get_or("psa-jobs", static_cast<std::int64_t>(args.psa_jobs)));
  args.quick = cli.get_or("quick", false);
  if (args.quick) {
    args.nas_jobs = std::min<std::size_t>(args.nas_jobs, 2000);
    args.psa_jobs = std::min<std::size_t>(args.psa_jobs, 300);
    args.reps = 1;
  }
  return args;
}

inline void print_banner(const std::string& id, const std::string& claim) {
  std::printf("============================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("Paper expectation: %s\n", claim.c_str());
  std::printf("============================================================\n");
}

/// Ordered single-line JSON object builder for BENCH_*.json rows and
/// sections: keys render in insertion order, doubles via
/// util::json::number (shortest-exact), strings RFC-8259-quoted. The
/// bytes are a pure function of the values fed in — the deterministic
/// fields of a bench artifact stay diffable across runs.
class JsonObject {
 public:
  JsonObject& num(std::string_view key, double value) {
    return raw(key, util::json::number(value));
  }
  /// Measured (timing) values: rounded to `decimals` so artifacts don't
  /// carry 15 digits of timer noise. Deterministic fields use num().
  JsonObject& num(std::string_view key, double value, int decimals) {
    const double scale = std::pow(10.0, decimals);
    return num(key, std::round(value * scale) / scale);
  }
  JsonObject& integer(std::string_view key, std::uint64_t value) {
    return raw(key, std::to_string(value));
  }
  JsonObject& boolean(std::string_view key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  JsonObject& text(std::string_view key, std::string_view value) {
    return raw(key, util::json::quote(value));
  }
  /// Pre-rendered JSON (nested object/array) — caller guarantees syntax.
  JsonObject& raw(std::string_view key, std::string value) {
    fields_.emplace_back(std::string(key), std::move(value));
    return *this;
  }
  [[nodiscard]] std::string str() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += util::json::quote(fields_[i].first);
      out += ": ";
      out += fields_[i].second;
    }
    out += "}";
    return out;
  }

  /// Top-level document form: one field per line, trailing newline.
  [[nodiscard]] std::string document() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += "  ";
      out += util::json::quote(fields_[i].first);
      out += ": ";
      out += fields_[i].second;
      out += i + 1 < fields_.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Render pre-built JSON items as a multi-line array block ("[\n  x,\n
/// ...\n]") so row lists stay readable in committed artifacts.
inline std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += items[i];
  }
  out += items.empty() ? "]" : "\n]";
  return out;
}

/// Write a top-level bench document (JsonObject::document() layout).
/// Returns false (after printing to stderr) when the file cannot be
/// written — bench mains exit nonzero on it.
inline bool write_bench_json(const std::string& path,
                             const JsonObject& document) {
  const std::string body = document.document();
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), out);
  std::fclose(out);
  if (written != body.size()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

/// Peak resident set size in MiB — the footer figure bench_decode and
/// bench_synth both print.
inline double peak_rss_mib() {
  return static_cast<double>(obs::peak_rss_bytes()) / 1048576.0;
}

/// Paper-default STGA configuration (Table 1).
inline core::StgaConfig paper_stga() {
  core::StgaConfig config;
  config.ga.population = 200;
  config.ga.generations = 100;
  config.ga.crossover_prob = 0.8;
  config.ga.mutation_prob = 0.01;
  config.table_capacity = 150;
  config.similarity_threshold = 0.8;
  return config;
}

}  // namespace gridsched::bench
