// Figure 10(a-d): scaling with the PSA job count N = 1000/2000/5000/10000
// for the three best performers (Min-Min f-risky, Sufferage f-risky, STGA):
// makespan, N_fail/N_risk, slowdown ratio and average response time.
// Expected shape: every metric grows monotonically with N; STGA best
// makespan (~6%) and clearly best slowdown/response; the two f-risky
// heuristics within a few % of each other; STGA fails more but risks less.
#include "bench_common.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 10 -- PSA scaling, N = 1000..10000",
      "monotone growth; STGA best makespan/slowdown/response; f-risky pair "
      "within ~1% of each other");

  std::vector<std::size_t> sweep = {1000, 2000, 5000, 10000};
  if (args.quick) sweep = {200, 400};

  util::Table table({"N", "algorithm", "makespan (s)", "N_fail", "N_risk",
                     "slowdown", "avg response (s)"});
  for (const std::size_t n : sweep) {
    const exp::Scenario scenario = exp::psa_scenario(n);
    for (const auto& spec : exp::scaling_roster(args.f, bench::paper_stga())) {
      const auto result =
          exp::run_replicated(scenario, spec, args.reps, args.seed);
      const auto& agg = result.aggregate;
      table.row()
          .cell(n)
          .cell(spec.name)
          .cell(agg.makespan().mean(), 3)
          .cell(agg.n_fail().mean(), 0)
          .cell(agg.n_risk().mean(), 0)
          .cell(agg.slowdown().mean(), 2)
          .cell(agg.avg_response().mean(), 3);
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
