// Ablation study (extension): which STGA design choices matter?
//   * history table on/off (STGA vs classic GA)
//   * heuristic seeding on/off
//   * lookup-table capacity and similarity threshold
//   * fitness shaping (flowtime / expected-rework weights)
//   * failure-detection model (at-end vs uniform fraction)
// All on the PSA workload (N = 1000 by default).
#include "bench_common.hpp"

using namespace gridsched;

namespace {

exp::AlgorithmSpec variant(const std::string& name, core::StgaConfig config,
                           bool classic = false) {
  exp::AlgorithmSpec spec =
      classic ? exp::classic_ga_spec(config) : exp::stga_spec(config);
  spec.name = name;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Ablation -- STGA design choices (PSA, N=" +
          std::to_string(args.psa_jobs) + ")",
      "history + heuristic seeds drive the win; tiny tables / strict "
      "thresholds reduce reuse; fitness shaping trades makespan vs response");

  core::StgaConfig base = bench::paper_stga();
  // A deliberately tight budget so the initial population quality shows.
  base.ga.generations = 30;

  std::vector<exp::AlgorithmSpec> variants;
  variants.push_back(variant("STGA (paper config)", base));
  {
    core::StgaConfig config = base;
    config.heuristic_seeds = false;
    variants.push_back(variant("STGA, no heuristic seeds", config));
  }
  variants.push_back(variant("classic GA (no history/seeds)", base, true));
  {
    core::StgaConfig config = base;
    config.table_capacity = 10;
    variants.push_back(variant("STGA, table capacity 10", config));
  }
  {
    core::StgaConfig config = base;
    config.similarity_threshold = 0.95;
    variants.push_back(variant("STGA, threshold 0.95", config));
  }
  {
    core::StgaConfig config = base;
    config.similarity_threshold = 0.5;
    variants.push_back(variant("STGA, threshold 0.50", config));
  }
  {
    core::StgaConfig config = base;
    config.ga.fitness = {0.0, 0.0};  // pure makespan objective
    variants.push_back(variant("STGA, pure-makespan fitness", config));
  }
  {
    core::StgaConfig config = base;
    config.ga.fitness = {0.6, 0.0};  // no expected-rework term
    variants.push_back(variant("STGA, no risk penalty", config));
  }

  const exp::Scenario scenario = exp::psa_scenario(args.psa_jobs);
  util::Table table({"variant", "makespan (s)", "avg response (s)",
                     "slowdown", "N_fail", "sched time (s)"});
  for (const auto& spec : variants) {
    const auto result =
        exp::run_replicated(scenario, spec, args.reps, args.seed);
    const auto& agg = result.aggregate;
    table.row()
        .cell(spec.name)
        .cell(agg.makespan().mean(), 3)
        .cell(agg.avg_response().mean(), 3)
        .cell(agg.slowdown().mean(), 2)
        .cell(agg.n_fail().mean(), 0)
        .cell(agg.scheduler_seconds().mean(), 2);
    std::fflush(stdout);
  }
  std::printf("%s\n", table.str().c_str());

  // Failure-detection model ablation on the heuristics.
  util::Table detect({"detection model", "Min-Min risky makespan",
                      "Min-Min risky response"});
  for (const bool at_end : {false, true}) {
    exp::Scenario scenario_d = exp::psa_scenario(args.psa_jobs);
    scenario_d.engine.detection = at_end
                                      ? sim::FailureDetection::kAtEnd
                                      : sim::FailureDetection::kUniformFraction;
    const auto result = exp::run_replicated(
        scenario_d,
        exp::heuristic_spec("min-min", security::RiskPolicy::risky()),
        args.reps, args.seed);
    detect.row()
        .cell(at_end ? "at planned end" : "uniform fraction")
        .cell(result.aggregate.makespan().mean(), 3)
        .cell(result.aggregate.avg_response().mean(), 3);
  }
  std::printf("%s\n", detect.str().c_str());
  return 0;
}
