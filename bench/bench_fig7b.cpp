// Figure 7(b): makespan of a full STGA-scheduled PSA run (N = 1000) as a
// function of the GA generation budget per scheduling round.
// Expected shape: fluctuates below ~25 iterations, converges by ~50, flat
// afterwards (this is the paper's argument for stopping at 100).
#include "bench_common.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 7(b) -- STGA makespan vs GA iterations (PSA, N=" +
          std::to_string(args.psa_jobs) + ")",
      "noisy below ~25 iterations, converged and flat after ~50");

  const exp::Scenario scenario = exp::psa_scenario(args.psa_jobs);
  util::Table table({"iterations", "STGA makespan (s)", "sched time (s)"});

  for (const std::size_t generations :
       {1ul, 5ul, 10ul, 25ul, 40ul, 50ul, 75ul, 100ul, 150ul, 200ul}) {
    core::StgaConfig config = bench::paper_stga();
    config.ga.generations = generations;
    const auto result = exp::run_replicated(scenario, exp::stga_spec(config),
                                            args.reps, args.seed);
    table.row()
        .cell(generations)
        .cell(result.aggregate.makespan().mean(), 3)
        .cell(result.aggregate.scheduler_seconds().mean(), 2);
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
