// Table 2: global comparison on the NAS trace -- alpha (makespan ratio vs
// STGA), beta (response-time ratio vs STGA) and the holistic ranking.
// Expected shape: alpha, beta > 1 for every heuristic; within each family
// secure > f-risky > risky; ranking STGA 1st, risky 2nd, f-risky 3rd,
// secure 4th.
#include "bench_common.hpp"

#include <algorithm>

using namespace gridsched;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Table 2 -- alpha/beta ratios vs STGA on the NAS trace (N=" +
          std::to_string(args.nas_jobs) + ")",
      "paper: Min-Min 1.314/2.035 (secure), 1.157/1.441 (0.5-risky), "
      "1.094/1.262 (risky); Sufferage 1.307/2.011, 1.181/1.555, 1.102/1.275; "
      "ranking secure 4th, f-risky 3rd, risky 2nd, STGA 1st");

  const exp::Scenario scenario = exp::nas_scenario(args.nas_jobs);
  const auto roster = exp::paper_roster(args.f, bench::paper_stga());

  struct Row {
    std::string name;
    double makespan = 0.0;
    double response = 0.0;
  };
  std::vector<Row> rows;
  for (const auto& spec : roster) {
    const auto result =
        exp::run_replicated(scenario, spec, args.reps, args.seed);
    rows.push_back({spec.name, result.aggregate.makespan().mean(),
                    result.aggregate.avg_response().mean()});
    std::fflush(stdout);
  }
  const Row& stga = rows.back();

  // Holistic rank by alpha + beta (ties share a rank), STGA pinned first.
  std::vector<double> scores;
  for (const Row& row : rows) {
    scores.push_back(row.makespan / stga.makespan +
                     row.response / stga.response);
  }
  util::Table table({"algorithm", "alpha (makespan ratio)",
                     "beta (response ratio)", "rank"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::size_t rank = 1;
    for (const double other : scores) {
      if (other < scores[i] - 1e-12) ++rank;
    }
    table.row()
        .cell(rows[i].name)
        .cell(rows[i].makespan / stga.makespan, 3)
        .cell(rows[i].response / stga.response, 3)
        .cell(rank);
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
