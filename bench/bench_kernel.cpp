// Kernel throughput bench: drives the event kernel end to end (min-min
// heuristic, f-risky policy — the cheapest scheduler, so the kernel
// itself dominates) over the largest registry scenarios and reports
// events/sec, dispatches/sec and peak RSS. The event/dispatch/outcome
// counts come from a passive observer and are pure functions of
// (scenario, jobs, seed) — bit-equal across machines — so the committed
// BENCH_kernel.json doubles as a determinism baseline: tools/benchgate
// hard-fails when the counts drift and only warns on throughput (which
// is hardware-dependent). This is the baseline the ROADMAP's
// "million-job streaming scale" item will be measured against.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace gridsched;
using Clock = std::chrono::steady_clock;

/// Tallies the raw event stream and the structured callbacks; passive,
/// so the run stays bit-identical to an unobserved one.
class ThroughputObserver final : public sim::KernelObserver {
 public:
  std::uint64_t events = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t cycles = 0;

  void on_event(const sim::SimKernel&, const sim::Event&) override {
    ++events;
  }
  void on_dispatch(const sim::SimKernel&, sim::JobId, sim::SiteId,
                   const sim::NodeAvailability::Window&, double,
                   unsigned) override {
    ++dispatches;
  }
  void on_cycle(const sim::SimKernel&, sim::Time, std::size_t, std::size_t,
                double) override {
    ++cycles;
  }
};

struct KernelRow {
  std::string scenario;
  std::size_t n_jobs = 0;
  // Deterministic (benchgate hard-compares these against the baseline).
  std::uint64_t events = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t cycles = 0;
  std::uint64_t failures = 0;
  std::uint64_t interruptions = 0;
  double makespan = 0.0;
  // Hardware-dependent (benchgate warns only).
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double dispatches_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const util::Cli cli(argc, argv);
  const std::string out_path =
      cli.get_or("out", std::string("BENCH_kernel.json"));

  bench::print_banner(
      "Kernel event throughput (min-min f-risky over the largest registry "
      "scenarios)",
      "the event kernel sustains O(100k) events/sec under churn and "
      "failures; event counts are bit-deterministic in (scenario, seed)");

  // The registry's biggest shapes, sized so the full (non --quick) run
  // finishes in CI minutes: the NAS batch testbed, the PSA stream, the
  // hardest synthetic heterogeneity class, and the high-churn scenario
  // (site outages + revocations stress the revocation path).
  struct Shape {
    const char* name;
    std::size_t jobs;
    std::size_t quick_jobs;
  };
  const std::vector<Shape> shapes = {{"nas", 4000, 1000},
                                     {"psa", 1000, 300},
                                     {"synth-inconsistent-hihi", 2000, 500},
                                     {"synth-churn-hi", 1000, 300}};
  const exp::AlgorithmSpec spec =
      exp::heuristic_spec("min-min", security::RiskPolicy::f_risky(args.f));

  std::vector<KernelRow> rows;
  util::Table table({"scenario", "jobs", "events", "dispatches", "cycles",
                     "makespan (s)", "wall (ms)", "events/s"});
  for (const Shape& shape : shapes) {
    const std::size_t jobs = args.quick ? shape.quick_jobs : shape.jobs;
    const exp::Scenario scenario = exp::make_scenario(shape.name, jobs);
    ThroughputObserver observer;
    exp::RunHooks hooks;
    hooks.observer = &observer;
    const auto start = Clock::now();
    const metrics::RunMetrics run =
        exp::run_once(scenario, spec, args.seed, /*ga_pool=*/nullptr, hooks);
    const double wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    KernelRow row;
    row.scenario = shape.name;
    row.n_jobs = run.n_jobs;
    row.events = observer.events;
    row.dispatches = observer.dispatches;
    row.cycles = observer.cycles;
    row.failures = run.failure_events;
    row.interruptions = run.interruptions;
    row.makespan = run.makespan;
    row.wall_ms = wall_seconds * 1e3;
    if (wall_seconds > 0.0) {
      row.events_per_sec =
          static_cast<double>(observer.events) / wall_seconds;
      row.dispatches_per_sec =
          static_cast<double>(observer.dispatches) / wall_seconds;
    }
    rows.push_back(row);
    table.row()
        .cell(row.scenario)
        .cell(row.n_jobs)
        .cell(row.events)
        .cell(row.dispatches)
        .cell(row.cycles)
        .cell(row.makespan, 0)
        .cell(row.wall_ms, 1)
        .cell(row.events_per_sec, 0);
    std::fflush(stdout);
  }
  std::printf("%s", table.str().c_str());
  std::printf("peak RSS: %.1f MiB\n", bench::peak_rss_mib());

  std::vector<std::string> scenario_rows;
  scenario_rows.reserve(rows.size());
  for (const KernelRow& row : rows) {
    scenario_rows.push_back(bench::JsonObject()
                                .text("scenario", row.scenario)
                                .integer("n_jobs", row.n_jobs)
                                .integer("events", row.events)
                                .integer("dispatches", row.dispatches)
                                .integer("cycles", row.cycles)
                                .integer("failures", row.failures)
                                .integer("interruptions", row.interruptions)
                                .num("makespan", row.makespan)
                                .num("wall_ms", row.wall_ms, 3)
                                .num("events_per_sec", row.events_per_sec, 1)
                                .num("dispatches_per_sec",
                                     row.dispatches_per_sec, 1)
                                .str());
  }
  const bench::JsonObject document =
      bench::JsonObject()
          .text("bench", "kernel")
          .integer("seed", args.seed)
          .boolean("quick", args.quick)
          .raw("scenarios", bench::json_array(scenario_rows))
          .integer("peak_rss_bytes", obs::peak_rss_bytes());
  if (!bench::write_bench_json(out_path, document)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
