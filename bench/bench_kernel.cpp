// Kernel throughput bench: drives the event kernel end to end (cheap
// heuristics under the f-risky policy, so the kernel itself dominates)
// over the largest registry scenarios — including the synth-stream-{med,
// hi} streaming scenarios at 1e5/1e6 jobs — and reports events/sec,
// dispatches/sec and per-row RSS growth. The event/dispatch/outcome
// counts come from a passive observer and are pure functions of
// (scenario, jobs, seed) — bit-equal across machines — so the committed
// BENCH_kernel.json doubles as a determinism baseline: tools/benchgate
// hard-fails when the counts drift, warns on throughput (hardware-
// dependent), and applies the O(active)-memory advisory to the streaming
// rows (rss_delta_bytes / n_jobs must stay tiny).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace gridsched;
using Clock = std::chrono::steady_clock;

/// Tallies the raw event stream and the structured callbacks; passive,
/// so the run stays bit-identical to an unobserved one.
class ThroughputObserver final : public sim::KernelObserver {
 public:
  std::uint64_t events = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t cycles = 0;

  void on_event(const sim::SimKernel&, const sim::Event&) override {
    ++events;
  }
  void on_dispatch(const sim::SimKernel&, sim::JobId, sim::SiteId,
                   const sim::NodeAvailability::Window&, double,
                   unsigned) override {
    ++dispatches;
  }
  void on_cycle(const sim::SimKernel&, sim::Time, std::size_t, std::size_t,
                double) override {
    ++cycles;
  }
};

struct KernelRow {
  std::string scenario;
  std::size_t n_jobs = 0;
  // Deterministic (benchgate hard-compares these against the baseline).
  std::uint64_t events = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t cycles = 0;
  std::uint64_t failures = 0;
  std::uint64_t interruptions = 0;
  double makespan = 0.0;
  // Hardware-dependent (benchgate warns only).
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double dispatches_per_sec = 0.0;
  /// Resident-set growth across this row's run (current_rss_bytes delta;
  /// 0 when the allocator served the run from already-mapped pages). On
  /// streaming rows benchgate divides this by n_jobs — the O(active)
  /// memory advisory.
  std::uint64_t rss_delta_bytes = 0;
  /// Process-wide peak RSS after this row (monotone across rows).
  std::uint64_t peak_rss_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  const util::Cli cli(argc, argv);
  const std::string out_path =
      cli.get_or("out", std::string("BENCH_kernel.json"));

  bench::print_banner(
      "Kernel event throughput (cheap heuristics, f-risky, largest registry "
      "scenarios + synth-stream-{med,hi})",
      "the event kernel sustains O(100k) events/sec under churn and "
      "failures, streams a million jobs in O(active) memory, and its event "
      "counts are bit-deterministic in (scenario, seed)");

  // The registry's biggest shapes, sized so the full (non --quick) run
  // finishes in CI minutes: the NAS batch testbed, the PSA stream, the
  // hardest synthetic heterogeneity class, the high-churn scenario (site
  // outages + revocations stress the revocation path), and the streaming
  // scenarios (1e5/1e6 jobs through the O(active) job-stream kernel).
  // The streaming rows run MCT instead of min-min: their batches hold
  // thousands of jobs, and the O(batch^2) min-min inner loop would time
  // the scheduler, not the kernel.
  struct Shape {
    const char* name;
    std::size_t jobs;
    std::size_t quick_jobs;
    const char* algo;
  };
  const std::vector<Shape> shapes = {
      {"nas", 4000, 1000, "min-min"},
      {"psa", 1000, 300, "min-min"},
      {"synth-inconsistent-hihi", 2000, 500, "min-min"},
      {"synth-churn-hi", 1000, 300, "min-min"},
      {"synth-stream-med", 100000, 20000, "mct"},
      {"synth-stream-hi", 1000000, 100000, "mct"}};

  std::vector<KernelRow> rows;
  util::Table table({"scenario", "jobs", "events", "dispatches", "cycles",
                     "makespan (s)", "wall (ms)", "events/s", "rss d (MiB)"});
  for (const Shape& shape : shapes) {
    const std::size_t jobs = args.quick ? shape.quick_jobs : shape.jobs;
    const exp::Scenario scenario = exp::make_scenario(shape.name, jobs);
    const exp::AlgorithmSpec spec = exp::heuristic_spec(
        shape.algo, security::RiskPolicy::f_risky(args.f));
    ThroughputObserver observer;
    exp::RunHooks hooks;
    hooks.observer = &observer;
    const std::uint64_t rss_before = obs::current_rss_bytes();
    const auto start = Clock::now();
    const metrics::RunMetrics run =
        exp::run_once(scenario, spec, args.seed, /*ga_pool=*/nullptr, hooks);
    const double wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    const std::uint64_t rss_after = obs::current_rss_bytes();

    KernelRow row;
    row.scenario = shape.name;
    row.n_jobs = run.n_jobs;
    row.events = observer.events;
    row.dispatches = observer.dispatches;
    row.cycles = observer.cycles;
    row.failures = run.failure_events;
    row.interruptions = run.interruptions;
    row.makespan = run.makespan;
    row.wall_ms = wall_seconds * 1e3;
    if (wall_seconds > 0.0) {
      row.events_per_sec =
          static_cast<double>(observer.events) / wall_seconds;
      row.dispatches_per_sec =
          static_cast<double>(observer.dispatches) / wall_seconds;
    }
    row.rss_delta_bytes = rss_after > rss_before ? rss_after - rss_before : 0;
    row.peak_rss_bytes = obs::peak_rss_bytes();
    rows.push_back(row);
    table.row()
        .cell(row.scenario)
        .cell(row.n_jobs)
        .cell(row.events)
        .cell(row.dispatches)
        .cell(row.cycles)
        .cell(row.makespan, 0)
        .cell(row.wall_ms, 1)
        .cell(row.events_per_sec, 0)
        .cell(static_cast<double>(row.rss_delta_bytes) / (1024.0 * 1024.0), 1);
    std::fflush(stdout);
  }
  std::printf("%s", table.str().c_str());
  std::printf("peak RSS: %.1f MiB\n", bench::peak_rss_mib());

  std::vector<std::string> scenario_rows;
  scenario_rows.reserve(rows.size());
  for (const KernelRow& row : rows) {
    scenario_rows.push_back(bench::JsonObject()
                                .text("scenario", row.scenario)
                                .integer("n_jobs", row.n_jobs)
                                .integer("events", row.events)
                                .integer("dispatches", row.dispatches)
                                .integer("cycles", row.cycles)
                                .integer("failures", row.failures)
                                .integer("interruptions", row.interruptions)
                                .num("makespan", row.makespan)
                                .num("wall_ms", row.wall_ms, 3)
                                .num("events_per_sec", row.events_per_sec, 1)
                                .num("dispatches_per_sec",
                                     row.dispatches_per_sec, 1)
                                .integer("rss_delta_bytes",
                                         row.rss_delta_bytes)
                                .integer("peak_rss_bytes", row.peak_rss_bytes)
                                .str());
  }
  const bench::JsonObject document =
      bench::JsonObject()
          .text("bench", "kernel")
          .integer("seed", args.seed)
          .boolean("quick", args.quick)
          .raw("scenarios", bench::json_array(scenario_rows))
          .integer("peak_rss_bytes", obs::peak_rss_bytes());
  if (!bench::write_bench_json(out_path, document)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
