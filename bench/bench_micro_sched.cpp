// Microbenchmark (google-benchmark): per-batch scheduling-decision latency
// of the heuristics and the GAs. Supports the paper's core claim that the
// STGA is fast enough for online use while a cold GA's budget is wasted
// rediscovering known structure.
#include <benchmark/benchmark.h>

#include "gridsched.hpp"

namespace {

using namespace gridsched;

sim::SchedulerContext make_batch(std::size_t n_jobs, std::size_t n_sites,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  sim::SchedulerContext context;
  context.now = 1000.0;
  for (std::size_t s = 0; s < n_sites; ++s) {
    const auto nodes = static_cast<unsigned>(1 + rng.index(16));
    context.sites.push_back({static_cast<sim::SiteId>(s), nodes,
                             rng.uniform(0.5, 4.0), rng.uniform(0.4, 1.0)});
    sim::NodeAvailability avail(nodes, 0.0);
    avail.reserve(1, rng.uniform(0.0, 2000.0), 0.0);  // some backlog
    context.avail.push_back(avail);
  }
  for (std::size_t j = 0; j < n_jobs; ++j) {
    sim::BatchJob job;
    job.id = static_cast<sim::JobId>(j);
    job.work = rng.uniform(10.0, 5000.0);
    job.nodes = 1u << rng.index(4);
    job.demand = rng.uniform(0.6, 0.9);
    context.jobs.push_back(job);
  }
  return context;
}

void heuristic_latency(benchmark::State& state, const std::string& name) {
  const auto context =
      make_batch(static_cast<std::size_t>(state.range(0)), 12, 42);
  auto scheduler = sched::make_heuristic(name,
                                         security::RiskPolicy::f_risky(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler->schedule(context));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MinMin(benchmark::State& state) { heuristic_latency(state, "min-min"); }
void BM_Sufferage(benchmark::State& state) {
  heuristic_latency(state, "sufferage");
}
void BM_Mct(benchmark::State& state) { heuristic_latency(state, "mct"); }

void ga_latency(benchmark::State& state, bool warm, std::size_t generations,
                std::size_t n_sites = 12) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  core::StgaConfig config;
  config.ga.population = 200;
  config.ga.generations = generations;
  auto scheduler = warm ? core::make_stga(config) :
      core::make_classic_ga(config);
  if (warm) {
    // Pre-warm the history table with similar batches.
    for (std::uint64_t round = 0; round < 4; ++round) {
      auto context = make_batch(batch, n_sites, 42 + round);
      scheduler->schedule(context);
    }
  }
  const auto context = make_batch(batch, n_sites, 42);
  for (auto _ : state) {
    auto copy = context;
    benchmark::DoNotOptimize(scheduler->schedule(copy));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_StgaWarm100(benchmark::State& state) { ga_latency(state, true, 100); }
void BM_StgaWarm50(benchmark::State& state) { ga_latency(state, true, 50); }
void BM_ColdGa100(benchmark::State& state) { ga_latency(state, false, 100); }
/// The ISSUE's per-batch target shape: full paper GA budget at 16 sites.
void BM_GaBatch16Sites(benchmark::State& state) {
  ga_latency(state, false, 100, 16);
}
void BM_StgaBatch16Sites(benchmark::State& state) {
  ga_latency(state, true, 100, 16);
}

/// Validating public entry point (rides the thread-local scratch fast path).
void BM_FitnessDecode(benchmark::State& state) {
  const auto context =
      make_batch(static_cast<std::size_t>(state.range(0)), 12, 7);
  const core::GaProblem problem =
      core::build_problem(context, security::RiskPolicy::risky());
  util::Rng rng(1);
  const core::Chromosome chromosome = core::random_chromosome(problem, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::decode_fitness(problem, chromosome, {0.6, 1.0}));
  }
}

/// Retained seed-era decode: the baseline the fast path is measured against.
void BM_FitnessDecodeReference(benchmark::State& state) {
  const auto context =
      make_batch(static_cast<std::size_t>(state.range(0)), 16, 7);
  const core::GaProblem problem =
      core::build_problem(context, security::RiskPolicy::risky());
  util::Rng rng(1);
  const core::Chromosome chromosome = core::random_chromosome(problem, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::decode_fitness_reference(problem, chromosome, {0.6, 1.0}));
  }
}

/// Steady-state DecodeScratch decode: the engine's actual hot path.
void BM_FitnessDecodeScratch(benchmark::State& state) {
  const auto context =
      make_batch(static_cast<std::size_t>(state.range(0)), 16, 7);
  const core::GaProblem problem =
      core::build_problem(context, security::RiskPolicy::risky());
  util::Rng rng(1);
  const core::Chromosome chromosome = core::random_chromosome(problem, rng);
  core::DecodeScratch scratch;
  scratch.bind(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::decode_fitness(problem, chromosome, {0.6, 1.0}, scratch));
  }
}

}  // namespace

BENCHMARK(BM_MinMin)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_Sufferage)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_Mct)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_StgaWarm100)->Unit(benchmark::kMillisecond)->Arg(16)->Arg(32);
BENCHMARK(BM_StgaWarm50)->Unit(benchmark::kMillisecond)->Arg(16)->Arg(32);
BENCHMARK(BM_ColdGa100)->Unit(benchmark::kMillisecond)->Arg(16)->Arg(32);
BENCHMARK(BM_GaBatch16Sites)->Unit(benchmark::kMillisecond)->Arg(128)->Arg(512);
BENCHMARK(BM_StgaBatch16Sites)
    ->Unit(benchmark::kMillisecond)
    ->Arg(128)
    ->Arg(512);
BENCHMARK(BM_FitnessDecode)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_FitnessDecodeReference)->Arg(64)->Arg(128)->Arg(512);
BENCHMARK(BM_FitnessDecodeScratch)->Arg(64)->Arg(128)->Arg(512);
BENCHMARK_MAIN();
