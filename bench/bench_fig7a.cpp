// Figure 7(a): makespan of the Min-Min and Sufferage f-risky heuristics as
// the risk bound f sweeps 0 -> 1 on the PSA workload (N = 1000).
// Expected shape: concave curves with the minimum near f = 0.5-0.6.
#include "bench_common.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 7(a) -- f-risky makespan vs risk level f (PSA, N=" +
          std::to_string(args.psa_jobs) + ")",
      "concave curves; minimum in f ~ [0.5, 0.6]; endpoints worse");

  const exp::Scenario scenario = exp::psa_scenario(args.psa_jobs);
  util::Table table({"f", "Min-Min f-risky makespan (s)",
                     "Sufferage f-risky makespan (s)"});

  double best_f_minmin = 0.0;
  double best_minmin = 1e300;
  double best_f_sufferage = 0.0;
  double best_sufferage = 1e300;
  for (int step = 0; step <= 10; ++step) {
    const double f = 0.1 * step;
    const auto minmin = exp::run_replicated(
        scenario, exp::heuristic_spec("min-min",
                                      security::RiskPolicy::f_risky(f)),
        args.reps, args.seed);
    const auto sufferage = exp::run_replicated(
        scenario,
        exp::heuristic_spec("sufferage", security::RiskPolicy::f_risky(f)),
        args.reps, args.seed);
    const double mm = minmin.aggregate.makespan().mean();
    const double sf = sufferage.aggregate.makespan().mean();
    if (mm < best_minmin) {
      best_minmin = mm;
      best_f_minmin = f;
    }
    if (sf < best_sufferage) {
      best_sufferage = sf;
      best_f_sufferage = f;
    }
    table.row().cell(f, 1).cell(mm, 3).cell(sf, 3);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Measured optimum: Min-Min at f=%.1f, Sufferage at f=%.1f "
              "(paper: 0.5 and 0.6)\n",
              best_f_minmin, best_f_sufferage);
  return 0;
}
