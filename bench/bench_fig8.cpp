// Figure 8(a-d): the seven algorithms on the NAS trace workload --
// (a) makespan, (b) N_fail / N_risk, (c) slowdown ratio, (d) average
// response time.
// Expected shape: STGA best on (a), (c), (d); secure modes worst by a wide
// margin; risky slightly ahead of f-risky on makespan; secure has zero
// failures and zero risk; f-risky N_fail ~ half of risky's.
#include "bench_common.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner(
      "Figure 8 -- 7 algorithms on the NAS trace (N=" +
          std::to_string(args.nas_jobs) + ", 12 sites)",
      "STGA best makespan/slowdown/response; secure worst (~+30% makespan, "
      "~2x response); secure: N_risk = N_fail = 0; f-risky N_fail ~ half of "
      "risky");

  const exp::Scenario scenario = exp::nas_scenario(args.nas_jobs);
  util::Table table({"algorithm", "makespan (s)", "N_fail", "N_risk",
                     "slowdown", "avg response (s)", "avg util"});

  for (const auto& spec : exp::paper_roster(args.f, bench::paper_stga())) {
    const auto result =
        exp::run_replicated(scenario, spec, args.reps, args.seed);
    const auto& agg = result.aggregate;
    table.row()
        .cell(spec.name)
        .cell(agg.makespan().mean(), 3)
        .cell(agg.n_fail().mean(), 0)
        .cell(agg.n_risk().mean(), 0)
        .cell(agg.slowdown().mean(), 2)
        .cell(agg.avg_response().mean(), 3)
        .cell(agg.avg_utilization().mean(), 3);
    std::fflush(stdout);
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
