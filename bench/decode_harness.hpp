// Shared harness for the decode fast-path test and bench: a counting
// replacement of the global allocation functions (so zero-allocation claims
// are checked against all heap traffic) and a registry-scenario batch
// builder. Include from exactly ONE translation unit per binary — the
// operator new/delete definitions are binary-wide replacements, and a
// second inclusion in the same binary is a duplicate-symbol link error.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "exp/scenario_registry.hpp"
#include "util/rng.hpp"

// ----------------------------------------------------------------- alloc ---
namespace gridsched::bench {
inline std::atomic<std::uint64_t> g_allocations{0};

/// Heap allocations observed so far in this binary.
inline std::uint64_t allocation_count() { return g_allocations.load(); }

namespace detail {

inline void* counted_alloc(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  ++g_allocations;
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded ? rounded : alignment)) {
    return p;
  }
  throw std::bad_alloc();
}

inline void* counted_alloc_nothrow(std::size_t size) noexcept {
  ++g_allocations;
  return std::malloc(size ? size : 1);
}

inline void* counted_aligned_alloc_nothrow(std::size_t size,
                                           std::size_t alignment) noexcept {
  ++g_allocations;
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded ? rounded : alignment);
}

}  // namespace detail
}  // namespace gridsched::bench

void* operator new(std::size_t size) {
  return gridsched::bench::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return gridsched::bench::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return gridsched::bench::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return gridsched::bench::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(alignment));
}
// The nothrow forms must be replaced too (std::get_temporary_buffer inside
// libstdc++'s inplace_merge/stable_sort allocates through them): leaving
// them on the default allocator while delete goes to std::free is an
// alloc/dealloc mismatch, and their allocations would escape the count.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return gridsched::bench::detail::counted_alloc_nothrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return gridsched::bench::detail::counted_alloc_nothrow(size);
}
void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return gridsched::bench::detail::counted_aligned_alloc_nothrow(
      size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return gridsched::bench::detail::counted_aligned_alloc_nothrow(
      size, static_cast<std::size_t>(alignment));
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
// ---------------------------------------------------------------------------

namespace gridsched::bench {

/// A scheduling round drawn from a registry scenario: the scenario's sites
/// with some committed backlog, and its first `n_jobs` generated jobs.
inline sim::SchedulerContext scenario_batch(const std::string& name,
                                            std::size_t n_jobs,
                                            std::uint64_t seed) {
  const exp::Scenario scenario = exp::make_scenario(name, n_jobs);
  const workload::Workload w = exp::make_workload(scenario, seed);
  sim::SchedulerContext context;
  context.now = 500.0;
  context.exec = w.exec;  // raw ETC for synth scenarios, rank-1 otherwise
  util::Rng rng(seed ^ 0x5eed5eedULL);
  for (const sim::SiteConfig& site : w.sites) {
    context.sites.push_back(site);
    sim::NodeAvailability avail(site.nodes, 0.0);
    avail.reserve(1 + static_cast<unsigned>(rng.index(site.nodes)),
                  rng.uniform(0.0, 900.0), 0.0);
    context.avail.push_back(avail);
  }
  for (const sim::Job& job : w.jobs) {
    if (context.jobs.size() >= n_jobs) break;
    sim::BatchJob batch_job;
    batch_job.id = job.id;
    batch_job.work = job.work;
    batch_job.nodes = job.nodes;
    batch_job.demand = job.demand;
    batch_job.arrival = job.arrival;
    context.jobs.push_back(batch_job);
  }
  return context;
}

}  // namespace gridsched::bench
