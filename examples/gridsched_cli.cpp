// gridsched_cli — the full simulator as a command-line tool.
//
// Subcommands:
//   scenarios
//             List every registered scenario with its description.
//   generate  --scenario=NAME [--jobs=N] --seed=S --out-jobs=F --out-sites=F
//             Generate a workload and write it as trace files.
//   describe  --trace=F
//             Print summary statistics of a job trace.
//   run       [--trace=F --sites=F | --scenario=NAME [--jobs=N]] --algo=NAME
//             --mode=secure|f-risky|risky [--f=0.5] [--seed=S]
//             [--batch-interval=T] [--lambda=L] [--csv]
//             [--trace-events=F] [--metrics=F] [--ga-profile=F]
//             [--timeseries=F] [--timeseries-csv=F]
//             [--timeseries-interval=SEC]
//             Simulate and print the paper's metrics. --algo is one of the
//             registry heuristics ("min-min", "sufferage", "max-min",
//             "mct", "met", "olb"), "stga" or "ga". --trace-events writes
//             a Chrome trace_event JSON timeline (chrome://tracing /
//             Perfetto), --metrics a kernel metric snapshot, --ga-profile
//             per-generation GA convergence profiles (GA algos only).
//             --timeseries samples deterministic sim-time telemetry
//             (queue depth, in-flight attempts, busy fractions, outcome
//             counters) every --timeseries-interval simulated seconds
//             (default 1000) and writes it as JSON (--timeseries-csv for
//             CSV); with --trace-events too, the samples also merge into
//             the trace as Perfetto counter tracks.
//   roster    [--scenario=NAME --jobs=N --reps=R --seed=S]
//             Run the paper's 7-algorithm comparison.
//   campaign  SPEC.json [--threads=N] [--dry-run] [--out-json=F]
//             [--out-csv=F] [--profile=F] [--progress] [--quiet]
//             [--strict] [--retries=N] [--cell-timeout=SEC]
//             [--checkpoint=F] [--resume] [--timeseries=DIR]
//             [--timeseries-interval=SEC]
//             Run a declarative experiment campaign (scenario x policy x
//             replication grid; see examples/campaigns/ and the README
//             "Campaigns" section). --dry-run lists the expanded run
//             matrix without simulating; the aggregate JSON artifact is
//             byte-identical for any --threads value. --profile writes a
//             wall-clock sidecar (separate file, never mixed into the
//             stable aggregate); --progress shows a live cell counter
//             with throughput. Fault tolerance (README "Fault
//             tolerance"): failing cells degrade their group instead of
//             aborting the campaign (--strict restores abort-on-error,
//             and is the only mode where cell faults exit nonzero);
//             --retries re-runs failed cells with the same seed;
//             --cell-timeout arms a cooperative per-cell watchdog;
//             --checkpoint journals finished cells to F (fsync'd JSONL)
//             and --resume skips the journaled ones, byte-identically.
//             --timeseries writes one label-keyed telemetry series per
//             cell plus the cross-replication aggregate into DIR, all
//             byte-stable at any --threads (cells replayed via --resume
//             carry no series — the journal records scalar metrics only).
//
// --scenario accepts any name from exp::scenario_names() ("nas", "psa",
// "synth-inconsistent-hihi", ...). The older --kind=nas|psa spelling is
// kept as an alias. The global --log-level=debug|info|warn|error|off flag
// (default: info) controls stderr diagnostics.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gridsched.hpp"
#include "workload/stats.hpp"

using namespace gridsched;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: gridsched_cli "
               "<scenarios|generate|describe|run|roster|campaign> [flags]\n"
               "see the header of examples/gridsched_cli.cpp for details\n");
  return 2;
}

exp::Scenario scenario_from(const util::Cli& cli) {
  // --scenario selects from the registry; --kind=nas|psa is the legacy
  // alias for the paper's two testbeds. Validate whichever flag the user
  // actually passed so errors name the right one.
  const std::vector<std::string> names = exp::scenario_names();
  const std::string name =
      cli.has("scenario")
          ? cli.get_choice("scenario", std::string("psa"), names)
          : cli.get_choice("kind", std::string("psa"), names);
  const std::int64_t jobs = cli.get_or("jobs", std::int64_t{0});
  if (jobs < 0) {
    throw std::invalid_argument("--jobs must be >= 0 (0 = scenario default)");
  }
  exp::Scenario scenario =
      exp::make_scenario(name, static_cast<std::size_t>(jobs));
  scenario.engine.batch_interval =
      cli.get_or("batch-interval", scenario.engine.batch_interval);
  scenario.engine.lambda = cli.get_or("lambda", scenario.engine.lambda);
  return scenario;
}

int cmd_scenarios() {
  util::Table table({"scenario", "description"});
  for (const std::string& name : exp::scenario_names()) {
    table.row().cell(name).cell(exp::scenario_description(name));
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

security::RiskPolicy policy_from(const util::Cli& cli) {
  static const std::vector<std::string> modes = {"secure", "f-risky", "risky"};
  const std::string mode =
      cli.get_choice("mode", std::string("f-risky"), modes);
  const double f = cli.get_or("f", 0.5);
  const double lambda =
      cli.get_or("lambda", security::kDefaultLambda);
  if (mode == "secure") return security::RiskPolicy::secure(lambda);
  if (mode == "risky") return security::RiskPolicy::risky(lambda);
  return security::RiskPolicy::f_risky(f, lambda);
}

/// --algo choices: every registry heuristic plus the two GAs.
std::vector<std::string> algo_choices() {
  std::vector<std::string> names = sched::heuristic_names();
  names.push_back("stga");
  names.push_back("ga");
  return names;
}

int cmd_generate(const util::Cli& cli) {
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const exp::Scenario scenario = scenario_from(cli);
  const workload::Workload workload = exp::make_workload(scenario, seed);
  const std::string out_jobs =
      cli.get_or("out-jobs", workload.name + "_jobs.trace");
  const std::string out_sites =
      cli.get_or("out-sites", workload.name + "_sites.trace");
  // Raw-ETC scenarios serialize their matrix into the jobs trace (the
  // versioned ";etc" section), so `run --trace` replays them exactly.
  workload::write_jobs_file(out_jobs, workload.jobs, workload.exec);
  workload::write_sites_file(out_sites, workload.sites);
  std::printf("wrote %zu jobs to %s (%s) and %zu sites to %s\n",
              workload.jobs.size(), out_jobs.c_str(),
              workload.exec.has_matrix() ? "with raw ETC"
                                         : "rank-1 work/speed",
              workload.sites.size(), out_sites.c_str());
  return 0;
}

int cmd_describe(const util::Cli& cli) {
  const auto path = cli.get("trace");
  if (!path) return usage();
  const auto jobs = workload::read_jobs_file(*path);
  const auto stats = workload::characterize(jobs);
  std::printf("%s", workload::describe(stats).c_str());
  return 0;
}

void print_metrics(const std::string& name, const metrics::RunMetrics& run,
                   bool csv) {
  if (csv) {
    util::Table table({"algorithm", "makespan", "avg_response", "slowdown",
                       "n_risk", "n_fail", "avg_utilization",
                       "site_down_events", "interruptions"});
    table.row().cell(name).cell(run.makespan, 6).cell(run.avg_response, 6)
        .cell(run.slowdown_ratio, 6).cell(run.n_risk).cell(run.n_fail)
        .cell(run.avg_utilization, 6).cell(run.site_down_events)
        .cell(run.interruptions);
    std::printf("%s", table.csv().c_str());
    return;
  }
  std::printf("algorithm:        %s\n", name.c_str());
  std::printf("makespan:         %.0f s\n", run.makespan);
  std::printf("avg response:     %.0f s\n", run.avg_response);
  std::printf("slowdown ratio:   %.2f\n", run.slowdown_ratio);
  std::printf("risk-taking jobs: %zu\n", run.n_risk);
  std::printf("failed jobs:      %zu\n", run.n_fail);
  std::printf("avg utilization:  %.1f%%\n", 100.0 * run.avg_utilization);
  if (run.site_down_events > 0) {
    std::printf("site churn:       %zu outages; %zu jobs interrupted "
                "(%zu interruptions)\n",
                run.site_down_events, run.n_interrupted, run.interruptions);
  }
  std::printf("scheduler time:   %.3f s over %zu batches\n",
              run.scheduler_seconds, run.batch_invocations);
}

int cmd_run(const util::Cli& cli) {
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const std::string algo =
      cli.get_choice("algo", std::string("min-min"), algo_choices());
  const bool csv = cli.get_or("csv", false);

  // Resolve the scheduler.
  exp::AlgorithmSpec spec;
  if (algo == "stga") {
    spec = exp::stga_spec();
  } else if (algo == "ga") {
    spec = exp::classic_ga_spec();
  } else {
    spec = exp::heuristic_spec(algo, policy_from(cli));
  }

  // Optional observability sinks, shared by both modes. The trace
  // recorder and metric collector ride the kernel's single observer slot
  // through a tee; all of it stays detached unless a flag asks for it,
  // so the default run path keeps the null-observer fast path.
  const auto trace_events_path = cli.get("trace-events");
  const auto metrics_path = cli.get("metrics");
  const auto ga_profile_path = cli.get("ga-profile");
  const auto timeseries_path = cli.get("timeseries");
  const auto timeseries_csv_path = cli.get("timeseries-csv");
  const double timeseries_interval =
      cli.get_or("timeseries-interval", 1000.0);
  obs::SimTraceRecorder trace_recorder;
  obs::MetricRegistry registry;
  std::unique_ptr<obs::KernelMetricsObserver> metrics_observer;
  std::unique_ptr<obs::TimeSeriesProbe> timeseries_probe;
  sim::KernelObserverTee tee;
  if (trace_events_path) tee.add(&trace_recorder);
  if (metrics_path) {
    metrics_observer = std::make_unique<obs::KernelMetricsObserver>(registry);
    tee.add(metrics_observer.get());
  }
  if (timeseries_path || timeseries_csv_path) {
    timeseries_probe =
        std::make_unique<obs::TimeSeriesProbe>(timeseries_interval);
    tee.add(timeseries_probe.get());
  }
  sim::KernelObserver* observer = tee.empty() ? nullptr : &tee;
  std::vector<core::GaProfile> ga_profiles;
  const auto write_observability = [&] {
    if (timeseries_path) {
      obs::write_timeseries_file(
          *timeseries_path,
          obs::render_timeseries_json(timeseries_probe->series()));
      GS_LOG_INFO("wrote %zu telemetry samples to %s",
                  timeseries_probe->series().samples.size(),
                  timeseries_path->c_str());
    }
    if (timeseries_csv_path) {
      obs::write_timeseries_file(
          *timeseries_csv_path,
          obs::render_timeseries_csv(timeseries_probe->series()));
      GS_LOG_INFO("wrote telemetry CSV to %s", timeseries_csv_path->c_str());
    }
    if (trace_events_path) {
      // Counter tracks render under the span tracks in Perfetto; merge
      // before writing so one file carries the full picture.
      if (timeseries_probe != nullptr) {
        trace_recorder.merge_counters(timeseries_probe->series());
      }
      trace_recorder.write_file(*trace_events_path);
      GS_LOG_INFO("wrote %zu trace events to %s", trace_recorder.size(),
                  trace_events_path->c_str());
    }
    if (metrics_path) {
      registry.write_snapshot(*metrics_path);
      GS_LOG_INFO("wrote metric snapshot to %s", metrics_path->c_str());
    }
    if (ga_profile_path) {
      obs::write_ga_profiles(*ga_profile_path, ga_profiles);
      GS_LOG_INFO("wrote %zu GA profile(s) to %s", ga_profiles.size(),
                  ga_profile_path->c_str());
    }
  };

  if (cli.has("trace") && cli.has("sites")) {
    // Replay mode: explicit traces, direct engine drive. v2 traces carry
    // the raw ETC matrix and replay it exactly; v1 traces fall back to
    // the rank-1 work/speed model.
    const workload::JobsTrace trace =
        workload::read_jobs_trace_file(*cli.get("trace"));
    const auto sites = workload::read_sites_file(*cli.get("sites"));
    sim::EngineConfig config;
    config.batch_interval = cli.get_or("batch-interval", 2000.0);
    config.lambda = cli.get_or("lambda", security::kDefaultLambda);
    config.seed = seed;
    auto scheduler = spec.make(nullptr, seed);
    if (ga_profile_path) {
      if (auto* ga = dynamic_cast<core::GaScheduler*>(scheduler.get())) {
        ga->set_profile_sink(&ga_profiles);
      }
    }
    if (!trace.exec.has_matrix()) {
      GS_LOG_WARN("trace carries no ETC section; replay uses the rank-1 "
                  "work/speed execution model");
    }
    sim::Engine engine(sites, trace.jobs, config, trace.exec);
    engine.set_observer(observer);
    engine.run(*scheduler);
    print_metrics(scheduler->name(), metrics::compute_metrics(engine), csv);
    write_observability();
    return 0;
  }

  const exp::Scenario scenario = scenario_from(cli);
  exp::RunHooks hooks;
  hooks.observer = observer;
  hooks.ga_profiles = ga_profile_path ? &ga_profiles : nullptr;
  const metrics::RunMetrics run =
      exp::run_once(scenario, spec, seed, /*ga_pool=*/nullptr, hooks);
  print_metrics(spec.name, run, csv);
  write_observability();
  return 0;
}

int cmd_roster(const util::Cli& cli) {
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{1}));
  const auto reps =
      static_cast<std::size_t>(cli.get_or("reps", std::int64_t{1}));
  const exp::Scenario scenario = scenario_from(cli);
  util::Table table({"algorithm", "makespan (s)", "±95% CI", "response (s)",
                     "slowdown", "N_fail", "N_risk"});
  for (const auto& spec : exp::paper_roster(cli.get_or("f", 0.5))) {
    const auto result = exp::run_replicated(scenario, spec, reps, seed);
    // Small-n-aware interval (Student's t): honest error bars at the
    // 3-10 replications this subcommand is typically run with.
    const util::Summary makespan =
        util::summarize(result.aggregate.makespan());
    table.row()
        .cell(spec.name)
        .cell(makespan.mean, 3)
        .cell(makespan.ci95, 3)
        .cell(result.aggregate.avg_response().mean(), 3)
        .cell(result.aggregate.slowdown().mean(), 2)
        .cell(result.aggregate.n_fail().mean(), 0)
        .cell(result.aggregate.n_risk().mean(), 0);
    std::fflush(stdout);
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

int cmd_campaign(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::fprintf(stderr, "usage: gridsched_cli campaign SPEC.json "
                         "[--threads=N] [--dry-run] [--out-json=F] "
                         "[--out-csv=F] [--profile=F] [--progress] "
                         "[--quiet] [--strict] [--retries=N] "
                         "[--cell-timeout=SEC] [--checkpoint=F] "
                         "[--resume] [--timeseries=DIR] "
                         "[--timeseries-interval=SEC]\n");
    return 2;
  }
  const std::string spec_path = cli.positional()[1];
  const exp::campaign::CampaignSpec spec = exp::campaign::load_spec(spec_path);

  if (cli.get_or("dry-run", false)) {
    // List the expanded run matrix: what would run, under which seed.
    const auto cells = exp::campaign::expand(spec);
    util::Table table({"cell", "scenario", "policy", "rep", "seed"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      char seed_hex[24];
      std::snprintf(seed_hex, sizeof seed_hex, "0x%016llx",
                    static_cast<unsigned long long>(cells[i].seed));
      table.row()
          .cell(i)
          .cell(spec.scenarios[cells[i].scenario].display())
          .cell(spec.policies[cells[i].policy].display())
          .cell(cells[i].replication)
          .cell(std::string(seed_hex));
    }
    std::printf("%s%zu cells (%zu scenarios x %zu policies x %zu reps)\n",
                table.str().c_str(), cells.size(), spec.scenarios.size(),
                spec.policies.size(), spec.replications);
    return 0;
  }

  exp::campaign::RunnerOptions options;
  const std::int64_t threads = cli.get_or("threads", std::int64_t{0});
  if (threads < 0) throw std::invalid_argument("--threads must be >= 0");
  options.threads = static_cast<std::size_t>(threads);
  options.strict = cli.get_or("strict", false);
  const std::int64_t retries = cli.get_or("retries", std::int64_t{0});
  if (retries < 0) throw std::invalid_argument("--retries must be >= 0");
  options.retries = static_cast<unsigned>(retries);
  options.cell_timeout = cli.get_or("cell-timeout", 0.0);
  if (options.cell_timeout < 0.0) {
    throw std::invalid_argument("--cell-timeout must be >= 0");
  }
  options.checkpoint = cli.get_or("checkpoint", std::string());
  options.resume = cli.get_or("resume", false);
  const auto timeseries_dir = cli.get("timeseries");
  if (timeseries_dir) {
    options.timeseries_interval = cli.get_or("timeseries-interval", 1000.0);
    if (options.timeseries_interval <= 0.0) {
      throw std::invalid_argument("--timeseries-interval must be > 0");
    }
  }
  const bool quiet = cli.get_or("quiet", false);
  const bool progress = cli.get_or("progress", false);
  if (progress) {
    // Rich live counter: throughput, the cell that just finished, and an
    // ETA from the completed cells' wall times. All of it is
    // stderr-sidecar display — wall clock never enters the artifacts.
    // The effective worker count mirrors the runner's resolution so the
    // ETA divides by what will actually run.
    std::size_t eta_threads = options.threads;
    if (eta_threads == 0) {
      eta_threads =
          std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    options.on_cell = [&spec, eta_threads, wall_sum = 0.0, measured = 0ul,
                       start = std::chrono::steady_clock::now()](
                          const exp::campaign::CellResult& cell,
                          std::size_t done, std::size_t total) mutable {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      wall_sum += cell.wall_seconds;
      ++measured;
      const double per_cell = wall_sum / static_cast<double>(measured);
      const double eta = per_cell * static_cast<double>(total - done) /
                         static_cast<double>(std::min(eta_threads, total));
      std::fprintf(stderr,
                   "\r[%zu/%zu] cells done — %.1f cells/s, ~%.0f s left "
                   "(last: %s/%s rep %zu in %.2f s)  ",
                   done, total, elapsed > 0.0 ? done / elapsed : 0.0, eta,
                   spec.scenarios[cell.cell.scenario].display().c_str(),
                   spec.policies[cell.cell.policy].display().c_str(),
                   cell.cell.replication, cell.wall_seconds);
      if (done == total) std::fprintf(stderr, "\n");
    };
  } else if (!quiet) {
    options.on_cell = [](const exp::campaign::CellResult& cell,
                         std::size_t done,
                         std::size_t total) {
      std::fprintf(stderr, "\r[%zu/%zu] cells done (last: makespan %.0f s)  ",
                   done, total, cell.metrics.makespan);
      if (done == total) std::fprintf(stderr, "\n");
    };
  }

  exp::campaign::CampaignRunner runner(options);
  const exp::campaign::CampaignResult result = runner.run(spec);

  std::vector<std::unique_ptr<exp::campaign::Sink>> sinks;
  if (!quiet) {
    sinks.push_back(std::make_unique<exp::campaign::TableSink>(std::cout));
  }
  // The stable aggregate artifact is written by default (commit it like
  // BENCH_ga_decode.json); --out-json= overrides the path.
  const std::string out_json =
      cli.get_or("out-json", spec.name + "_campaign.json");
  sinks.push_back(std::make_unique<exp::campaign::JsonFileSink>(out_json));
  if (const auto csv_path = cli.get("out-csv")) {
    sinks.push_back(std::make_unique<exp::campaign::CsvFileSink>(*csv_path));
  }
  // The wall-clock profile is a deliberately separate artifact: the
  // aggregate above stays byte-stable, the sidecar carries timing.
  const auto profile_path = cli.get("profile");
  if (profile_path) {
    sinks.push_back(
        std::make_unique<exp::campaign::ProfileFileSink>(*profile_path));
  }
  exp::campaign::emit(result, sinks);
  GS_LOG_INFO("wrote %s", out_json.c_str());
  if (profile_path) GS_LOG_INFO("wrote %s", profile_path->c_str());
  if (timeseries_dir) {
    exp::campaign::write_timeseries_dir(result, *timeseries_dir);
    GS_LOG_INFO("wrote per-cell telemetry series and aggregate.json to %s/",
                timeseries_dir->c_str());
  }
  if (!result.complete()) {
    // Degradation is loud but non-fatal: the aggregate covers the
    // surviving replications and says so. Only --strict (which throws
    // inside run()) turns cell faults into a nonzero exit.
    std::fprintf(stderr,
                 "warning: campaign degraded — %zu cell(s) failed, %zu "
                 "timed out (see \"status\" rows in %s)\n",
                 result.failed_cells(), result.timed_out_cells(),
                 out_json.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) return usage();
  const std::string& command = cli.positional().front();
  try {
    // CLI default is info (not the library's warn): interactive users get
    // the "wrote ..." confirmations; --log-level=warn silences them.
    util::set_log_level(
        util::parse_log_level(cli.get_or("log-level", std::string("info"))));
    if (command == "scenarios") return cmd_scenarios();
    if (command == "generate") return cmd_generate(cli);
    if (command == "describe") return cmd_describe(cli);
    if (command == "run") return cmd_run(cli);
    if (command == "roster") return cmd_roster(cli);
    if (command == "campaign") return cmd_campaign(cli);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
