// NAS trace scenario: generate the synthetic NASA Ames iPSC/860 trace
// (or load a real one from a file), run the full 7-algorithm comparison of
// the paper's Section 4.4 at a configurable scale, and print per-site
// utilization for the winner.
//
//   ./nas_trace_sim [--jobs=2000] [--seed=7] [--reps=1]
//   ./nas_trace_sim --trace=jobs.trace --sites=sites.trace
#include <cstdio>

#include "gridsched.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n_jobs =
      static_cast<std::size_t>(cli.get_or("jobs", std::int64_t{2000}));
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{7}));
  const auto reps =
      static_cast<std::size_t>(cli.get_or("reps", std::int64_t{1}));

  exp::Scenario scenario = exp::nas_scenario(n_jobs);

  // Optional: replay a real trace instead of the synthetic model.
  if (cli.has("trace") && cli.has("sites")) {
    const auto jobs = workload::read_jobs_file(*cli.get("trace"));
    const auto sites = workload::read_sites_file(*cli.get("sites"));
    std::printf("Replaying %zu jobs on %zu sites from files\n\n", jobs.size(),
                sites.size());
    sim::Engine engine(sites, jobs, scenario.engine);
    sched::MinMinScheduler scheduler(security::RiskPolicy::f_risky(0.5));
    engine.run(scheduler);
    const auto run = metrics::compute_metrics(engine);
    std::printf("makespan %.0f s, avg response %.0f s, slowdown %.2f\n",
                run.makespan, run.avg_response, run.slowdown_ratio);
    return 0;
  }

  core::StgaConfig stga;
  std::printf("NAS trace scenario: %zu jobs on 12 sites (4x16 + 8x8 nodes), "
              "%zu rep(s)\n\n", n_jobs, reps);

  util::Table table({"algorithm", "makespan (s)", "response (s)", "slowdown",
                     "N_fail/N_risk", "idle sites"});
  metrics::RunMetrics best_run;
  std::string best_name;
  for (const auto& spec : exp::paper_roster(0.5, stga)) {
    const auto result = exp::run_replicated(scenario, spec, reps, seed);
    const auto& run = result.runs.front();
    table.row()
        .cell(spec.name)
        .cell(result.aggregate.makespan().mean(), 0)
        .cell(result.aggregate.avg_response().mean(), 0)
        .cell(result.aggregate.slowdown().mean(), 2)
        .cell(std::to_string(
                  static_cast<long>(result.aggregate.n_fail().mean())) +
              "/" +
              std::to_string(
                  static_cast<long>(result.aggregate.n_risk().mean())))
        .cell(run.idle_sites);
    if (best_name.empty() || run.makespan < best_run.makespan) {
      best_run = run;
      best_name = spec.name;
    }
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Per-site utilization of the best performer (%s):\n",
              best_name.c_str());
  for (std::size_t s = 0; s < best_run.site_utilization.size(); ++s) {
    const int bars = static_cast<int>(best_run.site_utilization[s] * 40.0);
    std::printf("  site %2zu %5.1f%% |", s + 1,
                100.0 * best_run.site_utilization[s]);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
