// Synthetic workload generator tour: build custom SynthConfigs
// programmatically (rather than going through the scenario registry),
// sweep the six Braun ETC classes and the three arrival processes with a
// chosen heuristic, and report how well each generated matrix fits the
// simulator's rank-1 work/speed model.
//
//   ./synth_sweep [--jobs=400] [--sites=16] [--algo=min-min] [--seed=11]
//                 [--csv=synth_sweep.csv]
#include <cstdio>
#include <fstream>

#include "gridsched.hpp"

using namespace gridsched;
using workload::synth::ArrivalProcess;
using workload::synth::EtcConsistency;
using workload::synth::Heterogeneity;
using workload::synth::SynthConfig;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto jobs =
      static_cast<std::size_t>(cli.get_or("jobs", std::int64_t{400}));
  const auto sites =
      static_cast<std::size_t>(cli.get_or("sites", std::int64_t{16}));
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{11}));
  const std::vector<std::string> algos = sched::heuristic_names();
  const std::string algo =
      cli.get_choice("algo", std::string("min-min"), algos);

  SynthConfig base;
  base.n_jobs = jobs;
  base.n_sites = sites;
  base.arrival.rate = 0.05;

  struct Variant {
    std::string label;
    SynthConfig config;
  };
  std::vector<Variant> variants;

  // The six consistency x heterogeneity classes of Braun et al.
  for (const auto consistency :
       {EtcConsistency::kConsistent, EtcConsistency::kSemiConsistent,
        EtcConsistency::kInconsistent}) {
    for (const auto hetero : {Heterogeneity::kHi, Heterogeneity::kLo}) {
      SynthConfig config = base;
      config.etc.consistency = consistency;
      config.etc.task_heterogeneity = hetero;
      config.etc.machine_heterogeneity = hetero;
      config.name = workload::synth::to_string(consistency) + "-" +
                    workload::synth::to_string(hetero) +
                    workload::synth::to_string(hetero);
      variants.push_back({config.name, config});
    }
  }
  // The three arrival processes on the default (consistent-hihi) matrix.
  for (const auto process :
       {ArrivalProcess::kBatch, ArrivalProcess::kPoisson,
        ArrivalProcess::kBurstyOnOff}) {
    SynthConfig config = base;
    config.arrival.process = process;
    config.arrival.batch_waves = 4;
    config.arrival.wave_interval = 8000.0;
    config.arrival.burst_rate = 0.25;
    config.name = "arrival-" + workload::synth::to_string(process);
    variants.push_back({config.name, config});
  }

  util::Table table({"variant", "fit residual", "makespan (s)", "slowdown",
                     "N_fail", "N_risk"});
  for (const auto& [label, config] : variants) {
    // Materialise once: the trace provides both the fit diagnostics and the
    // workload the engine replays.
    const workload::synth::SynthTrace trace =
        workload::synth::synth_trace(config, seed);
    sim::EngineConfig engine_config;
    engine_config.batch_interval = 2000.0;
    engine_config.seed = seed;
    sim::Engine engine(trace.workload.sites, trace.workload.jobs,
                       engine_config, trace.workload.exec);
    const auto scheduler =
        sched::make_heuristic(algo, security::RiskPolicy::f_risky(0.5));
    engine.run(*scheduler);
    const metrics::RunMetrics run = metrics::compute_metrics(engine);
    table.row()
        .cell(label)
        .cell(trace.fit.log_rms_residual, 3)
        .cell(run.makespan, 0)
        .cell(run.slowdown_ratio, 2)
        .cell(run.n_fail)
        .cell(run.n_risk);
  }
  std::printf("%s\n", table.str().c_str());

  if (const auto path = cli.get("csv")) {
    std::ofstream out(*path);
    out << table.csv();
    std::printf("wrote %s\n", path->c_str());
  }
  return 0;
}
