// Synthetic workload generator tour: build custom SynthConfigs
// programmatically (rather than going through the scenario registry),
// sweep the six Braun ETC classes and the three arrival processes with a
// chosen heuristic, and report how well each generated matrix fits the
// simulator's rank-1 work/speed model.
//
// The sweep itself runs as a programmatic campaign: each variant becomes
// a ScenarioRef carrying a custom Scenario (the JSON spec form can only
// name registry scenarios; the C++ API can inject generator configs the
// registry doesn't know), sharded across the thread pool with
// deterministic per-cell seeds.
//
//   ./synth_sweep [--jobs=400] [--sites=16] [--algo=min-min] [--seed=11]
//                 [--reps=1] [--threads=0] [--csv=synth_sweep.csv]
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string_view>

#include "gridsched.hpp"

using namespace gridsched;
using workload::synth::ArrivalProcess;
using workload::synth::EtcConsistency;
using workload::synth::Heterogeneity;
using workload::synth::SynthConfig;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto jobs =
      static_cast<std::size_t>(cli.get_or("jobs", std::int64_t{400}));
  const auto sites =
      static_cast<std::size_t>(cli.get_or("sites", std::int64_t{16}));
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{11}));
  const std::vector<std::string> algos = sched::heuristic_names();
  const std::string algo =
      cli.get_choice("algo", std::string("min-min"), algos);

  SynthConfig base;
  base.n_jobs = jobs;
  base.n_sites = sites;
  base.arrival.rate = 0.05;

  std::vector<SynthConfig> variants;

  // The six consistency x heterogeneity classes of Braun et al.
  for (const auto consistency :
       {EtcConsistency::kConsistent, EtcConsistency::kSemiConsistent,
        EtcConsistency::kInconsistent}) {
    for (const auto hetero : {Heterogeneity::kHi, Heterogeneity::kLo}) {
      SynthConfig config = base;
      config.etc.consistency = consistency;
      config.etc.task_heterogeneity = hetero;
      config.etc.machine_heterogeneity = hetero;
      config.name = workload::synth::to_string(consistency) + "-" +
                    workload::synth::to_string(hetero) +
                    workload::synth::to_string(hetero);
      variants.push_back(std::move(config));
    }
  }
  // The three arrival processes on the default (consistent-hihi) matrix.
  for (const auto process :
       {ArrivalProcess::kBatch, ArrivalProcess::kPoisson,
        ArrivalProcess::kBurstyOnOff}) {
    SynthConfig config = base;
    config.arrival.process = process;
    config.arrival.batch_waves = 4;
    config.arrival.wave_interval = 8000.0;
    config.arrival.burst_rate = 0.25;
    config.name = "arrival-" + workload::synth::to_string(process);
    variants.push_back(std::move(config));
  }

  // One campaign over all variants: custom scenarios, one policy.
  exp::campaign::CampaignSpec spec;
  spec.name = "synth-sweep";
  spec.seed = seed;
  spec.replications =
      static_cast<std::size_t>(cli.get_or("reps", std::int64_t{1}));
  spec.metrics = {"makespan", "slowdown", "n_fail", "n_risk"};
  for (const SynthConfig& config : variants) {
    exp::campaign::ScenarioRef ref;
    ref.label = config.name;
    ref.custom = exp::synth_scenario(config);
    spec.scenarios.push_back(std::move(ref));
  }
  {
    exp::campaign::PolicyRef policy;
    policy.algo = algo;
    policy.mode = "f-risky";
    policy.f = 0.5;
    spec.policies.push_back(std::move(policy));
  }

  exp::campaign::RunnerOptions options;
  options.threads =
      static_cast<std::size_t>(cli.get_or("threads", std::int64_t{0}));
  const exp::campaign::CampaignResult result =
      exp::campaign::CampaignRunner(options).run(spec);

  // Merge the campaign aggregates with the generator's rank-1 fit
  // diagnostic (a generation byproduct, not a simulation metric). The
  // residual is computed on the variant's trace at the base --seed: a
  // per-class characteristic, not a property of the exact instances the
  // campaign simulated — cells draw their own workload seeds (and with
  // --reps>1 there is no single instance to pair with anyway).
  util::Table table({"variant", "fit residual", "makespan (s)", "slowdown",
                     "N_fail", "N_risk"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const workload::synth::SynthTrace trace =
        workload::synth::synth_trace(variants[v], seed);
    const exp::campaign::GroupSummary& group = result.groups[v];
    auto metric = [&](std::string_view key) -> const util::Summary& {
      for (const auto& entry : group.metrics) {
        if (entry.key == key) return entry.summary;
      }
      throw std::logic_error("missing metric in campaign result");
    };
    table.row()
        .cell(variants[v].name)
        .cell(trace.fit.log_rms_residual, 3)
        .cell(metric("makespan").mean, 0)
        .cell(metric("slowdown").mean, 2)
        .cell(metric("n_fail").mean, 0)
        .cell(metric("n_risk").mean, 0);
  }
  std::printf("%s\n", table.str().c_str());

  if (const auto path = cli.get("csv")) {
    std::ofstream out(*path);
    out << table.csv();
    std::printf("wrote %s\n", path->c_str());
  }
  return 0;
}
