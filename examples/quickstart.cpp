// Quickstart: build a small grid, generate a PSA workload, schedule it
// with a security-driven heuristic and with the STGA, and compare the
// paper's metrics.
//
//   ./quickstart [--jobs=200] [--seed=42] [--f=0.5]
#include <cstdio>

#include "gridsched.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n_jobs =
      static_cast<std::size_t>(cli.get_or("jobs", std::int64_t{200}));
  const auto seed = static_cast<std::uint64_t>(
      cli.get_or("seed", std::int64_t{42}));
  const double f = cli.get_or("f", 0.5);

  // 1. A scenario bundles the workload model and the engine settings.
  //    psa_scenario = 20 heterogeneous single-node sites, Poisson arrivals.
  const exp::Scenario scenario = exp::psa_scenario(n_jobs);

  // 2. Pick algorithms. Heuristics pair a strategy with a risk mode; the
  //    STGA is the paper's history-seeded genetic algorithm.
  std::vector<exp::AlgorithmSpec> roster;
  roster.push_back(exp::heuristic_spec("min-min",
                                       security::RiskPolicy::secure()));
  roster.push_back(exp::heuristic_spec("min-min",
                                       security::RiskPolicy::f_risky(f)));
  roster.push_back(exp::heuristic_spec("sufferage",
                                       security::RiskPolicy::risky()));
  core::StgaConfig stga;           // paper defaults: pop 200, 100 generations
  stga.ga.generations = 50;        // quickstart: converged per Fig. 7(b)
  roster.push_back(exp::stga_spec(stga));

  // 3. Run and report. run_once() generates the workload, trains the STGA
  //    history table (500 jobs by default), simulates, and measures.
  util::Table table({"algorithm", "makespan (s)", "avg response (s)",
                     "slowdown", "N_risk", "N_fail"});
  for (const auto& spec : roster) {
    const metrics::RunMetrics run = exp::run_once(scenario, spec, seed);
    table.row()
        .cell(spec.name)
        .cell(run.makespan, 0)
        .cell(run.avg_response, 0)
        .cell(run.slowdown_ratio, 2)
        .cell(run.n_risk)
        .cell(run.n_fail);
  }
  std::printf("PSA workload, %zu jobs, seed %llu\n\n%s", n_jobs,
              static_cast<unsigned long long>(seed), table.str().c_str());
  std::printf(
      "\nNotes: 'secure' never risks (N_risk = 0) but queues on few sites;\n"
      "'risky' uses every site and pays with failures; STGA searches the\n"
      "whole assignment space seeded from its history table.\n");
  return 0;
}
