// Extending the library: plug a user-defined scheduling policy into the
// simulation engine, and derive site security levels from observable
// attributes with the composite trust index.
//
// The custom policy below is a security-aware variant of MCT that scores
// each candidate site by its *expected* completion time, expecting a
// fail-stop restart with probability P(fail) (Eq. 1) -- a middle ground
// between the paper's f-risky cutoff and the fully risky mode.
//
//   ./custom_policy [--jobs=300] [--seed=11]
#include <cstdio>

#include "gridsched.hpp"

using namespace gridsched;

namespace {

/// Expected-completion MCT: completion + P(fail) * exec as the score.
class ExpectedCompletionScheduler final : public sim::BatchScheduler {
 public:
  explicit ExpectedCompletionScheduler(double lambda) : lambda_(lambda) {}

  [[nodiscard]] std::string name() const override { return "Expected-MCT"; }

  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override {
    std::vector<sim::NodeAvailability> avail = context.avail;
    std::vector<sim::Assignment> out;
    for (std::size_t j = 0; j < context.jobs.size(); ++j) {
      const sim::BatchJob& job = context.jobs[j];
      sim::SiteId best_site = sim::kInvalidSite;
      double best_score = 0.0;
      for (std::size_t s = 0; s < context.sites.size(); ++s) {
        const sim::SiteConfig& site = context.sites[s];
        if (job.nodes > site.nodes) continue;
        // The fail-stop rule still applies to retries.
        if (job.secure_only &&
            !security::is_safe(job.demand, site.security)) {
          continue;
        }
        // Resolve through the context's execution model so the policy
        // stays exact on raw-ETC workloads.
        const double exec = context.exec_time(job, s);
        const double completion =
            avail[s].preview(job.nodes, exec, context.now).end;
        const double p_fail =
            security::failure_probability(job.demand, site.security, lambda_);
        const double score = completion + p_fail * exec;
        if (best_site == sim::kInvalidSite || score < best_score) {
          best_score = score;
          best_site = static_cast<sim::SiteId>(s);
        }
      }
      if (best_site == sim::kInvalidSite) continue;
      avail[best_site].reserve(job.nodes, context.exec_time(job, best_site),
                               context.now);
      out.push_back({j, best_site});
    }
    return out;
  }

 private:
  double lambda_;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n_jobs =
      static_cast<std::size_t>(cli.get_or("jobs", std::int64_t{300}));
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{11}));

  // Derive site security levels from observable attributes instead of
  // drawing them uniformly: the trust-index extension of the paper's
  // Section 1 discussion.
  util::Rng rng(seed);
  workload::Workload workload =
      workload::psa_workload(workload::PsaConfig{.n_jobs = n_jobs}, seed);
  for (auto& site : workload.sites) {
    security::SiteSecurityAttributes attrs;
    attrs.defense_capability = rng.uniform(0.2, 1.0);
    attrs.prior_success_rate = rng.uniform(0.5, 1.0);
    attrs.authentication_strength = rng.uniform(0.3, 1.0);
    attrs.isolation_quality = rng.uniform(0.3, 1.0);
    // Map the [0,1] index onto the paper's SL range.
    site.security = security::kSiteSecurityLo +
                    (security::kSiteSecurityHi - security::kSiteSecurityLo) *
                        security::trust_index(attrs);
  }
  util::Rng guard_rng = util::SeedMix(seed).mix("safe-home").rng();
  workload::ensure_safe_home(workload.sites, 1, security::kJobDemandHi,
                             guard_rng);

  sim::EngineConfig engine_config;
  engine_config.batch_interval = 2000.0;
  engine_config.seed = seed;

  util::Table table({"scheduler", "makespan (s)", "response (s)", "N_fail"});
  // Baselines from the registry...
  for (const std::string name : {"mct", "min-min"}) {
    sim::Engine engine(workload.sites, workload.jobs, engine_config,
                       workload.exec);
    auto scheduler =
        sched::make_heuristic(name, security::RiskPolicy::f_risky(0.5));
    engine.run(*scheduler);
    const auto run = metrics::compute_metrics(engine);
    table.row().cell(scheduler->name()).cell(run.makespan, 0)
        .cell(run.avg_response, 0).cell(run.n_fail);
  }
  // ...versus the custom policy.
  {
    sim::Engine engine(workload.sites, workload.jobs, engine_config,
                       workload.exec);
    ExpectedCompletionScheduler scheduler(engine_config.lambda);
    engine.run(scheduler);
    const auto run = metrics::compute_metrics(engine);
    table.row().cell(scheduler.name()).cell(run.makespan, 0)
        .cell(run.avg_response, 0).cell(run.n_fail);
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
