// Parameter-sweep application scenario: scale the PSA job count and watch
// how the three best performers (paper Fig. 10) behave, then export the
// results as CSV for plotting.
//
//   ./psa_sweep [--max-n=2000] [--seed=3] [--csv=psa_sweep.csv]
#include <cstdio>
#include <fstream>

#include "gridsched.hpp"

using namespace gridsched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto max_n =
      static_cast<std::size_t>(cli.get_or("max-n", std::int64_t{2000}));
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{3}));

  core::StgaConfig stga;
  stga.ga.generations = 50;

  util::Table table({"N", "algorithm", "makespan (s)", "response (s)",
                     "slowdown", "N_fail", "N_risk"});
  for (std::size_t n = 500; n <= max_n; n *= 2) {
    const exp::Scenario scenario = exp::psa_scenario(n);
    for (const auto& spec : exp::scaling_roster(0.5, stga)) {
      const auto run = exp::run_once(scenario, spec, seed);
      table.row()
          .cell(n)
          .cell(spec.name)
          .cell(run.makespan, 0)
          .cell(run.avg_response, 0)
          .cell(run.slowdown_ratio, 2)
          .cell(run.n_fail)
          .cell(run.n_risk);
    }
  }
  std::printf("%s\n", table.str().c_str());

  if (const auto path = cli.get("csv")) {
    std::ofstream out(*path);
    out << table.csv();
    std::printf("wrote %s\n", path->c_str());
  }
  return 0;
}
