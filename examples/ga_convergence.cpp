// GA convergence curves (the mechanism behind paper Fig. 5 and Fig. 7(b)):
// evolve one scheduling batch with a cold random population versus a
// population seeded the STGA way (heuristic solutions + perturbed copies of
// a previously found schedule), and print best-fitness-per-generation so
// the warm start's head start is visible.
//
//   ./ga_convergence [--batch=32] [--generations=60] [--seed=5]
#include <cstdio>

#include "gridsched.hpp"

using namespace gridsched;

namespace {

sim::SchedulerContext make_batch(std::size_t n_jobs, std::uint64_t seed) {
  util::Rng rng(seed);
  sim::SchedulerContext context;
  context.now = 0.0;
  for (std::size_t s = 0; s < 12; ++s) {
    const auto nodes = static_cast<unsigned>(s < 4 ? 16 : 8);
    context.sites.push_back({static_cast<sim::SiteId>(s), nodes,
                             rng.uniform(0.8, 1.2), rng.uniform(0.4, 1.0)});
    context.avail.emplace_back(nodes, 0.0);
  }
  for (std::size_t j = 0; j < n_jobs; ++j) {
    sim::BatchJob job;
    job.id = static_cast<sim::JobId>(j);
    job.work = rng.uniform(50.0, 5000.0);
    job.nodes = 1u << rng.index(5);
    job.demand = rng.uniform(0.6, 0.9);
    context.jobs.push_back(job);
  }
  return context;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto batch =
      static_cast<std::size_t>(cli.get_or("batch", std::int64_t{32}));
  const auto generations =
      static_cast<std::size_t>(cli.get_or("generations", std::int64_t{60}));
  const auto seed =
      static_cast<std::uint64_t>(cli.get_or("seed", std::int64_t{5}));

  const auto context = make_batch(batch, seed);
  const core::GaProblem problem =
      core::build_problem(context, security::RiskPolicy::risky());

  core::GaParams params;
  params.population = 200;
  params.generations = generations;

  // Cold start: random population only.
  util::Rng cold_rng(seed);
  const core::GaResult cold = core::evolve(problem, {}, params, cold_rng);

  // Warm start: Min-Min + Sufferage seeds plus noisy copies, as the STGA
  // builds them from its history table.
  std::vector<core::Chromosome> seeds;
  for (const bool use_sufferage : {false, true}) {
    auto ctx_copy = context;
    std::unique_ptr<sched::HeuristicScheduler> heuristic;
    if (use_sufferage) {
      heuristic = std::make_unique<sched::SufferageScheduler>(
          security::RiskPolicy::risky());
    } else {
      heuristic = std::make_unique<sched::MinMinScheduler>(
          security::RiskPolicy::risky());
    }
    core::Chromosome chromosome(problem.n_jobs());
    for (const auto& assignment : heuristic->schedule(ctx_copy)) {
      chromosome[assignment.job_index] = assignment.site;
    }
    seeds.push_back(chromosome);
    util::Rng noise = util::SeedMix(seed)
                          .mix(use_sufferage ? "sufferage" : "min-min")
                          .rng();
    for (int copy = 0; copy < 49; ++copy) {
      core::Chromosome perturbed = chromosome;
      core::mutate(perturbed, problem,
                   1.0 / static_cast<double>(problem.n_jobs()), noise);
      seeds.push_back(std::move(perturbed));
    }
  }
  util::Rng warm_rng(seed);
  const core::GaResult warm =
      core::evolve(problem, std::move(seeds), params, warm_rng);

  std::printf("batch of %zu jobs on 12 sites; best fitness per generation\n\n",
              batch);
  util::Table table({"generation", "cold GA", "warm (STGA-style)"});
  for (std::size_t g = 0; g < cold.best_per_generation.size(); ++g) {
    if (g % 5 == 0 || g + 1 == cold.best_per_generation.size()) {
      table.row()
          .cell(g)
          .cell(cold.best_per_generation[g], 1)
          .cell(warm.best_per_generation[g], 1);
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("cold final %.1f vs warm final %.1f (lower is better)\n",
              cold.best_fitness, warm.best_fitness);
  // The STGA's value is the head start: how many generations must the cold
  // GA spend to reach the warm population's generation-0 quality? Online,
  // that head start is the budget you do not have to spend per batch.
  const double warm_start_quality = warm.best_per_generation.front();
  std::size_t catch_up = cold.best_per_generation.size();
  for (std::size_t g = 0; g < cold.best_per_generation.size(); ++g) {
    if (cold.best_per_generation[g] <= warm_start_quality) {
      catch_up = g;
      break;
    }
  }
  std::printf("the cold GA needs %zu generation(s) to reach the warm "
              "population's starting quality (%.1f)\n",
              catch_up, warm_start_quality);
  std::printf("(with a generous budget both converge -- the paper's point, "
              "Fig. 5, is that warm starting lets the online scheduler cut "
              "the budget, cf. Fig. 7(b))\n");
  return 0;
}
