// Site-churn process + pluggable-kernel tests: hand-checked mid-run
// revocation timelines (scripted outages composed directly onto a
// SimKernel), availability-mask visibility, protocol enforcement, counter
// accounting and end-to-end determinism of the stochastic churn process.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "exp/scenario_registry.hpp"
#include "sched/heuristics.hpp"
#include "sim/engine.hpp"
#include "sim/process/arrival_process.hpp"
#include "sim/process/batch_cycle_process.hpp"
#include "sim/process/security_failure_process.hpp"
#include "sim/process/site_churn_process.hpp"

namespace gridsched::sim {
namespace {

Job make_job(Time arrival, double work, unsigned nodes, double demand) {
  Job job;
  job.arrival = arrival;
  job.work = work;
  job.nodes = nodes;
  job.demand = demand;
  return job;
}

EngineConfig quick_config(Time interval = 50.0) {
  EngineConfig config;
  config.batch_interval = interval;
  config.detection = FailureDetection::kAtEnd;
  return config;
}

/// Scripted scheduler: assigns every batch job to a fixed site per call,
/// following a site sequence (last entry repeats). By default it honours
/// the availability mask (a masked target => assign nothing, like a real
/// scheduler would); `respect_mask = false` probes protocol enforcement.
class ScriptedScheduler final : public BatchScheduler {
 public:
  explicit ScriptedScheduler(std::vector<SiteId> sequence,
                             bool respect_mask = true)
      : sequence_(std::move(sequence)), respect_mask_(respect_mask) {}

  [[nodiscard]] std::string name() const override { return "scripted"; }

  std::vector<Assignment> schedule(const SchedulerContext& context) override {
    const SiteId site = sequence_[std::min(call_, sequence_.size() - 1)];
    ++call_;
    if (respect_mask_ && !context.site_usable(site)) return {};
    std::vector<Assignment> out;
    for (std::size_t j = 0; j < context.jobs.size(); ++j) out.push_back({j,
                                                                         site});
    return out;
  }

 private:
  std::vector<SiteId> sequence_;
  std::size_t call_ = 0;
  bool respect_mask_ = true;
};

/// Wraps a scheduler and records the site mask it was shown per call.
class MaskProbeScheduler final : public BatchScheduler {
 public:
  explicit MaskProbeScheduler(BatchScheduler& inner) : inner_(inner) {}
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  std::vector<Assignment> schedule(const SchedulerContext& context) override {
    masks.push_back(context.site_up);
    return inner_.schedule(context);
  }
  std::vector<std::vector<std::uint8_t>> masks;

 private:
  BatchScheduler& inner_;
};

/// Run a kernel with the standard process set plus a scripted churn
/// timeline — the composition the Engine facade cannot express.
void run_with_outages(SimKernel& kernel, BatchScheduler& scheduler,
                      std::vector<SiteOutage> outages) {
  ArrivalProcess arrival;
  SecurityFailureProcess failure;
  BatchCycleProcess batch(scheduler, failure);
  SiteChurnProcess churn(std::move(outages));
  kernel.add_process(arrival);
  kernel.add_process(batch);
  kernel.add_process(failure);
  kernel.add_process(churn);
  kernel.run();
}

TEST(SiteChurn, HandCheckedMidRunRevocation) {
  // One 1-node site; job runs [50, 150); the site dies at t=100 and
  // recovers at t=120. The attempt is revoked at 100 (its reserved tail
  // released back to t=100), the job re-enters the queue, the t=100 cycle
  // sees a fully masked grid and assigns nothing, and the t=150 cycle
  // re-dispatches for a [150, 250) run.
  SimKernel kernel({{0, 1, 1.0, 1.0}}, {make_job(0.0, 100.0, 1, 0.5)},
                   quick_config(50.0));
  ScriptedScheduler scheduler({0});
  run_with_outages(kernel, scheduler, {{0, 100.0, 120.0}});

  const Job& job = kernel.jobs()[0];
  EXPECT_EQ(job.state, JobState::kCompleted);
  EXPECT_EQ(job.attempts, 2u);
  EXPECT_EQ(job.failures, 0u);
  EXPECT_EQ(job.interruptions, 1u);
  EXPECT_FALSE(job.secure_only);  // an outage is not a security failure
  EXPECT_DOUBLE_EQ(job.first_start, 50.0);
  EXPECT_DOUBLE_EQ(job.last_start, 150.0);
  EXPECT_DOUBLE_EQ(job.finish, 250.0);
  EXPECT_DOUBLE_EQ(kernel.makespan(), 250.0);

  const EngineCounters& counters = kernel.counters();
  EXPECT_EQ(counters.completed_jobs, 1u);
  EXPECT_EQ(counters.site_down_events, 1u);
  EXPECT_EQ(counters.site_up_events, 1u);
  EXPECT_EQ(counters.interrupted_attempts, 1u);
  EXPECT_EQ(counters.churn_released_nodes, 1u);
  EXPECT_EQ(counters.churn_unreleased_nodes, 0u);
  EXPECT_EQ(counters.failure_events, 0u);
  // Cycles at 50 (dispatch), 100 (masked grid, no assignment), 150.
  EXPECT_EQ(counters.batch_invocations, 3u);
  // 50 s burned before the outage + the full 100 s success.
  EXPECT_DOUBLE_EQ(kernel.sites()[0].busy_node_seconds(), 150.0);
}

TEST(SiteChurn, RevocationReleasesStackedReservationsLatestFirst) {
  // Two jobs stacked on the same node: A holds [50, 150), B [150, 160).
  // At the t=100 outage the node's free time equals B's window end, so B's
  // tail is reclaimable (released) while A's window end no longer matches
  // — surfaced as an unreleased node, exactly like a failure release that
  // lost the race with a later reservation.
  SimKernel kernel({{0, 1, 1.0, 1.0}},
                   {make_job(0.0, 100.0, 1, 0.5), make_job(0.0, 10.0, 1, 0.5)},
                   quick_config(50.0));
  ScriptedScheduler scheduler({0});
  run_with_outages(kernel, scheduler, {{0, 100.0, 120.0}});

  const Job& a = kernel.jobs()[0];
  const Job& b = kernel.jobs()[1];
  EXPECT_EQ(a.interruptions, 1u);
  EXPECT_EQ(b.interruptions, 1u);
  const EngineCounters& counters = kernel.counters();
  EXPECT_EQ(counters.interrupted_attempts, 2u);
  EXPECT_EQ(counters.churn_released_nodes, 1u);
  EXPECT_EQ(counters.churn_unreleased_nodes, 1u);
  // Revocation re-queues latest-window-first: the t=150 batch is [B, A],
  // so B runs [150, 160) and A [160, 260).
  EXPECT_DOUBLE_EQ(b.finish, 160.0);
  EXPECT_DOUBLE_EQ(a.finish, 260.0);
  EXPECT_EQ(counters.completed_jobs, 2u);
}

TEST(SiteChurn, SchedulersSeeTheAvailabilityMask) {
  SimKernel kernel({{0, 1, 1.0, 1.0}}, {make_job(0.0, 100.0, 1, 0.5)},
                   quick_config(50.0));
  ScriptedScheduler inner({0});
  MaskProbeScheduler probe(inner);
  run_with_outages(kernel, probe, {{0, 100.0, 120.0}});

  ASSERT_EQ(probe.masks.size(), 3u);
  EXPECT_EQ(probe.masks[0], std::vector<std::uint8_t>({1}));  // t=50
  EXPECT_EQ(probe.masks[1], std::vector<std::uint8_t>({0}));  // t=100: down
  EXPECT_EQ(probe.masks[2], std::vector<std::uint8_t>({1}));  // t=150: back
}

TEST(SiteChurn, AssigningToADownSiteIsAProtocolViolation) {
  // The scripted scheduler ignores the mask and keeps targeting site 0
  // while it is down at the t=100 cycle; the kernel must reject that.
  SimKernel kernel({{0, 1, 1.0, 1.0}, {1, 1, 1.0, 1.0}},
                   {make_job(0.0, 100.0, 1, 0.5), make_job(60.0, 10.0, 1, 0.5)},
                   quick_config(50.0));
  ScriptedScheduler scheduler({0}, /*respect_mask=*/false);
  EXPECT_THROW(run_with_outages(kernel, scheduler, {{0, 90.0, 500.0}}),
               std::logic_error);
}

TEST(SiteChurn, InterruptedSecureOnlyRetryStaysSecureOnly) {
  // The job certain-fails on the risky site (fail-stop => secure_only),
  // retries on the safe site at t=100, is interrupted at t=150 and must
  // still be a secure_only retry afterwards: the scripted scheduler sends
  // it back to the safe site, where it completes.
  EngineConfig config = quick_config(50.0);
  config.lambda = 1000.0;
  config.detection = FailureDetection::kImmediate;
  SimKernel kernel({{0, 1, 1.0, 0.4}, {1, 1, 1.0, 1.0}},
                   {make_job(0.0, 100.0, 1, 0.9)}, config);
  ScriptedScheduler scheduler({0, 1, 1});
  run_with_outages(kernel, scheduler, {{1, 150.0, 160.0}});

  const Job& job = kernel.jobs()[0];
  EXPECT_EQ(job.failures, 1u);
  EXPECT_EQ(job.interruptions, 1u);
  EXPECT_EQ(job.attempts, 3u);
  EXPECT_TRUE(job.secure_only);
  EXPECT_EQ(job.final_site, 1u);
  EXPECT_DOUBLE_EQ(job.finish, 300.0);  // retry [100,200) cut at 150; [200,300)
  EXPECT_EQ(kernel.counters().failure_events, 1u);
  EXPECT_EQ(kernel.counters().interrupted_attempts, 1u);
}

TEST(SiteChurn, StaleEndEventOfARevokedAttemptIsDropped) {
  // The revoked attempt's kJobEnd (t=150) pops after the job has already
  // been re-dispatched at the t=150 cycle with a new attempt serial; the
  // stale end must not complete (or double-complete) the job.
  SimKernel kernel({{0, 1, 1.0, 1.0}}, {make_job(0.0, 100.0, 1, 0.5)},
                   quick_config(50.0));
  ScriptedScheduler scheduler({0});
  run_with_outages(kernel, scheduler, {{0, 100.0, 120.0}});
  EXPECT_EQ(kernel.counters().completed_jobs, 1u);
  EXPECT_EQ(kernel.jobs()[0].attempts, 2u);
  EXPECT_DOUBLE_EQ(kernel.jobs()[0].finish, 250.0);
}

TEST(SiteChurn, ScriptedOutageValidation) {
  EXPECT_THROW(SiteChurnProcess({SiteOutage{0, 100.0, 100.0}}),
               std::invalid_argument);
  EXPECT_THROW(SiteChurnProcess({SiteOutage{0, -1.0, 10.0}}),
               std::invalid_argument);
  // Overlapping outages for one site are rejected (a boolean mask cannot
  // represent nested downtime); the same windows on distinct sites are
  // fine, as are back-to-back outages sharing an endpoint.
  EXPECT_THROW(
      SiteChurnProcess({SiteOutage{0, 10.0, 100.0}, SiteOutage{0, 50.0,
                                                               200.0}}),
      std::invalid_argument);
  EXPECT_NO_THROW(SiteChurnProcess(
      {SiteOutage{0, 10.0, 100.0}, SiteOutage{1, 50.0, 200.0}}));
  EXPECT_NO_THROW(SiteChurnProcess(
      {SiteOutage{0, 10.0, 100.0}, SiteOutage{0, 100.0, 200.0}}));
}

TEST(SiteChurn, EngineFacadeRunsStochasticChurnDeterministically) {
  // Same workload + seed => bit-identical outcome, including every churn
  // counter; a different engine seed draws a different churn timeline.
  auto run = [](std::uint64_t engine_seed) {
    exp::Scenario scenario = exp::make_scenario("synth-churn-hi", 150);
    workload::Workload workload = exp::make_workload(scenario, 7);
    EXPECT_EQ(workload.churn.size(), workload.sites.size());
    sim::EngineConfig config = scenario.engine;
    config.seed = engine_seed;
    Engine engine(workload.sites, workload.jobs, config, workload.exec,
                  workload.churn);
    sched::MinMinScheduler scheduler(security::RiskPolicy::risky());
    engine.run(scheduler);
    std::vector<double> finishes;
    for (const Job& job : engine.jobs()) finishes.push_back(job.finish);
    return std::pair(finishes, engine.counters().site_down_events);
  };
  const auto a = run(11);
  const auto b = run(11);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run(12);
  EXPECT_NE(a.first, c.first);
}

TEST(SiteChurn, ChurnFreeWorkloadNeverRegistersTheProcess) {
  // An all-zero churn vector must behave exactly like no churn vector.
  std::vector<SiteChurnParams> no_churn(1);
  Engine engine({{0, 1, 1.0, 1.0}}, {make_job(0.0, 10.0, 1, 0.5)},
                quick_config(50.0), {}, no_churn);
  ScriptedScheduler scheduler({0});
  engine.run(scheduler);
  EXPECT_EQ(engine.counters().site_down_events, 0u);
  EXPECT_DOUBLE_EQ(engine.jobs()[0].finish, 60.0);
}

TEST(SimKernel, RejectsDoubleRoutingOfAnEventKind) {
  SimKernel kernel({{0, 1, 1.0, 1.0}}, std::vector<Job>{},
                   quick_config(50.0));
  ArrivalProcess a;
  ArrivalProcess b;
  kernel.add_process(a);
  EXPECT_THROW(kernel.add_process(b), std::logic_error);
}

TEST(SimKernel, UnroutedEventKindThrows) {
  // A kernel missing the batch/failure processes cannot make progress on
  // a job arrival's requested cycle.
  SimKernel kernel({{0, 1, 1.0, 1.0}}, {make_job(0.0, 10.0, 1, 0.5)},
                   quick_config(50.0));
  ArrivalProcess arrival;
  kernel.add_process(arrival);
  EXPECT_THROW(kernel.run(), std::logic_error);
}

}  // namespace
}  // namespace gridsched::sim
