#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace gridsched::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_EQ(differing, 64);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, LongJumpChangesSequence) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256StarStar::min() == 0);
  static_assert(Xoshiro256StarStar::max() ==
                std::numeric_limits<std::uint64_t>::max());
  SUCCEED();
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 12.25);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(2, 9);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values appear
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntIsUnbiased) {
  Rng rng(5);
  constexpr int kDraws = 120000;
  std::vector<int> counts(6, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 5))];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / 6.0, kDraws * 0.01);
  }
}

TEST(Rng, IndexStaysBelowBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.exponential(0.25);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 4.0, 0.08);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(29);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(31);
  std::vector<double> draws(50001);
  for (double& x : draws) x = rng.lognormal(2.0, 0.8);
  std::nth_element(draws.begin(), draws.begin() + 25000, draws.end());
  EXPECT_NEAR(draws[25000], std::exp(2.0), 0.15);
}

TEST(Rng, ChildStreamsAreIndependentAndDeterministic) {
  Rng a = Rng::child(1000, 0);
  Rng a_again = Rng::child(1000, 0);
  Rng b = Rng::child(1000, 1);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, a_again.next_u64());
    if (va != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> sorted = v;
  rng.shuffle(v);
  std::vector<int> shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(41);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(43);
  const std::vector<int> items = {10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(std::span<const int>(items));
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

/// Property sweep: uniform_int never escapes [lo, hi] over many ranges.
class RngRangeProperty
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RngRangeProperty, BoundsHold) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

// --------------------------------------------------------------- SeedMix ---

TEST(SeedMix, DeterministicAndStable) {
  const std::uint64_t a =
      SeedMix(7).mix("scenario").mix("policy").mix(std::uint64_t{3}).seed();
  const std::uint64_t b =
      SeedMix(7).mix("scenario").mix("policy").mix(std::uint64_t{3}).seed();
  EXPECT_EQ(a, b);
  // Pinned value: the mix is part of the campaign artifact contract —
  // changing it invalidates committed campaign JSON, so fail loudly.
  EXPECT_EQ(SeedMix(1).mix(std::uint64_t{2}).seed(), 0xdce423fc82c0d5b8ULL);
}

TEST(SeedMix, OrderAndCoordinatesMatter) {
  const auto mixed = [](auto... coords) {
    SeedMix mix(42);
    (mix.mix(coords), ...);
    return mix.seed();
  };
  EXPECT_NE(mixed(std::uint64_t{1}, std::uint64_t{2}),
            mixed(std::uint64_t{2}, std::uint64_t{1}));
  EXPECT_NE(mixed(std::string_view("ab"), std::string_view("c")),
            mixed(std::string_view("a"), std::string_view("bc")));
  EXPECT_NE(SeedMix(42).seed(), SeedMix(43).seed());
  EXPECT_NE(mixed(std::string_view("x")), SeedMix(42).seed());
}

TEST(SeedMix, AdjacentCellsGetDistantStreams) {
  // The replacement for `seed + i` arithmetic must not produce correlated
  // generators for adjacent indices: all derived seeds distinct, and
  // first draws spread over the 64-bit range.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(SeedMix(5).mix("cell").mix(i).seed());
  }
  EXPECT_EQ(seeds.size(), 1000u);
  Rng first = SeedMix(5).mix("cell").mix(std::uint64_t{0}).rng();
  Rng second = SeedMix(5).mix("cell").mix(std::uint64_t{1}).rng();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (first.next_u64() != second.next_u64()) ++differing;
  }
  EXPECT_EQ(differing, 64);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RngRangeProperty,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 0},
                      std::pair<std::int64_t, std::int64_t>{0, 1},
                      std::pair<std::int64_t, std::int64_t>{-1, 1},
                      std::pair<std::int64_t, std::int64_t>{0, 6},
                      std::pair<std::int64_t, std::int64_t>{-100, 100},
                      std::pair<std::int64_t, std::int64_t>{1, 1000000},
                      std::pair<std::int64_t, std::int64_t>{-1000000,
                                                            -999990}));

}  // namespace
}  // namespace gridsched::util
