// Raw-ETC execution model, end to end: sim::ExecModel validation, a
// hand-checked small instance driven through the engine, and the golden
// property that the synth-{semi,inconsistent}-* scenarios now run the
// engine / heuristics / GA on the raw generated matrix (no fit_work_speed
// projection anywhere in the execution path).
#include "sim/exec_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/ga_problem.hpp"
#include "core/ga_scheduler.hpp"
#include "exp/scenario_registry.hpp"
#include "sched/etc_matrix.hpp"
#include "sched/heuristics.hpp"
#include "sim/engine.hpp"
#include "workload/synth/synth.hpp"

namespace gridsched {
namespace {

using workload::synth::SynthTrace;

// ------------------------------------------------------------ ExecModel ---

TEST(ExecModel, DefaultIsRankOneFallback) {
  const sim::ExecModel model;
  EXPECT_FALSE(model.has_matrix());
  EXPECT_DOUBLE_EQ(model.exec(0, 100.0, 0, 4.0), 25.0);
}

TEST(ExecModel, MatrixIsAuthoritative) {
  const sim::ExecModel model(2, 2, {30.0, 200.0, 200.0, 40.0});
  ASSERT_TRUE(model.has_matrix());
  // work/speed arguments are ignored when a matrix is attached.
  EXPECT_DOUBLE_EQ(model.exec(0, 999.0, 0, 7.0), 30.0);
  EXPECT_DOUBLE_EQ(model.exec(0, 999.0, 1, 7.0), 200.0);
  EXPECT_DOUBLE_EQ(model.exec(1, 999.0, 1, 7.0), 40.0);
}

TEST(ExecModel, RejectsBadMatrices) {
  EXPECT_THROW(sim::ExecModel(2, 2, {1.0, 2.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(sim::ExecModel(0, 2, {}), std::invalid_argument);
  EXPECT_THROW(sim::ExecModel(1, 2, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(sim::ExecModel(1, 2, {1.0, -3.0}), std::invalid_argument);
  EXPECT_THROW(
      sim::ExecModel(1, 2, {1.0, std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
}

TEST(ExecModel, CheckShapeGuardsEngineWiring) {
  const sim::ExecModel model(4, 2, std::vector<double>(8, 1.0));
  EXPECT_NO_THROW(model.check_shape(4, 2));
  // Exact shape only: extra rows mean the job list was subset relative to
  // the matrix, i.e. dense JobIds no longer select the right row.
  EXPECT_THROW(model.check_shape(3, 2), std::invalid_argument);
  EXPECT_THROW(model.check_shape(5, 2), std::invalid_argument);
  EXPECT_THROW(model.check_shape(4, 3), std::invalid_argument);
  EXPECT_NO_THROW(sim::ExecModel{}.check_shape(100, 100));  // fallback: any
}

// ------------------------------------------- hand-checked small instance ---

TEST(EtcExecution, EngineRealisesHandCheckedRawEtc) {
  // Two unit-speed 1-node sites, two jobs of identical `work` 100. Under
  // the rank-1 law the matrix would be flat 100s; the raw ETC instead
  // makes each job fast on "its" site. Hand-schedule (MCT, batch order,
  // first cycle at t=50):
  //   J0: site0 completes 50 + 30 = 80, site1 50 + 200 = 250  -> site0
  //   J1: site0 now frees at 80 -> 80 + 200 = 280, site1 50 + 40 = 90
  //                                                           -> site1
  const sim::ExecModel etc(2, 2, {30.0, 200.0, 200.0, 40.0});
  std::vector<sim::Job> jobs(2);
  for (auto& job : jobs) {
    job.work = 100.0;
    job.nodes = 1;
    job.demand = 0.5;
  }
  sim::EngineConfig config;
  config.batch_interval = 50.0;
  sim::Engine engine({{0, 1, 1.0, 1.0}, {1, 1, 1.0, 1.0}}, jobs, config, etc);
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);

  EXPECT_EQ(engine.jobs()[0].final_site, 0u);
  EXPECT_DOUBLE_EQ(engine.jobs()[0].finish, 80.0);
  EXPECT_EQ(engine.jobs()[1].final_site, 1u);
  EXPECT_DOUBLE_EQ(engine.jobs()[1].finish, 90.0);
  EXPECT_DOUBLE_EQ(engine.makespan(), 90.0);
}

// ---------------------------------------------------- registry scenarios ---

/// A scheduling round built from a workload: fresh availability, the first
/// `n_jobs` jobs as the batch, and the workload's execution model.
sim::SchedulerContext context_of(const workload::Workload& w,
                                 std::size_t n_jobs, sim::Time now) {
  sim::SchedulerContext context;
  context.now = now;
  context.exec = w.exec;
  context.sites = w.sites;
  for (const sim::SiteConfig& site : w.sites) {
    context.avail.emplace_back(site.nodes, 0.0);
  }
  for (const sim::Job& job : w.jobs) {
    if (context.jobs.size() >= n_jobs) break;
    context.jobs.push_back(
        {job.id, job.work, job.nodes, job.demand, job.arrival, false});
  }
  return context;
}

TEST(EtcExecution, SynthScenariosCarryTheRawMatrix) {
  for (const char* name :
       {"synth-consistent-hihi", "synth-semi-hihi", "synth-semi-lolo",
        "synth-inconsistent-hihi", "synth-inconsistent-lolo"}) {
    SCOPED_TRACE(name);
    const auto workload =
        exp::make_workload(exp::make_scenario(name, 32), 11);
    EXPECT_TRUE(workload.exec.has_matrix());
    EXPECT_EQ(workload.exec.matrix_jobs(), 32u);
    EXPECT_EQ(workload.exec.matrix_sites(), workload.sites.size());
  }
  // The rank-1 testbeds stay on the fallback model.
  EXPECT_FALSE(
      exp::make_workload(exp::make_scenario("psa", 32), 11).exec.has_matrix());
}

TEST(EtcExecution, SchedulerAndGaConsumeRawCellsNotTheProjection) {
  // The scaled generator cells must reach sched::EtcMatrix and
  // GaProblem::exec bit-for-bit, and must NOT equal the rank-1 projection
  // for an inconsistent matrix.
  const exp::Scenario scenario =
      exp::make_scenario("synth-inconsistent-hihi", 40);
  const SynthTrace trace = workload::synth::synth_trace(scenario.synth, 23);
  const workload::Workload& w = trace.workload;
  const auto context = context_of(w, w.jobs.size(), 0.0);

  const sched::EtcMatrix etc(context);
  const core::GaProblem problem =
      core::build_problem(context, security::RiskPolicy::risky());
  ASSERT_EQ(problem.n_jobs(), w.jobs.size());  // risky: nothing filtered

  bool any_off_projection = false;
  for (std::size_t j = 0; j < w.jobs.size(); ++j) {
    for (std::size_t s = 0; s < w.sites.size(); ++s) {
      if (w.jobs[j].nodes > w.sites[s].nodes) {
        EXPECT_TRUE(std::isinf(etc.exec(j, s)));
        continue;
      }
      const double raw = trace.etc.at(j, s);
      EXPECT_EQ(etc.exec(j, s), raw);
      EXPECT_EQ(problem.exec_at(j, s), raw);
      const double projected = w.jobs[j].work / w.sites[s].speed;
      if (raw != projected) any_off_projection = true;
    }
  }
  EXPECT_TRUE(any_off_projection)
      << "inconsistent ETC collapsed to its rank-1 projection";
}

TEST(EtcExecution, RawEtcChangesHeuristicAndGaMakespans) {
  // Same jobs/sites, raw matrix vs rank-1 fallback: the realised makespans
  // must differ for an inconsistent class — under the old projection both
  // runs would have been identical.
  const exp::Scenario scenario =
      exp::make_scenario("synth-inconsistent-hihi", 48);
  const workload::Workload raw = exp::make_workload(scenario, 29);
  ASSERT_TRUE(raw.exec.has_matrix());
  workload::Workload projected = raw;
  projected.exec = sim::ExecModel{};  // strip: rank-1 fallback

  const auto run_minmin = [&](const workload::Workload& w) {
    sim::Engine engine(w.sites, w.jobs, scenario.engine, w.exec);
    sched::MinMinScheduler scheduler(security::RiskPolicy::risky());
    engine.run(scheduler);
    return engine.makespan();
  };
  EXPECT_NE(run_minmin(raw), run_minmin(projected));

  const auto run_ga = [&](const workload::Workload& w) {
    core::StgaConfig config;
    config.ga.population = 16;
    config.ga.generations = 6;
    core::GaScheduler scheduler(config);
    sim::Engine engine(w.sites, w.jobs, scenario.engine, w.exec);
    engine.run(scheduler);
    return engine.makespan();
  };
  EXPECT_NE(run_ga(raw), run_ga(projected));
}

}  // namespace
}  // namespace gridsched
