#include "core/operators.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/ga_problem.hpp"

namespace gridsched::core {
namespace {

/// Minimal hand-built problem: n jobs over the given per-job domains.
GaProblem toy_problem(std::vector<std::vector<sim::SiteId>> domains,
                      std::size_t n_sites = 4) {
  GaProblem problem;
  problem.now = 0.0;
  for (std::size_t s = 0; s < n_sites; ++s) {
    problem.sites.push_back({static_cast<sim::SiteId>(s), 1u, 1.0, 0.8});
    problem.avail.emplace_back(1u, 0.0);
  }
  for (std::size_t j = 0; j < domains.size(); ++j) {
    sim::BatchJob job;
    job.id = static_cast<sim::JobId>(j);
    job.work = 10.0 + static_cast<double>(j);
    job.nodes = 1;
    job.demand = 0.7;
    problem.jobs.push_back(job);
    problem.batch_index.push_back(j);
  }
  problem.domains = std::move(domains);
  problem.exec.assign(problem.n_jobs() * n_sites, 1.0);
  problem.pfail.assign(problem.n_jobs() * n_sites, 0.0);
  return problem;
}

TEST(RandomChromosome, RespectsDomains) {
  const auto problem = toy_problem({{0, 2}, {1}, {0, 1, 2, 3}});
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Chromosome chromosome = random_chromosome(problem, rng);
    ASSERT_EQ(chromosome.size(), 3u);
    EXPECT_TRUE(is_feasible(problem, chromosome));
    EXPECT_EQ(chromosome[1], 1u);  // singleton domain is forced
  }
}

TEST(RouletteSelect, RejectsEmpty) {
  util::Rng rng(1);
  EXPECT_THROW(roulette_select({}, rng), std::invalid_argument);
}

TEST(RouletteSelect, UniformWhenAllEqual) {
  util::Rng rng(2);
  const std::vector<double> fitness = {5.0, 5.0, 5.0, 5.0};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[roulette_select(fitness, rng)];
  for (const auto& [index, count] : counts) {
    EXPECT_NEAR(count, 2000, 250) << "index " << index;
  }
}

TEST(RouletteSelect, PrefersLowerFitness) {
  util::Rng rng(3);
  // Minimisation: 1.0 is much better than 100.0.
  const std::vector<double> fitness = {1.0, 100.0};
  int best = 0;
  for (int i = 0; i < 10000; ++i) {
    if (roulette_select(fitness, rng) == 0) ++best;
  }
  EXPECT_GT(best, 8000);
  EXPECT_LT(best, 10000);  // the floor keeps the worst selectable
}

TEST(RouletteSelect, MiddleCandidateGetsProportionalShare) {
  util::Rng rng(4);
  const std::vector<double> fitness = {0.0, 5.0, 10.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[roulette_select(fitness, rng)];
  // Wheel shares with a 10% floor: (10 + 1) : (5 + 1) : (0 + 1) = 11:6:1.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 11.0 / 6.0, 0.3);
}

TEST(RouletteWheel, RejectsEmpty) {
  RouletteWheel wheel;
  EXPECT_THROW(wheel.rebuild({}), std::invalid_argument);
}

TEST(RouletteWheel, UniformWhenAllEqual) {
  util::Rng rng(12);
  RouletteWheel wheel;
  wheel.rebuild(std::vector<double>{3.0, 3.0, 3.0});
  ASSERT_EQ(wheel.size(), 3u);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 6000; ++i) ++counts[wheel.select(rng)];
  for (const auto& [index, count] : counts) {
    EXPECT_NEAR(count, 2000, 250) << "index " << index;
  }
}

TEST(RouletteWheel, SharesMatchTheRouletteSelectWheel) {
  // Same 11:6:1 shares as roulette_select (10% floor on the range), now
  // selected via prefix-sum binary search.
  util::Rng rng(13);
  RouletteWheel wheel;
  wheel.rebuild(std::vector<double>{0.0, 5.0, 10.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[wheel.select(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 11.0 / 6.0, 0.3);
  EXPECT_GT(counts[2], 0);  // the floor keeps the worst selectable
}

TEST(RouletteWheel, RebuildResizesAcrossGenerations) {
  util::Rng rng(14);
  RouletteWheel wheel;
  wheel.rebuild(std::vector<double>{1.0, 2.0});
  EXPECT_LT(wheel.select(rng), 2u);
  wheel.rebuild(std::vector<double>{4.0, 1.0, 2.0, 3.0, 9.0});
  EXPECT_EQ(wheel.size(), 5u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(wheel.select(rng), 5u);
}

TEST(Crossover, LengthMismatchThrows) {
  util::Rng rng(5);
  Chromosome a = {0, 1};
  Chromosome b = {0};
  EXPECT_THROW(crossover_one_point(a, b, rng), std::invalid_argument);
}

TEST(Crossover, SingleGeneIsNoop) {
  util::Rng rng(5);
  Chromosome a = {3};
  Chromosome b = {1};
  crossover_one_point(a, b, rng);
  EXPECT_EQ(a, Chromosome{3});
  EXPECT_EQ(b, Chromosome{1});
}

TEST(Crossover, ChildrenAreTailSwaps) {
  util::Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const Chromosome parent_a = {0, 0, 0, 0, 0, 0};
    const Chromosome parent_b = {1, 1, 1, 1, 1, 1};
    Chromosome a = parent_a;
    Chromosome b = parent_b;
    crossover_one_point(a, b, rng);
    // a must be 0^cut 1^(n-cut) for some cut in [1, n-1]; b the complement.
    std::size_t cut = 0;
    while (cut < a.size() && a[cut] == 0) ++cut;
    ASSERT_GE(cut, 1u);
    ASSERT_LE(cut, a.size() - 1);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], i < cut ? 0u : 1u);
      EXPECT_EQ(b[i], i < cut ? 1u : 0u);
    }
  }
}

TEST(Crossover, PreservesPositionalGenePool) {
  util::Rng rng(7);
  Chromosome a = {2, 3, 0, 1, 2};
  Chromosome b = {1, 0, 3, 2, 0};
  const Chromosome old_a = a;
  const Chromosome old_b = b;
  crossover_one_point(a, b, rng);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE((a[i] == old_a[i] && b[i] == old_b[i]) ||
                (a[i] == old_b[i] && b[i] == old_a[i]));
  }
}

TEST(Mutate, ZeroRateIsNoop) {
  const auto problem = toy_problem({{0, 1, 2, 3}, {0, 1, 2, 3}});
  util::Rng rng(8);
  Chromosome chromosome = {0, 3};
  mutate(chromosome, problem, 0.0, rng);
  EXPECT_EQ(chromosome, (Chromosome{0, 3}));
}

TEST(Mutate, FullRateStaysInDomain) {
  const auto problem = toy_problem({{1, 2}, {0}, {2, 3}});
  util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    Chromosome chromosome = {1, 0, 2};
    mutate(chromosome, problem, 1.0, rng);
    EXPECT_TRUE(is_feasible(problem, chromosome));
  }
}

TEST(Mutate, EventuallyChangesGenes) {
  const auto problem = toy_problem({{0, 1, 2, 3}});
  util::Rng rng(10);
  Chromosome chromosome = {0};
  bool changed = false;
  for (int trial = 0; trial < 200 && !changed; ++trial) {
    mutate(chromosome, problem, 1.0, rng);
    changed = chromosome[0] != 0;
  }
  EXPECT_TRUE(changed);
}

TEST(Repair, FixesForeignGenesOnly) {
  const auto problem = toy_problem({{0, 1}, {2}, {1, 3}});
  util::Rng rng(11);
  Chromosome chromosome = {0, 0, 2};  // genes 1 and 2 are out of domain
  repair(chromosome, problem, rng);
  EXPECT_TRUE(is_feasible(problem, chromosome));
  EXPECT_EQ(chromosome[0], 0u);  // already valid: untouched
  EXPECT_EQ(chromosome[1], 2u);  // forced to the only member
}

TEST(ResampleGenes, IdentityWhenSameLength) {
  const Chromosome source = {4, 2, 7};
  EXPECT_EQ(resample_genes(source, 3), source);
}

TEST(ResampleGenes, UpsamplesByRepetition) {
  const Chromosome source = {1, 9};
  EXPECT_EQ(resample_genes(source, 4), (Chromosome{1, 1, 9, 9}));
}

TEST(ResampleGenes, DownsamplesKeepingEnds) {
  const Chromosome source = {5, 6, 7, 8};
  const Chromosome out = resample_genes(source, 2);
  EXPECT_EQ(out, (Chromosome{5, 7}));
}

TEST(ResampleGenes, EmptySourceThrows) {
  EXPECT_THROW(resample_genes({}, 3), std::invalid_argument);
}

TEST(ResampleGenes, ZeroTargetGivesEmpty) {
  EXPECT_TRUE(resample_genes({1, 2}, 0).empty());
}

}  // namespace
}  // namespace gridsched::core
