// Synthetic workload subsystem: determinism of (config, seed), the
// consistency-class invariants of generated ETC matrices, arrival-process
// properties, the rank-1 fit, and the scenario-registry round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "exp/scenario_registry.hpp"
#include "workload/synth/arrival.hpp"
#include "workload/synth/etc_gen.hpp"
#include "workload/synth/synth.hpp"
#include "workload/trace_io.hpp"

namespace gridsched::workload::synth {
namespace {

EtcConfig etc_config(EtcConsistency consistency, Heterogeneity task,
                     Heterogeneity machine) {
  EtcConfig config;
  config.consistency = consistency;
  config.task_heterogeneity = task;
  config.machine_heterogeneity = machine;
  return config;
}

SynthConfig small_config() {
  SynthConfig config;
  config.n_jobs = 200;
  config.n_sites = 8;
  config.site_node_pattern = {8, 2, 4};
  config.size_weights = {0.5, 0.3, 0.2};
  return config;
}

// ----------------------------------------------------------- determinism ---

TEST(SynthWorkload, SameConfigAndSeedIsByteIdentical) {
  const SynthConfig config = small_config();
  const Workload a = synth_workload(config, 99);
  const Workload b = synth_workload(config, 99);

  // Byte-level check through the canonical trace serialisation.
  std::ostringstream jobs_a, jobs_b, sites_a, sites_b;
  write_jobs(jobs_a, a.jobs);
  write_jobs(jobs_b, b.jobs);
  write_sites(sites_a, a.sites);
  write_sites(sites_b, b.sites);
  EXPECT_EQ(jobs_a.str(), jobs_b.str());
  EXPECT_EQ(sites_a.str(), sites_b.str());

  // And exact equality on the raw fields (trace formatting could round).
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].arrival, b.jobs[j].arrival);
    EXPECT_EQ(a.jobs[j].work, b.jobs[j].work);
    EXPECT_EQ(a.jobs[j].nodes, b.jobs[j].nodes);
    EXPECT_EQ(a.jobs[j].demand, b.jobs[j].demand);
  }
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t s = 0; s < a.sites.size(); ++s) {
    EXPECT_EQ(a.sites[s].nodes, b.sites[s].nodes);
    EXPECT_EQ(a.sites[s].speed, b.sites[s].speed);
    EXPECT_EQ(a.sites[s].security, b.sites[s].security);
  }
}

TEST(SynthWorkload, DifferentSeedsDiverge) {
  const SynthConfig config = small_config();
  const Workload a = synth_workload(config, 1);
  const Workload b = synth_workload(config, 2);
  bool any_diff = false;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    if (a.jobs[j].work != b.jobs[j].work) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SynthWorkload, JobsAreSortedAndWellFormed) {
  const Workload workload = synth_workload(small_config(), 5);
  ASSERT_EQ(workload.jobs.size(), 200u);
  double previous = 0.0;
  for (const sim::Job& job : workload.jobs) {
    EXPECT_GE(job.arrival, previous);
    previous = job.arrival;
    EXPECT_GT(job.work, 0.0);
    EXPECT_GE(job.nodes, 1u);
    EXPECT_LE(job.nodes, 8u);  // capped at the largest site
    EXPECT_GE(job.demand, 0.6);
    EXPECT_LE(job.demand, 0.9);
  }
  // Fail-stop safety: some site fits the largest job securely.
  const auto safe = std::any_of(
      workload.sites.begin(), workload.sites.end(), [](const auto& site) {
        return site.nodes >= 8u && site.security >= 0.9;
      });
  EXPECT_TRUE(safe);
}

// ------------------------------------------------- ETC class invariants ---

TEST(EtcGen, ConsistentMatrixIsColumnOrdered) {
  util::Rng rng(7);
  const EtcMatrixData etc =
      generate_etc(60, 10, etc_config(EtcConsistency::kConsistent,
                                      Heterogeneity::kHi, Heterogeneity::kHi),
                   rng);
  std::vector<std::size_t> all(etc.machines);
  for (std::size_t m = 0; m < etc.machines; ++m) all[m] = m;
  EXPECT_TRUE(columns_consistent(etc, all));
  // Rows are ascending in column index (the shared machine ordering).
  for (std::size_t t = 0; t < etc.tasks; ++t) {
    for (std::size_t m = 1; m < etc.machines; ++m) {
      EXPECT_LE(etc.at(t, m - 1), etc.at(t, m));
    }
  }
}

TEST(EtcGen, SemiConsistentMatrixOrdersEvenColumnsOnly) {
  util::Rng rng(7);
  const EtcMatrixData etc = generate_etc(
      60, 10, etc_config(EtcConsistency::kSemiConsistent, Heterogeneity::kHi,
                         Heterogeneity::kHi),
      rng);
  std::vector<std::size_t> even;
  std::vector<std::size_t> all;
  for (std::size_t m = 0; m < etc.machines; ++m) {
    all.push_back(m);
    if (m % 2 == 0) even.push_back(m);
  }
  EXPECT_TRUE(columns_consistent(etc, even));
  // With 60 rows and unordered odd columns, full consistency is
  // astronomically unlikely.
  EXPECT_FALSE(columns_consistent(etc, all));
}

TEST(EtcGen, InconsistentMatrixHasNoColumnOrder) {
  util::Rng rng(7);
  const EtcMatrixData etc = generate_etc(
      60, 10, etc_config(EtcConsistency::kInconsistent, Heterogeneity::kHi,
                         Heterogeneity::kHi),
      rng);
  std::vector<std::size_t> all(etc.machines);
  for (std::size_t m = 0; m < etc.machines; ++m) all[m] = m;
  EXPECT_FALSE(columns_consistent(etc, all));
}

TEST(EtcGen, HiTaskHeterogeneitySpreadsRowMeans) {
  util::Rng rng_hi(11);
  util::Rng rng_lo(11);
  const auto spread = [](const EtcMatrixData& etc) {
    // Coefficient of variation of row means.
    std::vector<double> means(etc.tasks, 0.0);
    for (std::size_t t = 0; t < etc.tasks; ++t) {
      for (std::size_t m = 0; m < etc.machines; ++m) {
        means[t] += etc.at(t, m);
      }
      means[t] /= static_cast<double>(etc.machines);
    }
    double mean = 0.0;
    for (const double x : means) mean += x;
    mean /= static_cast<double>(means.size());
    double var = 0.0;
    for (const double x : means) var += (x - mean) * (x - mean);
    var /= static_cast<double>(means.size());
    return std::sqrt(var) / mean;
  };
  const EtcMatrixData hi =
      generate_etc(400, 8, etc_config(EtcConsistency::kInconsistent,
                                      Heterogeneity::kHi, Heterogeneity::kLo),
                   rng_hi);
  const EtcMatrixData lo =
      generate_etc(400, 8, etc_config(EtcConsistency::kInconsistent,
                                      Heterogeneity::kLo, Heterogeneity::kLo),
                   rng_lo);
  EXPECT_GT(spread(hi), spread(lo));
}

TEST(EtcGen, RejectsDegenerateRequests) {
  util::Rng rng(1);
  EXPECT_THROW(generate_etc(0, 4, {}, rng), std::invalid_argument);
  EXPECT_THROW(generate_etc(4, 0, {}, rng), std::invalid_argument);
}

// ---------------------------------------------------------- rank-1 fit ---

TEST(EtcGen, FitRecoversExactRankOneMatrix) {
  EtcMatrixData etc;
  etc.tasks = 3;
  etc.machines = 2;
  const double work[] = {100.0, 300.0, 50.0};
  const double speed[] = {1.0, 4.0};
  for (const double w : work) {
    for (const double s : speed) etc.cells.push_back(w / s);
  }
  const WorkSpeedFit fit = fit_work_speed(etc);
  EXPECT_NEAR(fit.log_rms_residual, 0.0, 1e-12);
  // Speeds are recovered up to the gauge (geometric mean 1): ratio exact.
  EXPECT_NEAR(fit.speed[1] / fit.speed[0], 4.0, 1e-9);
  EXPECT_NEAR(fit.work[1] / fit.work[0], 3.0, 1e-9);
}

TEST(EtcGen, FitResidualGrowsWithInconsistency) {
  util::Rng rng_c(3);
  util::Rng rng_i(3);
  const EtcMatrixData consistent =
      generate_etc(200, 12, etc_config(EtcConsistency::kConsistent,
                                       Heterogeneity::kHi, Heterogeneity::kHi),
                   rng_c);
  const EtcMatrixData inconsistent = generate_etc(
      200, 12, etc_config(EtcConsistency::kInconsistent, Heterogeneity::kHi,
                          Heterogeneity::kHi),
      rng_i);
  EXPECT_LT(fit_work_speed(consistent).log_rms_residual,
            fit_work_speed(inconsistent).log_rms_residual);
}

// ------------------------------------------------------------- arrivals ---

TEST(Arrivals, BatchWavesSplitEvenly) {
  util::Rng rng(1);
  ArrivalConfig config;
  config.process = ArrivalProcess::kBatch;
  config.batch_waves = 3;
  config.wave_interval = 100.0;
  const auto times = arrival_times(10, config, rng);
  ASSERT_EQ(times.size(), 10u);
  EXPECT_EQ(std::count(times.begin(), times.end(), 0.0), 4);
  EXPECT_EQ(std::count(times.begin(), times.end(), 100.0), 3);
  EXPECT_EQ(std::count(times.begin(), times.end(), 200.0), 3);
}

TEST(Arrivals, PoissonMeanInterarrivalMatchesRate) {
  util::Rng rng(5);
  ArrivalConfig config;
  config.process = ArrivalProcess::kPoisson;
  config.rate = 0.02;
  const auto times = arrival_times(20000, config, rng);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  EXPECT_NEAR(times.back() / 20000.0, 50.0, 2.0);
}

TEST(Arrivals, BurstyIsSortedAndBurstier) {
  util::Rng rng_b(9);
  util::Rng rng_p(9);
  ArrivalConfig bursty;
  bursty.process = ArrivalProcess::kBurstyOnOff;
  bursty.on_duration = 500.0;
  bursty.off_duration = 2000.0;
  bursty.burst_rate = 0.1;
  const auto bursty_times = arrival_times(5000, bursty, rng_b);
  EXPECT_TRUE(std::is_sorted(bursty_times.begin(), bursty_times.end()));

  ArrivalConfig poisson;
  poisson.process = ArrivalProcess::kPoisson;
  poisson.rate = 0.1 * 500.0 / 2500.0;  // same long-run mean rate
  const auto poisson_times = arrival_times(5000, poisson, rng_p);

  // Burstiness: the squared coefficient of variation of interarrival gaps
  // must clearly exceed the Poisson value of 1.
  const auto cv2 = [](const std::vector<sim::Time>& times) {
    double mean = 0.0;
    const auto n = times.size() - 1;
    for (std::size_t i = 1; i < times.size(); ++i) {
      mean += times[i] - times[i - 1];
    }
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 1; i < times.size(); ++i) {
      const double gap = times[i] - times[i - 1] - mean;
      var += gap * gap;
    }
    return var / static_cast<double>(n) / (mean * mean);
  };
  EXPECT_GT(cv2(bursty_times), 2.0);
  EXPECT_NEAR(cv2(poisson_times), 1.0, 0.25);
}

TEST(Arrivals, RejectsBadConfigs) {
  util::Rng rng(1);
  ArrivalConfig config;
  config.process = ArrivalProcess::kPoisson;
  config.rate = 0.0;
  EXPECT_THROW(arrival_times(5, config, rng), std::invalid_argument);
  config.process = ArrivalProcess::kBatch;
  config.batch_waves = 0;
  EXPECT_THROW(arrival_times(5, config, rng), std::invalid_argument);
}

// ----------------------------------------------------- security regimes ---

TEST(SecurityProfile, RiskyRegimeUnderSecuresMostJobs) {
  SynthConfig config = small_config();
  config.security = SecurityProfile::risky();
  const Workload risky = synth_workload(config, 17);
  config.security = SecurityProfile::secure();
  const Workload secure = synth_workload(config, 17);

  const auto safe_pairs = [](const Workload& workload) {
    std::size_t safe = 0, total = 0;
    for (const sim::Job& job : workload.jobs) {
      for (const sim::SiteConfig& site : workload.sites) {
        ++total;
        if (job.demand <= site.security) ++safe;
      }
    }
    return static_cast<double>(safe) / static_cast<double>(total);
  };
  EXPECT_LT(safe_pairs(risky), 0.5);
  EXPECT_GT(safe_pairs(secure), 0.8);
}

// ----------------------------------------------------- scenario registry ---

TEST(ScenarioRegistry, EveryNameMaterialises) {
  const auto names = exp::scenario_names();
  EXPECT_GE(names.size(), 8u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    SCOPED_TRACE(name);
    const exp::Scenario scenario = exp::make_scenario(name, 64);
    const Workload workload = exp::make_workload(scenario, 23);
    EXPECT_EQ(workload.jobs.size(), 64u);
    EXPECT_FALSE(workload.sites.empty());
    EXPECT_FALSE(exp::scenario_description(name).empty());
  }
}

TEST(ScenarioRegistry, ContainsPaperAndSynthFamilies) {
  const auto names = exp::scenario_names();
  for (const char* required :
       {"nas", "psa", "synth-consistent-hihi", "synth-inconsistent-hihi",
        "synth-batch", "synth-bursty", "synth-secure", "synth-risky",
        "synth-churn-lo", "synth-churn-hi"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), required) != names.end())
        << required;
  }
}

TEST(Churn, ParamsAreDeterministicAndSpread) {
  ChurnConfig config;
  config.enabled = true;
  config.mtbf_mean = 40000.0;
  config.mttr_mean = 4000.0;
  config.spread = 0.5;
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  const auto a = churn_params(16, config, rng_a);
  const auto b = churn_params(16, config, rng_b);
  ASSERT_EQ(a.size(), 16u);
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_DOUBLE_EQ(a[s].mtbf, b[s].mtbf);
    EXPECT_DOUBLE_EQ(a[s].mttr, b[s].mttr);
    EXPECT_TRUE(a[s].churns());
    EXPECT_GE(a[s].mtbf, config.mtbf_mean * 0.5);
    EXPECT_LE(a[s].mtbf, config.mtbf_mean * 1.5);
    EXPECT_GE(a[s].mttr, config.mttr_mean * 0.5);
    EXPECT_LE(a[s].mttr, config.mttr_mean * 1.5);
  }
  // Heterogeneous: not every site shares one MTBF.
  EXPECT_NE(a.front().mtbf, a.back().mtbf);
}

TEST(Churn, DisabledConfigYieldsNoParams) {
  util::Rng rng(1);
  EXPECT_TRUE(churn_params(8, ChurnConfig{}, rng).empty());
}

TEST(Churn, RejectsDegenerateConfigs) {
  util::Rng rng(1);
  ChurnConfig config;
  config.enabled = true;
  config.mtbf_mean = 0.0;
  config.mttr_mean = 100.0;
  EXPECT_THROW(churn_params(4, config, rng), std::invalid_argument);
  config.mtbf_mean = 100.0;
  config.mttr_mean = -1.0;
  EXPECT_THROW(churn_params(4, config, rng), std::invalid_argument);
  config.mttr_mean = 100.0;
  config.spread = 1.0;
  EXPECT_THROW(churn_params(4, config, rng), std::invalid_argument);
}

TEST(Churn, GeneratorAttachesParamsOnlyWhenEnabled) {
  SynthConfig config;
  config.n_jobs = 40;
  config.n_sites = 6;
  EXPECT_TRUE(synth_workload(config, 5).churn.empty());

  config.churn.enabled = true;
  config.churn.mtbf_mean = 30000.0;
  config.churn.mttr_mean = 3000.0;
  const Workload churned = synth_workload(config, 5);
  EXPECT_EQ(churned.churn.size(), 6u);

  // Enabling churn must not perturb the other streams: jobs identical.
  const Workload base = synth_workload([&] {
    SynthConfig plain = config;
    plain.churn = ChurnConfig{};
    return plain;
  }(), 5);
  ASSERT_EQ(base.jobs.size(), churned.jobs.size());
  for (std::size_t j = 0; j < base.jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(base.jobs[j].work, churned.jobs[j].work);
    EXPECT_DOUBLE_EQ(base.jobs[j].arrival, churned.jobs[j].arrival);
    EXPECT_EQ(base.jobs[j].nodes, churned.jobs[j].nodes);
  }
}

TEST(ScenarioRegistry, UnknownNameThrowsInvalidArgument) {
  EXPECT_THROW(exp::make_scenario("no-such-scenario"), std::invalid_argument);
  EXPECT_THROW(exp::scenario_description("no-such-scenario"),
               std::invalid_argument);
}

TEST(ScenarioRegistry, RegistryWorkloadsAreDeterministic) {
  for (const std::string& name : exp::scenario_names()) {
    SCOPED_TRACE(name);
    const Workload a = exp::make_workload(exp::make_scenario(name, 64), 31);
    const Workload b = exp::make_workload(exp::make_scenario(name, 64), 31);
    std::ostringstream sa, sb;
    write_jobs(sa, a.jobs);
    write_jobs(sb, b.jobs);
    EXPECT_EQ(sa.str(), sb.str());
  }
}

}  // namespace
}  // namespace gridsched::workload::synth
