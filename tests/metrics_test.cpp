#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "sched/heuristics.hpp"

namespace gridsched::metrics {
namespace {

sim::Job make_job(double arrival, double work, unsigned nodes, double demand) {
  sim::Job job;
  job.arrival = arrival;
  job.work = work;
  job.nodes = nodes;
  job.demand = demand;
  return job;
}

/// One node, two safe jobs, interval 50: fully deterministic timeline.
sim::Engine deterministic_run() {
  sim::EngineConfig config;
  config.batch_interval = 50.0;
  sim::Engine engine({{0, 1, 1.0, 1.0}},
                     {make_job(10.0, 100.0, 1, 0.8), make_job(20.0, 50.0, 1,
                                                              0.8)},
                     config);
  static sched::MctScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);
  return engine;
}

TEST(Metrics, HandComputedDeterministicTimeline) {
  // Batch at t=50: J0 runs 50..150, J1 runs 150..200 (MCT in batch order).
  const sim::Engine engine = deterministic_run();
  const RunMetrics metrics = compute_metrics(engine);

  EXPECT_EQ(metrics.n_jobs, 2u);
  EXPECT_DOUBLE_EQ(metrics.makespan, 200.0);
  // Responses: (150-10)=140, (200-20)=180 -> mean 160.
  EXPECT_DOUBLE_EQ(metrics.avg_response, 160.0);
  // Final execs: 100 and 50 -> mean 75.
  EXPECT_DOUBLE_EQ(metrics.avg_final_exec, 75.0);
  // Eq. 3: ratio of sums = 320 / 150.
  EXPECT_DOUBLE_EQ(metrics.slowdown_ratio, 320.0 / 150.0);
  // Per-job slowdowns: 1.4 and 3.6 -> mean 2.5.
  EXPECT_DOUBLE_EQ(metrics.mean_job_slowdown, 2.5);
  EXPECT_EQ(metrics.n_risk, 0u);
  EXPECT_EQ(metrics.n_fail, 0u);
  EXPECT_EQ(metrics.total_attempts, 2u);
  // Busy 150 node-seconds on a 1-node site over makespan 200.
  ASSERT_EQ(metrics.site_utilization.size(), 1u);
  EXPECT_DOUBLE_EQ(metrics.site_utilization[0], 0.75);
  EXPECT_DOUBLE_EQ(metrics.avg_utilization, 0.75);
  EXPECT_EQ(metrics.idle_sites, 0u);
  EXPECT_GE(metrics.batch_invocations, 1u);
}

TEST(Metrics, CountsRiskAndFailures) {
  sim::EngineConfig config;
  config.batch_interval = 50.0;
  config.lambda = 1000.0;  // certain failure on the risky site
  config.detection = sim::FailureDetection::kAtEnd;
  sim::Engine engine({{0, 1, 1.0, 0.4}, {1, 1, 1.0, 1.0}},
                     {make_job(0.0, 100.0, 1, 0.9)}, config);
  sched::MetScheduler scheduler(security::RiskPolicy::risky());
  engine.run(scheduler);
  const RunMetrics metrics = compute_metrics(engine);
  EXPECT_EQ(metrics.n_risk, 1u);
  EXPECT_EQ(metrics.n_fail, 1u);
  EXPECT_EQ(metrics.total_attempts, 2u);
  EXPECT_LE(metrics.n_fail, metrics.n_risk);
}

TEST(Metrics, IdleSiteDetection) {
  sim::EngineConfig config;
  config.batch_interval = 10.0;
  // Second site is unusably slow-secured for this demand under secure mode.
  sim::Engine engine({{0, 1, 1.0, 0.95}, {1, 1, 1.0, 0.45}},
                     {make_job(0.0, 30.0, 1, 0.9)}, config);
  sched::MinMinScheduler scheduler(security::RiskPolicy::secure());
  engine.run(scheduler);
  const RunMetrics metrics = compute_metrics(engine);
  EXPECT_EQ(metrics.idle_sites, 1u);
  EXPECT_DOUBLE_EQ(metrics.site_utilization[1], 0.0);
}

TEST(MetricsAggregate, AccumulatesRunningStats) {
  RunMetrics a;
  a.makespan = 100.0;
  a.avg_response = 10.0;
  a.slowdown_ratio = 2.0;
  a.n_risk = 5;
  a.n_fail = 2;
  a.avg_utilization = 0.5;
  a.site_utilization = {0.4, 0.6};
  RunMetrics b = a;
  b.makespan = 300.0;
  b.site_utilization = {0.8, 1.0};

  MetricsAggregate aggregate;
  aggregate.add(a);
  aggregate.add(b);
  EXPECT_EQ(aggregate.runs(), 2u);
  EXPECT_DOUBLE_EQ(aggregate.makespan().mean(), 200.0);
  EXPECT_DOUBLE_EQ(aggregate.makespan().min(), 100.0);
  EXPECT_DOUBLE_EQ(aggregate.makespan().max(), 300.0);
  EXPECT_DOUBLE_EQ(aggregate.n_risk().mean(), 5.0);
  ASSERT_EQ(aggregate.site_utilization().size(), 2u);
  EXPECT_DOUBLE_EQ(aggregate.site_utilization()[0].mean(), 0.6);
  EXPECT_DOUBLE_EQ(aggregate.site_utilization()[1].mean(), 0.8);
}

TEST(MetricsAggregate, HandlesHeterogeneousSiteCounts) {
  RunMetrics small;
  small.site_utilization = {0.5};
  RunMetrics large;
  large.site_utilization = {0.1, 0.9};
  MetricsAggregate aggregate;
  aggregate.add(small);
  aggregate.add(large);
  ASSERT_EQ(aggregate.site_utilization().size(), 2u);
  EXPECT_EQ(aggregate.site_utilization()[0].count(), 2u);
  EXPECT_EQ(aggregate.site_utilization()[1].count(), 1u);
}

}  // namespace
}  // namespace gridsched::metrics
