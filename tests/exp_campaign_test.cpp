#include "exp/campaign/campaign_aggregator.hpp"
#include "exp/campaign/campaign_runner.hpp"
#include "exp/campaign/campaign_sinks.hpp"
#include "exp/campaign/campaign_spec.hpp"
#include "exp/scenario.hpp"
#include "obs/timeseries.hpp"
#include "workload/synth/synth.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace gridsched::exp::campaign {
namespace {

/// A fast campaign: two heuristics over two small scenarios, two reps.
CampaignSpec mini_spec() {
  return parse_spec_text(R"({
    "name": "mini",
    "seed": 99,
    "replications": 2,
    "metrics": ["makespan", "slowdown", "n_fail"],
    "scenarios": [
      {"name": "psa", "jobs": 40},
      {"name": "synth-batch", "jobs": 40}
    ],
    "policies": [
      {"algo": "min-min", "mode": "f-risky"},
      {"algo": "sufferage", "mode": "risky"}
    ]
  })");
}

// ------------------------------------------------------------------ spec ---

TEST(CampaignSpec, ParsesFullSchema) {
  const CampaignSpec spec = parse_spec_text(R"({
    "name": "full",
    "seed": 7,
    "replications": 3,
    "metrics": ["makespan"],
    "scenarios": [
      "psa",
      {"name": "nas", "jobs": 500, "label": "nas-small", "batch_interval": 1000}
    ],
    "policies": [
      "min-min",
      {"algo": "sufferage", "mode": "secure", "label": "suff-sec"},
      {"algo": "stga", "ga": {"population": 32, "generations": 10,
                              "table_capacity": 50}}
    ]
  })");
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.replications, 3u);
  ASSERT_EQ(spec.scenarios.size(), 2u);
  EXPECT_EQ(spec.scenarios[0].display(), "psa");
  EXPECT_EQ(spec.scenarios[1].display(), "nas-small");
  EXPECT_EQ(spec.scenarios[1].n_jobs, 500u);
  const Scenario nas = spec.scenarios[1].resolve();
  EXPECT_EQ(nas.nas.n_jobs, 500u);
  EXPECT_DOUBLE_EQ(nas.engine.batch_interval, 1000.0);
  ASSERT_EQ(spec.policies.size(), 3u);
  EXPECT_EQ(spec.policies[0].display(), "min-min-f-risky");
  EXPECT_EQ(spec.policies[1].display(), "suff-sec");
  EXPECT_EQ(spec.policies[2].display(), "stga");
  EXPECT_EQ(spec.policies[2].stga.ga.population, 32u);
  EXPECT_EQ(spec.policies[2].stga.table_capacity, 50u);
  // STGA policies resolve to a training-enabled AlgorithmSpec.
  EXPECT_TRUE(spec.policies[2].resolve().wants_training);
}

TEST(CampaignSpec, ErrorPaths) {
  // Unknown scenario name.
  EXPECT_THROW(parse_spec_text(R"({"scenarios": ["no-such-scenario"],
                                   "policies": ["min-min"]})"),
               std::invalid_argument);
  // Unknown policy algo.
  EXPECT_THROW(parse_spec_text(R"({"scenarios": ["psa"],
                                   "policies": ["no-such-algo"]})"),
               std::invalid_argument);
  // Unknown mode.
  EXPECT_THROW(parse_spec_text(R"({"scenarios": ["psa"],
        "policies": [{"algo": "min-min", "mode": "yolo"}]})"),
               std::invalid_argument);
  // Unknown metric.
  EXPECT_THROW(parse_spec_text(R"({"metrics": ["goodput"],
        "scenarios": ["psa"], "policies": ["min-min"]})"),
               std::invalid_argument);
  // Unknown key (typo'd "generatoins").
  EXPECT_THROW(parse_spec_text(R"({"scenarios": ["psa"],
        "policies": [{"algo": "stga", "ga": {"generatoins": 5}}]})"),
               std::invalid_argument);
  // No-effect keys are rejected, not silently ignored.
  EXPECT_THROW(parse_spec_text(R"({"scenarios": ["psa"],
        "policies": [{"algo": "stga", "mode": "secure"}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec_text(R"({"scenarios": ["psa"],
        "policies": [{"algo": "ga", "f": 0.3}]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec_text(R"({"scenarios": ["psa"],
        "policies": [{"algo": "min-min", "ga": {"population": 8}}]})"),
               std::invalid_argument);
  // Duplicate labels need explicit disambiguation.
  EXPECT_THROW(parse_spec_text(R"({"scenarios": ["psa", "psa"],
                                   "policies": ["min-min"]})"),
               std::invalid_argument);
  // Structural violations.
  EXPECT_THROW(parse_spec_text(R"({"scenarios": [], "policies": ["min-min"]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec_text(R"({"replications": 0, "scenarios": ["psa"],
                                   "policies": ["min-min"]})"),
               std::invalid_argument);
  // Malformed JSON.
  EXPECT_THROW(parse_spec_text("{\"scenarios\": [\"psa\""),
               std::runtime_error);
}

TEST(CampaignSpec, MissingSpecFileNamesPath) {
  EXPECT_THROW(static_cast<void>(load_spec("/nonexistent/campaign.json")),
               std::runtime_error);
}

TEST(CampaignSpec, CustomScenariosHonourOverrides) {
  ScenarioRef ref;
  ref.label = "custom-psa";
  ref.custom = psa_scenario(250);
  ref.n_jobs = 77;
  ref.batch_interval = 500.0;
  const Scenario resolved = ref.resolve();
  EXPECT_EQ(resolved.psa.n_jobs, 77u);
  EXPECT_DOUBLE_EQ(resolved.engine.batch_interval, 500.0);
}

// ------------------------------------------------------------- expansion ---

TEST(CampaignExpand, MatrixOrderAndDistinctSeeds) {
  const CampaignSpec spec = mini_spec();
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u);
  std::set<std::uint64_t> seeds;
  for (const Cell& cell : cells) seeds.insert(cell.seed);
  EXPECT_EQ(seeds.size(), cells.size());  // all streams distinct
  // Scenario-major, policy-minor, replication-innermost.
  EXPECT_EQ(cells[0].scenario, 0u);
  EXPECT_EQ(cells[0].policy, 0u);
  EXPECT_EQ(cells[0].replication, 0u);
  EXPECT_EQ(cells[1].replication, 1u);
  EXPECT_EQ(cells[2].policy, 1u);
  EXPECT_EQ(cells[4].scenario, 1u);
}

TEST(CampaignExpand, SeedsDependOnLabelsNotIndices) {
  CampaignSpec spec = mini_spec();
  const std::uint64_t batch_seed = cell_seed(spec, 1, 0, 0);
  // Inserting a scenario in front must not reseed synth-batch's cells.
  ScenarioRef extra;
  extra.name = "nas";
  spec.scenarios.insert(spec.scenarios.begin(), extra);
  EXPECT_EQ(cell_seed(spec, 2, 0, 0), batch_seed);
}

// ----------------------------------------------------------- determinism ---

TEST(CampaignRunner, ByteIdenticalJsonAcrossThreadCounts) {
  const CampaignSpec spec = mini_spec();
  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    RunnerOptions options;
    options.threads = threads;
    const CampaignResult result = CampaignRunner(options).run(spec);
    const std::string artifact = render_json(result);
    if (baseline.empty()) {
      baseline = artifact;
    } else {
      EXPECT_EQ(artifact, baseline) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(CampaignRunner, ChurnScenarioJsonIsByteIdenticalAcrossThreadCounts) {
  // The churn scenarios add two stochastic processes (site timelines,
  // revocations) on top of the failure draws; the aggregate artifact —
  // including the churn counters — must still be a pure function of the
  // spec, whatever the thread count.
  const CampaignSpec spec = parse_spec_text(R"({
    "name": "churn-mini",
    "seed": 77,
    "replications": 2,
    "metrics": ["makespan", "n_fail", "site_down_events", "interruptions",
                "n_interrupted", "churn_released_nodes"],
    "scenarios": [{"name": "synth-churn-lo", "jobs": 80},
                  {"name": "synth-churn-hi", "jobs": 80}],
    "policies": [{"algo": "min-min", "mode": "risky"}]
  })");
  std::string baseline;
  std::size_t down_events = 0;
  for (const std::size_t threads : {1u, 4u}) {
    RunnerOptions options;
    options.threads = threads;
    const CampaignResult result = CampaignRunner(options).run(spec);
    const std::string artifact = render_json(result);
    if (baseline.empty()) {
      baseline = artifact;
      for (const CellResult& cell : result.cells) {
        down_events += cell.metrics.site_down_events;
      }
    } else {
      EXPECT_EQ(artifact, baseline) << "threads=" << threads;
    }
  }
  EXPECT_FALSE(baseline.empty());
  // The scenarios actually churned (hi guarantees several outages).
  EXPECT_GT(down_events, 0u);
}

TEST(CampaignRunner, ProgressCallbackSeesEveryCell) {
  const CampaignSpec spec = mini_spec();
  RunnerOptions options;
  options.threads = 2;
  std::size_t calls = 0;
  std::size_t last_done = 0;
  options.on_cell = [&](const CellResult&, std::size_t done,
                        std::size_t total) {
    ++calls;
    EXPECT_EQ(total, 8u);
    EXPECT_GT(done, last_done);  // the mutex serialises increments
    last_done = done;
  };
  const CampaignResult result = CampaignRunner(options).run(spec);
  EXPECT_EQ(calls, result.cells.size());
}

TEST(CampaignRunner, FailingCellErrorNamesTheCell) {
  // A custom scenario whose workload generator throws at run time: under
  // --strict the campaign abort must label the exact {scenario, policy,
  // replication} instead of surfacing the worker's context-free message.
  // (The graceful default records the failure instead of throwing — see
  // exp_fault_tolerance_test.cpp.)
  CampaignSpec spec;
  spec.name = "boom";
  spec.seed = 5;
  spec.replications = 1;
  spec.metrics = {"makespan"};
  workload::synth::SynthConfig broken;
  broken.n_jobs = 10;
  broken.n_sites = 2;
  broken.site_node_pattern = {0};  // rejected by synth_workload
  ScenarioRef scenario;
  scenario.name = "bad-synth";
  scenario.custom = synth_scenario(broken);
  spec.scenarios.push_back(std::move(scenario));
  PolicyRef policy;
  policy.algo = "min-min";
  spec.policies.push_back(std::move(policy));

  RunnerOptions options;
  options.threads = 1;
  options.strict = true;
  try {
    CampaignRunner(options).run(spec);
    FAIL() << "expected the broken cell to abort the campaign";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("campaign cell"), std::string::npos) << what;
    EXPECT_NE(what.find("scenario=bad-synth"), std::string::npos) << what;
    EXPECT_NE(what.find("policy=min-min-f-risky"), std::string::npos) << what;
    EXPECT_NE(what.find("replication=0"), std::string::npos) << what;
    EXPECT_NE(what.find("zero-node site"), std::string::npos) << what;
  }
}

TEST(CampaignRunner, ProfileSidecarCarriesPerCellTiming) {
  const CampaignSpec spec = mini_spec();
  RunnerOptions options;
  options.threads = 2;
  const CampaignResult result = CampaignRunner(options).run(spec);
  for (const CellResult& cell : result.cells) {
    EXPECT_GE(cell.wall_seconds, 0.0);
  }
  const std::string profile = render_profile(result);
  EXPECT_NE(profile.find("\"campaign\": \"mini\""), std::string::npos);
  EXPECT_NE(profile.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(profile.find("\"scheduler_seconds\""), std::string::npos);
  // One row per cell.
  std::size_t rows = 0;
  for (std::size_t at = profile.find("\"replication\"");
       at != std::string::npos;
       at = profile.find("\"replication\"", at + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, result.cells.size());
  // The byte-stable aggregate must NOT carry wall-clock fields.
  const std::string aggregate = render_json(result);
  EXPECT_EQ(aggregate.find("wall_seconds"), std::string::npos);
  EXPECT_EQ(aggregate.find("scheduler_seconds"), std::string::npos);
}

// ---------------------------------------------------- golden mini-campaign ---

TEST(CampaignRunner, GoldenMiniCampaignOverScenarioBatch) {
  // One scenario, one policy, 3 reps over synth-batch: aggregate means
  // must equal a hand-rolled reduction of the per-cell metrics, and the
  // whole run must reproduce exactly.
  const CampaignSpec spec = parse_spec_text(R"({
    "name": "golden",
    "seed": 2005,
    "replications": 3,
    "scenarios": [{"name": "synth-batch", "jobs": 60}],
    "policies": [{"algo": "min-min", "mode": "risky"}]
  })");
  RunnerOptions options;
  options.threads = 1;
  const CampaignResult result = CampaignRunner(options).run(spec);
  ASSERT_EQ(result.cells.size(), 3u);
  ASSERT_EQ(result.groups.size(), 1u);
  const GroupSummary& group = result.groups[0];
  EXPECT_EQ(group.scenario, "synth-batch");
  EXPECT_EQ(group.policy, "min-min-risky");
  EXPECT_EQ(group.cells, 3u);

  // Defaulted metrics = all deterministic ones (incl. the PR 5 engine
  // counters), canonical order.
  ASSERT_EQ(group.metrics.size(), 16u);
  EXPECT_EQ(group.metrics[0].key, "makespan");
  util::RunningStats makespan;
  for (const CellResult& cell : result.cells) {
    makespan.add(cell.metrics.makespan);
    EXPECT_EQ(cell.metrics.n_jobs, 60u);
  }
  EXPECT_DOUBLE_EQ(group.metrics[0].summary.mean, makespan.mean());
  EXPECT_DOUBLE_EQ(group.metrics[0].summary.stddev, makespan.stddev());
  EXPECT_DOUBLE_EQ(group.metrics[0].summary.ci95,
                   makespan.ci95_halfwidth_t());
  EXPECT_GT(makespan.mean(), 0.0);
  EXPECT_EQ(result.jobs_simulated, 180u);

  // Bit-exact reproduction, including through the renderers.
  const CampaignResult again = CampaignRunner(options).run(spec);
  EXPECT_EQ(render_json(again), render_json(result));
  EXPECT_EQ(render_csv(again), render_csv(result));
}

// ----------------------------------------------------------------- sinks ---

TEST(CampaignSinks, JsonArtifactShapeAndStability) {
  RunnerOptions options;
  options.threads = 2;
  const CampaignResult result = CampaignRunner(options).run(mini_spec());
  const std::string artifact = render_json(result);
  // Valid JSON with the documented shape.
  const util::json::Value doc = util::json::parse(artifact);
  EXPECT_EQ(doc.at("campaign").as_string(), "mini");
  EXPECT_EQ(doc.at("replications").as_int(), 2);
  EXPECT_EQ(doc.at("groups").items().size(), 4u);
  EXPECT_EQ(doc.at("cells").items().size(), 8u);
  const util::json::Value& group = doc.at("groups").items()[0];
  EXPECT_EQ(group.at("metrics").at("makespan").at("count").as_int(), 2);
  // No wall-clock fields anywhere in the artifact.
  EXPECT_EQ(artifact.find("wall"), std::string::npos);
  EXPECT_EQ(artifact.find("scheduler_seconds"), std::string::npos);
}

TEST(CampaignSinks, SchedulerSecondsNeverEntersJson) {
  // Even when explicitly requested, the wall-clock metric only reaches
  // table/CSV output — the JSON artifact must stay deterministic.
  CampaignSpec spec = mini_spec();
  spec.metrics = {"makespan", "scheduler_seconds"};
  RunnerOptions options;
  options.threads = 1;
  const CampaignResult result = CampaignRunner(options).run(spec);
  EXPECT_EQ(render_json(result).find("scheduler_seconds"), std::string::npos);
  EXPECT_NE(render_csv(result).find("scheduler_seconds"), std::string::npos);
  EXPECT_NE(render_table(result).find("scheduler_seconds"),
            std::string::npos);
}

TEST(CampaignSinks, TableShowsThroughputFooter) {
  RunnerOptions options;
  options.threads = 1;
  const CampaignResult result = CampaignRunner(options).run(mini_spec());
  const std::string table = render_table(result);
  EXPECT_NE(table.find("cells/s"), std::string::npos);
  EXPECT_NE(table.find("8 cells"), std::string::npos);
}

TEST(CampaignSinks, FileSinksWriteAndEmitFansOut) {
  RunnerOptions options;
  options.threads = 1;
  const CampaignResult result = CampaignRunner(options).run(mini_spec());
  const std::string json_path = testing::TempDir() + "campaign_sink.json";
  const std::string csv_path = testing::TempDir() + "campaign_sink.csv";
  std::ostringstream table_out;
  std::vector<std::unique_ptr<Sink>> sinks;
  sinks.push_back(std::make_unique<TableSink>(table_out));
  sinks.push_back(std::make_unique<JsonFileSink>(json_path));
  sinks.push_back(std::make_unique<CsvFileSink>(csv_path));
  emit(result, sinks);
  EXPECT_FALSE(table_out.str().empty());
  EXPECT_EQ(util::json::parse_file(json_path).at("campaign").as_string(),
            "mini");
  std::ifstream csv(csv_path);
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line, "scenario,policy,metric,count,mean,stddev,ci95");
}

// ------------------------------------------------------------- timeseries ---

TEST(CampaignRunner, PerCellTimeseriesByteIdenticalAcrossThreadCounts) {
  // With telemetry sampling enabled, every cell carries a series and both
  // the per-cell artifacts and the cross-replication aggregate must be a
  // pure function of the spec — whatever the thread count.
  const CampaignSpec spec = mini_spec();
  std::map<std::string, std::string> baseline_cells;
  std::string baseline_aggregate;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    RunnerOptions options;
    options.threads = threads;
    options.timeseries_interval = 1000.0;
    const CampaignResult result = CampaignRunner(options).run(spec);
    std::map<std::string, std::string> cells;
    for (const CellResult& cell : result.cells) {
      ASSERT_NE(cell.series, nullptr);
      cells[timeseries_cell_filename(result, cell)] =
          obs::render_timeseries_json(*cell.series);
    }
    const std::string aggregate = render_series_aggregate_json(result);
    if (baseline_cells.empty()) {
      baseline_cells = std::move(cells);
      baseline_aggregate = aggregate;
    } else {
      EXPECT_EQ(cells, baseline_cells) << "threads=" << threads;
      EXPECT_EQ(aggregate, baseline_aggregate) << "threads=" << threads;
    }
  }
  ASSERT_EQ(baseline_cells.size(), 8u);  // 2 scenarios x 2 policies x 2 reps
  EXPECT_EQ(baseline_cells.count("psa__min-min-f-risky__rep0.json"), 1u);
  EXPECT_EQ(baseline_cells.count("synth-batch__sufferage-risky__rep1.json"),
            1u);
}

TEST(CampaignRunner, SeriesGroupsReduceAcrossReplications) {
  RunnerOptions options;
  options.threads = 1;
  options.timeseries_interval = 1000.0;
  const CampaignResult result = CampaignRunner(options).run(mini_spec());
  // One group per (scenario, policy), scenario-major like the metric
  // groups; every group reduces over both replications at t=0 and carries
  // the full column set.
  ASSERT_EQ(result.series_groups.size(), 4u);
  EXPECT_EQ(result.series_groups[0].scenario, "psa");
  EXPECT_EQ(result.series_groups[0].policy, "min-min-f-risky");
  EXPECT_EQ(result.series_groups[1].policy, "sufferage-risky");
  EXPECT_EQ(result.series_groups[2].scenario, "synth-batch");
  for (const SeriesGroupSummary& group : result.series_groups) {
    EXPECT_EQ(group.interval, 1000.0);
    EXPECT_EQ(group.replications, 2u);
    ASSERT_EQ(group.columns.size(), series_column_keys().size());
    ASSERT_FALSE(group.t.empty());
    for (std::size_t i = 0; i < group.t.size(); ++i) {
      EXPECT_EQ(group.t[i], static_cast<double>(i) * 1000.0);
    }
    for (const SeriesColumn& column : group.columns) {
      ASSERT_EQ(column.samples.size(), group.t.size());
      // Counts start at the replication count and only shrink toward the
      // tail (shorter replications stop contributing; terminal makespan
      // samples never enter the reduction).
      EXPECT_EQ(column.samples.front().count, 2u);
      for (std::size_t i = 1; i < column.samples.size(); ++i) {
        EXPECT_LE(column.samples[i].count, column.samples[i - 1].count);
      }
    }
  }
}

TEST(CampaignSinks, TimeseriesDirWritesCellsAndAggregate) {
  RunnerOptions options;
  options.threads = 2;
  options.timeseries_interval = 1000.0;
  const CampaignResult result = CampaignRunner(options).run(mini_spec());
  const std::string dir = testing::TempDir() + "campaign_timeseries";
  write_timeseries_dir(result, dir);

  const util::json::Value aggregate =
      util::json::parse_file(dir + "/aggregate.json");
  EXPECT_EQ(aggregate.at("schema").as_string(),
            "gridsched-timeseries-aggregate-v1");
  EXPECT_EQ(aggregate.at("campaign").as_string(), "mini");
  ASSERT_EQ(aggregate.at("groups").items().size(), 4u);
  const util::json::Value& group = aggregate.at("groups").items().front();
  const std::size_t n = group.at("t").items().size();
  for (const std::string_view key : series_column_keys()) {
    const util::json::Value& column = group.at("series").at(key);
    EXPECT_EQ(column.at("mean").items().size(), n);
    EXPECT_EQ(column.at("ci95").items().size(), n);
    EXPECT_EQ(column.at("count").items().size(), n);
  }
  for (const CellResult& cell : result.cells) {
    const util::json::Value parsed = util::json::parse_file(
        dir + "/" + timeseries_cell_filename(result, cell));
    EXPECT_EQ(parsed.at("schema").as_string(), "gridsched-timeseries-v1");
    EXPECT_EQ(parsed.at("interval").as_number(), 1000.0);
  }
}

TEST(CampaignAggregator, SeriesIntervalMismatchThrows) {
  const CampaignSpec spec = mini_spec();
  CampaignAggregator aggregator(spec);
  obs::TimeSeries series;
  series.interval = 100.0;
  series.n_sites = 1;
  aggregator.add_series(0, 0, series);
  series.interval = 200.0;
  EXPECT_THROW(aggregator.add_series(0, 0, series), std::invalid_argument);
}

// ------------------------------------------------------------- aggregator ---

TEST(CampaignAggregator, RejectsCellsOutsideTheSpec) {
  const CampaignSpec spec = mini_spec();
  CampaignAggregator aggregator(spec);
  metrics::RunMetrics run;
  EXPECT_THROW(aggregator.add(5, 0, run), std::out_of_range);
  EXPECT_THROW(aggregator.add(0, 9, run), std::out_of_range);
}

TEST(MetricDefs, LookupAndDeterminismFlags) {
  EXPECT_NE(find_metric("makespan"), nullptr);
  EXPECT_EQ(find_metric("nope"), nullptr);
  ASSERT_NE(find_metric("scheduler_seconds"), nullptr);
  EXPECT_FALSE(find_metric("scheduler_seconds")->deterministic);
  // Empty request resolves to exactly the deterministic metrics.
  CampaignSpec spec = mini_spec();
  spec.metrics.clear();
  for (const MetricDef* def : resolve_metrics(spec)) {
    EXPECT_TRUE(def->deterministic);
  }
}

}  // namespace
}  // namespace gridsched::exp::campaign
