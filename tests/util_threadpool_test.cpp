#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gridsched::util {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto future = pool.submit([&] { counter.fetch_add(1); });
  future.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(2);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 5; });
  EXPECT_EQ(value, 5);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long long> out(10000);
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<long long>(i) * 2;
  });
  const long long total = std::accumulate(out.begin(), out.end(), 0LL);
  EXPECT_EQ(total, 9999LL * 10000LL);  // 2 * n(n-1)/2
}

TEST(ThreadPool, ParallelForExplicitChunking) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(37);
  pool.parallel_for(37, [&](std::size_t i) { visits[i].fetch_add(1); }, 5);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForMoreChunksThanItems) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(3);
  pool.parallel_for(3, [&](std::size_t i) { visits[i].fetch_add(1); }, 100);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 41) throw std::logic_error("bad");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, SingleFailurePreservesExceptionType) {
  // One failing chunk must rethrow the original exception unchanged (not
  // wrapped) so catch sites keyed on the type still work.
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t i) {
                     if (i == 3) throw std::invalid_argument("just me");
                   },
                   8),
               std::invalid_argument);
}

TEST(ThreadPool, ConcurrentFailuresAggregateEveryWhat) {
  // Several chunks fail: none may be dropped. One chunk per item makes
  // every throwing index its own worker task.
  ThreadPool pool(4);
  try {
    pool.parallel_for(
        8,
        [](std::size_t i) {
          if (i % 2 == 1) {
            throw std::runtime_error("task " + std::to_string(i) + " died");
          }
        },
        8);
    FAIL() << "expected an aggregate failure";
  } catch (const AggregateError& error) {
    EXPECT_EQ(error.messages().size(), 4u);
    const std::string what = error.what();
    for (const std::size_t i : {1u, 3u, 5u, 7u}) {
      const std::string expected = "task " + std::to_string(i) + " died";
      EXPECT_NE(what.find(expected), std::string::npos) << what;
    }
  }
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<bool> first_running{false};
  std::atomic<bool> second_observed_first{false};
  auto f1 = pool.submit([&] {
    first_running.store(true);
    // Busy-wait until the other task sees us (bounded to avoid hangs).
    for (int i = 0; i < 1000000 && !second_observed_first.load(); ++i) {
      std::this_thread::yield();
    }
  });
  auto f2 = pool.submit([&] {
    for (int i = 0; i < 1000000 && !first_running.load(); ++i) {
      std::this_thread::yield();
    }
    second_observed_first.store(first_running.load());
  });
  f1.get();
  f2.get();
  EXPECT_TRUE(second_observed_first.load());
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace gridsched::util
