#include "core/ga_scheduler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sched/heuristics.hpp"

namespace gridsched::core {
namespace {

StgaConfig tiny_config(std::uint64_t seed = 7) {
  StgaConfig config;
  config.ga.population = 24;
  config.ga.generations = 12;
  config.seed = seed;
  return config;
}

sim::SchedulerContext grid_context(std::size_t n_jobs, sim::Time now = 0.0) {
  sim::SchedulerContext context;
  context.now = now;
  context.sites = {{0, 2, 1.0, 0.95}, {1, 2, 2.0, 0.55}, {2, 1, 1.5, 0.75}};
  for (const auto& site : context.sites) {
    context.avail.emplace_back(site.nodes, 0.0);
  }
  for (std::size_t j = 0; j < n_jobs; ++j) {
    sim::BatchJob job;
    job.id = static_cast<sim::JobId>(j);
    job.work = 10.0 + 3.0 * static_cast<double>(j % 5);
    job.nodes = 1 + static_cast<unsigned>(j % 2);
    job.demand = 0.6 + 0.05 * static_cast<double>(j % 6);
    context.jobs.push_back(job);
  }
  return context;
}

TEST(GaScheduler, NamesReflectFlavour) {
  EXPECT_EQ(make_stga(tiny_config())->name(), "STGA");
  EXPECT_EQ(make_classic_ga(tiny_config())->name(), "GA");
}

TEST(GaScheduler, FactoriesForceFlags) {
  StgaConfig config = tiny_config();
  config.use_history = false;
  config.heuristic_seeds = false;
  EXPECT_TRUE(make_stga(config)->config().use_history);
  config.use_history = true;
  config.heuristic_seeds = true;
  const auto classic = make_classic_ga(config);
  EXPECT_FALSE(classic->config().use_history);
  EXPECT_FALSE(classic->config().heuristic_seeds);
}

TEST(GaScheduler, AssignsEveryBatchJobExactlyOnce) {
  auto scheduler = make_stga(tiny_config());
  auto context = grid_context(9);
  const auto assignments = scheduler->schedule(context);
  ASSERT_EQ(assignments.size(), 9u);
  std::set<std::size_t> jobs;
  for (const auto& assignment : assignments) {
    EXPECT_TRUE(jobs.insert(assignment.job_index).second);
    ASSERT_LT(assignment.site, context.sites.size());
    EXPECT_LE(context.jobs[assignment.job_index].nodes,
              context.sites[assignment.site].nodes);
  }
}

TEST(GaScheduler, EmptyBatchYieldsNothing) {
  auto scheduler = make_stga(tiny_config());
  auto context = grid_context(0);
  EXPECT_TRUE(scheduler->schedule(context).empty());
}

TEST(GaScheduler, SecureOnlyJobsGoToSafeSites) {
  auto scheduler = make_stga(tiny_config());
  auto context = grid_context(6);
  for (auto& job : context.jobs) job.secure_only = true;
  const auto assignments = scheduler->schedule(context);
  ASSERT_EQ(assignments.size(), 6u);
  for (const auto& assignment : assignments) {
    const auto& job = context.jobs[assignment.job_index];
    const auto& site = context.sites[assignment.site];
    EXPECT_TRUE(security::is_safe(job.demand, site.security))
        << "secure_only job on SL " << site.security;
  }
}

TEST(GaScheduler, InfeasibleJobsStayPending) {
  auto scheduler = make_stga(tiny_config());
  auto context = grid_context(4);
  context.jobs[2].nodes = 16;  // fits no site
  const auto assignments = scheduler->schedule(context);
  EXPECT_EQ(assignments.size(), 3u);
  for (const auto& assignment : assignments) {
    EXPECT_NE(assignment.job_index, 2u);
  }
}

TEST(GaScheduler, ScheduleInsertsIntoHistory) {
  auto scheduler = make_stga(tiny_config());
  auto context = grid_context(5);
  EXPECT_EQ(scheduler->history().size(), 0u);
  scheduler->schedule(context);
  EXPECT_EQ(scheduler->history().size(), 1u);
}

TEST(GaScheduler, ClassicGaDoesNotTouchHistory) {
  auto scheduler = make_classic_ga(tiny_config());
  auto context = grid_context(5);
  scheduler->schedule(context);
  EXPECT_EQ(scheduler->history().size(), 0u);
}

TEST(GaScheduler, RepeatedSimilarBatchesHitTheTable) {
  auto scheduler = make_stga(tiny_config());
  auto context = grid_context(6);
  scheduler->schedule(context);
  auto context_again = grid_context(6);
  scheduler->schedule(context_again);
  EXPECT_GE(scheduler->history().hits(), 1u);
}

TEST(GaScheduler, RecordExternalStoresHeuristicSolution) {
  auto scheduler = make_stga(tiny_config());
  auto context = grid_context(5);
  sched::MinMinScheduler heuristic(security::RiskPolicy::risky());
  const auto assignments = heuristic.schedule(context);
  scheduler->record_external(context, assignments);
  EXPECT_EQ(scheduler->history().size(), 1u);
}

TEST(GaScheduler, RecordExternalIgnoresEmptyInput) {
  auto scheduler = make_stga(tiny_config());
  auto context = grid_context(3);
  scheduler->record_external(context, {});
  EXPECT_EQ(scheduler->history().size(), 0u);
}

TEST(RecordingScheduler, ForwardsAndRecords) {
  auto stga = make_stga(tiny_config());
  sched::SufferageScheduler inner(security::RiskPolicy::risky());
  RecordingScheduler recorder(inner, *stga);
  EXPECT_EQ(recorder.name(), "Sufferage risky (recording)");
  auto context = grid_context(4);
  const auto assignments = recorder.schedule(context);
  EXPECT_EQ(assignments.size(), 4u);
  EXPECT_EQ(stga->history().size(), 1u);
}

TEST(GaScheduler, DeterministicForIdenticalConfig) {
  auto run = [] {
    auto scheduler = make_stga(tiny_config(77));
    auto context = grid_context(8);
    return scheduler->schedule(context);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_index, b[i].job_index);
    EXPECT_EQ(a[i].site, b[i].site);
  }
}

TEST(GaScheduler, WarmStartAtLeastMatchesColdOnRepeatedBatch) {
  // Schedule the same batch shape many times; by the later rounds the STGA
  // population starts from previous solutions and must not be worse than a
  // cold GA given the same tiny generation budget.
  StgaConfig warm_config = tiny_config(5);
  warm_config.ga.generations = 4;  // tight budget: warm start matters
  warm_config.heuristic_seeds = false;
  StgaConfig cold_config = warm_config;

  auto warm = make_stga(warm_config);
  auto cold = make_classic_ga(cold_config);

  double warm_cost = 0.0;
  double cold_cost = 0.0;
  for (int round = 0; round < 6; ++round) {
    auto context = grid_context(10, 0.0);
    const GaProblem problem =
        build_problem(context, security::RiskPolicy::risky());
    auto score = [&](const std::vector<sim::Assignment>& assignments) {
      Chromosome chromosome(problem.n_jobs());
      for (const auto& assignment : assignments) {
        chromosome[assignment.job_index] = assignment.site;
      }
      return batch_makespan(problem, chromosome);
    };
    auto warm_context = grid_context(10, 0.0);
    auto cold_context = grid_context(10, 0.0);
    warm_cost += score(warm->schedule(warm_context));
    cold_cost += score(cold->schedule(cold_context));
  }
  EXPECT_LE(warm_cost, cold_cost * 1.02);  // warm never meaningfully worse
}

}  // namespace
}  // namespace gridsched::core
