#include "sched/etc_matrix.hpp"
#include "sched/heuristics.hpp"
#include "sched/registry.hpp"
#include "sched/risk_filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace gridsched::sched {
namespace {

sim::BatchJob batch_job(double work, unsigned nodes = 1, double demand = 0.5,
                        bool secure_only = false) {
  sim::BatchJob job;
  job.work = work;
  job.nodes = nodes;
  job.demand = demand;
  job.secure_only = secure_only;
  return job;
}

sim::SchedulerContext make_context(std::vector<sim::SiteConfig> sites,
                                   std::vector<sim::BatchJob> jobs,
                                   sim::Time now = 0.0) {
  sim::SchedulerContext context;
  context.now = now;
  for (std::size_t s = 0; s < sites.size(); ++s) {
    sites[s].id = static_cast<sim::SiteId>(s);
    context.avail.emplace_back(sites[s].nodes, 0.0);
  }
  context.sites = std::move(sites);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].id = static_cast<sim::JobId>(j);
  }
  context.jobs = std::move(jobs);
  return context;
}

// ----------------------------------------------------------- EtcMatrix ---

TEST(EtcMatrix, ComputesWorkOverSpeed) {
  const auto context = make_context({{0, 1, 2.0, 1.0}, {1, 1, 4.0, 1.0}},
                                    {batch_job(100.0)});
  const EtcMatrix etc(context.jobs, context.sites);
  EXPECT_DOUBLE_EQ(etc.exec(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(etc.exec(0, 1), 25.0);
  EXPECT_EQ(etc.jobs(), 1u);
  EXPECT_EQ(etc.sites(), 2u);
}

TEST(EtcMatrix, InfeasibleWhenJobDoesNotFit) {
  const auto context = make_context({{0, 2, 1.0, 1.0}},
                                    {batch_job(10.0, 4)});
  const EtcMatrix etc(context.jobs, context.sites);
  EXPECT_TRUE(std::isinf(etc.exec(0, 0)));
}

TEST(EtcMatrix, FlattenedLayoutIsRowMajor) {
  const auto context = make_context({{0, 1, 1.0, 1.0}, {1, 1, 2.0, 1.0}},
                                    {batch_job(2.0), batch_job(4.0)});
  const EtcMatrix etc(context.jobs, context.sites);
  const auto& flat = etc.flattened();
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat[0], 2.0);  // job 0 site 0
  EXPECT_DOUBLE_EQ(flat[1], 1.0);  // job 0 site 1
  EXPECT_DOUBLE_EQ(flat[3], 2.0);  // job 1 site 1
}

TEST(EtcMatrix, ContextConstructorUsesTheRawExecModel) {
  auto context = make_context({{0, 2, 2.0, 1.0}, {1, 1, 4.0, 1.0}},
                              {batch_job(100.0), batch_job(50.0, 2)});
  context.exec = sim::ExecModel(2, 2, {7.0, 9.0, 11.0, 13.0});
  const EtcMatrix etc(context);
  EXPECT_DOUBLE_EQ(etc.exec(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(etc.exec(0, 1), 9.0);
  EXPECT_DOUBLE_EQ(etc.exec(1, 0), 11.0);
  // Node fit still decides feasibility, whatever the matrix says.
  EXPECT_TRUE(std::isinf(etc.exec(1, 1)));
}

TEST(EtcMatrix, ContextConstructorFallsBackToWorkOverSpeed) {
  const auto context = make_context({{0, 1, 2.0, 1.0}, {1, 1, 4.0, 1.0}},
                                    {batch_job(100.0)});
  const EtcMatrix etc(context);  // no matrix attached -> rank-1
  EXPECT_DOUBLE_EQ(etc.exec(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(etc.exec(0, 1), 25.0);
}

// --------------------------------------------------------- risk filter ---

TEST(RiskFilter, CombinesFitAndPolicy) {
  const sim::SiteConfig small_safe{0, 1, 1.0, 0.95};
  const sim::SiteConfig big_risky{1, 8, 1.0, 0.45};
  const auto job = batch_job(10.0, 4, 0.8);
  const security::RiskPolicy secure = security::RiskPolicy::secure();
  EXPECT_FALSE(admissible(job, small_safe, secure));  // does not fit
  EXPECT_FALSE(admissible(job, big_risky, secure));   // not safe
  EXPECT_TRUE(admissible(job, big_risky, security::RiskPolicy::risky()));
}

TEST(RiskFilter, SecureOnlyOverridesRiskyPolicy) {
  const sim::SiteConfig risky_site{0, 4, 1.0, 0.5};
  const sim::SiteConfig safe_site{1, 4, 1.0, 0.9};
  const auto retry = batch_job(10.0, 1, 0.8, /*secure_only=*/true);
  const security::RiskPolicy risky = security::RiskPolicy::risky();
  EXPECT_FALSE(admissible(retry, risky_site, risky));
  EXPECT_TRUE(admissible(retry, safe_site, risky));
}

TEST(RiskFilter, AdmissibleSitesOrdered) {
  const auto context = make_context(
      {{0, 1, 1.0, 0.9}, {1, 1, 1.0, 0.4}, {2, 1, 1.0, 0.95}},
      {batch_job(1.0, 1, 0.85)});
  const auto sites = admissible_sites(context.jobs[0], context.sites,
                                      security::RiskPolicy::secure());
  EXPECT_EQ(sites, (std::vector<sim::SiteId>{0, 2}));
}

// ------------------------------------- Min-Min vs Sufferage, Fig. 2 style --

// Two sites (speeds 1 and 2), three jobs (works 8, 10, 12). Min-Min packs
// the fast site greedily (makespan 12); Sufferage gives the fast site to
// the job that suffers most (makespan 11) — the paper's Fig. 2 effect.
sim::SchedulerContext fig2_context() {
  return make_context({{0, 1, 1.0, 1.0}, {1, 1, 2.0, 1.0}},
                      {batch_job(8.0), batch_job(10.0), batch_job(12.0)});
}

TEST(MinMin, PicksGloballySmallestCompletionFirst) {
  auto context = fig2_context();
  MinMinScheduler scheduler(security::RiskPolicy::secure());
  const auto assignments = scheduler.schedule(context);
  ASSERT_EQ(assignments.size(), 3u);
  EXPECT_EQ(assignments[0].job_index, 0u);
  EXPECT_EQ(assignments[0].site, 1u);
  EXPECT_EQ(assignments[1].job_index, 1u);
  EXPECT_EQ(assignments[1].site, 1u);
  EXPECT_EQ(assignments[2].job_index, 2u);
  EXPECT_EQ(assignments[2].site, 0u);
}

TEST(Sufferage, ServesTheMostSufferingJobFirst) {
  auto context = fig2_context();
  SufferageScheduler scheduler(security::RiskPolicy::secure());
  const auto assignments = scheduler.schedule(context);
  ASSERT_EQ(assignments.size(), 3u);
  EXPECT_EQ(assignments[0].job_index, 2u);  // sufferage 6 (12 - 6)
  EXPECT_EQ(assignments[0].site, 1u);
  EXPECT_EQ(assignments[1].job_index, 0u);  // then J0 -> slow site
  EXPECT_EQ(assignments[1].site, 0u);
  EXPECT_EQ(assignments[2].job_index, 1u);
  EXPECT_EQ(assignments[2].site, 1u);
}

TEST(MinMinVsSufferage, SufferageWinsOnFig2Instance) {
  // Replay both schedules against fresh availability and compare makespans.
  auto simulate = [](const std::vector<sim::Assignment>& assignments) {
    auto context = fig2_context();
    double makespan = 0.0;
    for (const auto& assignment : assignments) {
      const auto& job = context.jobs[assignment.job_index];
      const double exec = job.work / context.sites[assignment.site].speed;
      makespan = std::max(
          makespan, context.avail[assignment.site].reserve(1, exec, 0.0).end);
    }
    return makespan;
  };
  auto context = fig2_context();
  MinMinScheduler min_min(security::RiskPolicy::secure());
  SufferageScheduler sufferage(security::RiskPolicy::secure());
  EXPECT_DOUBLE_EQ(simulate(min_min.schedule(context)), 12.0);
  EXPECT_DOUBLE_EQ(simulate(sufferage.schedule(context)), 11.0);
}

TEST(MaxMin, ServesLargestJobFirst) {
  auto context = fig2_context();
  MaxMinScheduler scheduler(security::RiskPolicy::secure());
  const auto assignments = scheduler.schedule(context);
  ASSERT_EQ(assignments.size(), 3u);
  EXPECT_EQ(assignments[0].job_index, 2u);  // the 12-work job
}

// --------------------------------------------------- single-pass trio ----

TEST(Mct, AssignsInBatchOrderToBestCompletion) {
  auto context = make_context({{0, 1, 1.0, 1.0}, {1, 1, 1.0, 1.0}},
                              {batch_job(10.0), batch_job(10.0)});
  MctScheduler scheduler(security::RiskPolicy::secure());
  const auto assignments = scheduler.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].job_index, 0u);
  EXPECT_EQ(assignments[1].job_index, 1u);
  // Second job must go to the other (still idle) site.
  EXPECT_NE(assignments[0].site, assignments[1].site);
}

TEST(Met, IgnoresQueueingAndPilesOntoFastestSite) {
  auto context = make_context({{0, 1, 1.0, 1.0}, {1, 1, 5.0, 1.0}},
                              {batch_job(10.0), batch_job(10.0),
                               batch_job(10.0)});
  MetScheduler scheduler(security::RiskPolicy::secure());
  for (const auto& assignment : scheduler.schedule(context)) {
    EXPECT_EQ(assignment.site, 1u);
  }
}

TEST(Olb, BalancesByAvailabilityOnly) {
  auto context = make_context({{0, 1, 1.0, 1.0}, {1, 1, 100.0, 1.0}},
                              {batch_job(10.0), batch_job(10.0)});
  OlbScheduler scheduler(security::RiskPolicy::secure());
  const auto assignments = scheduler.schedule(context);
  ASSERT_EQ(assignments.size(), 2u);
  // OLB spreads by idle time and ignores the huge speed difference.
  std::set<sim::SiteId> used;
  for (const auto& assignment : assignments) used.insert(assignment.site);
  EXPECT_EQ(used.size(), 2u);
}

// ------------------------------------------------------- mode behaviour ---

TEST(Heuristics, SecureModeLeavesUnsafeJobsPending) {
  auto context = make_context({{0, 1, 1.0, 0.5}},
                              {batch_job(10.0, 1, 0.9), batch_job(5.0, 1,
                                                                  0.4)});
  MinMinScheduler scheduler(security::RiskPolicy::secure());
  const auto assignments = scheduler.schedule(context);
  ASSERT_EQ(assignments.size(), 1u);  // only the demand-0.4 job fits safely
  EXPECT_EQ(assignments[0].job_index, 1u);
}

TEST(Heuristics, NamesIncludeMode) {
  EXPECT_EQ(MinMinScheduler(security::RiskPolicy::secure()).name(),
            "Min-Min secure");
  EXPECT_EQ(SufferageScheduler(security::RiskPolicy::f_risky(0.5)).name(),
            "Sufferage f-risky");
  EXPECT_EQ(MctScheduler(security::RiskPolicy::risky()).name(), "MCT risky");
}

/// Property suite: on random instances every heuristic returns a valid
/// partial assignment (unique jobs, admissible + fitting sites), and the
/// f-risky bound holds for every placement.
class HeuristicProperty
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(HeuristicProperty, AssignmentsAreValidAndRiskBounded) {
  const auto& [name, f] = GetParam();
  util::Rng rng(std::hash<std::string>{}(name) + static_cast<std::uint64_t>(f *
      100));
  for (int instance = 0; instance < 20; ++instance) {
    std::vector<sim::SiteConfig> sites;
    const std::size_t n_sites = 2 + rng.index(6);
    for (std::size_t s = 0; s < n_sites; ++s) {
      sites.push_back({static_cast<sim::SiteId>(s),
                       static_cast<unsigned>(1 + rng.index(8)),
                       rng.uniform(0.5, 4.0), rng.uniform(0.4, 1.0)});
    }
    std::vector<sim::BatchJob> jobs;
    const std::size_t n_jobs = 1 + rng.index(12);
    for (std::size_t j = 0; j < n_jobs; ++j) {
      jobs.push_back(batch_job(rng.uniform(1.0, 50.0),
                               static_cast<unsigned>(1 + rng.index(4)),
                               rng.uniform(0.6, 0.9), rng.bernoulli(0.1)));
    }
    auto context = make_context(sites, jobs, rng.uniform(0.0, 100.0));

    const security::RiskPolicy policy = security::RiskPolicy::f_risky(f);
    const auto scheduler = make_heuristic(name, policy);
    const auto assignments = scheduler->schedule(context);

    std::set<std::size_t> seen;
    for (const auto& assignment : assignments) {
      ASSERT_LT(assignment.job_index, context.jobs.size());
      ASSERT_LT(assignment.site, context.sites.size());
      ASSERT_TRUE(seen.insert(assignment.job_index).second)
          << name << " duplicated a job";
      const auto& job = context.jobs[assignment.job_index];
      const auto& site = context.sites[assignment.site];
      ASSERT_LE(job.nodes, site.nodes);
      ASSERT_TRUE(admissible(job, site, policy));
      if (!job.secure_only) {
        ASSERT_LE(security::failure_probability(job.demand, site.security,
                                                policy.lambda()),
                  f + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllHeuristicsAndRiskLevels, HeuristicProperty,
    ::testing::Combine(::testing::Values("min-min", "max-min", "sufferage",
                                         "mct", "met", "olb"),
                       ::testing::Values(0.0, 0.3, 0.5, 1.0)));

// ------------------------------------------------------------- registry ---

TEST(Registry, ListsAllHeuristics) {
  const auto names = heuristic_names();
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_NE(std::find(names.begin(), names.end(), "min-min"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sufferage"), names.end());
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_heuristic("annealing", security::RiskPolicy::secure()),
               std::invalid_argument);
}

TEST(Registry, FactoryProducesWorkingScheduler) {
  auto scheduler = make_heuristic("sufferage", security::RiskPolicy::risky());
  auto context = fig2_context();
  EXPECT_EQ(scheduler->schedule(context).size(), 3u);
}

}  // namespace
}  // namespace gridsched::sched
