#include "security/security.hpp"
#include "security/trust_index.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gridsched::security {
namespace {

// ------------------------------------------------------ Eq. 1 behaviour ---

TEST(FailureProbability, ZeroWhenSafe) {
  EXPECT_DOUBLE_EQ(failure_probability(0.6, 0.6), 0.0);
  EXPECT_DOUBLE_EQ(failure_probability(0.6, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(failure_probability(0.0, 1.0), 0.0);
}

TEST(FailureProbability, MatchesClosedForm) {
  const double lambda = 3.0;
  EXPECT_NEAR(failure_probability(0.9, 0.4, lambda),
              1.0 - std::exp(-lambda * 0.5), 1e-12);
  EXPECT_NEAR(failure_probability(0.7, 0.6, lambda),
              1.0 - std::exp(-lambda * 0.1), 1e-12);
}

TEST(FailureProbability, DefaultLambdaIsApplied) {
  EXPECT_NEAR(failure_probability(0.9, 0.4),
              1.0 - std::exp(-kDefaultLambda * 0.5), 1e-12);
}

TEST(FailureProbability, ApproachesOneForExtremeDeficits) {
  EXPECT_LT(failure_probability(1.0, 0.0, 5.0), 1.0);
  EXPECT_GT(failure_probability(1.0, 0.0, 5.0), 0.99);
  // With an enormous lambda the double rounds to exactly 1.
  EXPECT_DOUBLE_EQ(failure_probability(1.0, 0.0, 1000.0), 1.0);
}

/// Property grid: bounds and monotonicity of Eq. 1 in sd, sl and lambda.
class FailureModelProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(FailureModelProperty, BoundsAndMonotonicity) {
  const auto [sd, sl, lambda] = GetParam();
  const double p = failure_probability(sd, sl, lambda);
  EXPECT_GE(p, 0.0);
  EXPECT_LT(p, 1.0);
  if (sd <= sl) {
    EXPECT_DOUBLE_EQ(p, 0.0);
  } else {
    EXPECT_GT(p, 0.0);
  }
  // Monotone in demand, antitone in level, monotone in lambda.
  EXPECT_LE(p, failure_probability(sd + 0.05, sl, lambda));
  EXPECT_GE(p, failure_probability(sd, sl + 0.05, lambda));
  EXPECT_LE(p, failure_probability(sd, sl, lambda + 0.5) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FailureModelProperty,
    ::testing::Combine(::testing::Values(0.6, 0.7, 0.8, 0.9),
                       ::testing::Values(0.4, 0.55, 0.7, 0.85, 1.0),
                       ::testing::Values(0.5, 1.0, 3.0, 10.0)));

// ----------------------------------------------------------- Risk modes ---

TEST(RiskPolicy, SecureAdmitsOnlySafeSites) {
  const RiskPolicy policy = RiskPolicy::secure();
  EXPECT_TRUE(policy.admissible(0.7, 0.7));
  EXPECT_TRUE(policy.admissible(0.7, 0.9));
  EXPECT_FALSE(policy.admissible(0.7, 0.69));
}

TEST(RiskPolicy, RiskyAdmitsEverything) {
  const RiskPolicy policy = RiskPolicy::risky();
  EXPECT_TRUE(policy.admissible(0.9, 0.4));
  EXPECT_TRUE(policy.admissible(0.9, 1.0));
}

TEST(RiskPolicy, FRiskyBoundsFailureProbability) {
  const double f = 0.5;
  const RiskPolicy policy = RiskPolicy::f_risky(f);
  for (double sd = 0.6; sd <= 0.9; sd += 0.05) {
    for (double sl = 0.4; sl <= 1.0; sl += 0.05) {
      if (policy.admissible(sd, sl)) {
        EXPECT_LE(failure_probability(sd, sl, policy.lambda()), f);
      } else {
        EXPECT_GT(failure_probability(sd, sl, policy.lambda()), f);
      }
    }
  }
}

TEST(RiskPolicy, FZeroEquivalentToSecure) {
  const RiskPolicy f0 = RiskPolicy::f_risky(0.0);
  const RiskPolicy secure = RiskPolicy::secure();
  for (double sd = 0.6; sd <= 0.9; sd += 0.03) {
    for (double sl = 0.4; sl <= 1.0; sl += 0.03) {
      EXPECT_EQ(f0.admissible(sd, sl), secure.admissible(sd, sl))
          << "sd=" << sd << " sl=" << sl;
    }
  }
}

TEST(RiskPolicy, FOneEquivalentToRisky) {
  const RiskPolicy f1 = RiskPolicy::f_risky(1.0);
  const RiskPolicy risky = RiskPolicy::risky();
  for (double sd = 0.6; sd <= 0.9; sd += 0.03) {
    for (double sl = 0.4; sl <= 1.0; sl += 0.03) {
      EXPECT_EQ(f1.admissible(sd, sl), risky.admissible(sd, sl));
    }
  }
}

/// Admissible sets grow monotonically with f.
class RiskMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(RiskMonotonicity, LargerFAdmitsSuperset) {
  const double f = GetParam();
  const RiskPolicy smaller = RiskPolicy::f_risky(f);
  const RiskPolicy larger = RiskPolicy::f_risky(f + 0.2);
  for (double sd = 0.6; sd <= 0.9; sd += 0.02) {
    for (double sl = 0.4; sl <= 1.0; sl += 0.02) {
      if (smaller.admissible(sd, sl)) {
        EXPECT_TRUE(larger.admissible(sd, sl));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FSweep, RiskMonotonicity,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7));

TEST(RiskPolicy, ModeNames) {
  EXPECT_EQ(to_string(RiskMode::kSecure), "secure");
  EXPECT_EQ(to_string(RiskMode::kFRisky), "f-risky");
  EXPECT_EQ(to_string(RiskMode::kRisky), "risky");
}

TEST(RiskPolicy, AccessorsRoundTrip) {
  const RiskPolicy policy = RiskPolicy::f_risky(0.25, 2.0);
  EXPECT_EQ(policy.mode(), RiskMode::kFRisky);
  EXPECT_DOUBLE_EQ(policy.f(), 0.25);
  EXPECT_DOUBLE_EQ(policy.lambda(), 2.0);
}

// ----------------------------------------------------------- Trust index ---

TEST(TrustIndex, EqualAttributesYieldThatValue) {
  SiteSecurityAttributes attrs;
  attrs.defense_capability = 0.8;
  attrs.prior_success_rate = 0.8;
  attrs.authentication_strength = 0.8;
  attrs.isolation_quality = 0.8;
  EXPECT_NEAR(trust_index(attrs), 0.8, 1e-12);
}

TEST(TrustIndex, WeightsBias) {
  SiteSecurityAttributes attrs;
  attrs.defense_capability = 1.0;
  attrs.prior_success_rate = 0.0;
  attrs.authentication_strength = 0.0;
  attrs.isolation_quality = 0.0;
  TrustWeights weights;
  weights.defense = 1.0;
  weights.history = weights.authentication = weights.isolation = 0.0;
  EXPECT_DOUBLE_EQ(trust_index(attrs, weights), 1.0);
}

TEST(TrustIndex, ClampsOutOfRangeAttributes) {
  SiteSecurityAttributes attrs;
  attrs.defense_capability = 42.0;
  attrs.prior_success_rate = -5.0;
  attrs.authentication_strength = 1.0;
  attrs.isolation_quality = 1.0;
  const double index = trust_index(attrs);
  EXPECT_GE(index, 0.0);
  EXPECT_LE(index, 1.0);
}

TEST(TrustIndex, ZeroWeightsGiveZero) {
  EXPECT_DOUBLE_EQ(trust_index({}, {0.0, 0.0, 0.0, 0.0}), 0.0);
}

TEST(SuccessHistory, StartsAtInitial) {
  SuccessHistory history(0.1, 0.5);
  EXPECT_DOUBLE_EQ(history.rate(), 0.5);
  EXPECT_EQ(history.observations(), 0u);
}

TEST(SuccessHistory, ConvergesUpOnSuccesses) {
  SuccessHistory history(0.2, 0.5);
  for (int i = 0; i < 100; ++i) history.record(true);
  EXPECT_GT(history.rate(), 0.99);
  EXPECT_EQ(history.observations(), 100u);
}

TEST(SuccessHistory, ConvergesDownOnFailures) {
  SuccessHistory history(0.2, 0.5);
  for (int i = 0; i < 100; ++i) history.record(false);
  EXPECT_LT(history.rate(), 0.01);
}

TEST(SuccessHistory, SingleObservationMovesByAlpha) {
  SuccessHistory history(0.1, 0.5);
  history.record(true);
  EXPECT_NEAR(history.rate(), 0.55, 1e-12);
  history.record(false);
  EXPECT_NEAR(history.rate(), 0.495, 1e-12);
}

}  // namespace
}  // namespace gridsched::security
