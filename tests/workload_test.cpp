#include "workload/nas.hpp"
#include "workload/psa.hpp"
#include "workload/sites.hpp"
#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/scenario_registry.hpp"
#include "security/security.hpp"

namespace gridsched::workload {
namespace {

// ---------------------------------------------------------------- sites ---

TEST(NasSites, MatchesPaperLayout) {
  util::Rng rng(1);
  const auto sites = nas_sites(rng);
  ASSERT_EQ(sites.size(), 12u);
  std::size_t sixteen = 0;
  std::size_t eight = 0;
  unsigned total_nodes = 0;
  for (const auto& site : sites) {
    total_nodes += site.nodes;
    if (site.nodes == 16) ++sixteen;
    if (site.nodes == 8) ++eight;
    EXPECT_DOUBLE_EQ(site.speed, 1.0);
    EXPECT_GE(site.security, security::kSiteSecurityLo);
    EXPECT_LE(site.security, security::kSiteSecurityHi);
  }
  EXPECT_EQ(sixteen, 4u);
  EXPECT_EQ(eight, 8u);
  EXPECT_EQ(total_nodes, 128u);  // the mapped iPSC/860
}

TEST(NasSites, GuaranteesSafeHomeForLargestJobs) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Rng rng(seed);
    const auto sites = nas_sites(rng);
    const bool safe_big_site = std::any_of(
        sites.begin(), sites.end(), [](const sim::SiteConfig& site) {
          return site.nodes >= 16 && site.security >= security::kJobDemandHi;
        });
    EXPECT_TRUE(safe_big_site) << "seed " << seed;
  }
}

TEST(PsaSites, SpeedsAreTheTenLevels) {
  util::Rng rng(2);
  const auto sites = psa_sites(rng, 20);
  ASSERT_EQ(sites.size(), 20u);
  for (const auto& site : sites) {
    EXPECT_EQ(site.nodes, 1u);
    const double level = site.speed / 10.0;
    EXPECT_GE(level, 1.0);
    EXPECT_LE(level, 10.0);
    EXPECT_DOUBLE_EQ(level, std::round(level));
  }
}

TEST(PsaSites, RejectsZeroCount) {
  util::Rng rng(3);
  EXPECT_THROW(psa_sites(rng, 0), std::invalid_argument);
}

TEST(EnsureSafeHome, BumpsHighestEligibleSite) {
  util::Rng rng(4);
  std::vector<sim::SiteConfig> sites = {
      {0, 4, 1.0, 0.5}, {1, 8, 1.0, 0.7}, {2, 2, 1.0, 0.99}};
  ensure_safe_home(sites, 8, 0.9, rng);
  // Site 2 is safe but too small; site 1 must have been raised.
  EXPECT_GE(sites[1].security, 0.9);
  EXPECT_DOUBLE_EQ(sites[0].security, 0.5);
}

TEST(EnsureSafeHome, NoopWhenAlreadySafe) {
  util::Rng rng(5);
  std::vector<sim::SiteConfig> sites = {{0, 8, 1.0, 0.95}, {1, 8, 1.0, 0.5}};
  const double before = sites[0].security;
  ensure_safe_home(sites, 8, 0.9, rng);
  EXPECT_DOUBLE_EQ(sites[0].security, before);
  EXPECT_DOUBLE_EQ(sites[1].security, 0.5);
}

TEST(EnsureSafeHome, ThrowsWhenNothingFits) {
  util::Rng rng(6);
  std::vector<sim::SiteConfig> sites = {{0, 4, 1.0, 0.5}};
  EXPECT_THROW(ensure_safe_home(sites, 8, 0.9, rng), std::invalid_argument);
}

// ------------------------------------------------------------------ NAS ---

NasTraceConfig small_nas(std::size_t n = 400) {
  NasTraceConfig config;
  config.n_jobs = n;
  config.horizon = 2.0 * 86400.0;
  return config;
}

TEST(NasJobs, GeneratesRequestedCount) {
  util::Rng site_rng(7);
  const auto sites = nas_sites(site_rng);
  const auto jobs = nas_jobs(small_nas(), sites, 11);
  EXPECT_EQ(jobs.size(), 400u);
}

TEST(NasJobs, SizesArePowersOfTwoCappedBySites) {
  util::Rng site_rng(8);
  const auto sites = nas_sites(site_rng);
  const auto jobs = nas_jobs(small_nas(2000), sites, 12);
  std::set<unsigned> sizes;
  for (const auto& job : jobs) {
    EXPECT_LE(job.nodes, 16u);
    EXPECT_EQ(job.nodes & (job.nodes - 1), 0u) << job.nodes;  // power of two
    sizes.insert(job.nodes);
  }
  EXPECT_EQ(sizes.size(), 5u);  // 1, 2, 4, 8, 16 all occur in 2000 draws
}

TEST(NasJobs, ArrivalsSortedWithinHorizon) {
  util::Rng site_rng(9);
  const auto sites = nas_sites(site_rng);
  const auto config = small_nas();
  const auto jobs = nas_jobs(config, sites, 13);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival, 0.0);
    EXPECT_LE(jobs[i].arrival, config.horizon);
    if (i > 0) {
      EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    }
  }
}

TEST(NasJobs, DemandsInPaperRange) {
  util::Rng site_rng(10);
  const auto sites = nas_sites(site_rng);
  for (const auto& job : nas_jobs(small_nas(), sites, 14)) {
    EXPECT_GE(job.demand, security::kJobDemandLo);
    EXPECT_LE(job.demand, security::kJobDemandHi);
  }
}

TEST(NasJobs, HitsTargetLoadApproximately) {
  util::Rng site_rng(11);
  const auto sites = nas_sites(site_rng);
  NasTraceConfig config = small_nas(3000);
  config.target_load = 0.75;
  const auto jobs = nas_jobs(config, sites, 15);
  double offered = 0.0;
  for (const auto& job : jobs) offered += job.work * job.nodes;
  double capacity = 0.0;
  for (const auto& site : sites) {
    capacity += static_cast<double>(site.nodes) * site.speed * config.horizon;
  }
  // Runtime clamping distorts the rescale slightly; 15% tolerance.
  EXPECT_NEAR(offered / capacity, 0.75, 0.115);
}

TEST(NasJobs, RuntimesWithinClamp) {
  util::Rng site_rng(12);
  const auto sites = nas_sites(site_rng);
  const auto config = small_nas(1000);
  for (const auto& job : nas_jobs(config, sites, 16)) {
    EXPECT_GE(job.work, config.min_runtime);
    EXPECT_LE(job.work, config.max_runtime);
  }
}

TEST(NasJobs, DeterministicInSeed) {
  util::Rng site_rng(13);
  const auto sites = nas_sites(site_rng);
  const auto a = nas_jobs(small_nas(), sites, 99);
  const auto b = nas_jobs(small_nas(), sites, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_DOUBLE_EQ(a[i].work, b[i].work);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
  }
}

TEST(NasArrivalIntensity, DiurnalAndWeekendShape) {
  const NasTraceConfig config;
  // Afternoon of day 1 (weekday) vs deep night of day 1.
  const double afternoon = nas_arrival_intensity(15.0 * 3600.0, config);
  const double night = nas_arrival_intensity(3.0 * 3600.0, config);
  EXPECT_GT(afternoon, night);
  // Same hour, Saturday (day 5) is damped vs Monday (day 0).
  const double monday = nas_arrival_intensity(15.0 * 3600.0, config);
  const double saturday =
      nas_arrival_intensity((5.0 * 24.0 + 15.0) * 3600.0, config);
  EXPECT_GT(monday, saturday);
}

TEST(NasWorkload, BundlesSitesAndJobs) {
  NasTraceConfig config = small_nas(200);
  const Workload workload = nas_workload(config, 21);
  EXPECT_EQ(workload.name, "NAS");
  EXPECT_EQ(workload.sites.size(), 12u);
  EXPECT_EQ(workload.jobs.size(), 200u);
}

TEST(NasJobs, RejectsBadConfig) {
  util::Rng site_rng(14);
  const auto sites = nas_sites(site_rng);
  NasTraceConfig zero = small_nas(0);
  EXPECT_THROW(nas_jobs(zero, sites, 1), std::invalid_argument);
  NasTraceConfig bad_weights = small_nas();
  bad_weights.size_weights.clear();
  EXPECT_THROW(nas_jobs(bad_weights, sites, 1), std::invalid_argument);
}

// ------------------------------------------------------------------ PSA ---

TEST(PsaJobs, GeneratesRequestedCount) {
  PsaConfig config;
  config.n_jobs = 500;
  EXPECT_EQ(psa_jobs(config, 31).size(), 500u);
}

TEST(PsaJobs, WorkloadsAreTheTwentyLevels) {
  PsaConfig config;
  config.n_jobs = 2000;
  const double level_size = config.max_workload / 20.0;
  std::set<long> levels;
  for (const auto& job : psa_jobs(config, 32)) {
    EXPECT_EQ(job.nodes, 1u);  // sequential by definition
    const double level = job.work / level_size;
    EXPECT_DOUBLE_EQ(level, std::round(level));
    EXPECT_GE(level, 1.0);
    EXPECT_LE(level, 20.0);
    levels.insert(static_cast<long>(level));
  }
  EXPECT_EQ(levels.size(), 20u);
}

TEST(PsaJobs, PoissonInterarrivalMean) {
  PsaConfig config;
  config.n_jobs = 20000;
  config.arrival_rate = 0.008;
  const auto jobs = psa_jobs(config, 33);
  const double span = jobs.back().arrival;
  const double mean_gap = span / static_cast<double>(jobs.size());
  EXPECT_NEAR(mean_gap, 125.0, 4.0);  // 1 / 0.008
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
  }
}

TEST(PsaJobs, DemandsInPaperRange) {
  PsaConfig config;
  config.n_jobs = 300;
  for (const auto& job : psa_jobs(config, 34)) {
    EXPECT_GE(job.demand, security::kJobDemandLo);
    EXPECT_LE(job.demand, security::kJobDemandHi);
  }
}

TEST(PsaJobs, RejectsBadConfig) {
  PsaConfig config;
  config.n_jobs = 0;
  EXPECT_THROW(psa_jobs(config, 1), std::invalid_argument);
  config.n_jobs = 10;
  config.arrival_rate = 0.0;
  EXPECT_THROW(psa_jobs(config, 1), std::invalid_argument);
  config.arrival_rate = 0.01;
  config.workload_levels = 0;
  EXPECT_THROW(psa_jobs(config, 1), std::invalid_argument);
}

TEST(PsaWorkload, BundlesSitesAndJobs) {
  PsaConfig config;
  config.n_jobs = 100;
  config.n_sites = 15;
  const Workload workload = psa_workload(config, 35);
  EXPECT_EQ(workload.name, "PSA");
  EXPECT_EQ(workload.sites.size(), 15u);
  EXPECT_EQ(workload.jobs.size(), 100u);
}

// ------------------------------------------------------------- trace IO ---

TEST(TraceIo, JobRoundTrip) {
  PsaConfig config;
  config.n_jobs = 50;
  auto jobs = psa_jobs(config, 41);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<sim::JobId>(i);
  }
  std::stringstream stream;
  write_jobs(stream, jobs);
  const auto parsed = read_jobs(stream);
  ASSERT_EQ(parsed.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(parsed[i].id, jobs[i].id);
    EXPECT_NEAR(parsed[i].arrival, jobs[i].arrival, 1e-4);
    EXPECT_NEAR(parsed[i].work, jobs[i].work, 1e-4);
    EXPECT_EQ(parsed[i].nodes, jobs[i].nodes);
    EXPECT_NEAR(parsed[i].demand, jobs[i].demand, 1e-6);
  }
}

TEST(TraceIo, SiteRoundTrip) {
  util::Rng rng(42);
  const auto sites = nas_sites(rng);
  std::stringstream stream;
  write_sites(stream, sites);
  const auto parsed = read_sites(stream);
  ASSERT_EQ(parsed.size(), sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(parsed[i].id, sites[i].id);
    EXPECT_EQ(parsed[i].nodes, sites[i].nodes);
    EXPECT_NEAR(parsed[i].security, sites[i].security, 1e-6);
  }
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream stream;
  stream << "; a comment\n\n  \n7 1.5 10.0 2 0.8\n";
  const auto jobs = read_jobs(stream);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].id, 7u);
  EXPECT_EQ(jobs[0].nodes, 2u);
}

TEST(TraceIo, RejectsMalformedRecords) {
  std::stringstream garbage("1 2 three 4 5\n");
  EXPECT_THROW(read_jobs(garbage), std::runtime_error);
  std::stringstream truncated("1 2 3\n");
  EXPECT_THROW(read_jobs(truncated), std::runtime_error);
  std::stringstream negative_work("1 0.0 -5.0 1 0.5\n");
  EXPECT_THROW(read_jobs(negative_work), std::runtime_error);
  std::stringstream zero_nodes("1 0.0 5.0 0 0.5\n");
  EXPECT_THROW(read_jobs(zero_nodes), std::runtime_error);
}

TEST(TraceIo, RejectsBadSites) {
  std::stringstream zero_speed("0 4 0.0 0.5\n");
  EXPECT_THROW(read_sites(zero_speed), std::runtime_error);
}

TEST(TraceIo, EtcSectionRoundTripsBitExactly) {
  // Two jobs x three sites with awkward doubles: the max_digits10 writer
  // and the strtod-equivalent reader must round-trip every bit.
  std::vector<sim::Job> jobs(2);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<sim::JobId>(i);
    jobs[i].arrival = static_cast<double>(i);
    jobs[i].work = 10.0;
    jobs[i].nodes = 1;
    jobs[i].demand = 0.5;
  }
  const std::vector<double> cells = {0.1, 1.0 / 3.0, 7.25,
                                     1e-3, 9.875e4, 2.0};
  const sim::ExecModel exec(2, 3, cells);
  std::stringstream stream;
  write_jobs(stream, jobs, exec);
  const JobsTrace trace = read_jobs_trace(stream);
  ASSERT_EQ(trace.jobs.size(), 2u);
  ASSERT_TRUE(trace.exec.has_matrix());
  EXPECT_EQ(trace.exec.matrix_jobs(), 2u);
  EXPECT_EQ(trace.exec.matrix_sites(), 3u);
  const auto parsed = trace.exec.matrix_cells();
  ASSERT_EQ(parsed.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(parsed[i], cells[i]);  // bit-exact, not NEAR
  }
}

TEST(TraceIo, V1FilesStillReadWithoutEtc) {
  std::stringstream stream;
  stream << "; gridsched job trace v1\n7 1.5 10.0 2 0.8\n";
  const JobsTrace trace = read_jobs_trace(stream);
  ASSERT_EQ(trace.jobs.size(), 1u);
  EXPECT_FALSE(trace.exec.has_matrix());
}

TEST(TraceIo, V1ReadersSkipTheEtcSectionAsComments) {
  // Forward compatibility: the plain-records reader sees ";etc" lines as
  // comments and still returns the job list.
  std::vector<sim::Job> jobs(1);
  jobs[0].id = 0;
  jobs[0].arrival = 0.0;
  jobs[0].work = 5.0;
  jobs[0].nodes = 1;
  jobs[0].demand = 0.5;
  std::stringstream stream;
  write_jobs(stream, jobs, sim::ExecModel(1, 2, {1.0, 2.0}));
  const std::string text = stream.str();
  EXPECT_NE(text.find(";etc v1 1 2"), std::string::npos);
  // Simulate a v1 reader: strip nothing, use the records-only API — the
  // section parses (and validates) but only jobs are returned.
  std::stringstream again(text);
  EXPECT_EQ(read_jobs(again).size(), 1u);
}

TEST(TraceIo, MalformedEtcSectionsThrow) {
  const std::string job_line = "0 0.0 5.0 1 0.5\n";
  // Row before header.
  std::stringstream no_header(job_line + ";etc-row 0 1.0\n");
  EXPECT_THROW(read_jobs_trace(no_header), std::runtime_error);
  // Row count mismatch vs header.
  std::stringstream missing_rows(job_line + ";etc v1 1 2\n");
  EXPECT_THROW(read_jobs_trace(missing_rows), std::runtime_error);
  // Out-of-order row index.
  std::stringstream bad_index(job_line + ";etc v1 1 2\n;etc-row 1 1.0 2.0\n");
  EXPECT_THROW(read_jobs_trace(bad_index), std::runtime_error);
  // Wrong cell count in a row.
  std::stringstream short_row(job_line + ";etc v1 1 2\n;etc-row 0 1.0\n");
  EXPECT_THROW(read_jobs_trace(short_row), std::runtime_error);
  std::stringstream long_row(job_line +
                             ";etc v1 1 2\n;etc-row 0 1.0 2.0 3.0\n");
  EXPECT_THROW(read_jobs_trace(long_row), std::runtime_error);
  // Shape disagrees with the job list.
  std::stringstream wrong_jobs(job_line +
                               ";etc v1 2 1\n;etc-row 0 1.0\n;etc-row 1 2.0\n");
  EXPECT_THROW(read_jobs_trace(wrong_jobs), std::runtime_error);
  // Non-positive cells are rejected by the ExecModel invariant.
  std::stringstream bad_cell(job_line + ";etc v1 1 2\n;etc-row 0 1.0 -2.0\n");
  EXPECT_THROW(read_jobs_trace(bad_cell), std::invalid_argument);
  // Unknown section version.
  std::stringstream bad_version(job_line + ";etc v9 1 1\n;etc-row 0 1.0\n");
  EXPECT_THROW(read_jobs_trace(bad_version), std::runtime_error);
}

TEST(TraceIo, WriteRejectsEtcShapeMismatch) {
  std::vector<sim::Job> jobs(3);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<sim::JobId>(i);
    jobs[i].work = 1.0;
    jobs[i].nodes = 1;
    jobs[i].demand = 0.5;
  }
  std::stringstream stream;
  EXPECT_THROW(write_jobs(stream, jobs, sim::ExecModel(2, 2, {1, 2, 3, 4})),
               std::runtime_error);
}

TEST(TraceIo, SynthWorkloadEtcRoundTripsThroughFiles) {
  // End to end: a raw-ETC scenario serialises through generate-style
  // writes and replays with the exact same matrix.
  const exp::Scenario scenario = exp::make_scenario("synth-inconsistent-hihi",
                                                    30);
  const Workload workload = exp::make_workload(scenario, 11);
  ASSERT_TRUE(workload.exec.has_matrix());
  const std::string path = testing::TempDir() + "synth_etc.trace";
  write_jobs_file(path, workload.jobs, workload.exec);
  const JobsTrace trace = read_jobs_trace_file(path);
  ASSERT_TRUE(trace.exec.has_matrix());
  const auto original = workload.exec.matrix_cells();
  const auto parsed = trace.exec.matrix_cells();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(parsed[i], original[i]);
  }
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_jobs_file("/nonexistent/path/jobs.trace"),
               std::runtime_error);
  EXPECT_THROW(read_sites_file("/nonexistent/path/sites.trace"),
               std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  PsaConfig config;
  config.n_jobs = 10;
  auto jobs = psa_jobs(config, 77);
  const std::string path = ::testing::TempDir() + "/gridsched_jobs.trace";
  write_jobs_file(path, jobs);
  const auto parsed = read_jobs_file(path);
  EXPECT_EQ(parsed.size(), jobs.size());
}

}  // namespace
}  // namespace gridsched::workload
