// Fault-tolerance layer (PR 7): cancel-token watchdogs, deterministic
// fault injection, graceful degradation, retries and the checkpoint
// journal, including the resume-vs-fresh byte-identity contract.
#include "exp/campaign/campaign_journal.hpp"
#include "exp/campaign/campaign_runner.hpp"
#include "exp/campaign/campaign_sinks.hpp"
#include "exp/campaign/campaign_spec.hpp"
#include "exp/fault_plan.hpp"
#include "exp/runner.hpp"
#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace gridsched::exp::campaign {
namespace {

/// A fast campaign: two heuristics over two small scenarios, three reps.
CampaignSpec mini_spec(const std::string& extra = "") {
  return parse_spec_text(R"({
    "name": "ft-mini",
    "seed": 99,
    "replications": 3,
    "metrics": ["makespan", "slowdown", "n_fail"],
    "scenarios": [
      {"name": "psa", "jobs": 40},
      {"name": "synth-batch", "jobs": 40}
    ],
    "policies": [
      {"algo": "min-min", "mode": "f-risky"},
      {"algo": "sufferage", "mode": "risky"}
    ])" + extra + "\n}");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------- cancel token ---

TEST(CancelToken, DefaultTokenNeverFires) {
  util::CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_NO_THROW(token.check("test"));
  EXPECT_EQ(token.checks(), 1u);
}

TEST(CancelToken, ExplicitCancelThrowsAtNextCheck) {
  util::CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.stop_requested());
  try {
    token.check("unit test");
    FAIL() << "expected CancelledError";
  } catch (const util::CancelledError& e) {
    EXPECT_NE(std::string(e.what()).find("unit test"), std::string::npos);
  }
}

TEST(CancelToken, DeadlineExpires) {
  const util::CancelToken token = util::CancelToken::with_deadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.check("deadline"), util::CancelledError);
}

TEST(CancelToken, CancelledRunEmitsNoMetrics) {
  // An already-expired watchdog must abort run_once before any metrics
  // exist — a cancelled cell can never leak a partial result into the
  // byte-stable aggregate.
  const CampaignSpec spec = mini_spec();
  const Scenario scenario = spec.scenarios[0].resolve();
  const AlgorithmSpec algo = spec.policies[0].resolve();
  util::CancelToken token;
  token.cancel();
  RunHooks hooks;
  hooks.cancel = &token;
  EXPECT_THROW(run_once(scenario, algo, 1234, nullptr, hooks),
               util::CancelledError);
  // Observability: the kernel actually polled the token.
  EXPECT_GE(token.checks(), 1u);
}

// ------------------------------------------------------------ fault plan ---

TEST(FaultPlan, EmptyPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  for (unsigned attempt = 0; attempt < 8; ++attempt) {
    EXPECT_NO_THROW(maybe_inject(plan, 1, "s", "p", 0, attempt));
  }
}

TEST(FaultPlan, ThrowFaultIsDeterministicPerCellAndAttempt) {
  FaultPlan plan;
  plan.throw_prob = 0.5;
  // The same {seed, cell, attempt} always draws the same outcome.
  std::vector<std::vector<bool>> rounds;
  for (int repeat = 0; repeat < 3; ++repeat) {
    std::vector<bool> thrown;
    for (std::size_t rep = 0; rep < 16; ++rep) {
      bool threw = false;
      try {
        maybe_inject(plan, 42, "psa", "min-min-f-risky", rep, 0);
      } catch (const InjectedFault&) {
        threw = true;
      }
      thrown.push_back(threw);
    }
    // Not all-or-nothing at p=0.5 over 16 cells.
    EXPECT_NE(std::count(thrown.begin(), thrown.end(), true), 0);
    EXPECT_NE(std::count(thrown.begin(), thrown.end(), true), 16);
    rounds.push_back(std::move(thrown));
  }
  EXPECT_EQ(rounds[0], rounds[1]);
  EXPECT_EQ(rounds[0], rounds[2]);
}

TEST(FaultPlan, FiltersRestrictInjectionToMatchingCells) {
  FaultPlan plan;
  plan.throw_prob = 1.0;
  plan.policy = "stga";
  EXPECT_NO_THROW(maybe_inject(plan, 1, "psa", "min-min-f-risky", 0, 0));
  EXPECT_THROW(maybe_inject(plan, 1, "psa", "stga", 0, 0), InjectedFault);
}

TEST(FaultPlan, ValidateRejectsBadProbabilities) {
  FaultPlan plan;
  plan.throw_prob = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.throw_prob = 0.0;
  plan.delay_prob = 0.5;  // delay_prob without delay_seconds
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ spec faults ---

TEST(CampaignSpec, ParsesFaultsKey) {
  const CampaignSpec spec = mini_spec(R"(,
    "faults": {"throw_prob": 0.25, "delay_prob": 0.1,
               "delay_seconds": 0.001, "policy": "min-min-f-risky"})");
  EXPECT_DOUBLE_EQ(spec.faults.throw_prob, 0.25);
  EXPECT_DOUBLE_EQ(spec.faults.delay_prob, 0.1);
  EXPECT_DOUBLE_EQ(spec.faults.delay_seconds, 0.001);
  EXPECT_EQ(spec.faults.policy, "min-min-f-risky");
}

TEST(CampaignSpec, RejectsUnknownFaultKeys) {
  // check_keys stays strict: typos in the chaos plan fail loudly.
  EXPECT_THROW(mini_spec(R"(, "faults": {"throw_probz": 0.5})"),
               std::invalid_argument);
  EXPECT_THROW(mini_spec(R"(, "faults": {"retries": 3})"),
               std::invalid_argument);
}

TEST(CampaignSpec, RejectsFaultFiltersNamingNoAxisLabel) {
  EXPECT_THROW(
      mini_spec(R"(, "faults": {"throw_prob": 1.0, "scenario": "nope"})"),
      std::invalid_argument);
  EXPECT_THROW(
      mini_spec(R"(, "faults": {"throw_prob": 1.0, "policy": "nope"})"),
      std::invalid_argument);
}

// ------------------------------------------------- graceful degradation ---

TEST(FaultTolerance, InjectedFaultDegradesInsteadOfAborting) {
  // throw_prob 1.0 on one policy: every one of its cells fails on every
  // attempt, the other policy's cells all survive.
  const CampaignSpec spec = mini_spec(
      R"(, "faults": {"throw_prob": 1.0, "policy": "sufferage-risky"})");
  RunnerOptions options;
  options.threads = 2;
  const CampaignResult result = CampaignRunner(options).run(spec);

  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.failed_cells(), 2u * 3u);  // 2 scenarios x 3 reps
  EXPECT_EQ(result.timed_out_cells(), 0u);
  for (const CellResult& cell : result.cells) {
    const std::string policy = spec.policies[cell.cell.policy].display();
    if (policy == "sufferage-risky") {
      EXPECT_EQ(cell.status, CellStatus::kFailed);
      EXPECT_NE(cell.error.find("injected fault"), std::string::npos);
    } else {
      EXPECT_EQ(cell.status, CellStatus::kOk);
      EXPECT_TRUE(cell.error.empty());
    }
  }
  for (const GroupSummary& group : result.groups) {
    if (group.policy == "sufferage-risky") {
      EXPECT_TRUE(group.degraded());
      EXPECT_EQ(group.cells, 0u);
      EXPECT_EQ(group.failed, 3u);
    } else {
      EXPECT_FALSE(group.degraded());
      EXPECT_EQ(group.cells, 3u);
    }
  }

  // Sinks mark the degradation.
  const std::string json = render_json(result);
  EXPECT_NE(json.find("\"failed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(json.find("injected fault"), std::string::npos);
  const std::string table = render_table(result);
  EXPECT_NE(table.find("0/3"), std::string::npos);
  EXPECT_NE(table.find("DEGRADED"), std::string::npos);
}

TEST(FaultTolerance, DegradedAggregateIsByteStableAcrossThreads) {
  const CampaignSpec spec = mini_spec(
      R"(, "faults": {"throw_prob": 0.4})");
  std::vector<std::string> artifacts;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    RunnerOptions options;
    options.threads = threads;
    artifacts.push_back(render_json(CampaignRunner(options).run(spec)));
  }
  EXPECT_EQ(artifacts[0], artifacts[1]);
  EXPECT_EQ(artifacts[0], artifacts[2]);
}

TEST(FaultTolerance, FaultFreePlanLeavesArtifactsByteIdentical) {
  // The "faults" key with a no-op plan must not perturb a single byte of
  // any artifact relative to a spec without the key.
  const CampaignSpec plain = mini_spec();
  const CampaignSpec noop = mini_spec(
      R"(, "faults": {"throw_prob": 0.0, "delay_prob": 0.0})");
  RunnerOptions options;
  options.threads = 2;
  const CampaignResult a = CampaignRunner(options).run(plain);
  const CampaignResult b = CampaignRunner(options).run(noop);
  EXPECT_EQ(render_json(a), render_json(b));
  EXPECT_EQ(render_csv(a), render_csv(b));
  // Tables match up to the wall-clock footer (timing is never stable).
  const auto strip_footer = [](const std::string& table) {
    const std::size_t last = table.rfind('\n', table.size() - 2);
    return table.substr(0, last + 1);
  };
  EXPECT_EQ(strip_footer(render_table(a)), strip_footer(render_table(b)));
}

TEST(FaultTolerance, StrictModeAbortsAndNamesTheCell) {
  const CampaignSpec spec = mini_spec(
      R"(, "faults": {"throw_prob": 1.0, "policy": "sufferage-risky"})");
  RunnerOptions options;
  options.threads = 1;
  options.strict = true;
  try {
    CampaignRunner(options).run(spec);
    FAIL() << "expected strict mode to abort";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("campaign cell"), std::string::npos) << what;
    EXPECT_NE(what.find("policy=sufferage-risky"), std::string::npos) << what;
    EXPECT_NE(what.find("injected fault"), std::string::npos) << what;
  }
}

// ----------------------------------------------------------------- retry ---

TEST(FaultTolerance, RetriesAreCountedAndBounded) {
  const CampaignSpec spec = mini_spec(
      R"(, "faults": {"throw_prob": 1.0, "policy": "sufferage-risky"})");
  RunnerOptions options;
  options.threads = 1;
  options.retries = 2;
  const CampaignResult result = CampaignRunner(options).run(spec);
  for (const CellResult& cell : result.cells) {
    const std::string policy = spec.policies[cell.cell.policy].display();
    if (policy == "sufferage-risky") {
      EXPECT_EQ(cell.status, CellStatus::kFailed);
      EXPECT_EQ(cell.attempts, 3u);  // 1 + 2 retries, all doomed
    } else {
      EXPECT_EQ(cell.attempts, 1u);
    }
  }
  // Attempt accounting lands in the profile sidecar (and only there).
  const std::string profile = render_profile(result);
  EXPECT_NE(profile.find("\"attempts\": 3"), std::string::npos);
  EXPECT_EQ(render_csv(result).find("attempts"), std::string::npos);
}

TEST(FaultTolerance, RetryRecoversTransientFaults) {
  // p=0.5 with 3 retries: each eligible cell survives unless all four
  // attempts draw a throw (p = 1/16 each). The draw set is a pure
  // function of the spec seed; with this seed every cell recovers, and
  // at least one needed more than one attempt.
  const CampaignSpec spec = mini_spec(
      R"(, "faults": {"throw_prob": 0.5})");
  RunnerOptions options;
  options.threads = 2;
  options.retries = 3;
  const CampaignResult result = CampaignRunner(options).run(spec);
  unsigned multi_attempt = 0;
  for (const CellResult& cell : result.cells) {
    if (cell.status == CellStatus::kOk && cell.attempts > 1) ++multi_attempt;
  }
  EXPECT_GT(multi_attempt, 0u);
  EXPECT_TRUE(result.complete());
}

// --------------------------------------------------------------- timeout ---

TEST(FaultTolerance, ExhaustedBudgetSurfacesAsTimedOut) {
  const CampaignSpec spec = mini_spec();
  RunnerOptions options;
  options.threads = 2;
  options.cell_timeout = 1e-9;  // expired by the first batch cycle
  options.retries = 5;          // must NOT be spent on timeouts
  const CampaignResult result = CampaignRunner(options).run(spec);
  EXPECT_EQ(result.timed_out_cells(), result.cells.size());
  for (const CellResult& cell : result.cells) {
    EXPECT_EQ(cell.status, CellStatus::kTimedOut);
    EXPECT_EQ(cell.attempts, 1u);
    EXPECT_NE(cell.error.find("wall-clock budget"), std::string::npos)
        << cell.error;
  }
  const std::string json = render_json(result);
  EXPECT_NE(json.find("\"status\": \"timed_out\""), std::string::npos);
}

// --------------------------------------------------------------- journal ---

TEST(Journal, RecordRoundTripsEveryDeterministicMetric) {
  JournalRecord record;
  record.scenario = "psa";
  record.policy = "min-min-f-risky";
  record.replication = 2;
  record.seed = 0xDEADBEEFCAFEF00Dull;
  record.status = CellStatus::kOk;
  record.attempts = 2;
  // Distinct, non-round values per field so a swapped setter cannot pass.
  metrics::RunMetrics& m = record.metrics;
  m.n_jobs = 101;
  m.batch_invocations = 17;
  m.makespan = 1234.5678901234567;
  m.avg_response = 98.7654321;
  m.slowdown_ratio = 1.23456789;
  m.n_risk = 7;
  m.n_fail = 3;
  m.avg_utilization = 0.87654321;
  m.failure_events = 11;
  m.risky_attempts = 13;
  m.released_nodes = 19;
  m.unreleased_nodes = 23;
  m.site_down_events = 29;
  m.site_up_events = 31;
  m.interruptions = 37;
  m.n_interrupted = 41;
  m.churn_released_nodes = 43;
  m.churn_unreleased_nodes = 47;

  const JournalRecord decoded = decode_record(encode_record(record));
  EXPECT_EQ(decoded.scenario, record.scenario);
  EXPECT_EQ(decoded.policy, record.policy);
  EXPECT_EQ(decoded.replication, record.replication);
  EXPECT_EQ(decoded.seed, record.seed);
  EXPECT_EQ(decoded.status, record.status);
  EXPECT_EQ(decoded.attempts, record.attempts);
  EXPECT_EQ(decoded.metrics.n_jobs, m.n_jobs);
  EXPECT_EQ(decoded.metrics.batch_invocations, m.batch_invocations);
  // Every deterministic metric def must survive the round trip
  // bit-exactly — this is what makes resume byte-identical.
  for (const MetricDef& def : metric_defs()) {
    if (!def.deterministic) continue;
    EXPECT_EQ(def.value(decoded.metrics), def.value(record.metrics))
        << def.key;
  }
}

TEST(Journal, FailedRecordCarriesErrorInsteadOfMetrics) {
  JournalRecord record;
  record.scenario = "psa";
  record.policy = "stga";
  record.replication = 0;
  record.seed = 7;
  record.status = CellStatus::kTimedOut;
  record.attempts = 1;
  record.error = "wall-clock budget exhausted at simulation batch cycle";
  const std::string line = encode_record(record);
  EXPECT_EQ(line.find("metrics"), std::string::npos);
  const JournalRecord decoded = decode_record(line);
  EXPECT_EQ(decoded.status, CellStatus::kTimedOut);
  EXPECT_EQ(decoded.error, record.error);
}

TEST(Journal, WriterLoaderRoundTripAndTruncatedTailTolerance) {
  const std::string path = testing::TempDir() + "ft_journal.jsonl";
  std::remove(path.c_str());
  JournalRecord record;
  record.scenario = "s";
  record.policy = "p";
  record.seed = 5;
  {
    JournalWriter writer(path, "ft", 99, /*append=*/false);
    record.replication = 0;
    writer.append(record);
    record.replication = 1;
    writer.append(record);
  }
  const JournalContents clean = load_journal(path, "ft", 99);
  ASSERT_EQ(clean.records.size(), 2u);
  EXPECT_FALSE(clean.truncated_tail);
  EXPECT_EQ(clean.records[1].replication, 1u);

  // A SIGKILL mid-append can only damage the final line: the loader
  // drops it and reports the truncation.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "{\"scenario\": \"s\", \"policy\": \"p\", \"replicat";
  }
  const JournalContents torn = load_journal(path, "ft", 99);
  EXPECT_EQ(torn.records.size(), 2u);
  EXPECT_TRUE(torn.truncated_tail);

  // Interior corruption is NOT tolerated.
  std::string body = slurp(path);
  body.insert(body.find('\n') + 1, "garbage line\n");
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << body;
  }
  EXPECT_THROW(load_journal(path, "ft", 99), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Journal, RefusesForeignHeaderAndMissingFile) {
  const std::string path = testing::TempDir() + "ft_journal_foreign.jsonl";
  std::remove(path.c_str());
  EXPECT_THROW(load_journal(path, "ft", 99), std::runtime_error);
  {
    JournalWriter writer(path, "other-campaign", 1, /*append=*/false);
  }
  EXPECT_THROW(load_journal(path, "ft", 99), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- resume ---

TEST(FaultTolerance, ResumeMatchesFreshRunByteForByte) {
  const CampaignSpec spec = mini_spec();
  const std::string journal_path = testing::TempDir() + "ft_resume.jsonl";

  // Uninterrupted reference run (journaled, any thread count).
  RunnerOptions fresh;
  fresh.threads = 2;
  fresh.checkpoint = journal_path;
  const CampaignResult reference = CampaignRunner(fresh).run(spec);
  const std::string want_json = render_json(reference);
  const std::string want_csv = render_csv(reference);

  // Emulate a SIGKILL partway through: keep the header plus a prefix of
  // the records, truncating the last kept line mid-byte for good
  // measure, then resume at several thread counts.
  const std::string full = slurp(journal_path);
  std::vector<std::size_t> line_starts = {0};
  for (std::size_t i = 0; i + 1 < full.size(); ++i) {
    if (full[i] == '\n') line_starts.push_back(i + 1);
  }
  ASSERT_GT(line_starts.size(), 7u);  // header + 12 records
  for (const std::size_t threads : {1u, 2u, 8u}) {
    // Keep header + 5 records, then half of the 6th record's line.
    const std::size_t cut = line_starts[6] + 20;
    {
      std::ofstream out(journal_path, std::ios::trunc | std::ios::binary);
      out << full.substr(0, cut);
    }
    RunnerOptions resume;
    resume.threads = threads;
    resume.checkpoint = journal_path;
    resume.resume = true;
    const CampaignResult resumed = CampaignRunner(resume).run(spec);
    EXPECT_EQ(render_json(resumed), want_json) << threads;
    EXPECT_EQ(render_csv(resumed), want_csv) << threads;
  }
  std::remove(journal_path.c_str());
}

TEST(FaultTolerance, ResumeKeepsJournaledFailuresWithoutRerun) {
  // A degraded run that is checkpointed and then fully resumed must
  // replay the failures from the journal (zero re-runs) and reproduce
  // the degraded artifact exactly.
  const CampaignSpec spec = mini_spec(
      R"(, "faults": {"throw_prob": 1.0, "policy": "sufferage-risky"})");
  const std::string journal_path = testing::TempDir() + "ft_degraded.jsonl";
  RunnerOptions fresh;
  fresh.threads = 2;
  fresh.checkpoint = journal_path;
  const CampaignResult reference = CampaignRunner(fresh).run(spec);
  ASSERT_FALSE(reference.complete());

  RunnerOptions resume;
  resume.threads = 2;
  resume.checkpoint = journal_path;
  resume.resume = true;
  std::size_t announced = 0;
  resume.on_cell = [&](const CellResult&, std::size_t, std::size_t) {
    ++announced;
  };
  const CampaignResult resumed = CampaignRunner(resume).run(spec);
  EXPECT_EQ(announced, 0u);  // every cell came from the journal
  EXPECT_EQ(render_json(resumed), render_json(reference));
  std::remove(journal_path.c_str());
}

TEST(FaultTolerance, ResumeRejectsStaleSeed) {
  CampaignSpec spec = mini_spec();
  const std::string journal_path = testing::TempDir() + "ft_stale.jsonl";
  RunnerOptions fresh;
  fresh.threads = 1;
  fresh.checkpoint = journal_path;
  CampaignRunner(fresh).run(spec);

  // Same campaign name and spec seed, but a record whose cell seed no
  // longer matches (here: forged journal) must be rejected, not merged.
  std::string body = slurp(journal_path);
  const std::size_t seed_at = body.find("\"seed\": \"0x");
  ASSERT_NE(seed_at, std::string::npos);
  body[seed_at + 11] = body[seed_at + 11] == 'f' ? '0' : 'f';
  {
    std::ofstream out(journal_path, std::ios::trunc | std::ios::binary);
    out << body;
  }
  RunnerOptions resume;
  resume.threads = 1;
  resume.checkpoint = journal_path;
  resume.resume = true;
  EXPECT_THROW(CampaignRunner(resume).run(spec), std::runtime_error);
  std::remove(journal_path.c_str());
}

TEST(FaultTolerance, ResumeRequiresCheckpoint) {
  RunnerOptions options;
  options.resume = true;
  EXPECT_THROW(CampaignRunner(options).run(mini_spec()),
               std::invalid_argument);
}

}  // namespace
}  // namespace gridsched::exp::campaign
