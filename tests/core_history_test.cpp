#include "core/history.hpp"

#include <gtest/gtest.h>

#include "core/ga_problem.hpp"

namespace gridsched::core {
namespace {

BatchSignature sig(double a, double e, double d) {
  return {{a}, {e}, {d}};
}

// ------------------------------------------------------- similarity_raw ---

TEST(SimilarityRaw, LiteralEquationTwo) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(similarity_raw(a, b), 1.0);
  // As printed the formula is unnormalised: it can go negative (DESIGN S3).
  const std::vector<double> c = {0.0, 4.0};
  const std::vector<double> d = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(similarity_raw(c, d), 1.0 - 8.0 / 4.0);
}

TEST(SimilarityRaw, RequiresEqualNonZeroLengths) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(similarity_raw(a, b), std::invalid_argument);
  EXPECT_THROW(similarity_raw({}, {}), std::invalid_argument);
}

TEST(SimilarityRaw, AllZeroVectorsAreIdentical) {
  const std::vector<double> z = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(similarity_raw(z, z), 1.0);
}

// ---------------------------------------------------- vector_similarity ---

TEST(VectorSimilarity, IdenticalVectorsScoreOne) {
  const std::vector<double> v = {3.0, 1.0, 4.0, 1.5};
  EXPECT_DOUBLE_EQ(vector_similarity(v, v), 1.0);
}

TEST(VectorSimilarity, EmptyCases) {
  EXPECT_DOUBLE_EQ(vector_similarity({}, {}), 1.0);
  const std::vector<double> v = {1.0};
  EXPECT_DOUBLE_EQ(vector_similarity(v, {}), 0.0);
  EXPECT_DOUBLE_EQ(vector_similarity({}, v), 0.0);
}

TEST(VectorSimilarity, KnownValue) {
  const std::vector<double> a = {0.0, 4.0};
  const std::vector<double> b = {4.0, 0.0};
  // mean |diff| = 4, max entry = 4 -> 1 - 1 = 0.
  EXPECT_DOUBLE_EQ(vector_similarity(a, b), 0.0);
}

TEST(VectorSimilarity, SymmetricAndBounded) {
  const std::vector<double> a = {1.0, 5.0, 2.0};
  const std::vector<double> b = {2.0, 4.0, 2.5};
  const double ab = vector_similarity(a, b);
  EXPECT_DOUBLE_EQ(ab, vector_similarity(b, a));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

TEST(VectorSimilarity, ScaleInvariant) {
  const std::vector<double> a = {1.0, 3.0};
  const std::vector<double> b = {2.0, 2.0};
  std::vector<double> a2 = {10.0, 30.0};
  std::vector<double> b2 = {20.0, 20.0};
  EXPECT_NEAR(vector_similarity(a, b), vector_similarity(a2, b2), 1e-12);
}

TEST(VectorSimilarity, ResamplesDifferentLengths) {
  const std::vector<double> a = {2.0, 2.0};
  const std::vector<double> b = {2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(vector_similarity(a, b), 1.0);
  const std::vector<double> c = {0.0, 2.0};       // resamples to 0,0,2,2
  const std::vector<double> d = {0.0, 0.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(vector_similarity(c, d), 1.0);
}

TEST(VectorSimilarity, DecreasesWithDistance) {
  const std::vector<double> base = {5.0, 5.0};
  const std::vector<double> near = {5.0, 6.0};
  const std::vector<double> far = {5.0, 10.0};
  EXPECT_GT(vector_similarity(base, near), vector_similarity(base, far));
}

// ------------------------------------------------------ batch signature ---

TEST(MakeSignature, ExtractsThreeParameterVectors) {
  sim::SchedulerContext context;
  context.now = 100.0;
  context.sites = {{0, 2, 1.0, 0.9}, {1, 1, 2.0, 0.5}};
  sim::NodeAvailability busy(2, 0.0);
  busy.reserve(2, 150.0, 0.0);  // both nodes busy until 150
  context.avail = {busy, sim::NodeAvailability(1, 0.0)};
  sim::BatchJob job;
  job.id = 0;
  job.work = 10.0;
  job.nodes = 1;
  job.demand = 0.75;
  context.jobs = {job};
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  const BatchSignature signature = make_signature(problem);

  ASSERT_EQ(signature.avail.size(), 2u);
  EXPECT_DOUBLE_EQ(signature.avail[0], 50.0);  // backlog beyond now
  EXPECT_DOUBLE_EQ(signature.avail[1], 0.0);   // idle site clamps to 0
  ASSERT_EQ(signature.etc.size(), 2u);
  EXPECT_DOUBLE_EQ(signature.etc[0], 10.0);
  EXPECT_DOUBLE_EQ(signature.etc[1], 5.0);
  ASSERT_EQ(signature.demands.size(), 1u);
  EXPECT_DOUBLE_EQ(signature.demands[0], 0.75);
}

TEST(SignatureSimilarity, AveragesComponents) {
  const BatchSignature a = sig(1.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(signature_similarity(a, a), 1.0);
  // One component identical, two maximally distant-ish.
  const BatchSignature b = {{1.0}, {100.0}, {100.0}};
  const double s = signature_similarity(a, b);
  EXPECT_NEAR(s, (1.0 + 0.01 + 0.01) / 3.0, 1e-9);
}

// -------------------------------------------------------- history table ---

TEST(HistoryTable, RejectsZeroCapacity) {
  EXPECT_THROW(HistoryTable(0, 0.8), std::invalid_argument);
}

TEST(HistoryTable, LookupOnEmptyTableMisses) {
  HistoryTable table(4, 0.8);
  EXPECT_TRUE(table.lookup(sig(1, 1, 1)).empty());
  EXPECT_EQ(table.misses(), 1u);
  EXPECT_EQ(table.hits(), 0u);
}

TEST(HistoryTable, FindsSimilarEntry) {
  HistoryTable table(4, 0.8);
  table.insert(sig(10, 10, 0.8), {1, 2});
  const auto matches = table.lookup(sig(10.1, 10.1, 0.8));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_GT(matches[0].similarity, 0.8);
  EXPECT_EQ(*matches[0].chromosome, (Chromosome{1, 2}));
  EXPECT_EQ(table.hits(), 1u);
}

TEST(HistoryTable, ThresholdFiltersDissimilar) {
  HistoryTable table(4, 0.8);
  table.insert(sig(1, 1, 1), {0});
  EXPECT_TRUE(table.lookup(sig(100, 100, 100)).empty());
}

TEST(HistoryTable, MatchesSortedBySimilarity) {
  HistoryTable table(4, 0.5);
  table.insert(sig(10, 10, 10), {0});
  table.insert(sig(12, 12, 12), {1});
  table.insert(sig(20, 20, 20), {2});
  const auto matches = table.lookup(sig(10, 10, 10), 8);
  ASSERT_GE(matches.size(), 2u);
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].similarity, matches[i].similarity);
  }
  EXPECT_EQ(*matches[0].chromosome, Chromosome{0});
}

TEST(HistoryTable, MaxMatchesCaps) {
  HistoryTable table(8, 0.5);
  for (unsigned i = 0; i < 6; ++i) {
    // Spaced out enough not to trip the near-duplicate replacement.
    table.insert(sig(10.0 + static_cast<double>(i), 10, 10), {i});
  }
  EXPECT_EQ(table.size(), 6u);
  EXPECT_EQ(table.lookup(sig(10, 10, 10), 3).size(), 3u);
}

TEST(HistoryTable, NearDuplicateReplacesInPlace) {
  HistoryTable table(4, 0.8);
  table.insert(sig(10, 10, 10), {0});
  table.insert(sig(10, 10, 10), {1});  // identical signature
  EXPECT_EQ(table.size(), 1u);
  const auto matches = table.lookup(sig(10, 10, 10));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(*matches[0].chromosome, Chromosome{1});
}

TEST(HistoryTable, EvictsLeastRecentlyUsed) {
  HistoryTable table(2, 0.9);
  table.insert(sig(10, 10, 10), {0});
  table.insert(sig(500, 500, 500), {1});
  // Touch the first entry so the second becomes LRU.
  EXPECT_FALSE(table.lookup(sig(10, 10, 10)).empty());
  table.insert(sig(9000, 9000, 9000), {2});  // forces an eviction
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_FALSE(table.lookup(sig(10, 10, 10)).empty());    // survived
  EXPECT_TRUE(table.lookup(sig(500, 500, 500)).empty());  // evicted
}

TEST(HistoryTable, CapacityNeverExceeded) {
  HistoryTable table(3, 0.99);
  for (unsigned i = 0; i < 20; ++i) {
    table.insert(sig(i * 100.0 + 1.0, i * 50.0 + 1.0, i + 1.0), {i});
    EXPECT_LE(table.size(), 3u);
  }
}

TEST(HistoryTable, AccessorsReportConfiguration) {
  const HistoryTable table(150, 0.8);
  EXPECT_EQ(table.capacity(), 150u);
  EXPECT_DOUBLE_EQ(table.threshold(), 0.8);
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace gridsched::core
