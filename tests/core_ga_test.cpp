#include "core/ga_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/operators.hpp"
#include "util/thread_pool.hpp"

namespace gridsched::core {
namespace {

/// A problem with a known optimum: 4 equal-speed single-node sites, 8 unit
/// jobs; spreading them 2-per-site is optimal (makespan = now + 2).
GaProblem spread_problem(std::size_t n_jobs = 8, std::size_t n_sites = 4) {
  sim::SchedulerContext context;
  context.now = 0.0;
  for (std::size_t s = 0; s < n_sites; ++s) {
    context.sites.push_back({static_cast<sim::SiteId>(s), 1u, 1.0, 1.0});
    context.avail.emplace_back(1u, 0.0);
  }
  for (std::size_t j = 0; j < n_jobs; ++j) {
    sim::BatchJob job;
    job.id = static_cast<sim::JobId>(j);
    job.work = 1.0;
    job.nodes = 1;
    job.demand = 0.5;
    context.jobs.push_back(job);
  }
  return build_problem(context, security::RiskPolicy::risky());
}

GaParams quick_params(std::size_t population = 40,
                      std::size_t generations = 30) {
  GaParams params;
  params.population = population;
  params.generations = generations;
  params.fitness = {0.0, 0.0};  // pure makespan: optimum known exactly
  return params;
}

TEST(Evolve, RejectsEmptyProblem) {
  GaProblem empty;
  util::Rng rng(1);
  EXPECT_THROW(evolve(empty, {}, quick_params(), rng), std::invalid_argument);
}

TEST(Evolve, RejectsZeroPopulation) {
  const auto problem = spread_problem();
  GaParams params = quick_params(0);
  util::Rng rng(1);
  EXPECT_THROW(evolve(problem, {}, params, rng), std::invalid_argument);
}

TEST(Evolve, RejectsInfeasibleSeed) {
  const auto problem = spread_problem(4, 2);
  util::Rng rng(1);
  EXPECT_THROW(evolve(problem, {{9, 9, 9, 9}}, quick_params(), rng),
               std::invalid_argument);
  EXPECT_THROW(evolve(problem, {{0, 1}}, quick_params(), rng),
               std::invalid_argument);  // wrong length
}

TEST(Evolve, FindsTheSpreadOptimum) {
  const auto problem = spread_problem();
  util::Rng rng(42);
  const GaResult result = evolve(problem, {}, quick_params(60, 60), rng);
  EXPECT_TRUE(is_feasible(problem, result.best));
  EXPECT_DOUBLE_EQ(result.best_fitness, 2.0);  // 8 unit jobs on 4 sites
}

TEST(Evolve, BestPerGenerationIsMonotoneNonIncreasing) {
  const auto problem = spread_problem(12, 3);
  util::Rng rng(7);
  const GaResult result = evolve(problem, {}, quick_params(30, 40), rng);
  ASSERT_EQ(result.best_per_generation.size(), 41u);
  for (std::size_t g = 1; g < result.best_per_generation.size(); ++g) {
    EXPECT_LE(result.best_per_generation[g], result.best_per_generation[g - 1]);
  }
  EXPECT_DOUBLE_EQ(result.best_per_generation.back(), result.best_fitness);
}

TEST(Evolve, ElitismPreservesAnOptimalSeed) {
  const auto problem = spread_problem();
  // Hand the GA an optimal chromosome; the answer must stay optimal.
  const Chromosome optimal = {0, 1, 2, 3, 0, 1, 2, 3};
  util::Rng rng(3);
  const GaResult result = evolve(problem, {optimal}, quick_params(20, 10), rng);
  EXPECT_DOUBLE_EQ(result.best_fitness, 2.0);
}

TEST(Evolve, ImprovesOverPureRandomInitialBest) {
  // Larger asymmetric instance where random assignment is clearly bad.
  const auto problem = spread_problem(24, 6);
  util::Rng seed_rng(100);
  double initial_best = 1e300;
  std::vector<Chromosome> initial;
  for (int i = 0; i < 50; ++i) {
    initial.push_back(random_chromosome(problem, seed_rng));
    initial_best = std::min(
        initial_best, decode_fitness(problem, initial.back(), {0.0, 0.0}));
  }
  util::Rng rng(101);
  const GaResult result =
      evolve(problem, std::move(initial), quick_params(50, 50), rng);
  EXPECT_LE(result.best_fitness, initial_best);
}

TEST(Evolve, DeterministicForIdenticalRngSeeds) {
  const auto problem = spread_problem(10, 3);
  auto run = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    return evolve(problem, {}, quick_params(30, 20), rng);
  };
  const GaResult a = run(5);
  const GaResult b = run(5);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_per_generation, b.best_per_generation);
}

TEST(Evolve, ParallelEvaluationMatchesSerial) {
  const auto problem = spread_problem(16, 4);
  GaParams params = quick_params(40, 15);
  params.parallel_threshold = 1;  // force the pool path
  util::ThreadPool pool(4);
  util::Rng rng_serial(9);
  util::Rng rng_parallel(9);
  const GaResult serial = evolve(problem, {}, params, rng_serial, nullptr);
  const GaResult parallel = evolve(problem, {}, params, rng_parallel, &pool);
  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_EQ(serial.best_per_generation, parallel.best_per_generation);
}

TEST(Evolve, TruncatesOversizedInitialPopulation) {
  const auto problem = spread_problem(4, 2);
  util::Rng seed_rng(1);
  std::vector<Chromosome> initial;
  for (int i = 0; i < 100; ++i) initial.push_back(random_chromosome(problem,
                                                                    seed_rng));
  GaParams params = quick_params(10, 5);
  util::Rng rng(2);
  const GaResult result = evolve(problem, std::move(initial), params, rng);
  EXPECT_TRUE(is_feasible(problem, result.best));
}

TEST(Evolve, SingleJobProblem) {
  const auto problem = spread_problem(1, 3);
  util::Rng rng(4);
  const GaResult result = evolve(problem, {}, quick_params(10, 5), rng);
  ASSERT_EQ(result.best.size(), 1u);
  EXPECT_DOUBLE_EQ(result.best_fitness, 1.0);
}

TEST(Evolve, HonoursEliteCountZero) {
  const auto problem = spread_problem(8, 4);
  GaParams params = quick_params(30, 30);
  params.elite_count = 0;
  util::Rng rng(6);
  const GaResult result = evolve(problem, {}, params, rng);
  // Without elitism the *population* may regress, but the reported best is
  // tracked globally and must still be monotone.
  for (std::size_t g = 1; g < result.best_per_generation.size(); ++g) {
    EXPECT_LE(result.best_per_generation[g], result.best_per_generation[g - 1]);
  }
}

}  // namespace
}  // namespace gridsched::core
