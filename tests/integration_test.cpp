// Whole-pipeline integration tests: full simulations through the experiment
// harness, checking the paper's structural invariants on every algorithm.
#include <gtest/gtest.h>

#include <algorithm>

#include "gridsched.hpp"

namespace gridsched {
namespace {

core::StgaConfig tiny_stga() {
  core::StgaConfig config;
  config.ga.population = 24;
  config.ga.generations = 8;
  return config;
}

exp::Scenario tiny_psa(std::size_t n_jobs = 80) {
  exp::Scenario scenario = exp::psa_scenario(n_jobs);
  scenario.training_jobs = 30;
  return scenario;
}

exp::Scenario tiny_nas(std::size_t n_jobs = 150) {
  exp::Scenario scenario = exp::nas_scenario(n_jobs);
  scenario.training_jobs = 30;
  return scenario;
}

void check_invariants(const metrics::RunMetrics& run, std::size_t n_jobs,
                      const std::string& label) {
  EXPECT_EQ(run.n_jobs, n_jobs) << label;
  EXPECT_GT(run.makespan, 0.0) << label;
  EXPECT_GT(run.avg_response, 0.0) << label;
  EXPECT_GE(run.slowdown_ratio, 1.0) << label;  // response >= execution
  EXPECT_LE(run.n_fail, run.n_risk) << label;
  EXPECT_GE(run.total_attempts, run.n_jobs) << label;
  // Fail-stop: at most one failure per job.
  EXPECT_LE(run.total_attempts, run.n_jobs + run.n_fail) << label;
  for (const double util : run.site_utilization) {
    EXPECT_GE(util, 0.0) << label;
    EXPECT_LE(util, 1.0) << label;
  }
}

TEST(Integration, PaperRosterHasSevenAlgorithmsInOrder) {
  const auto roster = exp::paper_roster();
  ASSERT_EQ(roster.size(), 7u);
  EXPECT_EQ(roster[0].name, "Min-Min secure");
  EXPECT_EQ(roster[1].name, "Min-Min f-risky");
  EXPECT_EQ(roster[2].name, "Min-Min risky");
  EXPECT_EQ(roster[3].name, "Sufferage secure");
  EXPECT_EQ(roster[4].name, "Sufferage f-risky");
  EXPECT_EQ(roster[5].name, "Sufferage risky");
  EXPECT_EQ(roster[6].name, "STGA");
  EXPECT_TRUE(roster[6].wants_training);
  EXPECT_FALSE(roster[0].wants_training);
}

TEST(Integration, ScalingRosterIsTheFigTenTrio) {
  const auto roster = exp::scaling_roster();
  ASSERT_EQ(roster.size(), 3u);
  EXPECT_EQ(roster[0].name, "Min-Min f-risky");
  EXPECT_EQ(roster[1].name, "Sufferage f-risky");
  EXPECT_EQ(roster[2].name, "STGA");
}

TEST(Integration, AllAlgorithmsCompleteTinyPsa) {
  const auto scenario = tiny_psa();
  for (const auto& spec : exp::paper_roster(0.5, tiny_stga())) {
    const auto run = exp::run_once(scenario, spec, 4242);
    check_invariants(run, 80, spec.name);
  }
}

TEST(Integration, AllAlgorithmsCompleteTinyNas) {
  const auto scenario = tiny_nas();
  for (const auto& spec : exp::paper_roster(0.5, tiny_stga())) {
    const auto run = exp::run_once(scenario, spec, 999);
    check_invariants(run, 150, spec.name);
  }
}

TEST(Integration, SecureModeNeverRisksOrFails) {
  const auto scenario = tiny_psa();
  for (const auto& spec :
       {exp::heuristic_spec("min-min", security::RiskPolicy::secure()),
        exp::heuristic_spec("sufferage", security::RiskPolicy::secure())}) {
    const auto run = exp::run_once(scenario, spec, 7);
    EXPECT_EQ(run.n_risk, 0u) << spec.name;
    EXPECT_EQ(run.n_fail, 0u) << spec.name;
  }
}

TEST(Integration, RiskyModesDoTakeRisk) {
  const auto scenario = tiny_psa(120);
  const auto spec =
      exp::heuristic_spec("min-min", security::RiskPolicy::risky());
  const auto run = exp::run_once(scenario, spec, 11);
  EXPECT_GT(run.n_risk, 0u);
}

TEST(Integration, RunOnceIsDeterministicPerSeed) {
  const auto scenario = tiny_psa();
  const auto spec = exp::stga_spec(tiny_stga());
  const auto a = exp::run_once(scenario, spec, 321);
  const auto b = exp::run_once(scenario, spec, 321);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.avg_response, b.avg_response);
  EXPECT_EQ(a.n_risk, b.n_risk);
  EXPECT_EQ(a.n_fail, b.n_fail);
}

TEST(Integration, DifferentSeedsGiveDifferentWorkloads) {
  const auto scenario = tiny_psa();
  const auto spec =
      exp::heuristic_spec("min-min", security::RiskPolicy::f_risky(0.5));
  const auto a = exp::run_once(scenario, spec, 1);
  const auto b = exp::run_once(scenario, spec, 2);
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(Integration, ReplicatedRunsMatchSequentialAndParallel) {
  const auto scenario = tiny_psa(50);
  const auto spec =
      exp::heuristic_spec("sufferage", security::RiskPolicy::f_risky(0.5));
  util::ThreadPool pool(4);
  const auto serial = exp::run_replicated(scenario, spec, 4, 77, nullptr);
  const auto parallel = exp::run_replicated(scenario, spec, 4, 77, &pool);
  ASSERT_EQ(serial.runs.size(), 4u);
  ASSERT_EQ(parallel.runs.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(serial.runs[r].makespan, parallel.runs[r].makespan);
    EXPECT_DOUBLE_EQ(serial.runs[r].avg_response,
                     parallel.runs[r].avg_response);
  }
  EXPECT_EQ(serial.aggregate.runs(), 4u);
  EXPECT_NEAR(serial.aggregate.makespan().mean(),
              parallel.aggregate.makespan().mean(), 1e-9);
}

TEST(Integration, TrainingWarmsTheStgaTable) {
  // Run the STGA training phase by hand and check the table fills.
  const auto scenario = tiny_psa(60);
  const auto workload = exp::make_workload(scenario, 5);
  auto stga = core::make_stga(tiny_stga());
  const auto training =
      exp::make_training_workload(scenario, workload, 40, 6);
  EXPECT_EQ(training.sites.size(), workload.sites.size());
  sched::MinMinScheduler heuristic(security::RiskPolicy::risky());
  core::RecordingScheduler recorder(heuristic, *stga);
  sim::Engine engine(training.sites, training.jobs, scenario.engine);
  engine.run(recorder);
  EXPECT_GT(stga->history().size(), 0u);
}

TEST(Integration, SecureSlowerThanRiskyOnCongestedNas) {
  // The paper's headline ordering at small scale, averaged over seeds to
  // damp noise: secure-mode response time is materially worse.
  const auto scenario = tiny_nas(300);
  const auto secure =
      exp::run_replicated(scenario,
                          exp::heuristic_spec("min-min",
                                              security::RiskPolicy::secure()),
                          3, 1234);
  const auto risky =
      exp::run_replicated(scenario,
                          exp::heuristic_spec("min-min",
                                              security::RiskPolicy::risky()),
                          3, 1234);
  EXPECT_GT(secure.aggregate.avg_response().mean(),
            risky.aggregate.avg_response().mean());
}

TEST(Integration, FRiskyInterpolatesRiskCounts) {
  const auto scenario = tiny_psa(150);
  const auto f0 = exp::run_once(
      scenario, exp::heuristic_spec("min-min", security::RiskPolicy::secure()),
      55);
  const auto f_half = exp::run_once(
      scenario,
      exp::heuristic_spec("min-min", security::RiskPolicy::f_risky(0.5)), 55);
  const auto f1 = exp::run_once(
      scenario, exp::heuristic_spec("min-min", security::RiskPolicy::risky()),
      55);
  EXPECT_EQ(f0.n_risk, 0u);
  EXPECT_GT(f_half.n_risk, 0u);
  EXPECT_GE(f1.n_risk, f_half.n_risk / 2);  // loose: same order of magnitude
}

TEST(Integration, StgaSchedulerSecondsAreRecorded) {
  const auto scenario = tiny_psa(60);
  const auto run = exp::run_once(scenario, exp::stga_spec(tiny_stga()), 13);
  EXPECT_GT(run.scheduler_seconds, 0.0);
  EXPECT_GT(run.batch_invocations, 0u);
}

TEST(Integration, ClassicGaAlsoCompletes) {
  const auto scenario = tiny_psa(60);
  const auto run = exp::run_once(scenario, exp::classic_ga_spec(tiny_stga()),
                                 17);
  check_invariants(run, 60, "GA");
}

}  // namespace
}  // namespace gridsched
