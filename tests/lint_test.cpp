// gridsched_lint rule-engine tests: per rule, one violating fixture, one
// clean fixture, and one suppressed fixture, asserting rule id, file:line
// and the run_lint exit code. Fixtures are linted under fake repo paths,
// which is exactly how the path-scoping contract is meant to be driven.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "rules.hpp"

namespace gridsched::lint {
namespace {

std::vector<Diagnostic> lint_one(const std::string& path,
                                 const std::string& content) {
  return run_rules({{path, content}});
}

bool has(const std::vector<Diagnostic>& diags, const std::string& rule,
         const std::string& file, std::size_t line) {
  for (const Diagnostic& d : diags) {
    if (d.rule == rule && d.file == file && d.line == line) return true;
  }
  return false;
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       const std::string& rule) {
  std::size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// ----------------------------------------------------------------- lexer ---

TEST(LintLexer, SeparatesCodeCommentsAndStrings) {
  const TokenStream ts = tokenize(
      "int x = 1; // trailing new\n"
      "/* block\n comment */ const char* s = \"vector new\";\n");
  for (const Token& t : ts.tokens) {
    EXPECT_NE(t.text, "new") << "comment/string text leaked into code";
  }
  ASSERT_EQ(ts.comments.size(), 2u);
  EXPECT_EQ(ts.comments[0].line, 1u);
  EXPECT_EQ(ts.comments[1].line, 2u);
  bool saw_string = false;
  for (const Token& t : ts.tokens) {
    if (t.kind == TokenKind::kString) {
      saw_string = true;
      EXPECT_EQ(t.text, "vector new");
      EXPECT_EQ(t.line, 3u);
    }
  }
  EXPECT_TRUE(saw_string);
}

TEST(LintLexer, RawStringsAndPreproc) {
  const TokenStream ts = tokenize(
      "#include \"core/ga_problem.hpp\"\n"
      "auto s = R\"(stable_sort // not a comment)\";\n");
  ASSERT_FALSE(ts.tokens.empty());
  EXPECT_EQ(ts.tokens[0].kind, TokenKind::kPreproc);
  EXPECT_NE(ts.tokens[0].text.find("ga_problem.hpp"), std::string::npos);
  EXPECT_TRUE(ts.comments.empty());
  bool saw_raw = false;
  for (const Token& t : ts.tokens) {
    if (t.kind == TokenKind::kString) {
      saw_raw = true;
      EXPECT_EQ(t.text, "stable_sort // not a comment");
    }
  }
  EXPECT_TRUE(saw_raw);
}

// ------------------------------------------------------- GS-R00 (hygiene) --

TEST(LintR00, SuppressionWithoutReasonIsFlagged) {
  const auto diags = lint_one("src/sched/foo.cpp",
                              "// NOLINTNEXTLINE(GS-R03)\n"
                              "double x = work / speed;\n");
  EXPECT_TRUE(has(diags, "GS-R00", "src/sched/foo.cpp", 1));
  // ... and the reasonless suppression does not silence the finding.
  EXPECT_TRUE(has(diags, "GS-R03", "src/sched/foo.cpp", 2));
}

TEST(LintR00, UnmatchedBeginAndEndAreFlagged) {
  const auto open = lint_one("src/a.cpp", "// NOLINTBEGIN(GS-R05): why\n");
  EXPECT_TRUE(has(open, "GS-R00", "src/a.cpp", 1));
  const auto stray = lint_one("src/a.cpp", "// NOLINTEND(GS-R05)\n");
  EXPECT_TRUE(has(stray, "GS-R00", "src/a.cpp", 1));
}

TEST(LintR00, ClangTidySuppressionsAreIgnored) {
  const auto diags =
      lint_one("src/a.cpp",
               "int* p = new int;  // NOLINT(bugprone-foo)\n"
               "// NOLINT\n");
  EXPECT_TRUE(diags.empty());
}

// ------------------------------------------------- GS-R01 (decode alloc) ---

constexpr const char* kFastpathViolation =
    "// GS-FASTPATH-BEGIN: region\n"
    "void hot() {\n"
    "  std::stable_sort(a.begin(), a.end());\n"
    "}\n"
    "// GS-FASTPATH-END\n";

TEST(LintR01, AllocatingCallInRegionFires) {
  const auto diags = lint_one("src/core/other.cpp", kFastpathViolation);
  EXPECT_TRUE(has(diags, "GS-R01", "src/core/other.cpp", 3));
}

TEST(LintR01, VectorConstructionInRegionFires) {
  const auto diags = lint_one("src/core/other.cpp",
                              "// GS-FASTPATH-BEGIN: region\n"
                              "std::vector<double> tmp(n);\n"
                              "// GS-FASTPATH-END\n");
  EXPECT_TRUE(has(diags, "GS-R01", "src/core/other.cpp", 2));
}

TEST(LintR01, CleanRegionAndCodeOutsideRegionPass) {
  const auto diags = lint_one("src/core/other.cpp",
                              "std::vector<double> fine;\n"
                              "// GS-FASTPATH-BEGIN: region\n"
                              "double y = x + 1.0;\n"
                              "// GS-FASTPATH-END\n"
                              "auto* p = new double[4];\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintR01, SuppressedViolationPasses) {
  const auto diags = lint_one("src/core/other.cpp",
                              "// GS-FASTPATH-BEGIN: region\n"
                              "// NOLINTNEXTLINE(GS-R01): bind-time only\n"
                              "std::vector<double> tmp(n);\n"
                              "// GS-FASTPATH-END\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintR01, GaProblemMustCarryMarkers) {
  const auto diags = lint_one("src/core/ga_problem.cpp", "void f() {}\n");
  EXPECT_TRUE(has(diags, "GS-R01", "src/core/ga_problem.cpp", 1));
}

TEST(LintR01, UnmatchedMarkersAreFlagged) {
  const auto diags =
      lint_one("src/core/other.cpp", "// GS-FASTPATH-BEGIN: region\n");
  EXPECT_EQ(count_rule(diags, "GS-R01"), 1u);
}

// ---------------------------------------------- GS-R02 (artifact clocks) ---

TEST(LintR02, ClockInArtifactRendererFires) {
  const auto diags =
      lint_one("src/exp/campaign/campaign_sinks.cpp",
               "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(has(diags, "GS-R02", "src/exp/campaign/campaign_sinks.cpp",
                  1));
}

TEST(LintR02, TimeseriesAndBenchgateAreInScope) {
  // The telemetry exporters and the bench regression gate are byte-stable
  // surfaces too: both joined the GS-R02 path scope with this subsystem.
  EXPECT_TRUE(has(lint_one("src/obs/timeseries.cpp",
                           "auto t = std::chrono::system_clock::now();\n"),
                  "GS-R02", "src/obs/timeseries.cpp", 1));
  EXPECT_TRUE(has(lint_one("tools/benchgate/main.cpp",
                           "double wall = clock();\n"),
                  "GS-R02", "tools/benchgate/main.cpp", 1));
}

TEST(LintR02, StreamingAggregationIsInScope) {
  // The retirement accumulator and the job-stream cursors feed the same
  // byte-stable sums the artifact renderers serialize; they joined the
  // GS-R02 path scope with the streaming kernel (PR 10).
  EXPECT_TRUE(has(lint_one("src/metrics/retirement.hpp",
                           "auto t = std::chrono::steady_clock::now();\n"),
                  "GS-R02", "src/metrics/retirement.hpp", 1));
  EXPECT_TRUE(has(lint_one("src/workload/stream.hpp",
                           "double wall = time(nullptr);\n"),
                  "GS-R02", "src/workload/stream.hpp", 1));
  EXPECT_TRUE(has(lint_one("src/workload/synth/stream_gen.cpp",
                           "auto t = std::chrono::system_clock::now();\n"),
                  "GS-R02", "src/workload/synth/stream_gen.cpp", 1));
  // Clean streaming-aggregation code stays clean.
  EXPECT_EQ(count_rule(lint_one("src/metrics/retirement.hpp",
                                "void add(const Job& job) { ++jobs_; }\n"),
                       "GS-R02"),
            0u);
}

TEST(LintR05, StreamKernelEntropyFires) {
  // The streaming slot table / admission path must draw nothing ambient:
  // streamed runs replay the retained path's exact draws.
  EXPECT_TRUE(has(lint_one("src/sim/kernel.cpp",
                           "std::random_device rd;\n"),
                  "GS-R05", "src/sim/kernel.cpp", 1));
  EXPECT_TRUE(has(lint_one("src/workload/synth/stream_gen.cpp",
                           "int r = rand();\n"),
                  "GS-R05", "src/workload/synth/stream_gen.cpp", 1));
  EXPECT_EQ(count_rule(lint_one("src/sim/kernel.cpp",
                                "kernel.retire_completed();\n"),
                       "GS-R05"),
            0u);
}

TEST(LintR02, ClockOutsideScopeAndSuppressedPass) {
  EXPECT_EQ(count_rule(lint_one("src/exp/runner.cpp",
                                "auto t = steady_clock::now();\n"),
                       "GS-R02"),
            0u);
  const auto diags =
      lint_one("src/obs/trace_event.cpp",
               "// NOLINTBEGIN(GS-R02): profile sidecar only\n"
               "double wall = time(nullptr);\n"
               "// NOLINTEND(GS-R02)\n");
  EXPECT_EQ(count_rule(diags, "GS-R02"), 0u);
}

// --------------------------------------------------- GS-R03 (work/speed) ---

TEST(LintR03, WorkOverSpeedInSchedulerFires) {
  const auto diags =
      lint_one("src/sched/my_heuristic.cpp",
               "double t = jobs[j].work / sites[s].speed;\n");
  EXPECT_TRUE(has(diags, "GS-R03", "src/sched/my_heuristic.cpp", 1));
}

TEST(LintR03, ContextResolutionAndOtherLayersPass) {
  EXPECT_TRUE(lint_one("src/sched/my_heuristic.cpp",
                       "double t = context.exec_time(job, s);\n"
                       "double u = work / 2.0; double speed = 1.0;\n")
                  .empty());
  EXPECT_TRUE(lint_one("src/sim/exec_model.cpp",
                       "double t = job.work / site.speed;\n")
                  .empty());
}

TEST(LintR03, SuppressedSanctionedFallbackPasses) {
  const auto diags =
      lint_one("src/sched/etc.cpp",
               "// NOLINTNEXTLINE(GS-R03): sanctioned fallback\n"
               "double t = jobs[j].work / sites[s].speed;\n");
  EXPECT_TRUE(diags.empty());
}

// ------------------------------------------- GS-R04 (SplitMix64/SeedMix) ---

TEST(LintR04, SplitMix64OutsidePinnedFilesFires) {
  const auto diags = lint_one("src/core/ga_engine.cpp",
                              "util::SplitMix64 mix(seed);\n");
  EXPECT_TRUE(has(diags, "GS-R04", "src/core/ga_engine.cpp", 1));
}

TEST(LintR04, PinnedFilesAndTestsPass) {
  EXPECT_TRUE(lint_one("src/util/rng.cpp", "SplitMix64 mix(seed);\n")
                  .empty());
  EXPECT_TRUE(
      lint_one("src/sim/process/security_failure_process.cpp",
               "util::SplitMix64 draw(s);\n")
          .empty());
  EXPECT_TRUE(lint_one("tests/util_rng_test.cpp",
                       "SplitMix64 a(1); a.mix(\"dup\"); a.mix(\"dup\");\n")
                  .empty());
}

TEST(LintR04, CrossFileDuplicateDomainFires) {
  const auto diags = run_rules(
      {{"src/a.cpp", "auto r = util::SeedMix(s).mix(\"fault\").rng();\n"},
       {"src/b.cpp", "auto r = util::SeedMix(s).mix(\"fault\").rng();\n"}});
  EXPECT_EQ(count_rule(diags, "GS-R04"), 1u);
  EXPECT_TRUE(has(diags, "GS-R04", "src/b.cpp", 1));
}

TEST(LintR04, SameFileDomainReuseIsDeliberatelyAllowed) {
  const auto diags =
      lint_one("src/a.cpp",
               "auto r1 = util::SeedMix(s).mix(\"ga\").rng();\n"
               "auto r2 = util::SeedMix(s).mix(\"ga\").rng();\n");
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------- GS-R05 (nondeterminism) ----

TEST(LintR05, WallClockNowInSimulationCodeFires) {
  const auto diags =
      lint_one("src/sim/engine.cpp",
               "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(has(diags, "GS-R05", "src/sim/engine.cpp", 1));
}

TEST(LintR05, RandAndRandomDeviceFire) {
  const auto diags = lint_one("src/exp/runner.cpp",
                              "int a = rand();\n"
                              "std::random_device rd;\n");
  EXPECT_EQ(count_rule(diags, "GS-R05"), 2u);
}

TEST(LintR05, BenchgateIsInScopeOtherToolsAreNot) {
  // A regression gate that consulted the clock could flip verdicts on
  // rerun, so tools/benchgate/ is scanned like simulation code; the other
  // tools (the linter itself) stay out of scope.
  EXPECT_TRUE(has(lint_one("tools/benchgate/main.cpp",
                           "auto t = std::chrono::steady_clock::now();\n"),
                  "GS-R05", "tools/benchgate/main.cpp", 1));
  EXPECT_EQ(count_rule(lint_one("tools/lint/main.cpp",
                                "auto t = steady_clock::now();\n"),
                       "GS-R05"),
            0u);
}

TEST(LintR05, AllowlistMemberNowAndSuppressionPass) {
  EXPECT_TRUE(lint_one("src/obs/proc_stats.cpp",
                       "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
  EXPECT_TRUE(lint_one("src/util/cancel.hpp",
                       "#pragma once\n"
                       "auto t = Clock::now();\n")
                  .empty());
  // `problem.now` and a member call `x.now()` are not the chrono source.
  EXPECT_TRUE(lint_one("src/core/ga_problem.cpp",
                       "// GS-FASTPATH-BEGIN: r\n// GS-FASTPATH-END\n"
                       "double t = problem.now; double u = clock_.now();\n")
                  .empty());
  EXPECT_TRUE(lint_one("src/sim/engine.cpp",
                       "// NOLINTNEXTLINE(GS-R05): profile sidecar only\n"
                       "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

// ------------------------------------------------ GS-R06 (event routing) ---

const char* kEventQueueFixture =
    "#pragma once\n"
    "enum class EventKind : std::uint8_t {\n"
    "  kJobArrival,\n"
    "  kJobEnd,\n"
    "  kKindCount_,\n"
    "};\n";

std::vector<SourceFile> routing_fixture(const std::string& process_body) {
  return {{"src/sim/event_queue.hpp", kEventQueueFixture},
          {"src/sim/process/p.cpp", process_body}};
}

TEST(LintR06, ExclusiveTotalRoutingPasses) {
  const auto diags = run_rules(routing_fixture(
      "std::span<const EventKind> P::owned_kinds() const noexcept {\n"
      "  static constexpr EventKind k[] = {EventKind::kJobArrival,\n"
      "                                    EventKind::kJobEnd};\n"
      "  return k;\n"
      "}\n"));
  EXPECT_EQ(count_rule(diags, "GS-R06"), 0u);
}

TEST(LintR06, UnownedKindFiresAtTheEnum) {
  const auto diags = run_rules(routing_fixture(
      "std::span<const EventKind> P::owned_kinds() const noexcept {\n"
      "  static constexpr EventKind k[] = {EventKind::kJobArrival};\n"
      "  return k;\n"
      "}\n"));
  // kJobEnd (line 4 of the enum header) has no owner.
  EXPECT_TRUE(has(diags, "GS-R06", "src/sim/event_queue.hpp", 4));
}

TEST(LintR06, DoublyOwnedKindFiresAtBothOwners) {
  const auto diags = run_rules(
      {{"src/sim/event_queue.hpp", kEventQueueFixture},
       {"src/sim/process/p.cpp",
        "std::span<const EventKind> P::owned_kinds() const noexcept {\n"
        "  static constexpr EventKind k[] = {EventKind::kJobArrival,\n"
        "                                    EventKind::kJobEnd};\n"
        "  return k;\n"
        "}\n"},
       {"src/sim/process/q.cpp",
        "std::span<const EventKind> Q::owned_kinds() const noexcept {\n"
        "  static constexpr EventKind k[] = {EventKind::kJobEnd};\n"
        "  return k;\n"
        "}\n"}});
  EXPECT_EQ(count_rule(diags, "GS-R06"), 2u);
  EXPECT_TRUE(has(diags, "GS-R06", "src/sim/process/p.cpp", 3));
  EXPECT_TRUE(has(diags, "GS-R06", "src/sim/process/q.cpp", 2));
}

TEST(LintR06, DeclarationsWithoutBodiesAreIgnored) {
  const auto diags = run_rules(routing_fixture(
      "std::span<const EventKind> owned_kinds() const noexcept override;\n"
      "std::span<const EventKind> P::owned_kinds() const noexcept {\n"
      "  static constexpr EventKind k[] = {EventKind::kJobArrival,\n"
      "                                    EventKind::kJobEnd};\n"
      "  return k;\n"
      "}\n"));
  EXPECT_EQ(count_rule(diags, "GS-R06"), 0u);
}

// ------------------------------------------------ GS-R07 (strict parse) ----

TEST(LintR07, ObjectReadWithoutCheckKeysFires) {
  const auto diags =
      lint_one("src/exp/loader.cpp",
               "#include \"util/json.hpp\"\n"
               "int parse(const Value& doc) {\n"
               "  return doc.at(\"jobs\").as_int();\n"
               "}\n");
  EXPECT_TRUE(has(diags, "GS-R07", "src/exp/loader.cpp", 3));
}

TEST(LintR07, CheckedParserAndNonJsonFilesPass) {
  EXPECT_TRUE(lint_one("src/exp/loader.cpp",
                       "#include \"util/json.hpp\"\n"
                       "int parse(const Value& doc) {\n"
                       "  util::json::check_keys(doc, {\"jobs\"}, \"x\");\n"
                       "  return doc.at(\"jobs\").as_int();\n"
                       "}\n")
                  .empty());
  // Without the json include the .at(\"...\") idiom is something else.
  EXPECT_TRUE(lint_one("src/exp/loader.cpp",
                       "int get(const Map& m) { return m.at(\"key\"); }\n")
                  .empty());
}

TEST(LintR07, SuppressedReaderPasses) {
  const auto diags =
      lint_one("src/exp/loader.cpp",
               "#include \"util/json.hpp\"\n"
               "int parse(const Value& doc) {\n"
               "  // NOLINTNEXTLINE(GS-R07): header checked by caller\n"
               "  return doc.at(\"jobs\").as_int();\n"
               "}\n");
  EXPECT_TRUE(diags.empty());
}

// --------------------------------------------- GS-R08 (header hygiene) -----

TEST(LintR08, MissingPragmaOnceFires) {
  const auto diags =
      lint_one("src/util/widget.hpp", "#include <vector>\nint x;\n");
  EXPECT_TRUE(has(diags, "GS-R08", "src/util/widget.hpp", 1));
}

TEST(LintR08, OwnHeaderMustComeFirst) {
  const auto diags = run_rules(
      {{"src/util/widget.hpp", "#pragma once\nstruct W {};\n"},
       {"src/util/widget.cpp",
        "#include <vector>\n#include \"util/widget.hpp\"\n"}});
  EXPECT_TRUE(has(diags, "GS-R08", "src/util/widget.cpp", 1));
}

TEST(LintR08, CleanPairAndHeaderlessSourcePass) {
  EXPECT_TRUE(run_rules({{"src/util/widget.hpp",
                          "#pragma once\nstruct W {};\n"},
                         {"src/util/widget.cpp",
                          "#include \"util/widget.hpp\"\n"
                          "#include <vector>\n"}})
                  .empty());
  EXPECT_TRUE(lint_one("src/sched/min_min.cpp",
                       "#include \"sched/heuristics.hpp\"\n")
                  .empty());
  // tests/ headers are outside the hygiene scope.
  EXPECT_TRUE(lint_one("tests/helper.hpp", "int x;\n").empty());
}

// ----------------------------------------------- driver (run_lint) ---------

TEST(LintDriver, ExitCodeAndDiagnosticFormat) {
  std::ostringstream out;
  const int code = run_lint({{"src/sched/foo.cpp",
                              "double t = job.work / site.speed;\n"}},
                            out);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.str().find("src/sched/foo.cpp:1: [GS-R03]"),
            std::string::npos);

  std::ostringstream clean;
  EXPECT_EQ(run_lint({{"src/sched/foo.cpp", "int x = 0;\n"}}, clean), 0);
  EXPECT_NE(clean.str().find("clean"), std::string::npos);
}

TEST(LintDriver, RuleFilterRestrictsExitCode) {
  const std::vector<SourceFile> files = {
      {"src/sched/foo.cpp", "double t = job.work / site.speed;\n"}};
  std::ostringstream out;
  EXPECT_EQ(run_lint(files, out, "GS-R05"), 0);
  EXPECT_EQ(run_lint(files, out, "GS-R03"), 1);
}

}  // namespace
}  // namespace gridsched::lint
