// End-to-end smoke: a tiny PSA run with every paper algorithm finishes and
// satisfies the global invariants.
#include <gtest/gtest.h>

#include "gridsched.hpp"

namespace gridsched {
namespace {

TEST(Smoke, TinyPsaRunAllAlgorithms) {
  exp::Scenario scenario = exp::psa_scenario(60);
  scenario.training_jobs = 40;
  core::StgaConfig stga;
  stga.ga.population = 30;
  stga.ga.generations = 10;
  for (const exp::AlgorithmSpec& spec : exp::paper_roster(0.5, stga)) {
    const metrics::RunMetrics run = exp::run_once(scenario, spec, 1234);
    EXPECT_EQ(run.n_jobs, 60u) << spec.name;
    EXPECT_GT(run.makespan, 0.0) << spec.name;
    EXPECT_LE(run.n_fail, run.n_risk) << spec.name;
    EXPECT_GE(run.slowdown_ratio, 1.0) << spec.name;
  }
}

}  // namespace
}  // namespace gridsched
