#include "exp/roster.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_registry.hpp"

#include <gtest/gtest.h>

#include "workload/stats.hpp"

namespace gridsched::exp {
namespace {

TEST(Scenario, NasDefaultsMatchPaperTableOne) {
  const Scenario scenario = nas_scenario();
  EXPECT_EQ(scenario.kind, ScenarioKind::kNas);
  EXPECT_EQ(scenario.nas.n_jobs, 16000u);
  EXPECT_NEAR(scenario.nas.horizon, 46.0 * 86400.0, 1.0);
  EXPECT_DOUBLE_EQ(scenario.engine.batch_interval, 4000.0);
  EXPECT_EQ(scenario.training_jobs, 500u);
}

TEST(Scenario, NasScalesHorizonWithJobCount) {
  const Scenario half = nas_scenario(8000);
  EXPECT_NEAR(half.nas.horizon, 23.0 * 86400.0, 1.0);
}

TEST(Scenario, PsaDefaults) {
  const Scenario scenario = psa_scenario(1234);
  EXPECT_EQ(scenario.kind, ScenarioKind::kPsa);
  EXPECT_EQ(scenario.psa.n_jobs, 1234u);
  EXPECT_DOUBLE_EQ(scenario.engine.batch_interval, 2000.0);
}

TEST(Scenario, MakeWorkloadDispatchesOnKind) {
  const workload::Workload nas = make_workload(nas_scenario(100), 1);
  EXPECT_EQ(nas.name, "NAS");
  EXPECT_EQ(nas.sites.size(), 12u);
  const workload::Workload psa = make_workload(psa_scenario(100), 1);
  EXPECT_EQ(psa.name, "PSA");
  EXPECT_EQ(psa.sites.size(), 20u);
}

TEST(Scenario, TrainingWorkloadReusesMainSites) {
  const Scenario scenario = psa_scenario(100);
  const workload::Workload main = make_workload(scenario, 7);
  const workload::Workload training =
      make_training_workload(scenario, main, 40, 8);
  ASSERT_EQ(training.sites.size(), main.sites.size());
  for (std::size_t s = 0; s < main.sites.size(); ++s) {
    EXPECT_DOUBLE_EQ(training.sites[s].security, main.sites[s].security);
    EXPECT_DOUBLE_EQ(training.sites[s].speed, main.sites[s].speed);
  }
  EXPECT_EQ(training.jobs.size(), 40u);
  EXPECT_NE(training.name.find("training"), std::string::npos);
}

TEST(Scenario, SynthTrainingWorkloadDropsTheTrainingEtc) {
  // The training workload reuses the main run's sites, which invalidates
  // the raw ETC generated against the training grid: it must fall back to
  // the rank-1 model rather than execute a matrix fitted to sites the
  // jobs no longer run on.
  const Scenario scenario = make_scenario("synth-inconsistent-hihi", 60);
  const workload::Workload main = make_workload(scenario, 7);
  ASSERT_TRUE(main.exec.has_matrix());
  const workload::Workload training =
      make_training_workload(scenario, main, 20, 8);
  EXPECT_FALSE(training.exec.has_matrix());
  EXPECT_EQ(training.jobs.size(), 20u);
}

TEST(Scenario, TrainingWorkloadShrinksNasHorizon) {
  const Scenario scenario = nas_scenario(1000);
  const workload::Workload main = make_workload(scenario, 9);
  const workload::Workload training =
      make_training_workload(scenario, main, 100, 10);
  const auto stats = workload::characterize(training.jobs);
  EXPECT_LT(stats.span, scenario.nas.horizon);
}

TEST(Roster, HeuristicSpecValidatesName) {
  EXPECT_THROW(heuristic_spec("no-such", security::RiskPolicy::secure()),
               std::invalid_argument);
}

TEST(Roster, SpecsProduceFreshSchedulers) {
  const AlgorithmSpec spec =
      heuristic_spec("min-min", security::RiskPolicy::risky());
  const auto a = spec.make(nullptr, 1);
  const auto b = spec.make(nullptr, 2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "Min-Min risky");
}

TEST(Roster, StgaSpecThreadsSeedIntoConfig) {
  const AlgorithmSpec spec = stga_spec();
  const auto scheduler = spec.make(nullptr, 12345);
  const auto* stga = dynamic_cast<core::GaScheduler*>(scheduler.get());
  ASSERT_NE(stga, nullptr);
  EXPECT_EQ(stga->config().seed, 12345u);
  EXPECT_TRUE(stga->config().use_history);
}

TEST(Roster, ClassicGaSpecDisablesHistory) {
  const AlgorithmSpec spec = classic_ga_spec();
  const auto scheduler = spec.make(nullptr, 1);
  const auto* ga = dynamic_cast<core::GaScheduler*>(scheduler.get());
  ASSERT_NE(ga, nullptr);
  EXPECT_FALSE(ga->config().use_history);
  EXPECT_FALSE(spec.wants_training);
}

TEST(Runner, TrainingJobsZeroSkipsTraining) {
  Scenario scenario = psa_scenario(40);
  scenario.training_jobs = 0;
  core::StgaConfig config;
  config.ga.population = 16;
  config.ga.generations = 4;
  const auto run = run_once(scenario, stga_spec(config), 77);
  EXPECT_EQ(run.n_jobs, 40u);
}

TEST(Runner, ReplicationSeedsAreDistinct) {
  const Scenario scenario = psa_scenario(40);
  const auto spec =
      heuristic_spec("mct", security::RiskPolicy::f_risky(0.5));
  const auto result = run_replicated(scenario, spec, 3, 500);
  ASSERT_EQ(result.runs.size(), 3u);
  EXPECT_FALSE(result.runs[0].makespan == result.runs[1].makespan &&
               result.runs[1].makespan == result.runs[2].makespan);
}

TEST(WorkloadStats, CharacterizesGeneratedTrace) {
  const workload::Workload psa = make_workload(psa_scenario(400), 11);
  const auto stats = workload::characterize(psa.jobs);
  EXPECT_EQ(stats.n_jobs, 400u);
  EXPECT_GT(stats.span, 0.0);
  EXPECT_NEAR(stats.interarrival.mean(), 125.0, 25.0);  // 1/0.008
  EXPECT_EQ(stats.size_histogram.size(), 1u);           // all sequential
  EXPECT_GT(stats.total_node_seconds, 0.0);
  const std::string text = workload::describe(stats);
  EXPECT_NE(text.find("jobs:"), std::string::npos);
  EXPECT_NE(text.find("node requests:"), std::string::npos);
}

TEST(WorkloadStats, EmptyWorkload) {
  const auto stats = workload::characterize({});
  EXPECT_EQ(stats.n_jobs, 0u);
  EXPECT_DOUBLE_EQ(stats.offered_load(100.0), 0.0);
}

TEST(WorkloadStats, OfferedLoadFormula) {
  std::vector<sim::Job> jobs(2);
  jobs[0].arrival = 0.0;
  jobs[0].work = 100.0;
  jobs[0].nodes = 2;  // 200 node-seconds
  jobs[1].arrival = 100.0;
  jobs[1].work = 50.0;
  jobs[1].nodes = 4;  // 200 node-seconds
  const auto stats = workload::characterize(jobs);
  EXPECT_DOUBLE_EQ(stats.total_node_seconds, 400.0);
  // capacity 8 node/s over span 100 s = 800; load = 0.5.
  EXPECT_DOUBLE_EQ(stats.offered_load(8.0), 0.5);
}

}  // namespace
}  // namespace gridsched::exp
