#include "exp/roster.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "workload/stats.hpp"

namespace gridsched::exp {
namespace {

TEST(Scenario, NasDefaultsMatchPaperTableOne) {
  const Scenario scenario = nas_scenario();
  EXPECT_EQ(scenario.kind, ScenarioKind::kNas);
  EXPECT_EQ(scenario.nas.n_jobs, 16000u);
  EXPECT_NEAR(scenario.nas.horizon, 46.0 * 86400.0, 1.0);
  EXPECT_DOUBLE_EQ(scenario.engine.batch_interval, 4000.0);
  EXPECT_EQ(scenario.training_jobs, 500u);
}

TEST(Scenario, NasScalesHorizonWithJobCount) {
  const Scenario half = nas_scenario(8000);
  EXPECT_NEAR(half.nas.horizon, 23.0 * 86400.0, 1.0);
}

TEST(Scenario, PsaDefaults) {
  const Scenario scenario = psa_scenario(1234);
  EXPECT_EQ(scenario.kind, ScenarioKind::kPsa);
  EXPECT_EQ(scenario.psa.n_jobs, 1234u);
  EXPECT_DOUBLE_EQ(scenario.engine.batch_interval, 2000.0);
}

TEST(Scenario, MakeWorkloadDispatchesOnKind) {
  const workload::Workload nas = make_workload(nas_scenario(100), 1);
  EXPECT_EQ(nas.name, "NAS");
  EXPECT_EQ(nas.sites.size(), 12u);
  const workload::Workload psa = make_workload(psa_scenario(100), 1);
  EXPECT_EQ(psa.name, "PSA");
  EXPECT_EQ(psa.sites.size(), 20u);
}

TEST(Scenario, TrainingWorkloadReusesMainSites) {
  const Scenario scenario = psa_scenario(100);
  const workload::Workload main = make_workload(scenario, 7);
  const workload::Workload training =
      make_training_workload(scenario, main, 40, 8);
  ASSERT_EQ(training.sites.size(), main.sites.size());
  for (std::size_t s = 0; s < main.sites.size(); ++s) {
    EXPECT_DOUBLE_EQ(training.sites[s].security, main.sites[s].security);
    EXPECT_DOUBLE_EQ(training.sites[s].speed, main.sites[s].speed);
  }
  EXPECT_EQ(training.jobs.size(), 40u);
  EXPECT_NE(training.name.find("training"), std::string::npos);
}

TEST(Scenario, SynthTrainingWorkloadRegathersTheMainEtc) {
  // The training workload reuses the main run's sites, which invalidates
  // the raw ETC generated against the training grid. It must NOT fall back
  // to rank-1 (the old bug): instead every training job carries a row
  // re-gathered from the *main* grid's authoritative ETC, so STGA trains
  // on the true matrix.
  const Scenario scenario = make_scenario("synth-inconsistent-hihi", 60);
  const workload::Workload main = make_workload(scenario, 7);
  ASSERT_TRUE(main.exec.has_matrix());
  const workload::Workload training =
      make_training_workload(scenario, main, 20, 8);
  ASSERT_TRUE(training.exec.has_matrix());
  EXPECT_EQ(training.jobs.size(), 20u);
  ASSERT_EQ(training.exec.matrix_jobs(), 20u);
  ASSERT_EQ(training.exec.matrix_sites(), main.exec.matrix_sites());

  // Golden property: each training row is bit-identical to some main-grid
  // row, with the matching work scalar (etc ~ work / speed stays
  // self-consistent through the substitution).
  const std::span<const double> main_cells = main.exec.matrix_cells();
  const std::span<const double> training_cells = training.exec.matrix_cells();
  const std::size_t n_sites = main.exec.matrix_sites();
  for (std::size_t j = 0; j < training.jobs.size(); ++j) {
    bool matched = false;
    for (std::size_t r = 0; r < main.exec.matrix_jobs() && !matched; ++r) {
      bool equal = true;
      for (std::size_t s = 0; s < n_sites; ++s) {
        if (training_cells[j * n_sites + s] != main_cells[r * n_sites + s]) {
          equal = false;
          break;
        }
      }
      if (equal && training.jobs[j].work == main.jobs[r].work) matched = true;
    }
    EXPECT_TRUE(matched) << "training job " << j
                         << " carries a row absent from the main ETC";
  }

  // Deterministic in (scenario, main, seed).
  const workload::Workload again =
      make_training_workload(scenario, main, 20, 8);
  ASSERT_TRUE(again.exec.has_matrix());
  EXPECT_TRUE(std::equal(training_cells.begin(), training_cells.end(),
                         again.exec.matrix_cells().begin()));

  // Non-matrix scenarios (psa) keep the rank-1 fallback.
  const Scenario psa = psa_scenario(60);
  const workload::Workload psa_main = make_workload(psa, 7);
  EXPECT_FALSE(
      make_training_workload(psa, psa_main, 20, 8).exec.has_matrix());
}

TEST(Scenario, TrainingWorkloadShrinksNasHorizon) {
  const Scenario scenario = nas_scenario(1000);
  const workload::Workload main = make_workload(scenario, 9);
  const workload::Workload training =
      make_training_workload(scenario, main, 100, 10);
  const auto stats = workload::characterize(training.jobs);
  EXPECT_LT(stats.span, scenario.nas.horizon);
}

TEST(Roster, HeuristicSpecValidatesName) {
  EXPECT_THROW(heuristic_spec("no-such", security::RiskPolicy::secure()),
               std::invalid_argument);
}

TEST(Roster, SpecsProduceFreshSchedulers) {
  const AlgorithmSpec spec =
      heuristic_spec("min-min", security::RiskPolicy::risky());
  const auto a = spec.make(nullptr, 1);
  const auto b = spec.make(nullptr, 2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "Min-Min risky");
}

TEST(Roster, StgaSpecThreadsSeedIntoConfig) {
  const AlgorithmSpec spec = stga_spec();
  const auto scheduler = spec.make(nullptr, 12345);
  const auto* stga = dynamic_cast<core::GaScheduler*>(scheduler.get());
  ASSERT_NE(stga, nullptr);
  EXPECT_EQ(stga->config().seed, 12345u);
  EXPECT_TRUE(stga->config().use_history);
}

TEST(Roster, ClassicGaSpecDisablesHistory) {
  const AlgorithmSpec spec = classic_ga_spec();
  const auto scheduler = spec.make(nullptr, 1);
  const auto* ga = dynamic_cast<core::GaScheduler*>(scheduler.get());
  ASSERT_NE(ga, nullptr);
  EXPECT_FALSE(ga->config().use_history);
  EXPECT_FALSE(spec.wants_training);
}

TEST(Runner, TrainingJobsZeroSkipsTraining) {
  Scenario scenario = psa_scenario(40);
  scenario.training_jobs = 0;
  core::StgaConfig config;
  config.ga.population = 16;
  config.ga.generations = 4;
  const auto run = run_once(scenario, stga_spec(config), 77);
  EXPECT_EQ(run.n_jobs, 40u);
}

TEST(Runner, ReplicationSeedsAreDistinct) {
  const Scenario scenario = psa_scenario(40);
  const auto spec =
      heuristic_spec("mct", security::RiskPolicy::f_risky(0.5));
  const auto result = run_replicated(scenario, spec, 3, 500);
  ASSERT_EQ(result.runs.size(), 3u);
  EXPECT_FALSE(result.runs[0].makespan == result.runs[1].makespan &&
               result.runs[1].makespan == result.runs[2].makespan);
}

TEST(WorkloadStats, CharacterizesGeneratedTrace) {
  const workload::Workload psa = make_workload(psa_scenario(400), 11);
  const auto stats = workload::characterize(psa.jobs);
  EXPECT_EQ(stats.n_jobs, 400u);
  EXPECT_GT(stats.span, 0.0);
  EXPECT_NEAR(stats.interarrival.mean(), 125.0, 25.0);  // 1/0.008
  EXPECT_EQ(stats.size_histogram.size(), 1u);           // all sequential
  EXPECT_GT(stats.total_node_seconds, 0.0);
  const std::string text = workload::describe(stats);
  EXPECT_NE(text.find("jobs:"), std::string::npos);
  EXPECT_NE(text.find("node requests:"), std::string::npos);
}

TEST(WorkloadStats, EmptyWorkload) {
  const auto stats = workload::characterize({});
  EXPECT_EQ(stats.n_jobs, 0u);
  EXPECT_DOUBLE_EQ(stats.offered_load(100.0), 0.0);
}

TEST(WorkloadStats, OfferedLoadFormula) {
  std::vector<sim::Job> jobs(2);
  jobs[0].arrival = 0.0;
  jobs[0].work = 100.0;
  jobs[0].nodes = 2;  // 200 node-seconds
  jobs[1].arrival = 100.0;
  jobs[1].work = 50.0;
  jobs[1].nodes = 4;  // 200 node-seconds
  const auto stats = workload::characterize(jobs);
  EXPECT_DOUBLE_EQ(stats.total_node_seconds, 400.0);
  // capacity 8 node/s over span 100 s = 800; load = 0.5.
  EXPECT_DOUBLE_EQ(stats.offered_load(8.0), 0.5);
}

}  // namespace
}  // namespace gridsched::exp
