#include "util/histogram.hpp"
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace gridsched::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MatchesNaiveOnRandomData) {
  std::vector<double> data;
  double x = 0.1;
  for (int i = 0; i < 1000; ++i) {
    x = std::fmod(x * 97.31 + 3.7, 13.0);
    data.push_back(x);
  }
  RunningStats stats;
  for (const double v : data) stats.add(v);
  double sum = 0.0;
  for (const double v : data) sum += v;
  const double mean = sum / static_cast<double>(data.size());
  double ss = 0.0;
  for (const double v : data) ss += (v - mean) * (v - mean);
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), ss / static_cast<double>(data.size() - 1),
              1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats whole;
  RunningStats part_a;
  RunningStats part_b;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10.0 + i * 0.1;
    whole.add(v);
    (i < 40 ? part_a : part_b).add(v);
  }
  part_a.merge(part_b);
  EXPECT_EQ(part_a.count(), whole.count());
  EXPECT_NEAR(part_a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(part_a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(part_a.min(), whole.min());
  EXPECT_DOUBLE_EQ(part_a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty.merge(full)
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  RunningStats c;
  a.merge(c);  // full.merge(empty)
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Percentile, EmptySampleThrows) {
  // The quantile of nothing has no value; a silent 0.0 masked reporting
  // bugs in callers that forgot to guard empty samples.
  EXPECT_THROW(static_cast<void>(percentile({}, 0.5)), std::invalid_argument);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
}

TEST(Percentile, ExtremesAndClamping) {
  const std::vector<double> v = {4.0, 2.0, 8.0, 6.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(percentile(v, -3.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 8.0);
}

TEST(MeanStdDevOf, MatchRunningStats) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.5);
  EXPECT_NEAR(stddev_of(v), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({}), 0.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, CountsBucketsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  for (const double x : {-1.0, 0.0, 1.9, 2.0, 5.5, 9.999, 10.0, 42.0}) h.add(x);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_EQ(h.count(0), 2u);  // 0.0, 1.9
  EXPECT_EQ(h.count(1), 1u);  // 2.0
  EXPECT_EQ(h.count(2), 1u);  // 5.5
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_EQ(h.count(4), 1u);  // 9.999
}

TEST(Histogram, BucketBoundaries) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 17.5);
  EXPECT_THROW(static_cast<void>(h.bucket_lo(4)), std::out_of_range);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string render = h.render(10);
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 2);
}

// ----------------------------------------------------- t-distribution CI ---

TEST(TCritical95, MatchesStandardTables) {
  EXPECT_DOUBLE_EQ(t_critical_95(1), 12.706);
  EXPECT_DOUBLE_EQ(t_critical_95(2), 4.303);
  EXPECT_DOUBLE_EQ(t_critical_95(10), 2.228);
  EXPECT_DOUBLE_EQ(t_critical_95(30), 2.042);
  EXPECT_NEAR(t_critical_95(50), 2.009, 5e-3);   // interpolated region
  EXPECT_NEAR(t_critical_95(120), 1.980, 1e-9);
  EXPECT_DOUBLE_EQ(t_critical_95(10000), 1.96);  // normal limit
  EXPECT_THROW(static_cast<void>(t_critical_95(0)), std::invalid_argument);
}

TEST(TCritical95, MonotoneDecreasingTowardNormal) {
  double previous = t_critical_95(1);
  for (std::size_t dof = 2; dof <= 200; ++dof) {
    const double current = t_critical_95(dof);
    EXPECT_LE(current, previous) << "dof=" << dof;
    EXPECT_GE(current, 1.96);
    previous = current;
  }
}

TEST(Summarize, MatchesHandComputation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const Summary summary = summarize(v);
  EXPECT_EQ(summary.count, 4u);
  EXPECT_DOUBLE_EQ(summary.mean, 2.5);
  EXPECT_NEAR(summary.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  // t(dof=3) = 3.182, halfwidth = t * s / sqrt(n).
  EXPECT_NEAR(summary.ci95, 3.182 * summary.stddev / 2.0, 1e-12);
}

TEST(Summarize, SmallSamplesWidenVsNormalInterval) {
  RunningStats stats;
  stats.add(10.0);
  stats.add(12.0);
  stats.add(14.0);
  // n=3: t CI uses 4.303 instead of 1.96 — more than twice as wide.
  EXPECT_GT(stats.ci95_halfwidth_t(), 2.0 * stats.ci95_halfwidth());
  const Summary summary = summarize(stats);
  EXPECT_DOUBLE_EQ(summary.ci95, stats.ci95_halfwidth_t());
}

TEST(Summarize, EmptyAndSingleton) {
  EXPECT_THROW(static_cast<void>(summarize(std::span<const double>{})),
               std::invalid_argument);
  const RunningStats empty;
  EXPECT_EQ(summarize(empty).count, 0u);  // accumulator overload: zeros
  RunningStats one;
  one.add(5.0);
  const Summary summary = summarize(one);
  EXPECT_EQ(summary.count, 1u);
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  EXPECT_DOUBLE_EQ(summary.ci95, 0.0);
}

}  // namespace
}  // namespace gridsched::util
