// Streaming-kernel regression suite (PR 10): a streamed run of any
// registry scenario must be bit-identical to the retained run of the same
// workload (metrics, trace bytes, timeseries bytes), slots must recycle
// under churn without retiring revoked jobs early, and the 1e5-job
// streaming scenario must run to completion in O(active) memory.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/runner.hpp"
#include "exp/scenario_registry.hpp"
#include "metrics/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_event.hpp"
#include "sched/heuristics.hpp"
#include "sim/engine.hpp"
#include "workload/stream.hpp"
#include "workload/synth/stream_gen.hpp"

namespace gridsched {
namespace {

using workload::MaterializedStream;

struct RunArtifacts {
  metrics::RunMetrics metrics;
  std::string trace;
  std::string timeseries;
  std::size_t peak_slots = 0;
  std::size_t retired = 0;
};

/// Run `workload` through a fresh MinMin f-risky engine, retained or
/// streamed, capturing every byte-stable artifact the run produces.
RunArtifacts run_workload(const workload::Workload& workload,
                          sim::EngineConfig config, bool streamed) {
  obs::SimTraceRecorder trace;
  obs::TimeSeriesProbe probe(500.0);
  sim::KernelObserverTee tee;
  tee.add(&trace);
  tee.add(&probe);

  auto engine = streamed
                    ? std::make_unique<sim::Engine>(
                          workload.sites,
                          std::make_unique<MaterializedStream>(workload.jobs),
                          config, workload.exec, workload.churn)
                    : std::make_unique<sim::Engine>(workload.sites,
                                                    workload.jobs, config,
                                                    workload.exec,
                                                    workload.churn);
  engine->set_observer(&tee);
  sched::MinMinScheduler scheduler(security::RiskPolicy::f_risky(0.5));
  engine->run(scheduler);

  RunArtifacts artifacts;
  artifacts.metrics = metrics::compute_metrics(*engine);
  artifacts.trace = trace.render();
  artifacts.timeseries = obs::render_timeseries_json(probe.series());
  artifacts.peak_slots = engine->kernel().peak_slots();
  artifacts.retired = engine->kernel().retired_jobs();
  return artifacts;
}

void expect_identical(const RunArtifacts& retained, const RunArtifacts& streamed,
                      const std::string& label) {
  const metrics::RunMetrics& a = retained.metrics;
  const metrics::RunMetrics& b = streamed.metrics;
  EXPECT_EQ(a.n_jobs, b.n_jobs) << label;
  EXPECT_EQ(a.n_risk, b.n_risk) << label;
  EXPECT_EQ(a.n_fail, b.n_fail) << label;
  EXPECT_EQ(a.total_attempts, b.total_attempts) << label;
  EXPECT_EQ(a.failure_events, b.failure_events) << label;
  EXPECT_EQ(a.risky_attempts, b.risky_attempts) << label;
  EXPECT_EQ(a.released_nodes, b.released_nodes) << label;
  EXPECT_EQ(a.unreleased_nodes, b.unreleased_nodes) << label;
  EXPECT_EQ(a.site_down_events, b.site_down_events) << label;
  EXPECT_EQ(a.site_up_events, b.site_up_events) << label;
  EXPECT_EQ(a.interruptions, b.interruptions) << label;
  EXPECT_EQ(a.n_interrupted, b.n_interrupted) << label;
  EXPECT_EQ(a.churn_released_nodes, b.churn_released_nodes) << label;
  EXPECT_EQ(a.churn_unreleased_nodes, b.churn_unreleased_nodes) << label;
  // EXPECT_EQ on doubles is operator== — bitwise identity for finite
  // values, which is exactly the contract under test.
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.avg_response, b.avg_response) << label;
  EXPECT_EQ(a.avg_final_exec, b.avg_final_exec) << label;
  EXPECT_EQ(a.slowdown_ratio, b.slowdown_ratio) << label;
  EXPECT_EQ(a.mean_job_slowdown, b.mean_job_slowdown) << label;
  EXPECT_EQ(a.batch_invocations, b.batch_invocations) << label;
  EXPECT_EQ(a.site_utilization, b.site_utilization) << label;
  EXPECT_EQ(a.avg_utilization, b.avg_utilization) << label;
  EXPECT_EQ(a.idle_sites, b.idle_sites) << label;
  EXPECT_EQ(retained.trace, streamed.trace) << label;
  EXPECT_EQ(retained.timeseries, streamed.timeseries) << label;
}

TEST(StreamKernel, StreamedRunsAreBitIdenticalAcrossRegistry) {
  for (const std::string& name : exp::scenario_names()) {
    SCOPED_TRACE(name);
    const exp::Scenario scenario = exp::make_scenario(name, 80);
    const workload::Workload workload = exp::make_workload(scenario, 17);
    sim::EngineConfig config = scenario.engine;
    config.seed = 9;
    const RunArtifacts retained = run_workload(workload, config, false);
    const RunArtifacts streamed = run_workload(workload, config, true);
    expect_identical(retained, streamed, name);
    // Retained mode never recycles; streamed mode retires every job.
    EXPECT_EQ(retained.peak_slots, workload.jobs.size());
    EXPECT_EQ(streamed.retired, workload.jobs.size());
    EXPECT_LE(streamed.peak_slots, workload.jobs.size());
  }
}

/// Observer asserting the retirement frontier's safety invariants at every
/// callback: no live callback may name a retired id, and the frontier can
/// never outrun the completions actually observed (a revoked-then-pending
/// job must hold the frontier back until it really completes).
class FrontierInvariantObserver final : public sim::KernelObserver {
 public:
  void on_dispatch(const sim::SimKernel& kernel, sim::JobId job, sim::SiteId,
                   const sim::NodeAvailability::Window&, double,
                   unsigned) override {
    EXPECT_FALSE(kernel.is_retired(job)) << "dispatched job " << job;
  }
  void on_revoke(const sim::SimKernel& kernel, sim::JobId job, sim::SiteId,
                 sim::Time) override {
    ++revocations;
    EXPECT_FALSE(kernel.is_retired(job)) << "revoked job " << job;
    EXPECT_LE(kernel.retired_jobs(), completions);
  }
  void on_job_complete(const sim::SimKernel& kernel, sim::JobId job,
                       sim::SiteId, sim::Time) override {
    ++completions;
    EXPECT_FALSE(kernel.is_retired(job)) << "completed job " << job;
    EXPECT_LE(kernel.retired_jobs(), completions);
  }

  std::size_t revocations = 0;
  std::size_t completions = 0;
};

TEST(StreamKernel, SlotRecyclingHoldsFrontierThroughChurn) {
  const exp::Scenario scenario = exp::make_scenario("synth-churn-hi", 150);
  const workload::Workload workload = exp::make_workload(scenario, 5);
  sim::EngineConfig config = scenario.engine;
  config.seed = 11;
  sim::Engine engine(workload.sites,
                     std::make_unique<MaterializedStream>(workload.jobs),
                     config, workload.exec, workload.churn);
  FrontierInvariantObserver invariants;
  engine.set_observer(&invariants);
  sched::MinMinScheduler scheduler(security::RiskPolicy::f_risky(0.5));
  engine.run(scheduler);

  EXPECT_GT(invariants.revocations, 0u)
      << "churn scenario produced no interruptions; the frontier "
         "invariant was not exercised — pick another seed";
  EXPECT_EQ(invariants.completions, workload.jobs.size());
  EXPECT_EQ(engine.kernel().retired_jobs(), workload.jobs.size());
  EXPECT_EQ(engine.kernel().retirement().jobs(), workload.jobs.size());
  // Arrivals trickle in over the horizon while completed jobs retire, so
  // the slot table's high-water mark stays below the total job count.
  EXPECT_LT(engine.kernel().peak_slots(), workload.jobs.size());
}

/// Fixed-size scripted stream for the error paths.
class ScriptedStream final : public workload::JobStream {
 public:
  ScriptedStream(std::vector<sim::Job> jobs, std::size_t claimed)
      : jobs_(std::move(jobs)), claimed_(claimed) {}
  [[nodiscard]] std::size_t size() const noexcept override { return claimed_; }
  bool next(sim::Job& job) override {
    if (cursor_ == jobs_.size()) return false;
    job = jobs_[cursor_++];
    return true;
  }

 private:
  std::vector<sim::Job> jobs_;
  std::size_t claimed_;
  std::size_t cursor_ = 0;
};

sim::Job stream_job(sim::Time arrival) {
  sim::Job job;
  job.arrival = arrival;
  job.work = 10.0;
  job.nodes = 1;
  job.demand = 0.5;
  return job;
}

sim::EngineConfig quick_config() {
  sim::EngineConfig config;
  config.batch_interval = 50.0;
  config.detection = sim::FailureDetection::kAtEnd;
  return config;
}

TEST(StreamKernel, NullStreamIsRejected) {
  EXPECT_THROW(sim::Engine({{0, 1, 1.0, 1.0}},
                           std::unique_ptr<workload::JobStream>{},
                           quick_config()),
               std::invalid_argument);
}

TEST(StreamKernel, ShortStreamThrowsWithProgressCount) {
  auto stream = std::make_unique<ScriptedStream>(
      std::vector<sim::Job>{stream_job(0.0), stream_job(1.0)}, 5);
  sim::Engine engine({{0, 4, 1.0, 1.0}}, std::move(stream), quick_config());
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  try {
    engine.run(scheduler);
    FAIL() << "short stream did not throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("job stream ended after 2 of 5"),
              std::string::npos)
        << error.what();
  }
}

TEST(StreamKernel, OutOfOrderStreamIsRejected) {
  auto stream = std::make_unique<ScriptedStream>(
      std::vector<sim::Job>{stream_job(10.0), stream_job(5.0)}, 2);
  sim::Engine engine({{0, 4, 1.0, 1.0}}, std::move(stream), quick_config());
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  EXPECT_THROW(engine.run(scheduler), std::invalid_argument);
}

TEST(StreamKernel, InfeasibleStreamedJobIsRejectedAtAdmission) {
  // Only site offers SL 0.7 < demand 0.9: the O(1) per-admission check
  // must reject exactly like the retained validator does up front.
  auto bad = stream_job(0.0);
  bad.demand = 0.9;
  auto stream = std::make_unique<ScriptedStream>(std::vector<sim::Job>{bad}, 1);
  sim::Engine engine({{0, 4, 1.0, 0.7}}, std::move(stream), quick_config());
  sched::MctScheduler scheduler(security::RiskPolicy::secure());
  EXPECT_THROW(engine.run(scheduler), std::invalid_argument);
}

TEST(StreamKernel, DescribeUnfinishedCoversUnadmittedJobs) {
  auto stream = std::make_unique<ScriptedStream>(
      std::vector<sim::Job>{stream_job(0.0), stream_job(1.0)}, 2);
  sim::Engine engine({{0, 4, 1.0, 1.0}}, std::move(stream), quick_config());
  // Before run() nothing is admitted: every job reports as pending.
  const std::string text = engine.kernel().describe_unfinished(0.0);
  EXPECT_NE(text.find("2 of 2 job(s) unfinished"), std::string::npos) << text;
  EXPECT_NE(text.find("0 (pending), 1 (pending)"), std::string::npos) << text;
}

TEST(StreamKernel, HundredThousandJobStreamStaysSmall) {
  // The Debug-friendly streaming smoke: the full synth-stream-med scenario
  // (1e5 jobs / 100 sites) must run to completion with a slot table orders
  // of magnitude below the job count — the O(active) memory claim.
  const exp::Scenario scenario = exp::make_scenario("synth-stream-med", 0);
  workload::synth::StreamWorkload stream = exp::make_stream_workload(scenario,
                                                                     3);
  sim::EngineConfig config = scenario.engine;
  config.seed = 21;
  sim::Engine engine(std::move(stream.sites), std::move(stream.jobs), config,
                     std::move(stream.exec), std::move(stream.churn));
  sched::MctScheduler scheduler(security::RiskPolicy::f_risky(0.5));
  engine.run(scheduler);

  const metrics::RunMetrics run = metrics::compute_metrics(engine);
  EXPECT_EQ(run.n_jobs, 100000u);
  EXPECT_EQ(engine.kernel().retired_jobs(), 100000u);
  EXPECT_GT(run.makespan, 0.0);
  // ~0.25 jobs/s at ~2.6 ks response keeps a few thousand jobs in flight;
  // anything near 1e5 means slots stopped recycling.
  EXPECT_LT(engine.kernel().peak_slots(), 16384u);
}

TEST(StreamKernel, RunOnceStreamsAndMatchesMaterializedDrain) {
  // run_once on a streaming scenario must agree with a retained run over
  // the drained vector of the same (scenario, seed) — the runner derives
  // the workload seed from the cell seed, so reproduce that here.
  const exp::Scenario scenario = exp::make_scenario("synth-stream-med", 400);
  const exp::AlgorithmSpec spec =
      exp::heuristic_spec("mct", security::RiskPolicy::f_risky(0.5));
  const metrics::RunMetrics streamed = exp::run_once(scenario, spec, 7);

  const std::uint64_t workload_seed = util::Rng::child(7, 1).next_u64();
  const std::uint64_t engine_seed = util::Rng::child(7, 2).next_u64();
  const workload::Workload drained = exp::make_workload(scenario,
                                                        workload_seed);
  sim::EngineConfig config = scenario.engine;
  config.seed = engine_seed;
  sim::Engine engine(drained.sites, drained.jobs, config, drained.exec,
                     drained.churn);
  sched::MctScheduler scheduler(security::RiskPolicy::f_risky(0.5));
  engine.run(scheduler);
  const metrics::RunMetrics retained = metrics::compute_metrics(engine);

  EXPECT_EQ(streamed.n_jobs, retained.n_jobs);
  EXPECT_EQ(streamed.makespan, retained.makespan);
  EXPECT_EQ(streamed.avg_response, retained.avg_response);
  EXPECT_EQ(streamed.slowdown_ratio, retained.slowdown_ratio);
  EXPECT_EQ(streamed.n_risk, retained.n_risk);
  EXPECT_EQ(streamed.n_fail, retained.n_fail);
  EXPECT_EQ(streamed.site_utilization, retained.site_utilization);
}

}  // namespace
}  // namespace gridsched
