// Observability-layer tests: metric registry snapshot stability and
// collision rules, kernel observer callback order against a hand-checked
// churn timeline, trace-JSON byte determinism, the null-observer /
// attached-observer bit-identity guarantee, GA convergence-profile
// invariants, and the observer tee.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <utility>
#include <string>
#include <vector>

#include "core/ga_engine.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "obs/ga_profile_json.hpp"
#include "obs/kernel_metrics.hpp"
#include "obs/metric_registry.hpp"
#include "obs/proc_stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_event.hpp"
#include "sim/observer.hpp"
#include "sim/process/arrival_process.hpp"
#include "sim/process/batch_cycle_process.hpp"
#include "sim/process/security_failure_process.hpp"
#include "sim/process/site_churn_process.hpp"
#include "util/log.hpp"

namespace gridsched {
namespace {

using sim::SimKernel;

sim::Job make_job(sim::Time arrival, double work, unsigned nodes,
                  double demand) {
  sim::Job job;
  job.arrival = arrival;
  job.work = work;
  job.nodes = nodes;
  job.demand = demand;
  return job;
}

sim::EngineConfig quick_config(sim::Time interval = 50.0) {
  sim::EngineConfig config;
  config.batch_interval = interval;
  config.detection = sim::FailureDetection::kAtEnd;
  return config;
}

/// Assigns every batch job to site 0 whenever the site is usable.
class PinScheduler final : public sim::BatchScheduler {
 public:
  [[nodiscard]] std::string name() const override { return "pin"; }
  std::vector<sim::Assignment> schedule(
      const sim::SchedulerContext& context) override {
    if (!context.site_usable(0)) return {};
    std::vector<sim::Assignment> out;
    for (std::size_t j = 0; j < context.jobs.size(); ++j) {
      out.push_back({j, 0});
    }
    return out;
  }
};

/// Flattens every callback into a line so tests can golden the order.
class RecordingObserver final : public sim::KernelObserver {
 public:
  std::vector<std::string> lines;

  void on_run_start(const SimKernel&) override { lines.push_back("start"); }
  void on_dispatch(const SimKernel&, sim::JobId job, sim::SiteId site,
                   const sim::NodeAvailability::Window& window, double,
                   unsigned serial) override {
    lines.push_back("dispatch j" + std::to_string(job) + " s" +
                    std::to_string(site) + " #" + std::to_string(serial) +
                    " @" + std::to_string(static_cast<int>(window.start)));
  }
  void on_job_complete(const SimKernel&, sim::JobId job, sim::SiteId,
                       sim::Time time) override {
    lines.push_back("complete j" + std::to_string(job) + " @" +
                    std::to_string(static_cast<int>(time)));
  }
  void on_attempt_failure(const SimKernel&, sim::JobId job, sim::SiteId,
                          sim::Time) override {
    lines.push_back("fail j" + std::to_string(job));
  }
  void on_revoke(const SimKernel&, sim::JobId job, sim::SiteId,
                 sim::Time time) override {
    lines.push_back("revoke j" + std::to_string(job) + " @" +
                    std::to_string(static_cast<int>(time)));
  }
  void on_cycle(const SimKernel&, sim::Time now, std::size_t batch_jobs,
                std::size_t assigned, double) override {
    lines.push_back("cycle @" + std::to_string(static_cast<int>(now)) +
                    " batch=" + std::to_string(batch_jobs) +
                    " assigned=" + std::to_string(assigned));
  }
  void on_run_end(const SimKernel&) override { lines.push_back("end"); }
};

/// One 1-node site, one job running [50, 150), outage [100, 120): the
/// timeline sim_churn_test hand-checks, here observed from the outside.
void run_churn_timeline(SimKernel& kernel, sim::BatchScheduler& scheduler) {
  sim::ArrivalProcess arrival;
  sim::SecurityFailureProcess failure;
  sim::BatchCycleProcess batch(scheduler, failure);
  sim::SiteChurnProcess churn({{0, 100.0, 120.0}});
  kernel.add_process(arrival);
  kernel.add_process(batch);
  kernel.add_process(failure);
  kernel.add_process(churn);
  kernel.run();
}

// ------------------------------------------------------------- registry ---

TEST(MetricRegistry, SnapshotIsStableAndSorted) {
  const auto drive = [](obs::MetricRegistry& registry) {
    registry.counter("b.count").inc(3);
    registry.counter("a.count").inc();
    registry.gauge("z.gauge").set(2.5);
    auto& histogram = registry.histogram("m.hist", 0.0, 10.0, 4);
    histogram.observe(1.0);
    histogram.observe(9.5);
    histogram.observe(42.0);  // overflow bucket
  };
  obs::MetricRegistry first;
  obs::MetricRegistry second;
  drive(first);
  drive(second);
  EXPECT_EQ(first.snapshot_json(), second.snapshot_json());

  const std::string snapshot = first.snapshot_json();
  // Lexicographic member order inside each section.
  EXPECT_LT(snapshot.find("a.count"), snapshot.find("b.count"));
  EXPECT_NE(snapshot.find("\"z.gauge\": 2.5"), std::string::npos);
  EXPECT_NE(snapshot.find("\"overflow\": 1"), std::string::npos);
  EXPECT_NE(snapshot.find("\"count\": 3"), std::string::npos);
}

TEST(MetricRegistry, HandlesAreStableAndFindOrCreate) {
  obs::MetricRegistry registry;
  EXPECT_TRUE(registry.empty());
  obs::Counter& counter = registry.counter("kernel.dispatches");
  counter.inc(7);
  // Re-requesting the same name returns the same metric.
  EXPECT_EQ(&registry.counter("kernel.dispatches"), &counter);
  EXPECT_EQ(registry.counter("kernel.dispatches").value(), 7u);
  EXPECT_FALSE(registry.empty());
}

TEST(MetricRegistry, KindCollisionsAndBoundsMismatchesThrow) {
  obs::MetricRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x", 0.0, 1.0, 2), std::logic_error);
  registry.histogram("h", 0.0, 10.0, 4);
  EXPECT_THROW(registry.histogram("h", 0.0, 20.0, 4), std::logic_error);
  EXPECT_THROW(registry.histogram("h", 0.0, 10.0, 8), std::logic_error);
  EXPECT_NO_THROW(registry.histogram("h", 0.0, 10.0, 4));
}

// ------------------------------------------------------------- observer ---

TEST(KernelObserver, ChurnTimelineCallbackOrder) {
  SimKernel kernel({{0, 1, 1.0, 1.0}}, {make_job(0.0, 100.0, 1, 0.5)},
                   quick_config(50.0));
  PinScheduler scheduler;
  RecordingObserver recorder;
  kernel.set_observer(&recorder);
  run_churn_timeline(kernel, scheduler);

  const std::vector<std::string> expected = {
      "start",
      "cycle @50 batch=1 assigned=1",
      "dispatch j0 s0 #1 @50",
      "revoke j0 @100",
      "cycle @100 batch=1 assigned=0",
      "cycle @150 batch=1 assigned=1",
      "dispatch j0 s0 #2 @150",
      "complete j0 @250",
      "end",
  };
  EXPECT_EQ(recorder.lines, expected);
}

TEST(KernelObserver, FailureCallbackPrecedesItsRevocation) {
  // A realistic run with security failures: every on_attempt_failure must
  // be immediately followed by the on_revoke of the same job (the kernel
  // releases the attempt as part of handling the failed end event).
  RecordingObserver recorder;
  exp::RunHooks hooks;
  hooks.observer = &recorder;
  const exp::Scenario scenario = exp::psa_scenario(40);
  const metrics::RunMetrics run = exp::run_once(
      scenario,
      exp::heuristic_spec("min-min", security::RiskPolicy::f_risky(0.5)), 7,
      nullptr, hooks);
  ASSERT_GT(run.n_fail, 0u) << "scenario stopped producing failures; pick "
                               "another seed for this test";
  std::size_t failures_seen = 0;
  for (std::size_t i = 0; i < recorder.lines.size(); ++i) {
    if (recorder.lines[i].rfind("fail j", 0) != 0) continue;
    ++failures_seen;
    ASSERT_LT(i + 1, recorder.lines.size());
    const std::string expected_next =
        "revoke" + recorder.lines[i].substr(4);  // same " jN" suffix
    EXPECT_EQ(recorder.lines[i + 1].rfind(expected_next, 0), 0u)
        << "failure at line " << i << " not followed by its revocation";
  }
  EXPECT_GE(failures_seen, run.n_fail);
}

TEST(KernelObserver, AttachedObserverLeavesRunBitIdentical) {
  const exp::Scenario scenario = exp::psa_scenario(40);
  const exp::AlgorithmSpec spec =
      exp::heuristic_spec("min-min", security::RiskPolicy::f_risky(0.5));
  const metrics::RunMetrics plain = exp::run_once(scenario, spec, 7);

  obs::MetricRegistry registry;
  obs::KernelMetricsObserver metrics_observer(registry);
  obs::SimTraceRecorder trace;
  sim::KernelObserverTee tee;
  tee.add(&metrics_observer);
  tee.add(&trace);
  exp::RunHooks hooks;
  hooks.observer = &tee;
  const metrics::RunMetrics observed =
      exp::run_once(scenario, spec, 7, nullptr, hooks);

  // Every deterministic metric must match exactly; scheduler_seconds is
  // host wall clock and deliberately excluded.
  EXPECT_EQ(plain.n_jobs, observed.n_jobs);
  EXPECT_EQ(plain.makespan, observed.makespan);
  EXPECT_EQ(plain.avg_response, observed.avg_response);
  EXPECT_EQ(plain.slowdown_ratio, observed.slowdown_ratio);
  EXPECT_EQ(plain.avg_utilization, observed.avg_utilization);
  EXPECT_EQ(plain.n_risk, observed.n_risk);
  EXPECT_EQ(plain.n_fail, observed.n_fail);
  EXPECT_EQ(plain.batch_invocations, observed.batch_invocations);
  EXPECT_EQ(plain.site_down_events, observed.site_down_events);
  EXPECT_EQ(plain.interruptions, observed.interruptions);

  // And the observers saw a consistent run.
  EXPECT_EQ(registry.counter("kernel.completions").value(), plain.n_jobs);
  EXPECT_GT(trace.size(), 0u);
}

// ---------------------------------------------------------------- trace ---

TEST(SimTraceRecorder, TraceIsByteDeterministic) {
  const exp::Scenario scenario = exp::psa_scenario(40);
  const exp::AlgorithmSpec spec =
      exp::heuristic_spec("min-min", security::RiskPolicy::f_risky(0.5));
  const auto record = [&] {
    obs::SimTraceRecorder trace;
    exp::RunHooks hooks;
    hooks.observer = &trace;
    exp::run_once(scenario, spec, 7, nullptr, hooks);
    return trace.render();
  };
  const std::string first = record();
  const std::string second = record();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
  // Wall clock must never leak into the trace (structure carries only
  // ph/cat/pid/tid/ts/dur/args fields derived from simulated time).
  EXPECT_EQ(first.find("wall"), std::string::npos);
  EXPECT_EQ(first.find("scheduler_seconds"), std::string::npos);
}

TEST(SimTraceRecorder, ChurnTimelineSpans) {
  SimKernel kernel({{0, 1, 1.0, 1.0}}, {make_job(0.0, 100.0, 1, 0.5)},
                   quick_config(50.0));
  PinScheduler scheduler;
  obs::SimTraceRecorder trace;
  kernel.set_observer(&trace);
  run_churn_timeline(kernel, scheduler);

  const std::string rendered = trace.render();
  // The interrupted first attempt, the outage span, the churn instants
  // and the successful second attempt all render.
  EXPECT_NE(rendered.find("job 0 (interrupted)"), std::string::npos);
  EXPECT_NE(rendered.find("\"outage\""), std::string::npos);
  EXPECT_NE(rendered.find("site down"), std::string::npos);
  EXPECT_NE(rendered.find("site up"), std::string::npos);
  EXPECT_NE(rendered.find("\"name\": \"job 0\""), std::string::npos);
  // ts is microseconds of simulated time (shortest-exact form): the
  // second attempt starts at 150 s = 1.5e8 us.
  EXPECT_NE(rendered.find("\"ts\": 1.5e+08"), std::string::npos);
}

// ------------------------------------------------------------ timeseries ---

TEST(TimeSeriesProbe, RejectsNonPositiveInterval) {
  EXPECT_THROW(obs::TimeSeriesProbe(0.0), std::invalid_argument);
  EXPECT_THROW(obs::TimeSeriesProbe(-5.0), std::invalid_argument);
  EXPECT_THROW(obs::TimeSeriesProbe(
                   std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_NO_THROW(obs::TimeSeriesProbe(0.25));
}

TEST(TimeSeriesProbe, ChurnTimelineSamplesAreHandCheckable) {
  // The hand-checked churn timeline (job [50,150) interrupted by the
  // [100,120) outage, re-run [150,250)) sampled every 60 s. Each boundary
  // reflects the state after all events strictly before it: at t=120 the
  // site-up event (at exactly 120) has not been applied yet, so the site
  // still reads down; the 250 row is the terminal makespan sample.
  SimKernel kernel({{0, 1, 1.0, 1.0}}, {make_job(0.0, 100.0, 1, 0.5)},
                   quick_config(50.0));
  PinScheduler scheduler;
  obs::TimeSeriesProbe probe(60.0);
  kernel.set_observer(&probe);
  run_churn_timeline(kernel, scheduler);

  EXPECT_EQ(render_timeseries_csv(probe.series()),
            "t,ready,in_flight,sites_up,completed,failures,interruptions,"
            "busy_0\n"
            "0,0,0,1,0,0,0,0\n"
            "6e+01,0,1,1,0,0,0,1\n"
            "1.2e+02,1,0,0,0,0,1,0\n"
            "1.8e+02,0,1,1,0,0,1,1\n"
            "2.4e+02,0,1,1,0,0,1,1\n"
            "2.5e+02,0,0,1,1,0,1,0\n");
}

TEST(TimeSeriesProbe, AttachedProbeLeavesRunBitIdentical) {
  const exp::Scenario scenario = exp::psa_scenario(40);
  const exp::AlgorithmSpec spec =
      exp::heuristic_spec("min-min", security::RiskPolicy::f_risky(0.5));
  const metrics::RunMetrics plain = exp::run_once(scenario, spec, 7);

  obs::TimeSeriesProbe probe(500.0);
  exp::RunHooks hooks;
  hooks.observer = &probe;
  const metrics::RunMetrics observed =
      exp::run_once(scenario, spec, 7, nullptr, hooks);

  EXPECT_EQ(plain.n_jobs, observed.n_jobs);
  EXPECT_EQ(plain.makespan, observed.makespan);
  EXPECT_EQ(plain.avg_response, observed.avg_response);
  EXPECT_EQ(plain.slowdown_ratio, observed.slowdown_ratio);
  EXPECT_EQ(plain.n_risk, observed.n_risk);
  EXPECT_EQ(plain.n_fail, observed.n_fail);
  EXPECT_EQ(plain.interruptions, observed.interruptions);

  const obs::TimeSeries& series = probe.series();
  ASSERT_FALSE(series.samples.empty());
  EXPECT_EQ(series.samples.front().t, 0.0);
  // Terminal sample: full state at the makespan.
  EXPECT_EQ(series.samples.back().t, plain.makespan);
  EXPECT_EQ(series.samples.back().completed, plain.n_jobs);
  EXPECT_EQ(series.samples.back().in_flight, 0u);
}

TEST(TimeSeriesProbe, RendersAndCounterMergeAreByteDeterministic) {
  const exp::Scenario scenario = exp::psa_scenario(40);
  const exp::AlgorithmSpec spec =
      exp::heuristic_spec("min-min", security::RiskPolicy::f_risky(0.5));
  const auto record = [&] {
    obs::TimeSeriesProbe probe(500.0);
    obs::SimTraceRecorder trace;
    sim::KernelObserverTee tee;
    tee.add(&probe);
    tee.add(&trace);
    exp::RunHooks hooks;
    hooks.observer = &tee;
    exp::run_once(scenario, spec, 7, nullptr, hooks);
    trace.merge_counters(probe.series());
    return std::make_pair(render_timeseries_json(probe.series()),
                          trace.render());
  };
  const auto [first_series, first_trace] = record();
  const auto [second_series, second_trace] = record();
  EXPECT_EQ(first_series, second_series);
  EXPECT_EQ(first_trace, second_trace);

  EXPECT_NE(first_series.find("\"schema\": \"gridsched-timeseries-v1\""),
            std::string::npos);
  // The merged counter tracks render as Chrome "C" events with the three
  // telemetry groups; wall clock never leaks in.
  EXPECT_NE(first_trace.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(first_trace.find("\"name\": \"kernel load\""), std::string::npos);
  EXPECT_NE(first_trace.find("\"name\": \"sites up\""), std::string::npos);
  EXPECT_NE(first_trace.find("\"name\": \"outcomes\""), std::string::npos);
  EXPECT_EQ(first_trace.find("wall"), std::string::npos);
}

// ----------------------------------------------------------- GA profile ---

core::GaProblem spread_problem() {
  sim::SchedulerContext context;
  context.now = 0.0;
  for (std::size_t s = 0; s < 4; ++s) {
    context.sites.push_back({static_cast<sim::SiteId>(s), 1u, 1.0, 1.0});
    context.avail.emplace_back(1u, 0.0);
  }
  for (std::size_t j = 0; j < 8; ++j) {
    sim::BatchJob job;
    job.id = static_cast<sim::JobId>(j);
    job.work = 1.0;
    job.nodes = 1;
    job.demand = 0.5;
    context.jobs.push_back(job);
  }
  return core::build_problem(context, security::RiskPolicy::risky());
}

TEST(GaProfile, ProfilingIsObservationOnly) {
  const core::GaProblem problem = spread_problem();
  core::GaParams params;
  params.population = 30;
  params.generations = 12;

  util::Rng plain_rng(11);
  const core::GaResult plain = core::evolve(problem, {}, params, plain_rng);

  util::Rng profiled_rng(11);
  core::GaProfile profile;
  const core::GaResult profiled =
      core::evolve(problem, {}, params, profiled_rng, nullptr, &profile);

  // Bit-identical result with the profile attached.
  EXPECT_EQ(plain.best, profiled.best);
  EXPECT_EQ(plain.best_fitness, profiled.best_fitness);
  EXPECT_EQ(plain.best_per_generation, profiled.best_per_generation);
  EXPECT_EQ(plain.evaluations, profiled.evaluations);
  EXPECT_EQ(plain.memo_hits, profiled.memo_hits);

  // One row per evaluation round; per-generation deltas sum to the
  // totals; the best series mirrors the result's.
  ASSERT_EQ(profile.generations.size(), params.generations + 1);
  std::uint64_t evaluations = 0;
  std::uint64_t memo_hits = 0;
  for (std::size_t g = 0; g < profile.generations.size(); ++g) {
    evaluations += profile.generations[g].evaluations;
    memo_hits += profile.generations[g].memo_hits;
    EXPECT_EQ(profile.generations[g].best, profiled.best_per_generation[g]);
    EXPECT_GE(profile.generations[g].wall_ms, 0.0);
  }
  EXPECT_EQ(evaluations, profiled.evaluations);
  EXPECT_EQ(memo_hits, profiled.memo_hits);
  EXPECT_GE(profile.total_wall_ms, 0.0);
}

TEST(GaProfile, JsonRenderIsWellFormed) {
  const core::GaProblem problem = spread_problem();
  core::GaParams params;
  params.population = 20;
  params.generations = 4;
  util::Rng rng(3);
  core::GaProfile profile;
  core::evolve(problem, {}, params, rng, nullptr, &profile);

  const std::string json = obs::render_ga_profiles({profile});
  EXPECT_NE(json.find("\"invocations\""), std::string::npos);
  EXPECT_NE(json.find("\"generations\""), std::string::npos);
  EXPECT_NE(json.find("\"memo_hits\""), std::string::npos);
  // 5 generation rows render.
  std::size_t rows = 0;
  for (std::size_t at = json.find("\"wall_ms\""); at != std::string::npos;
       at = json.find("\"wall_ms\"", at + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, params.generations + 1);
}

// ------------------------------------------------------------------ tee ---

TEST(KernelObserverTee, ForwardsToEveryObserverAndIgnoresNull) {
  RecordingObserver first;
  RecordingObserver second;
  sim::KernelObserverTee tee;
  EXPECT_TRUE(tee.empty());
  tee.add(nullptr);
  EXPECT_TRUE(tee.empty());
  tee.add(&first);
  tee.add(&second);
  EXPECT_FALSE(tee.empty());

  SimKernel kernel({{0, 1, 1.0, 1.0}}, {make_job(0.0, 100.0, 1, 0.5)},
                   quick_config(50.0));
  PinScheduler scheduler;
  kernel.set_observer(&tee);
  run_churn_timeline(kernel, scheduler);

  EXPECT_FALSE(first.lines.empty());
  EXPECT_EQ(first.lines, second.lines);
}

// ------------------------------------------------------------------ misc ---

TEST(LogLevel, ParseRoundTripAndRejects) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("info"), util::LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("warn"), util::LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), util::LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), util::LogLevel::kOff);
  EXPECT_THROW(util::parse_log_level("verbose"), std::invalid_argument);
  EXPECT_NE(std::string(util::log_level_names()).find("warn"),
            std::string::npos);
}

TEST(ProcStats, PeakRssIsPlausible) {
  const std::uint64_t rss = obs::peak_rss_bytes();
  // 0 is the documented "unsupported platform" fallback; on Linux/macOS a
  // test binary comfortably exceeds 1 MiB and stays under 100 GiB.
  if (rss != 0) {
    EXPECT_GT(rss, std::uint64_t{1} << 20);
    EXPECT_LT(rss, std::uint64_t{100} << 30);
  }
}

}  // namespace
}  // namespace gridsched
