// Regression suite for the DecodeScratch fitness fast path (PR 2): the
// scratch-based decode must be bit-identical to the retained reference
// implementation across every registry scenario, and its steady state must
// perform zero heap allocations (counted by replacing global new/delete).
#include "core/ga_problem.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "core/ga_engine.hpp"
#include "core/operators.hpp"
#include "decode_harness.hpp"  // counting allocator + scenario_batch
#include "util/rng.hpp"

namespace gridsched::core {
namespace {

using bench::allocation_count;
using bench::scenario_batch;

static_assert(noexcept(decode_fitness(
    std::declval<const GaProblem&>(), std::declval<const Chromosome&>(),
    std::declval<const FitnessParams&>(), std::declval<DecodeScratch&>())));
static_assert(noexcept(batch_makespan(std::declval<const GaProblem&>(),
                                      std::declval<const Chromosome&>(),
                                      std::declval<DecodeScratch&>())));
static_assert(noexcept(decode_order_into(std::declval<DecodeScratch&>(),
                                         std::declval<const GaProblem&>(),
                                         std::declval<const Chromosome&>())));

TEST(DecodeFastPath, BitIdenticalToReferenceAcrossRegistry) {
  const FitnessParams params{0.6, 2.0};
  for (const std::string& name : exp::scenario_names()) {
    for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
      const auto context = scenario_batch(name, 24, seed);
      const GaProblem problem =
          build_problem(context, security::RiskPolicy::risky());
      if (problem.n_jobs() == 0) continue;
      DecodeScratch scratch;
      scratch.bind(problem);
      util::Rng rng(seed * 977);
      for (int trial = 0; trial < 4; ++trial) {
        const Chromosome chromosome = random_chromosome(problem, rng);
        const double ref_fitness =
            decode_fitness_reference(problem, chromosome, params);
        const double fast_fitness =
            decode_fitness(problem, chromosome, params, scratch);
        EXPECT_EQ(ref_fitness, fast_fitness)
            << name << " seed " << seed << " trial " << trial;
        EXPECT_EQ(batch_makespan_reference(problem, chromosome),
                  batch_makespan(problem, chromosome, scratch))
            << name << " seed " << seed << " trial " << trial;
        const auto ref_order = decode_order_reference(problem, chromosome);
        const auto fast_order = decode_order_into(scratch, problem, chromosome);
        ASSERT_EQ(ref_order.size(), fast_order.size());
        for (std::size_t i = 0; i < ref_order.size(); ++i) {
          EXPECT_EQ(ref_order[i], fast_order[i]) << name << " position " << i;
        }
        // The validating public entry points ride the same fast path.
        EXPECT_EQ(ref_fitness, decode_fitness(problem, chromosome, params));
      }
    }
  }
}

TEST(DecodeFastPath, SteadyStateIsAllocationFree) {
  const auto context = scenario_batch("synth-inconsistent-hihi", 64, 3);
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  ASSERT_GT(problem.n_jobs(), 0u);
  const FitnessParams params{0.6, 2.0};
  util::Rng rng(17);
  std::vector<Chromosome> chromosomes;
  for (int i = 0; i < 32; ++i) {
    chromosomes.push_back(random_chromosome(problem, rng));
  }
  DecodeScratch scratch;
  scratch.bind(problem);
  decode_fitness(problem, chromosomes[0], params, scratch);  // warm buffers

  const std::uint64_t before = allocation_count();
  double sink = 0.0;
  for (const Chromosome& chromosome : chromosomes) {
    sink += decode_fitness(problem, chromosome, params, scratch);
    sink += batch_makespan(problem, chromosome, scratch);
    sink += static_cast<double>(
        decode_order_into(scratch, problem, chromosome).front());
  }
  EXPECT_EQ(allocation_count(), before) << "fast-path decode allocated";
  EXPECT_GT(sink, 0.0);
}

TEST(DecodeFastPath, ReferenceDecodeAllocatesManyTimesMore) {
  const auto context = scenario_batch("synth-consistent-lolo", 64, 4);
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  util::Rng rng(5);
  const Chromosome chromosome = random_chromosome(problem, rng);
  const std::uint64_t before = allocation_count();
  decode_fitness_reference(problem, chromosome, {0.6, 2.0});
  const std::uint64_t reference_allocations = allocation_count() - before;
  // The ISSUE target is >= 5x fewer allocations; the fast path does zero,
  // so the reference must do at least 5 for the ratio to be meaningful.
  EXPECT_GE(reference_allocations, 5u);
}

TEST(DecodeFastPath, RebindingToAnotherProblemIsCorrect) {
  DecodeScratch scratch;
  const FitnessParams params{0.6, 2.0};
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    for (const std::string& name :
         {std::string("synth-consistent-hihi"), std::string("psa")}) {
      const auto context = scenario_batch(name, 16, seed);
      const GaProblem problem =
          build_problem(context, security::RiskPolicy::risky());
      if (problem.n_jobs() == 0) continue;
      scratch.bind(problem);
      util::Rng rng(seed + 99);
      const Chromosome chromosome = random_chromosome(problem, rng);
      EXPECT_EQ(decode_fitness_reference(problem, chromosome, params),
                decode_fitness(problem, chromosome, params, scratch));
    }
  }
}

TEST(EvolveMemo, ElitesAreNeverReDecoded) {
  const auto context = scenario_batch("synth-consistent-hihi", 16, 7);
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  ASSERT_GT(problem.n_jobs(), 0u);
  GaParams params;
  params.population = 30;
  params.generations = 20;
  params.elite_count = 2;
  util::Rng rng(8);
  const GaResult result = evolve(problem, {}, params, rng);
  // Elites carry their fitness: at most population fresh decodes in the
  // initial generation and population - elites per later generation.
  EXPECT_LE(result.evaluations,
            params.population +
                params.generations * (params.population - params.elite_count));
  // Every individual is decoded, memoized, or a carried elite — exactly.
  EXPECT_EQ(result.evaluations + result.memo_hits,
            params.population * (params.generations + 1) -
                params.generations * params.elite_count);
}

TEST(EvolveMemo, MemoizationDoesNotChangeTheResult) {
  // Same seed twice must stay deterministic with memoization and carried
  // elite fitness in play.
  const auto context = scenario_batch("synth-inconsistent-lolo", 12, 9);
  const GaProblem problem =
      build_problem(context, security::RiskPolicy::risky());
  ASSERT_GT(problem.n_jobs(), 0u);
  GaParams params;
  params.population = 24;
  params.generations = 15;
  auto run = [&] {
    util::Rng rng(13);
    return evolve(problem, {}, params, rng);
  };
  const GaResult a = run();
  const GaResult b = run();
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_per_generation, b.best_per_generation);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.memo_hits, b.memo_hits);
}

}  // namespace
}  // namespace gridsched::core
